// Extension experiment E1: decorated-template refinement — the paper's
// §5.3.4 future work, implemented in core/refine.h.
//
// Mines simple templates from days 1-6 first accesses, then refines every
// group-based template against a validation log (day-7 first accesses +
// fake log) under a precision target, printing the before/after
// precision/recall and the chosen Group_Depth decoration per template.
// Expected shape: undecorated group templates (all depths pooled) sit below
// the precision target; depth-restricted decorations recover precision at a
// modest recall cost — the knob §5.3.4 asks for.

#include <map>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "core/refine.h"

namespace eba {
namespace {

using bench::Unwrap;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, config.num_days - 1,
                                   "Groups", HierarchyOptions{}));
  (void)Unwrap(
      AddLogSlice(&db, "Log", "TrainFirst", 1, config.num_days - 1, true));
  (void)Unwrap(AddLogSlice(&db, "Log", "TestFirst", config.num_days,
                           config.num_days, true));
  EvalLogSetup eval = Unwrap(AddEvalLog(&db, "TestFirst", "EvalLog",
                                        data.truth, config.seed ^ 0xe1));

  MinerOptions miner_options;
  miner_options.log_table = "TrainFirst";
  miner_options.support_fraction = 0.01;
  miner_options.max_length = 5;
  miner_options.max_tables = 3;
  miner_options.excluded_tables = ExcludedLogsFor(db, "TrainFirst");
  MiningResult mined =
      Unwrap(TemplateMiner(&db, miner_options).MineOneWay());

  std::vector<ExplanationTemplate> group_templates;
  for (const auto& m : mined.templates) {
    if (UsesGroups(m.tmpl, "Groups")) group_templates.push_back(m.tmpl);
  }
  std::printf("mined %zu templates, %zu of which traverse Groups\n",
              mined.templates.size(), group_templates.size());

  RefineOptions options;
  options.validation_log_table = "EvalLog";
  options.real_lids = eval.real_lids;
  options.fake_lids = eval.fake_lids;
  options.precision_target = 0.95;

  auto refined = Unwrap(RefineTemplateSet(db, group_templates, options));

  bench::PrintTitle(
      "Extension E1: depth-decorated refinement of mined group templates "
      "(precision target 0.95)");
  std::printf("  %-44s %6s %10s %10s %8s\n", "template", "depth", "precision",
              "recall", "meets");
  MetricsEvaluator evaluator(&db, "EvalLog");
  size_t met = 0;
  std::map<int, int> depth_histogram;
  for (size_t i = 0; i < refined.size(); ++i) {
    const RefinedTemplate& r = refined[i];
    PrecisionRecall before = Unwrap(evaluator.Evaluate(
        {group_templates[i]}, eval.real_lids, eval.fake_lids,
        eval.real_lids));
    std::printf("  %-44s %6s %10.3f %10.3f %8s   (undecorated: p=%.3f r=%.3f)\n",
                group_templates[i].name().c_str(),
                r.chosen_depth ? std::to_string(*r.chosen_depth).c_str()
                               : "-",
                r.validation.Precision(), r.validation.Recall(),
                r.meets_target ? "yes" : "NO", before.Precision(),
                before.Recall());
    if (r.meets_target) ++met;
    if (r.chosen_depth) depth_histogram[*r.chosen_depth]++;
  }
  std::printf("\n  %zu/%zu group templates meet the 0.95 precision target "
              "after refinement\n",
              met, refined.size());
  if (!depth_histogram.empty()) {
    std::printf("  chosen depths:");
    for (const auto& [depth, count] : depth_histogram) {
      std::printf("  d%d x%d", depth, count);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
