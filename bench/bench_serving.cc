// bench_serving: load generator for the auditing server. Drives the framed
// wire protocol — append batches onto the single ingest thread, per-access
// Explain and incremental ExplainNew fan-out on reader connections — and
// reports sustained request throughput with p50/p99 latencies.
//
//   ./bench_serving [--smoke] [--connect=HOST:PORT] [--token=SECRET]
//                   [--scale=tiny|small|paper] [--seed=N] [--clients=N]
//                   [--requests=N] [--json[=PATH]]   (default PATH
//                                                     BENCH_serving.json)
//
// Without --connect the bench self-hosts: it starts an in-process
// AuditServer on a TCP loopback port (falling back to the in-memory
// transport when the sandbox forbids sockets) and drives it over real
// connections. With --connect it drives an external serve_auditor started
// with the SAME --scale/--seed/--token — database generation is
// deterministic, so the bench can rebuild the server's exact state locally.
//
// Either way the bench maintains an in-process twin auditor fed the same
// appends, and checks that the served ExplainNew report payload and a
// sample of per-access Explain responses are byte-identical to locally
// encoded twin results. The booleans land in the JSON as
// *_byte_identical leaves, which compare_bench.py gates (must stay true),
// and a mismatch also fails the process — the self-check doubles as the CI
// guard. Note the check assumes a FRESH server: rerunning against one that
// already absorbed appends diverges by construction.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_machine.h"
#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/random.h"
#include "core/ingest.h"
#include "log/access_log.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"

using namespace eba;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> s, const char* what) {
  Check(s.status(), what);
  return std::move(s).value();
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double>& ms, double q) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const size_t idx = static_cast<size_t>(q * (ms.size() - 1) + 0.5);
  return ms[std::min(idx, ms.size() - 1)];
}

/// Appends with bounded retry on admission-control rejections.
void AppendWithRetry(AuditClient* client, const std::vector<Row>& rows) {
  Status s = client->AppendAccessBatch(rows);
  for (int attempt = 0; AuditClient::IsRetryableBusy(s) && attempt < 1000;
       ++attempt) {
    std::this_thread::yield();
    s = client->AppendAccessBatch(rows);
  }
  Check(s, "append batch");
}

struct BenchConfig {
  bool smoke = false;
  std::string connect_host;  // empty: self-host
  int connect_port = 0;
  std::string token;
  std::string scale = "small";
  uint64_t seed = 0;
  bool seed_set = false;
  size_t clients = 4;
  size_t requests_per_client = 2000;
};

/// The deterministic serving fixture — must mirror serve_auditor exactly:
/// generate from --scale/--seed, seed LogStream with days 1-2, handcrafted
/// templates. `backlog` holds the not-yet-streamed log rows in order.
struct Fixture {
  CareWebData data;
  std::vector<Row> backlog;
  std::vector<ExplanationTemplate> templates;
};

Fixture MakeFixture(const BenchConfig& config) {
  CareWebConfig careweb;
  if (config.scale == "tiny") {
    careweb = CareWebConfig::Tiny();
  } else if (config.scale == "small") {
    careweb = CareWebConfig::Small();
  } else {
    careweb = CareWebConfig::PaperShaped();
  }
  if (config.seed_set) careweb.seed = config.seed;

  Fixture f;
  f.data = Unwrap(GenerateCareWeb(careweb), "generate");
  const Table* log = Unwrap(f.data.db.GetTable("Log"), "log table");
  AccessLog source = Unwrap(AccessLog::Wrap(log), "wrap log");
  (void)Unwrap(AddLogSlice(&f.data.db, "Log", "LogStream", 1, 2,
                           /*first_only=*/false),
               "log slice");
  std::vector<size_t> seeded = source.RowsInDayRange(1, 2);
  std::sort(seeded.begin(), seeded.end());
  for (size_t r = 0; r < log->num_rows(); ++r) {
    if (!std::binary_search(seeded.begin(), seeded.end(), r)) {
      f.backlog.push_back(log->GetRow(r));
    }
  }
  f.templates = Unwrap(TemplatesHandcraftedDirect(f.data.db, true),
                       "templates");
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  bool write_json = false;
  std::string json_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      const std::string hostport = argv[i] + 10;
      const size_t colon = hostport.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect needs HOST:PORT\n");
        return 2;
      }
      config.connect_host = hostport.substr(0, colon);
      config.connect_port = std::atoi(hostport.c_str() + colon + 1);
    } else if (std::strncmp(argv[i], "--token=", 8) == 0) {
      config.token = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      config.scale = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      config.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      config.seed_set = true;
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      config.clients = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      config.requests_per_client =
          static_cast<size_t>(std::atoi(argv[i] + 11));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      write_json = true;
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (config.smoke) {
    config.scale = config.scale == "small" ? "tiny" : config.scale;
    config.clients = std::min<size_t>(config.clients, 2);
    config.requests_per_client =
        std::min<size_t>(config.requests_per_client, 100);
  }

  Fixture fixture = MakeFixture(config);

  // The twin: the in-process ground truth every served response is
  // compared against.
  Fixture twin_fixture = MakeFixture(config);
  StreamingAuditor twin = Unwrap(
      StreamingAuditor::Create(&twin_fixture.data.db, "LogStream"), "twin");
  for (const auto& t : twin_fixture.templates) {
    Check(twin.AddTemplate(t), "twin template");
  }

  // Self-host unless --connect: TCP loopback, in-memory fallback.
  std::unique_ptr<StreamingAuditor> own_auditor;
  std::unique_ptr<AuditServer> own_server;
  std::unique_ptr<NetEnv> inmemory;
  NetEnv* net = RealNetEnv();
  std::string host = config.connect_host;
  int port = config.connect_port;
  std::string transport = "tcp";
  if (config.connect_host.empty()) {
    own_auditor = std::make_unique<StreamingAuditor>(Unwrap(
        StreamingAuditor::Create(&fixture.data.db, "LogStream"), "auditor"));
    for (const auto& t : fixture.templates) {
      Check(own_auditor->AddTemplate(t), "template");
    }
    ServerOptions options;
    options.auth_token = config.token;
    StatusOr<std::unique_ptr<AuditServer>> started =
        AuditServer::Start(own_auditor.get(), options);
    if (!started.ok()) {
      inmemory = NewInMemoryNetEnv();
      options.net = inmemory.get();
      net = inmemory.get();
      transport = "inmemory";
      started = AuditServer::Start(own_auditor.get(), options);
    }
    own_server = Unwrap(std::move(started), "start server");
    host = "127.0.0.1";
    port = own_server->port();
  }
  auto connect = [&] {
    return Unwrap(AuditClient::Connect(net, host, port, config.token),
                  "connect");
  };

  // --- Phase 1: byte equivalence. Stream a few batches through the wire
  // and through the twin; every served ExplainNew payload must equal the
  // locally encoded twin report.
  auto client = connect();
  bool report_identical = true;
  bool explains_identical = true;
  size_t pos = 0;
  const size_t kEquivBatch = 16;
  for (int round = 0; round < 3 && pos < fixture.backlog.size(); ++round) {
    std::vector<Row> rows;
    for (size_t i = 0; i < kEquivBatch && pos < fixture.backlog.size();
         ++i) {
      rows.push_back(fixture.backlog[pos++]);
    }
    AppendWithRetry(client.get(), rows);
    Check(twin.AppendAccessBatch(rows), "twin append");
    const std::string served =
        Unwrap(client->ExplainNewRaw(), "served explain-new");
    const std::string local = EncodeStreamingReport(
        Unwrap(twin.ExplainNew(StreamingOptions()), "twin explain-new"));
    if (served != local) report_identical = false;
  }

  // Sample of per-access explains, byte-compared through the same codec.
  const Table* stream = Unwrap(
      static_cast<const Database&>(twin_fixture.data.db).GetTable(
          "LogStream"),
      "twin stream");
  AccessLog stream_log = Unwrap(AccessLog::Wrap(stream), "wrap stream");
  std::vector<int64_t> lids;
  for (size_t r = 0; r < stream->num_rows(); ++r) {
    lids.push_back(stream_log.Get(r).lid);
  }
  Random sampler(config.seed_set ? config.seed : 42);
  const size_t kExplainSample = std::min<size_t>(lids.size(), 64);
  for (size_t i = 0; i < kExplainSample; ++i) {
    const int64_t lid = lids[sampler.Uniform(lids.size())];
    const ExplainResult served = Unwrap(client->Explain(lid), "explain");
    const auto instances = Unwrap(twin.engine().Explain(lid), "twin explain");
    ExplainResult local;
    local.explained = !instances.empty();
    for (const auto& instance : instances) {
      local.template_names.push_back(instance.tmpl().name());
    }
    if (EncodeExplainResult(served) != EncodeExplainResult(local)) {
      explains_identical = false;
    }
  }

  // --- Phase 2: load. Reader connections hammer per-access Explain (and a
  // slice of ExplainNew / Report), one appender streams further backlog
  // through the single-writer ingest path.
  std::vector<std::vector<double>> explain_ms(config.clients);
  std::vector<double> explain_new_ms;
  size_t append_rows = 0;
  const auto load_start = std::chrono::steady_clock::now();

  std::thread appender([&] {
    auto append_client = connect();
    const size_t kLoadBatch = 32;
    const size_t max_batches = config.smoke ? 8 : 64;
    for (size_t b = 0; b < max_batches && pos < fixture.backlog.size();
         ++b) {
      std::vector<Row> rows;
      for (size_t i = 0; i < kLoadBatch && pos < fixture.backlog.size();
           ++i) {
        rows.push_back(fixture.backlog[pos++]);
      }
      AppendWithRetry(append_client.get(), rows);
      append_rows += rows.size();
    }
  });
  std::thread audit_reader([&] {
    auto audit_client = connect();
    const size_t n = config.smoke ? 5 : 20;
    for (size_t i = 0; i < n; ++i) {
      const auto start = std::chrono::steady_clock::now();
      (void)Unwrap(audit_client->ExplainNew(), "load explain-new");
      explain_new_ms.push_back(MsSince(start));
    }
  });
  std::vector<std::thread> readers;
  for (size_t t = 0; t < config.clients; ++t) {
    readers.emplace_back([&, t] {
      auto reader_client = connect();
      Random rng((config.seed_set ? config.seed : 42) + 1 + t);
      explain_ms[t].reserve(config.requests_per_client);
      for (size_t i = 0; i < config.requests_per_client; ++i) {
        const int64_t lid = lids[rng.Uniform(lids.size())];
        const auto start = std::chrono::steady_clock::now();
        (void)Unwrap(reader_client->Explain(lid), "load explain");
        explain_ms[t].push_back(MsSince(start));
      }
    });
  }
  appender.join();
  audit_reader.join();
  for (auto& r : readers) r.join();
  const double load_seconds = MsSince(load_start) / 1000.0;

  std::vector<double> all_explain_ms;
  for (const auto& per_thread : explain_ms) {
    all_explain_ms.insert(all_explain_ms.end(), per_thread.begin(),
                          per_thread.end());
  }
  const size_t total_requests = all_explain_ms.size() +
                                explain_new_ms.size() +
                                (append_rows + 31) / 32;
  const double requests_per_second =
      load_seconds > 0 ? total_requests / load_seconds : 0.0;
  const double explain_p50 = Percentile(all_explain_ms, 0.50);
  const double explain_p99 = Percentile(all_explain_ms, 0.99);
  const double explain_new_p50 = Percentile(explain_new_ms, 0.50);
  const double explain_new_p99 = Percentile(explain_new_ms, 0.99);

  const ServerReport counters = Unwrap(client->Report(), "report");

  std::printf("serving (%s, %s): %zu reader clients x %zu explains, %zu "
              "explain-new audits, %zu appended rows\n",
              transport.c_str(), config.scale.c_str(), config.clients,
              config.requests_per_client, explain_new_ms.size(),
              append_rows);
  std::printf("throughput         : %.0f req/s over %.3f s\n",
              requests_per_second, load_seconds);
  std::printf("explain latency    : p50 %.3f ms, p99 %.3f ms\n", explain_p50,
              explain_p99);
  std::printf("explain-new latency: p50 %.3f ms, p99 %.3f ms\n",
              explain_new_p50, explain_new_p99);
  std::printf("admission control  : %llu retryable busy rejections\n",
              static_cast<unsigned long long>(counters.appends_rejected_busy));
  std::printf("byte equivalence   : report %s, per-access explains %s\n",
              report_identical ? "identical" : "DIVERGES",
              explains_identical ? "identical" : "DIVERGES");

  if (write_json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"generated_by\": \"bench_serving\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", config.smoke ? "true" : "false");
    bench::WriteMachineJson(f, "  ");
    std::fprintf(f, "  \"benchmarks\": {\n");
    std::fprintf(f, "    \"serving\": {\n");
    std::fprintf(f, "      \"transport\": \"%s\",\n", transport.c_str());
    std::fprintf(f, "      \"reader_clients\": %zu,\n", config.clients);
    std::fprintf(f, "      \"requests_per_second\": %.1f,\n",
                 requests_per_second);
    std::fprintf(f, "      \"explain_p50_ms\": %.4f,\n", explain_p50);
    std::fprintf(f, "      \"explain_p99_ms\": %.4f,\n", explain_p99);
    std::fprintf(f, "      \"explain_new_p50_ms\": %.4f,\n", explain_new_p50);
    std::fprintf(f, "      \"explain_new_p99_ms\": %.4f,\n", explain_new_p99);
    std::fprintf(f, "      \"appended_rows\": %zu,\n", append_rows);
    std::fprintf(f, "      \"appends_rejected_busy\": %llu,\n",
                 static_cast<unsigned long long>(
                     counters.appends_rejected_busy));
    std::fprintf(f, "      \"served_report_byte_identical\": %s,\n",
                 report_identical ? "true" : "false");
    std::fprintf(f, "      \"served_explains_byte_identical\": %s\n",
                 explains_identical ? "true" : "false");
    std::fprintf(f, "    }\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!report_identical || !explains_identical) {
    std::fprintf(stderr,
                 "FAIL: served responses diverge from the in-process twin\n");
    return 1;
  }
  return 0;
}
