// Regenerates Figures 10 and 11: the department-code composition of two
// top-level collaborative groups discovered by the §4.1 clustering.
//
// Paper shape: top-level groups correspond to real organizational units
// (Cancer Center, Psychiatric Care); each group mixes several department
// codes (physicians + nursing + shared services such as Medical Students),
// demonstrating that department codes alone do not capture collaboration.

#include <algorithm>
#include <map>

#include "bench/bench_util.h"

namespace eba {
namespace {

using bench::Unwrap;

/// Department-code histogram of a group.
std::map<std::string, int> DeptHistogram(const Database& db,
                                         const GroupNode& group) {
  const Table* users = Unwrap(db.GetTable("Users"));
  const HashIndex& uid_index = users->GetOrBuildIndex(0);
  std::map<std::string, int> hist;
  for (int64_t uid : group.users) {
    for (uint32_t row : uid_index.LookupInt64(uid)) {
      hist[users->Get(row, 2).AsString()]++;
    }
  }
  return hist;
}

void PrintGroupComposition(const Database& db, const GroupNode& group,
                           const std::string& title) {
  bench::PrintTitle(title);
  std::printf("  group id %lld, %zu members\n",
              static_cast<long long>(group.group_id), group.users.size());
  auto hist = DeptHistogram(db, group);
  std::vector<std::pair<std::string, int>> sorted(hist.begin(), hist.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  double total = static_cast<double>(group.users.size());
  int shown = 0;
  int other = 0;
  for (const auto& [dept, count] : sorted) {
    if (shown < 9) {
      bench::PrintBar(dept, static_cast<double>(count) / total);
      ++shown;
    } else {
      other += count;
    }
  }
  if (other > 0) {
    bench::PrintBar("Other", static_cast<double>(other) / total);
  }
}

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  // Train collaborative groups on the first six days (§5.3.2).
  GroupHierarchy hierarchy = Unwrap(BuildGroupsFromDays(
      &db, "Log", 1, config.num_days - 1, "Groups", HierarchyOptions{}));
  auto top_level = hierarchy.GroupsAtDepth(1);
  std::printf("top-level collaborative groups found: %zu (paper: 33)\n",
              top_level.size());

  // Select the groups that best overlap the ground-truth Cancer Center and
  // Psychiatric Care teams (the paper hand-picked these two for display).
  auto best_group_for = [&](const std::string& team_name) -> const GroupNode* {
    const CareWebGroundTruth::Team* team = nullptr;
    for (const auto& t : data.truth.teams) {
      if (t.name == team_name) team = &t;
    }
    if (team == nullptr) return nullptr;
    const GroupNode* best = nullptr;
    size_t best_overlap = 0;
    for (const GroupNode* g : top_level) {
      size_t overlap = 0;
      for (int64_t u : team->members) {
        if (std::find(g->users.begin(), g->users.end(), u) != g->users.end()) {
          ++overlap;
        }
      }
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best = g;
      }
    }
    return best;
  };

  const GroupNode* cancer = best_group_for("Cancer Center");
  const GroupNode* psych = best_group_for("Psychiatric Care");
  if (cancer != nullptr) {
    PrintGroupComposition(
        db, *cancer, "Figure 10: Collaborative Group I (Cancer Center)");
  }
  if (psych != nullptr) {
    PrintGroupComposition(
        db, *psych, "Figure 11: Collaborative Group II (Psychiatric Care)");
  }

  // Ground-truth check unavailable to the paper's authors: how well do the
  // discovered groups recover the generator's teams?
  bench::PrintTitle("Ground-truth team recovery (synthetic-only diagnostic)");
  size_t same = 0, total_pairs = 0;
  for (const auto& team : data.truth.teams) {
    for (size_t i = 0; i < team.members.size(); ++i) {
      for (size_t j = i + 1; j < team.members.size(); ++j) {
        const GroupNode* gi = hierarchy.GroupOf(team.members[i], 1);
        const GroupNode* gj = hierarchy.GroupOf(team.members[j], 1);
        if (gi == nullptr || gj == nullptr) continue;
        ++total_pairs;
        if (gi->group_id == gj->group_id) ++same;
      }
    }
  }
  std::printf("  same-team user pairs clustered together: %.1f%% (%zu/%zu)\n",
              total_pairs ? 100.0 * static_cast<double>(same) /
                                static_cast<double>(total_pairs)
                          : 0.0,
              same, total_pairs);
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
