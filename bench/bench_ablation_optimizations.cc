// Ablation A2 (DESIGN.md decision 3/4): the three §3.2.1 mining
// optimizations toggled individually — support caching, the dedup-frontier
// evaluation strategy, and skipping non-selective paths — plus everything
// off. The paper notes the optimizations save "many hours" at full scale;
// at our scale the relative ordering is what matters. Every configuration
// must mine the identical template set.

#include <chrono>
#include <set>

#include "bench/bench_util.h"
#include "core/miner.h"

namespace eba {
namespace {

using bench::Unwrap;
using Clock = std::chrono::steady_clock;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv, "small");
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, config.num_days - 1,
                                   "Groups", HierarchyOptions{}));
  LogSlice train = Unwrap(
      AddLogSlice(&db, "Log", "TrainFirst", 1, config.num_days - 1, true));
  std::printf("mining log: %s first accesses\n",
              FormatCount(static_cast<int64_t>(train.lids.size())).c_str());

  MinerOptions base;
  base.log_table = "TrainFirst";
  base.support_fraction = 0.01;
  base.max_length = 5;
  base.max_tables = 3;
  base.excluded_tables = ExcludedLogsFor(db, "TrainFirst");

  struct Config {
    const char* name;
    bool cache;
    bool skip;
    Executor::SupportStrategy strategy;
  };
  const Config configs[] = {
      {"all-on", true, true, Executor::SupportStrategy::kDedupFrontier},
      {"no-cache", false, true, Executor::SupportStrategy::kDedupFrontier},
      {"no-skip", true, false, Executor::SupportStrategy::kDedupFrontier},
      {"naive-eval", true, true, Executor::SupportStrategy::kNaive},
      {"all-off", false, false, Executor::SupportStrategy::kNaive},
  };

  bench::PrintTitle(
      "Ablation: two-way mining with optimizations toggled (two-way is\n"
      "  used because its forward/backward duplicate discoveries exercise\n"
      "  the support cache)");
  std::printf("  %-12s %10s %10s %10s %10s %10s\n", "config", "time(s)",
              "templates", "queries", "cachehits", "skipped");

  std::set<std::string> base_keys;
  bool all_equal = true;
  for (const Config& c : configs) {
    MinerOptions options = base;
    options.cache_support = c.cache;
    options.skip_nonselective = c.skip;
    options.support_strategy = c.strategy;
    auto start = Clock::now();
    MiningResult result =
        Unwrap(TemplateMiner(&db, options).MineTwoWay(), c.name);
    double seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                         Clock::now() - start)
                         .count();
    std::printf("  %-12s %10.3f %10zu %10zu %10zu %10zu\n", c.name, seconds,
                result.templates.size(), result.stats.support_queries,
                result.stats.support_cache_hits, result.stats.skipped_paths);

    std::set<std::string> keys;
    for (const auto& m : result.templates) {
      keys.insert(Unwrap(m.tmpl.CanonicalKey(db)));
    }
    if (base_keys.empty()) {
      base_keys = std::move(keys);
    } else if (keys != base_keys) {
      all_equal = false;
    }
  }
  std::printf("\n  all configurations mined the same template set: %s\n",
              all_equal ? "YES" : "NO (BUG)");
  return all_equal ? 0 : 1;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
