#!/usr/bin/env python3
"""Self-test for compare_bench.py.

Drives the gate binary-style (subprocess, real files) against generated
good/bad fixture JSONs and asserts the exit statuses the CI job depends on:
0 on within-threshold runs, 1 on regressions/missing metrics, and 2 — with
a readable diagnostic, never a traceback — on malformed or missing inputs.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "compare_bench.py")


def good_bench(speedup=6.0, hit_rate=0.95, matches=True,
               wal_throughput=0.45, serving_throughput=0.92,
               recovery_speedup=40.0, recovered_matches=True,
               concurrent_throughput=0.9, concurrent_matches=True,
               report_identical=True, explains_identical=True,
               num_cores=4):
    return {
        "generated_by": "bench_micro --executor_json",
        "smoke": False,
        "machine": {
            "num_cores": num_cores,
            "cpu_model": "fixture",
            "build_type": "release",
        },
        "benchmarks": {
            "BM_ExecutorJoin": {
                "boxed_reference_seconds_per_iter": 0.007,
                "speedup_late_cost_vs_boxed": speedup,
            },
            "streaming": {
                "plan_cache_hit_rate": hit_rate,
                "matches_full_explain_all": matches,
                "concurrent_ingest": {
                    "concurrent_append_relative_throughput":
                        concurrent_throughput,
                    "matches_full_explain_all": concurrent_matches,
                },
            },
            "durability": {
                "wal_append_relative_throughput": wal_throughput,
                "durable_serving_relative_throughput": serving_throughput,
                "recovery_speedup_vs_full_reaudit": recovery_speedup,
                "recovered_matches_full_explain_all": recovered_matches,
            },
            "serving": {
                "requests_per_second": 31000.0,
                "explain_p99_ms": 0.4,
                "served_report_byte_identical": report_identical,
                "served_explains_byte_identical": explains_identical,
            },
        },
    }


class GateFixture(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def path(self, name):
        return os.path.join(self.tmp.name, name)

    def write_json(self, name, payload):
        path = self.path(name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def write_raw(self, name, text):
        path = self.path(name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def run_gate(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, GATE, baseline, current, *extra],
            capture_output=True, text=True)

    def assert_no_traceback(self, result):
        self.assertNotIn("Traceback", result.stderr, result.stderr)
        self.assertNotIn("Traceback", result.stdout, result.stdout)


class GoodInputs(GateFixture):
    def test_identical_files_pass(self):
        base = self.write_json("base.json", good_bench())
        cur = self.write_json("cur.json", good_bench())
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_within_threshold_passes(self):
        base = self.write_json("base.json", good_bench(speedup=6.0))
        cur = self.write_json("cur.json", good_bench(speedup=5.0))
        result = self.run_gate(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_regression_fails(self):
        base = self.write_json("base.json", good_bench(speedup=6.0))
        cur = self.write_json("cur.json", good_bench(speedup=2.0))
        result = self.run_gate(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_hit_rate_floor_fails(self):
        base = self.write_json("base.json", good_bench(hit_rate=0.95))
        cur = self.write_json("cur.json", good_bench(hit_rate=0.5))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_equivalence_flag_flip_fails(self):
        base = self.write_json("base.json", good_bench(matches=True))
        cur = self.write_json("cur.json", good_bench(matches=False))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_served_byte_identity_flip_fails(self):
        # The serving bench's served-vs-in-process booleans gate like the
        # other equivalence flags: any flip to false is a hard failure.
        for flag in ("report_identical", "explains_identical"):
            base = self.write_json("base.json", good_bench())
            cur = self.write_json("cur.json", good_bench(**{flag: False}))
            result = self.run_gate(base, cur)
            self.assertEqual(result.returncode, 1,
                             flag + ": " + result.stdout + result.stderr)
            self.assertIn("byte_identical", result.stdout)

    def test_serving_latency_metrics_are_not_gated(self):
        # Absolute req/s and latency numbers are machine-dependent: an
        # arbitrarily slower current run must not fail the gate.
        base = self.write_json("base.json", good_bench())
        slow = good_bench()
        slow["benchmarks"]["serving"]["requests_per_second"] = 10.0
        slow["benchmarks"]["serving"]["explain_p99_ms"] = 900.0
        cur = self.write_json("cur.json", slow)
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_serving_overhead_ceiling_fails(self):
        # Absolute floor: with the WAL enabled the serving loop (append +
        # audit) must keep >= 75% of its no-WAL throughput even when the
        # baseline itself was already slow.
        base = self.write_json("base.json",
                               good_bench(serving_throughput=0.80))
        cur = self.write_json("cur.json",
                              good_bench(serving_throughput=0.60))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("durable_serving_relative_throughput",
                      result.stdout + result.stderr)

    def test_wal_append_tripwire_fails(self):
        # The raw-append ratio sits near 0.5 by construction; a drop to 0.25
        # means a structural regression (fsync per row, quadratic re-encode)
        # and must trip the absolute floor.
        base = self.write_json("base.json", good_bench(wal_throughput=0.45))
        cur = self.write_json("cur.json", good_bench(wal_throughput=0.25))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("wal_append_relative_throughput",
                      result.stdout + result.stderr)

    def test_wal_append_ratio_gates_absolute_only(self):
        # The raw-append ratio swings with scheduler noise (two
        # sub-millisecond timings); a 0.71 -> 0.40 drop is well over the
        # relative threshold but still above the 0.35 structural tripwire
        # and must pass.
        base = self.write_json("base.json", good_bench(wal_throughput=0.71))
        cur = self.write_json("cur.json", good_bench(wal_throughput=0.40))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_recovery_speedup_is_saturated_not_relative(self):
        # 400x -> 12x is a huge relative drop but still above the 10x
        # absolute floor: saturated metrics must not fail the relative gate.
        base = self.write_json("base.json",
                               good_bench(recovery_speedup=400.0))
        cur = self.write_json("cur.json", good_bench(recovery_speedup=12.0))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_recovery_speedup_floor_fails(self):
        base = self.write_json("base.json", good_bench(recovery_speedup=40.0))
        cur = self.write_json("cur.json", good_bench(recovery_speedup=3.0))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("recovery_speedup_vs_full_reaudit",
                      result.stdout + result.stderr)

    def test_recovered_equivalence_flag_flip_fails(self):
        base = self.write_json("base.json", good_bench())
        cur = self.write_json("cur.json", good_bench(recovered_matches=False))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_concurrent_ingest_floor_fails_on_multicore(self):
        # 0.2x means the writer is serialized behind audits; on a machine
        # with enough cores for the writer and readers to truly overlap the
        # 0.5 absolute floor must trip.
        base = self.write_json("base.json",
                               good_bench(concurrent_throughput=0.9))
        cur = self.write_json("cur.json",
                              good_bench(concurrent_throughput=0.2))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("concurrent_append_relative_throughput",
                      result.stdout + result.stderr)

    def test_concurrent_ingest_gates_absolute_only(self):
        # Like the WAL raw-append ratio: a big relative swing that stays
        # above the absolute floor is scheduler noise, not a regression.
        base = self.write_json("base.json",
                               good_bench(concurrent_throughput=0.98))
        cur = self.write_json("cur.json",
                              good_bench(concurrent_throughput=0.55))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_concurrent_ingest_floor_warns_on_single_core(self):
        # On one core the writer time-shares the CPU with the busy readers
        # (~0.3x fair share), so the floor downgrades to a warning — for the
        # concurrency ratio only; everything else still gates.
        base = self.write_json("base.json",
                               good_bench(concurrent_throughput=0.9,
                                          num_cores=1))
        cur = self.write_json("cur.json",
                              good_bench(concurrent_throughput=0.26,
                                         num_cores=1))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("warn(cores)", result.stdout)
        self.assertIn("needs >= 2 cores", result.stdout)

    def test_concurrent_equivalence_stays_hard_on_single_core(self):
        base = self.write_json("base.json", good_bench(num_cores=1))
        cur = self.write_json("cur.json",
                              good_bench(concurrent_matches=False,
                                         num_cores=1))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_missing_gated_metric_fails(self):
        base = self.write_json("base.json", good_bench())
        trimmed = good_bench()
        del trimmed["benchmarks"]["BM_ExecutorJoin"]
        cur = self.write_json("cur.json", trimmed)
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("missing in current", result.stdout + result.stderr)


class CoreCountMismatch(GateFixture):
    """Baseline and candidate from machines with different core counts:
    relative gates downgrade to warnings, machine-independent acceptance
    criteria (absolute floors, equivalence booleans) stay hard."""

    def test_speedup_regression_warns_instead_of_failing(self):
        base = self.write_json("base.json",
                               good_bench(speedup=6.0, num_cores=4))
        cur = self.write_json("cur.json",
                              good_bench(speedup=2.0, num_cores=1))
        result = self.run_gate(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("warn(cores)", result.stdout)
        self.assertIn("downgraded to warnings", result.stdout)

    def test_same_core_count_still_fails(self):
        base = self.write_json("base.json",
                               good_bench(speedup=6.0, num_cores=4))
        cur = self.write_json("cur.json",
                              good_bench(speedup=2.0, num_cores=4))
        result = self.run_gate(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_absolute_floor_stays_hard_across_machines(self):
        # plan_cache_hit_rate has both a relative gate and the 0.9 absolute
        # floor; the mismatch drops the relative part only.
        base = self.write_json("base.json",
                               good_bench(hit_rate=0.95, num_cores=4))
        cur = self.write_json("cur.json",
                              good_bench(hit_rate=0.5, num_cores=1))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("plan_cache_hit_rate", result.stdout + result.stderr)

    def test_equivalence_flag_stays_hard_across_machines(self):
        base = self.write_json("base.json", good_bench(num_cores=4))
        cur = self.write_json("cur.json",
                              good_bench(matches=False, num_cores=1))
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_legacy_baseline_without_machine_block_gates_normally(self):
        legacy = good_bench(speedup=6.0)
        del legacy["machine"]
        base = self.write_json("base.json", legacy)
        cur = self.write_json("cur.json",
                              good_bench(speedup=2.0, num_cores=1))
        result = self.run_gate(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)


class BadInputs(GateFixture):
    def test_missing_baseline_is_usage_error(self):
        cur = self.write_json("cur.json", good_bench())
        result = self.run_gate(self.path("absent.json"), cur)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("baseline file not found", result.stderr)
        self.assert_no_traceback(result)

    def test_missing_current_is_usage_error(self):
        base = self.write_json("base.json", good_bench())
        result = self.run_gate(base, self.path("absent.json"))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("current file not found", result.stderr)
        self.assert_no_traceback(result)

    def test_truncated_json_is_usage_error(self):
        base = self.write_json("base.json", good_bench())
        cur = self.write_raw("cur.json", '{"benchmarks": {"x": 1.0')
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("not valid JSON", result.stderr)
        self.assert_no_traceback(result)

    def test_non_object_json_is_usage_error(self):
        base = self.write_json("base.json", good_bench())
        cur = self.write_json("cur.json", [1, 2, 3])
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("JSON object", result.stderr)
        self.assert_no_traceback(result)

    def test_missing_benchmarks_key_is_usage_error(self):
        base = self.write_json("base.json", good_bench())
        cur = self.write_json("cur.json", {"smoke": False})
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("'benchmarks'", result.stderr)
        self.assert_no_traceback(result)

    def test_type_mismatch_on_gated_leaf_fails_cleanly(self):
        base = self.write_json("base.json", good_bench())
        bad = good_bench()
        bad["benchmarks"]["streaming"]["plan_cache_hit_rate"] = True
        cur = self.write_json("cur.json", bad)
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("type mismatch", result.stdout + result.stderr)
        self.assert_no_traceback(result)

    def test_baseline_with_no_gated_metrics_fails(self):
        base = self.write_json(
            "base.json",
            {"benchmarks": {"x": {"seconds_per_iter": 0.1}}})
        cur = self.write_json("cur.json", good_bench())
        result = self.run_gate(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("no gated metrics", result.stderr)


if __name__ == "__main__":
    unittest.main()
