// Regenerates Figure 13: cumulative mining run time by explanation length
// for the One-Way, Two-Way and Bridge-2/3/4 algorithms (data sets A & B,
// log days 1-6 first accesses, T = 3, s = 1%, M = 5, with collaborative
// groups and the identifier mapping table).
//
// Paper shapes: Bridge-2 is the most efficient (start/end constraints are
// pushed down earliest); One-Way beats Two-Way (the two-way algorithm
// considers more initial edges); all algorithms mine the SAME template set.

#include <algorithm>
#include <set>

#include "bench/bench_util.h"
#include "core/miner.h"

namespace eba {
namespace {

using bench::Unwrap;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, config.num_days - 1,
                                   "Groups", HierarchyOptions{}));
  LogSlice train = Unwrap(
      AddLogSlice(&db, "Log", "TrainFirst", 1, config.num_days - 1, true));
  std::printf("mining log: %s first accesses (days 1-%d), T=3, s=1%%, M=5\n",
              FormatCount(static_cast<int64_t>(train.lids.size())).c_str(),
              config.num_days - 1);

  MinerOptions options;
  options.log_table = "TrainFirst";
  options.support_fraction = 0.01;
  options.max_length = 5;
  options.max_tables = 3;
  options.excluded_tables = ExcludedLogsFor(db, "TrainFirst");

  struct Algo {
    const char* name;
    StatusOr<MiningResult> (*run)(const TemplateMiner&);
  };
  const Algo algos[] = {
      {"One-Way",
       [](const TemplateMiner& m) { return m.MineOneWay(); }},
      {"Two-Way",
       [](const TemplateMiner& m) { return m.MineTwoWay(); }},
      {"Bridge-2",
       [](const TemplateMiner& m) { return m.MineBridged(2); }},
      {"Bridge-3",
       [](const TemplateMiner& m) { return m.MineBridged(3); }},
      {"Bridge-4",
       [](const TemplateMiner& m) { return m.MineBridged(4); }},
  };

  // Warm-up: build the lazy hash indexes and statistics once so the first
  // timed algorithm is not charged for them.
  {
    MinerOptions warm = options;
    warm.max_length = 2;
    (void)Unwrap(TemplateMiner(&db, warm).MineOneWay(), "warm-up");
  }

  auto run_series = [&](const MinerOptions& opts,
                        const char* title) -> std::vector<MiningResult> {
    TemplateMiner miner(&db, opts);
    std::vector<MiningResult> results;
    for (const Algo& algo : algos) {
      results.push_back(Unwrap(algo.run(miner), algo.name));
    }
    bench::PrintTitle(title);
    std::printf("  %-10s", "length");
    for (const Algo& algo : algos) std::printf(" %10s", algo.name);
    std::printf("\n");
    for (int length = 1; length <= opts.max_length; ++length) {
      std::printf("  %-10d", length);
      for (const auto& result : results) {
        double cumulative = 0;
        for (const auto& timing : result.stats.timings) {
          if (timing.length == length) cumulative = timing.cumulative_seconds;
        }
        std::printf(" %10.3f", cumulative);
      }
      std::printf("\n");
    }
    std::printf("\n  %-10s %10s %10s %10s %10s %10s\n", "algo", "templates",
                "queries", "cachehits", "skipped", "candidates");
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("  %-10s %10zu %10zu %10zu %10zu %10zu\n", algos[i].name,
                  results[i].templates.size(),
                  results[i].stats.support_queries,
                  results[i].stats.support_cache_hits,
                  results[i].stats.skipped_paths,
                  results[i].stats.candidates_considered);
    }
    return results;
  };

  // Headline series: all §3.2.1 optimizations on (the paper's setup). Note
  // that our cardinality estimator skips partial-path support queries very
  // effectively, which flattens the per-algorithm differences the paper
  // observed — the candidate counts still show the ordering.
  std::vector<MiningResult> results = run_series(
      options,
      "Figure 13: cumulative mining run time (s) by length "
      "(all optimizations)");

  // Second series with the skip optimization disabled: every supported
  // partial path pays a real support query, which is the workload regime of
  // the paper's Figure 13 (their estimator skipped less aggressively); the
  // Bridge-2 < One-Way < Two-Way ordering emerges in wall-clock time.
  // Capped at M=4: the ordering is established by then, and unskipped
  // length-5 partial paths dominate the cost without adding information.
  MinerOptions no_skip = options;
  no_skip.skip_nonselective = false;
  no_skip.max_length = std::min(options.max_length, 4);
  (void)run_series(no_skip,
                   "Figure 13 (b): cumulative run time (s), skip-nonselective "
                   "disabled, M=4");

  // All algorithms must produce the same template set (§5.3.3).
  std::set<std::string> base;
  for (const auto& mined : results[0].templates) {
    base.insert(Unwrap(mined.tmpl.CanonicalKey(db)));
  }
  bool all_equal = true;
  for (size_t i = 1; i < results.size(); ++i) {
    std::set<std::string> keys;
    for (const auto& mined : results[i].templates) {
      keys.insert(Unwrap(mined.tmpl.CanonicalKey(db)));
    }
    if (keys != base) all_equal = false;
  }
  std::printf("\n  all algorithms produced the same template set: %s\n",
              all_equal ? "YES (as in the paper)" : "NO (BUG)");
  return all_equal ? 0 : 1;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
