// Regenerates Figure 8 (frequency of events for FIRST accesses) and
// Figure 9 (hand-crafted explanations' recall for first accesses).
//
// Paper shapes: ~75% of first accesses belong to patients with some event
// (Fig. 8 "All"), but the w/Dr. templates explain only ~11% (Fig. 9 "All
// w/Dr.") because events reference only the primary doctor while the care
// team does the accessing — the gap that motivates §4's collaborative
// groups.

#include <unordered_set>

#include "bench/bench_util.h"
#include "core/metrics.h"

namespace eba {
namespace {

using bench::Unwrap;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  // First accesses across the whole log, materialized as their own table.
  LogSlice first = Unwrap(
      AddLogSlice(&db, "Log", "FirstLog", 1, config.num_days, true));
  const double n = static_cast<double>(first.lids.size());
  std::printf("first accesses: %s (%.1f%% of the log)\n",
              FormatCount(static_cast<int64_t>(first.lids.size())).c_str(),
              100.0 * n /
                  static_cast<double>(
                      Unwrap(db.GetTable("Log"))->num_rows()));

  MetricsEvaluator evaluator(&db, "FirstLog");

  // ---------- Figure 8: events among first accesses ----------
  bench::PrintTitle("Figure 8: frequency of events (first accesses)");
  auto appt = Unwrap(evaluator.LidsWithEvent("Appointments", "Patient"));
  auto visit = Unwrap(evaluator.LidsWithEvent("Visits", "Patient"));
  auto doc = Unwrap(evaluator.LidsWithEvent("Documents", "Patient"));
  std::unordered_set<int64_t> all_events;
  for (const auto* v : {&appt, &visit, &doc}) {
    all_events.insert(v->begin(), v->end());
  }
  for (const auto& [table, column] : DataSetBEventTables()) {
    auto lids = Unwrap(evaluator.LidsWithEvent(table, column));
    all_events.insert(lids.begin(), lids.end());
  }
  bench::PrintBar("Appt", static_cast<double>(appt.size()) / n);
  bench::PrintBar("Visit", static_cast<double>(visit.size()) / n);
  bench::PrintBar("Document", static_cast<double>(doc.size()) / n);
  bench::PrintBar("All", static_cast<double>(all_events.size()) / n);

  // ---------- Figure 9: hand-crafted recall on first accesses ----------
  bench::PrintTitle(
      "Figure 9: hand-crafted explanations' recall (first accesses)");
  auto recall_of = [&](const std::vector<ExplanationTemplate>& templates) {
    auto explained = Unwrap(evaluator.ExplainedSet(templates));
    return static_cast<double>(explained.size()) / n;
  };
  std::vector<ExplanationTemplate> appt_t = {
      Unwrap(TemplateApptWithDoctor(db))};
  std::vector<ExplanationTemplate> visit_t = {
      Unwrap(TemplateVisitWithDoctor(db)),
      Unwrap(TemplateVisitWithAttending(db))};
  std::vector<ExplanationTemplate> doc_t = {
      Unwrap(TemplateDocumentWithAuthor(db))};
  std::vector<ExplanationTemplate> all_t;
  for (const auto* group : {&appt_t, &visit_t, &doc_t}) {
    for (const auto& t : *group) all_t.push_back(t);
  }
  double all_recall = recall_of(all_t);
  bench::PrintBar("Appt w/Dr.", recall_of(appt_t));
  bench::PrintBar("Visit w/Dr.", recall_of(visit_t));
  bench::PrintBar("Doc. w/Dr.", recall_of(doc_t));
  bench::PrintBar("All w/Dr.", all_recall);

  double event_frac = static_cast<double>(all_events.size()) / n;
  std::printf(
      "\ngap: %.1f%% of first accesses have an event, but only %.1f%% are\n"
      "explained by w/Dr. templates -> the missing-data gap closed by the\n"
      "collaborative groups of Section 4 (see bench_fig12_group_power).\n",
      100.0 * event_frac, 100.0 * all_recall);
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
