// Machine metadata for the bench JSON artifacts: core count, CPU model and
// build type. Every harness embeds this block so an artifact is
// self-describing, and compare_bench.py uses "machine.num_cores" to detect
// baseline/candidate runs from different hardware — relative gates (which
// assume comparable machines) downgrade to warnings on a core-count
// mismatch while absolute floors and equivalence booleans stay hard.

#ifndef EBA_BENCH_BENCH_MACHINE_H_
#define EBA_BENCH_BENCH_MACHINE_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "common/thread_pool.h"

namespace eba {
namespace bench {

/// First "model name" value of /proc/cpuinfo; "unknown" when the file is
/// absent (non-Linux) or holds no model line (some ARM kernels).
inline std::string CpuModel() {
  std::string model = "unknown";
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return model;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* value = std::strchr(line, ':');
    if (value == nullptr) continue;
    ++value;
    while (*value == ' ' || *value == '\t') ++value;
    model.assign(value);
    while (!model.empty() && (model.back() == '\n' || model.back() == '\r')) {
      model.pop_back();
    }
    break;
  }
  std::fclose(f);
  return model;
}

/// Minimal JSON string escaping (quotes/backslashes/control bytes — enough
/// for a CPU model string, which is attacker-free but occasionally odd).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Writes the complete `"machine": {...},` member (trailing comma included)
/// with every line prefixed by `pad`. Place it before another top-level key.
inline void WriteMachineJson(std::FILE* f, const char* pad) {
  std::fprintf(f, "%s\"machine\": {\n", pad);
  std::fprintf(f, "%s  \"num_cores\": %zu,\n", pad, HardwareThreads());
  std::fprintf(f, "%s  \"cpu_model\": \"%s\",\n", pad,
               JsonEscape(CpuModel()).c_str());
#ifdef NDEBUG
  std::fprintf(f, "%s  \"build_type\": \"release\"\n", pad);
#else
  std::fprintf(f, "%s  \"build_type\": \"debug\"\n", pad);
#endif
  std::fprintf(f, "%s},\n", pad);
}

}  // namespace bench
}  // namespace eba

#endif  // EBA_BENCH_BENCH_MACHINE_H_
