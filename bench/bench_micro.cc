// Micro-benchmarks (google-benchmark) for the substrate hot paths: hash
// index construction, equi-join execution, support evaluation strategies,
// first-access analysis, Louvain clustering, and path canonicalization.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

#include "bench/bench_machine.h"
#include "bench/bench_streaming_util.h"
#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/engine.h"
#include "core/miner.h"
#include "graph/modularity.h"
#include "graph/user_graph.h"
#include "log/access_log.h"
#include "query/executor.h"
#include "query/plan_cache.h"

namespace eba {
namespace {

/// Shared small data set (generated once per process).
const CareWebData& SharedData() {
  static CareWebData* data = [] {
    auto generated = GenerateCareWeb(CareWebConfig::Small());
    EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
    auto* d = new CareWebData(std::move(generated).value());
    auto groups = BuildGroupsFromDays(&d->db, "Log", 1, 6, "Groups",
                                      HierarchyOptions{});
    EBA_CHECK_MSG(groups.ok(), groups.status().ToString());
    return d;
  }();
  return *data;
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  EBA_CHECK_MSG(s.ok(), s.status().ToString());
  return std::move(s).value();
}

/// ~18k-row hospital log for the executor A/B benches: the Small config at
/// 14 days, matching the scale of the engine determinism test.
const CareWebData& ExecutorBenchData() {
  static CareWebData* data = [] {
    CareWebConfig config = CareWebConfig::Small();
    config.num_days = 14;
    auto generated = GenerateCareWeb(config);
    EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
    return new CareWebData(std::move(generated).value());
  }();
  return *data;
}

/// The executor configurations under comparison, indexed by state.range(0)
/// / JSON row: the boxed reference engine (the fixed oracle) vs the
/// late-materialization frame engine with cost-based join ordering (the
/// production default). JoinOrder::kDeclared is retired from the A/B
/// matrix now that cost-based ordering has soaked; it survives only as the
/// byte-identical-row-order oracle in tests/executor_equivalence_test.cc.
ExecutorOptions ExecConfig(int idx) {
  ExecutorOptions options;
  if (idx == 0) {
    options.engine = ExecutorOptions::Engine::kBoxedReference;
    options.join_order = ExecutorOptions::JoinOrder::kDeclared;
  } else {
    options.engine = ExecutorOptions::Engine::kLateMaterialization;
    options.join_order = ExecutorOptions::JoinOrder::kCostBased;
  }
  return options;
}

const char* ExecConfigName(int idx) {
  return idx == 0 ? "boxed_reference" : "late_materialization_cost_ordering";
}

void BM_HashIndexBuild(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    HashIndex index(&log->column(static_cast<size_t>(access_log.patient_col())));
    benchmark::DoNotOptimize(index.NumDistinctKeys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
BENCHMARK(BM_HashIndexBuild);

void BM_SupportNaive(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  for (auto _ : state) {
    auto count = executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                                        Executor::SupportStrategy::kNaive);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SupportNaive);

void BM_SupportDedupFrontier(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  for (auto _ : state) {
    auto count =
        executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                               Executor::SupportStrategy::kDedupFrontier);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SupportDedupFrontier);

void BM_GroupTemplateSupport(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl =
      Unwrap(TemplatesGroups(data.db, 1, false))[0];
  for (auto _ : state) {
    auto count =
        executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                               Executor::SupportStrategy::kDedupFrontier);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_GroupTemplateSupport);

void BM_ExplainSingleAccess(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  std::vector<Value> lids = {Value::Int64(1)};
  for (auto _ : state) {
    auto rel =
        executor.MaterializeForLogIds(tmpl.query(), tmpl.lid_attr(), lids);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_ExplainSingleAccess);

void BM_FirstAccessMask(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    auto mask = access_log.FirstAccessMask();
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
BENCHMARK(BM_FirstAccessMask);

void BM_UserGraphBuild(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    auto graph = UserGraph::Build(access_log);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_UserGraphBuild);

void BM_LouvainClustering(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  UserGraph graph = Unwrap(UserGraph::Build(access_log));
  for (auto _ : state) {
    Clustering clustering = ClusterUserGraph(graph);
    benchmark::DoNotOptimize(clustering.num_clusters);
  }
}
BENCHMARK(BM_LouvainClustering);

void BM_CanonicalKey(benchmark::State& state) {
  MiningPath path({JoinEdge{{"Log", "Patient"}, {"Appointments", "Patient"}},
                   JoinEdge{{"Appointments", "Doctor"}, {"Groups", "User"}},
                   JoinEdge{{"Groups", "Group_id"}, {"Groups", "Group_id"}},
                   JoinEdge{{"Groups", "User"}, {"Log", "User"}}});
  for (auto _ : state) {
    auto key = path.CanonicalKey();
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_CanonicalKey);

// Full-log coverage (the misuse-detection operation) with a varying worker
// count; Arg(1) is the serial baseline the ISSUE speedup target compares
// against. Real time is reported because the work happens on pool threads.
void BM_ExplainAll(benchmark::State& state) {
  const CareWebData& data = SharedData();
  static ExplanationEngine* engine = [] {
    auto created = ExplanationEngine::Create(&SharedData().db, "Log");
    EBA_CHECK_MSG(created.ok(), created.status().ToString());
    auto* e = new ExplanationEngine(std::move(created).value());
    auto templates = TemplatesHandcraftedDirect(SharedData().db, true);
    EBA_CHECK_MSG(templates.ok(), templates.status().ToString());
    for (auto& tmpl : *templates) {
      Status s = e->AddTemplate(tmpl);
      EBA_CHECK_MSG(s.ok(), s.ToString());
    }
    return e;
  }();
  ExplainAllOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto report = engine->ExplainAll(options);
    EBA_CHECK_MSG(report.ok(), report.status().ToString());
    benchmark::DoNotOptimize(report->explained_lids.size());
  }
  const Table* log = Unwrap(data.db.GetTable("Log"));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
// 1 (serial baseline), 2, 4, plus the machine's full core count when that
// is not already covered.
void ExplainAllThreadCounts(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  if (HardwareThreads() > 4) {
    b->Arg(static_cast<int64_t>(HardwareThreads()));
  }
  b->UseRealTime()->Unit(benchmark::kMillisecond);
}
BENCHMARK(BM_ExplainAll)->Apply(ExplainAllThreadCounts);

// Join materialization over the ~18k-row hospital log: boxed reference (0)
// vs late-materialization (1) vs +cost-based ordering (2).
void BM_ExecutorJoin(benchmark::State& state) {
  const CareWebData& data = ExecutorBenchData();
  Executor executor(&data.db, ExecConfig(static_cast<int>(state.range(0))));
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  for (auto _ : state) {
    auto rel = executor.Materialize(tmpl.query());
    EBA_CHECK_MSG(rel.ok(), rel.status().ToString());
    benchmark::DoNotOptimize(rel->rows.size());
  }
  const Table* log = Unwrap(data.db.GetTable("Log"));
  state.SetLabel(ExecConfigName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
BENCHMARK(BM_ExecutorJoin)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Distinct-lid support evaluation (the miner's and ExplainAll's hot call)
// over every hand-crafted direct template, same three configurations. The
// late configurations run the semi-join fast path end to end.
void BM_DistinctLids(benchmark::State& state) {
  const CareWebData& data = ExecutorBenchData();
  Executor executor(&data.db, ExecConfig(static_cast<int>(state.range(0))));
  static const std::vector<ExplanationTemplate>* templates =
      new std::vector<ExplanationTemplate>(
          Unwrap(TemplatesHandcraftedDirect(ExecutorBenchData().db, true)));
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& tmpl : *templates) {
      auto lids = executor.DistinctLids(tmpl.query(), tmpl.lid_attr());
      EBA_CHECK_MSG(lids.ok(), lids.status().ToString());
      total += lids->size();
    }
    benchmark::DoNotOptimize(total);
  }
  const Table* log = Unwrap(data.db.GetTable("Log"));
  state.SetLabel(ExecConfigName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()) *
                          static_cast<int64_t>(templates->size()));
}
BENCHMARK(BM_DistinctLids)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The miner's repeated-template shape: the same DistinctLids support
// queries re-issued every iteration. Arg(0) pays full planning each time;
// Arg(1) attaches a PlanCache, so every iteration after the first replays
// compiled plans — the single-threaded speedup the plan cache buys.
void BM_DistinctLidsPlanCache(benchmark::State& state) {
  const CareWebData& data = ExecutorBenchData();
  PlanCache cache;
  ExecutorOptions options;  // late materialization + cost-based ordering
  if (state.range(0) != 0) options.plan_cache = &cache;
  Executor executor(&data.db, options);
  static const std::vector<ExplanationTemplate>* templates =
      new std::vector<ExplanationTemplate>(
          Unwrap(TemplatesHandcraftedDirect(ExecutorBenchData().db, true)));
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& tmpl : *templates) {
      auto lids = executor.DistinctLids(tmpl.query(), tmpl.lid_attr());
      EBA_CHECK_MSG(lids.ok(), lids.status().ToString());
      total += lids->size();
    }
    benchmark::DoNotOptimize(total);
  }
  const Table* log = Unwrap(data.db.GetTable("Log"));
  state.SetLabel(state.range(0) == 0 ? "plan_cache_off" : "plan_cache_on");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()) *
                          static_cast<int64_t>(templates->size()));
}
BENCHMARK(BM_DistinctLidsPlanCache)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Morsel-parallel probe phase at increasing worker counts (plan cache on,
// so the measured delta is the probe fan-out, not planning). Real time is
// reported because the work happens on pool threads; expect ~linear probe
// scaling up to the physical core count — a single-core machine reports
// per-thread-count throughput instead (see PR 1's note).
void BM_DistinctLidsParallel(benchmark::State& state) {
  const CareWebData& data = ExecutorBenchData();
  PlanCache cache;
  ExecutorOptions options;
  options.plan_cache = &cache;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.min_rows_per_morsel = 1024;
  Executor executor(&data.db, options);
  static const std::vector<ExplanationTemplate>* templates =
      new std::vector<ExplanationTemplate>(
          Unwrap(TemplatesHandcraftedDirect(ExecutorBenchData().db, true)));
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& tmpl : *templates) {
      auto lids = executor.DistinctLids(tmpl.query(), tmpl.lid_attr());
      EBA_CHECK_MSG(lids.ok(), lids.status().ToString());
      total += lids->size();
    }
    benchmark::DoNotOptimize(total);
  }
  const Table* log = Unwrap(data.db.GetTable("Log"));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()) *
                          static_cast<int64_t>(templates->size()));
}
void ParallelProbeThreadCounts(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  if (HardwareThreads() > 4) {
    b->Arg(static_cast<int64_t>(HardwareThreads()));
  }
  b->UseRealTime()->Unit(benchmark::kMillisecond);
}
BENCHMARK(BM_DistinctLidsParallel)->Apply(ParallelProbeThreadCounts);

void BM_MineOneWayTinyLog(benchmark::State& state) {
  const CareWebData& data = SharedData();
  // Mining over day 1's first accesses only (kept small so the benchmark
  // iterates); const_cast is safe: AddLogSlice only adds a table once.
  static bool initialized = [] {
    auto& db = const_cast<Database&>(SharedData().db);
    auto slice = AddLogSlice(&db, "Log", "MicroTrain", 1, 1, true);
    EBA_CHECK_MSG(slice.ok(), slice.status().ToString());
    return true;
  }();
  (void)initialized;
  MinerOptions options;
  options.log_table = "MicroTrain";
  options.support_fraction = 0.02;
  options.max_length = 3;
  options.max_tables = 3;
  options.excluded_tables = ExcludedLogsFor(data.db, "MicroTrain");
  TemplateMiner miner(&data.db, options);
  for (auto _ : state) {
    auto result = miner.MineOneWay();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MineOneWayTinyLog);

// ---------------------------------------------------------------------------
// Machine-readable executor comparison: --executor_json=PATH times the three
// executor configurations on the BM_ExecutorJoin / BM_DistinctLids workloads
// with a steady clock and writes speedups to a JSON file (the bench
// trajectory artifact; CI runs the smoke variant on every push).
// ---------------------------------------------------------------------------

template <typename Fn>
double SecondsPerIter(Fn&& fn, double min_seconds, int max_iters) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up: builds the lazy hash indexes and column stats
  int iters = 0;
  double elapsed = 0.0;
  const auto start = Clock::now();
  while (iters < 1 || (elapsed < min_seconds && iters < max_iters)) {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  return elapsed / iters;
}

int RunExecutorJsonBench(const std::string& path, bool smoke) {
  const CareWebData& data = ExecutorBenchData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  const std::vector<ExplanationTemplate> templates =
      Unwrap(TemplatesHandcraftedDirect(data.db, true));
  const ExplanationTemplate appt = Unwrap(TemplateApptWithDoctor(data.db));
  const double min_seconds = smoke ? 0.02 : 0.5;
  const int max_iters = smoke ? 3 : 200;

  auto lids_workload = [&](Executor& executor) {
    size_t total = 0;
    for (const auto& tmpl : templates) {
      auto lids = executor.DistinctLids(tmpl.query(), tmpl.lid_attr());
      EBA_CHECK_MSG(lids.ok(), lids.status().ToString());
      total += lids->size();
    }
    benchmark::DoNotOptimize(total);
  };

  // A/B: boxed reference oracle vs late materialization + cost ordering.
  double join_s[2];
  double lids_s[2];
  for (int cfg = 0; cfg < 2; ++cfg) {
    Executor executor(&data.db, ExecConfig(cfg));
    join_s[cfg] = SecondsPerIter(
        [&] {
          auto rel = executor.Materialize(appt.query());
          EBA_CHECK_MSG(rel.ok(), rel.status().ToString());
          benchmark::DoNotOptimize(rel->rows.size());
        },
        min_seconds, max_iters);
    lids_s[cfg] = SecondsPerIter([&] { lids_workload(executor); },
                                 min_seconds, max_iters);
  }

  // Plan cache off/on, single thread, two repeated-template workloads.
  // SecondsPerIter's warm-up call records the plans, so the cached timings
  // measure pure replay. (a) the full-log DistinctLids support sweep —
  // probe-bound at this log size, so planning amortizes to noise; (b) the
  // per-access explain loop (MaterializeForLogIds, one lid at a time — the
  // audit-portal serving shape), where the frame is tiny and planning
  // (validation, table resolution, estimator calls, closure compilation,
  // dictionary translation) dominates each query.
  auto explain_workload = [&](Executor& executor) {
    size_t total = 0;
    for (int64_t lid = 1; lid <= 16; ++lid) {
      const std::vector<Value> lids = {Value::Int64(lid)};
      for (const auto& tmpl : templates) {
        auto rel =
            executor.MaterializeForLogIds(tmpl.query(), tmpl.lid_attr(), lids);
        EBA_CHECK_MSG(rel.ok(), rel.status().ToString());
        total += rel->rows.size();
      }
    }
    benchmark::DoNotOptimize(total);
  };
  const double plan_off_lids_s = lids_s[1];
  PlanCache plan_cache;
  ExecutorOptions cached_options;
  cached_options.plan_cache = &plan_cache;
  Executor cached_executor(&data.db, cached_options);
  const double plan_on_lids_s = SecondsPerIter(
      [&] { lids_workload(cached_executor); }, min_seconds, max_iters);
  Executor plain_executor(&data.db, ExecutorOptions{});
  const double plan_off_explain_s = SecondsPerIter(
      [&] { explain_workload(plain_executor); }, min_seconds, max_iters);
  PlanCache explain_cache;
  ExecutorOptions cached_explain_options;
  cached_explain_options.plan_cache = &explain_cache;
  Executor cached_explain_executor(&data.db, cached_explain_options);
  const double plan_on_explain_s = SecondsPerIter(
      [&] { explain_workload(cached_explain_executor); }, min_seconds,
      max_iters);

  // Morsel-parallel probe at increasing worker counts (plan cache on, so
  // the delta is probe fan-out only). On a single-core runner the absolute
  // numbers stay flat; the JSON records per-thread-count throughput either
  // way.
  std::vector<size_t> thread_counts = {1, 2, 4};
  if (HardwareThreads() > 4) thread_counts.push_back(HardwareThreads());
  std::vector<double> parallel_s(thread_counts.size());
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    PlanCache per_thread_cache;
    ExecutorOptions options;
    options.plan_cache = &per_thread_cache;
    options.num_threads = thread_counts[t];
    options.min_rows_per_morsel = 1024;
    Executor executor(&data.db, options);
    parallel_s[t] = SecondsPerIter([&] { lids_workload(executor); },
                                   min_seconds, max_iters);
  }

  const double rows_per_iter = static_cast<double>(log->num_rows()) *
                               static_cast<double>(templates.size());

  // Streaming serving loop: appends interleaved with incremental audits and
  // per-access explains (bench_streaming's workload, recorded here so the
  // committed BENCH_executor.json and the CI regression gate cover it).
  StreamingBenchOptions stream_options;
  stream_options.smoke = smoke;
  const StreamingBenchResult streaming = RunStreamingBench(stream_options);

  // Concurrent ingest: writer throughput with snapshot-pinned readers
  // auditing the live table, relative to append-only (gated with an
  // absolute floor by compare_bench.py).
  ConcurrentIngestOptions concurrent_options;
  concurrent_options.smoke = smoke;
  const ConcurrentIngestResult concurrent =
      RunConcurrentIngestBench(concurrent_options);

  // Durability: WAL append overhead (A/B vs plain appends) and the
  // time-to-recover vs full-re-audit ratio, both gated by compare_bench.py.
  DurabilityBenchOptions durability_options;
  durability_options.smoke = smoke;
  const DurabilityBenchResult durability =
      RunDurabilityBench(durability_options);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"generated_by\": \"bench_micro --executor_json\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"log_rows\": %zu,\n", log->num_rows());
  std::fprintf(f, "  \"templates\": %zu,\n", templates.size());
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", HardwareThreads());
  bench::WriteMachineJson(f, "  ");
  std::fprintf(f, "  \"benchmarks\": {\n");
  auto emit = [&](const char* name, const double s[2]) {
    std::fprintf(f, "    \"%s\": {\n", name);
    for (int cfg = 0; cfg < 2; ++cfg) {
      std::fprintf(f, "      \"%s_seconds_per_iter\": %.6f,\n",
                   ExecConfigName(cfg), s[cfg]);
    }
    std::fprintf(f, "      \"speedup_late_cost_vs_boxed\": %.2f\n",
                 s[0] / s[1]);
    std::fprintf(f, "    },\n");
  };
  emit("BM_ExecutorJoin", join_s);
  emit("BM_DistinctLids", lids_s);
  std::fprintf(f, "    \"plan_cache\": {\n");
  std::fprintf(f, "      \"distinct_lids\": {\"off_seconds_per_iter\": %.6f, "
               "\"on_seconds_per_iter\": %.6f, \"speedup_on_vs_off\": "
               "%.2f},\n",
               plan_off_lids_s, plan_on_lids_s,
               plan_off_lids_s / plan_on_lids_s);
  std::fprintf(f, "      \"per_access_explain\": {\"off_seconds_per_iter\": "
               "%.6f, \"on_seconds_per_iter\": %.6f, \"speedup_on_vs_off\": "
               "%.2f}\n",
               plan_off_explain_s, plan_on_explain_s,
               plan_off_explain_s / plan_on_explain_s);
  std::fprintf(f, "    },\n");
  std::fprintf(f, "    \"parallel_probe\": {\n");
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    std::fprintf(f,
                 "      \"threads_%zu\": {\"seconds_per_iter\": %.6f, "
                 "\"probe_rows_per_second\": %.0f, \"speedup_vs_serial\": "
                 "%.2f}%s\n",
                 thread_counts[t], parallel_s[t],
                 rows_per_iter / parallel_s[t], parallel_s[0] / parallel_s[t],
                 t + 1 == thread_counts.size() ? "" : ",");
  }
  std::fprintf(f, "    },\n");
  std::fprintf(f, "    \"streaming\": {\n");
  WriteConcurrentIngestJson(f, concurrent, "      ");
  WriteStreamingJson(f, streaming, "      ");
  std::fprintf(f, "    },\n");
  std::fprintf(f, "    \"durability\": {\n");
  WriteDurabilityJson(f, durability, "      ");
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);

  std::printf("wrote %s\n", path.c_str());
  std::printf("BM_ExecutorJoin : boxed %.3f ms, late+cost %.3f ms (%.1fx)\n",
              join_s[0] * 1e3, join_s[1] * 1e3, join_s[0] / join_s[1]);
  std::printf("BM_DistinctLids : boxed %.3f ms, late+cost %.3f ms (%.1fx)\n",
              lids_s[0] * 1e3, lids_s[1] * 1e3, lids_s[0] / lids_s[1]);
  std::printf("plan cache (distinct lids)      : off %.3f ms, on %.3f ms "
              "(%.1fx)\n",
              plan_off_lids_s * 1e3, plan_on_lids_s * 1e3,
              plan_off_lids_s / plan_on_lids_s);
  std::printf("plan cache (per-access explain) : off %.3f ms, on %.3f ms "
              "(%.1fx)\n",
              plan_off_explain_s * 1e3, plan_on_explain_s * 1e3,
              plan_off_explain_s / plan_on_explain_s);
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    std::printf("probe threads %zu : %.3f ms (%.2fx vs serial, %.0f "
                "rows/s)\n",
                thread_counts[t], parallel_s[t] * 1e3,
                parallel_s[0] / parallel_s[t], rows_per_iter / parallel_s[t]);
  }
  std::printf("streaming ingest : %.0f appends/s, ExplainNew %.3f ms/batch, "
              "plan-cache hit rate %.1f%% (%s full ExplainAll)\n",
              streaming.AppendsPerSecond(), streaming.ExplainNewMsPerBatch(),
              100.0 * streaming.PlanCacheHitRate(),
              streaming.matches_full_explain_all ? "matches"
                                                 : "DIVERGES FROM");
  std::printf("concurrent ingest: %.0f rows/s under %zu concurrent audits + "
              "%zu explains vs %.0f rows/s append-only (%.2fx, %s full "
              "ExplainAll)\n",
              concurrent.ConcurrentRowsPerSecond(),
              concurrent.concurrent_audits, concurrent.point_explains,
              concurrent.AppendOnlyRowsPerSecond(),
              concurrent.ConcurrentAppendRelativeThroughput(),
              concurrent.matches_full_explain_all ? "matches"
                                                  : "DIVERGES FROM");
  std::printf("durability       : WAL appends %.0f/s vs plain %.0f/s "
              "(%.2fx raw, %.2fx serving), audit-state recovery %.1f ms vs "
              "full re-audit %.1f ms (%.1fx, %s full ExplainAll)\n",
              durability.WalAppendsPerSecond(),
              durability.PlainAppendsPerSecond(),
              durability.WalAppendRelativeThroughput(),
              durability.ServingRelativeThroughput(),
              durability.AuditStateRecoveryMs(),
              durability.FullReauditAfterRestartMs(),
              durability.RecoverySpeedupVsFullReaudit(),
              durability.recovered_matches_full_explain_all
                  ? "matches"
                  : "DIVERGES FROM");
  return streaming.matches_full_explain_all &&
                 concurrent.matches_full_explain_all &&
                 durability.recovered_matches_full_explain_all
             ? 0
             : 1;
}

}  // namespace
}  // namespace eba

// Custom main instead of BENCHMARK_MAIN so CI can pass --smoke (every
// benchmark runs for a token min time, proving the binary and all cases
// work without paying for statistically meaningful timings) and
// --executor_json=PATH (the machine-readable executor A/B comparison;
// defaults to BENCH_executor.json and exits without running the
// google-benchmark suite).
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  bool executor_json = false;
  std::string json_path = "BENCH_executor.json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--executor_json") == 0) {
      executor_json = true;
    } else if (std::strncmp(argv[i], "--executor_json=", 16) == 0) {
      executor_json = true;
      json_path = argv[i] + 16;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (executor_json) {
    return eba::RunExecutorJsonBench(json_path, smoke);
  }
  static char min_time_flag[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time_flag);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
