// Micro-benchmarks (google-benchmark) for the substrate hot paths: hash
// index construction, equi-join execution, support evaluation strategies,
// first-access analysis, Louvain clustering, and path canonicalization.

#include <benchmark/benchmark.h>

#include "common/logging.h"

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/miner.h"
#include "graph/modularity.h"
#include "graph/user_graph.h"
#include "log/access_log.h"
#include "query/executor.h"

namespace eba {
namespace {

/// Shared small data set (generated once per process).
const CareWebData& SharedData() {
  static CareWebData* data = [] {
    auto generated = GenerateCareWeb(CareWebConfig::Small());
    EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
    auto* d = new CareWebData(std::move(generated).value());
    auto groups = BuildGroupsFromDays(&d->db, "Log", 1, 6, "Groups",
                                      HierarchyOptions{});
    EBA_CHECK_MSG(groups.ok(), groups.status().ToString());
    return d;
  }();
  return *data;
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  EBA_CHECK_MSG(s.ok(), s.status().ToString());
  return std::move(s).value();
}

void BM_HashIndexBuild(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    HashIndex index(&log->column(static_cast<size_t>(access_log.patient_col())));
    benchmark::DoNotOptimize(index.NumDistinctKeys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
BENCHMARK(BM_HashIndexBuild);

void BM_SupportNaive(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  for (auto _ : state) {
    auto count = executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                                        Executor::SupportStrategy::kNaive);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SupportNaive);

void BM_SupportDedupFrontier(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  for (auto _ : state) {
    auto count =
        executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                               Executor::SupportStrategy::kDedupFrontier);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SupportDedupFrontier);

void BM_GroupTemplateSupport(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl =
      Unwrap(TemplatesGroups(data.db, 1, false))[0];
  for (auto _ : state) {
    auto count =
        executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                               Executor::SupportStrategy::kDedupFrontier);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_GroupTemplateSupport);

void BM_ExplainSingleAccess(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  std::vector<Value> lids = {Value::Int64(1)};
  for (auto _ : state) {
    auto rel =
        executor.MaterializeForLogIds(tmpl.query(), tmpl.lid_attr(), lids);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_ExplainSingleAccess);

void BM_FirstAccessMask(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    auto mask = access_log.FirstAccessMask();
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
BENCHMARK(BM_FirstAccessMask);

void BM_UserGraphBuild(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    auto graph = UserGraph::Build(access_log);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_UserGraphBuild);

void BM_LouvainClustering(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  UserGraph graph = Unwrap(UserGraph::Build(access_log));
  for (auto _ : state) {
    Clustering clustering = ClusterUserGraph(graph);
    benchmark::DoNotOptimize(clustering.num_clusters);
  }
}
BENCHMARK(BM_LouvainClustering);

void BM_CanonicalKey(benchmark::State& state) {
  MiningPath path({JoinEdge{{"Log", "Patient"}, {"Appointments", "Patient"}},
                   JoinEdge{{"Appointments", "Doctor"}, {"Groups", "User"}},
                   JoinEdge{{"Groups", "Group_id"}, {"Groups", "Group_id"}},
                   JoinEdge{{"Groups", "User"}, {"Log", "User"}}});
  for (auto _ : state) {
    auto key = path.CanonicalKey();
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_CanonicalKey);

void BM_MineOneWayTinyLog(benchmark::State& state) {
  const CareWebData& data = SharedData();
  // Mining over day 1's first accesses only (kept small so the benchmark
  // iterates); const_cast is safe: AddLogSlice only adds a table once.
  static bool initialized = [] {
    auto& db = const_cast<Database&>(SharedData().db);
    auto slice = AddLogSlice(&db, "Log", "MicroTrain", 1, 1, true);
    EBA_CHECK_MSG(slice.ok(), slice.status().ToString());
    return true;
  }();
  (void)initialized;
  MinerOptions options;
  options.log_table = "MicroTrain";
  options.support_fraction = 0.02;
  options.max_length = 3;
  options.max_tables = 3;
  options.excluded_tables = ExcludedLogsFor(data.db, "MicroTrain");
  TemplateMiner miner(&data.db, options);
  for (auto _ : state) {
    auto result = miner.MineOneWay();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MineOneWayTinyLog);

}  // namespace
}  // namespace eba

BENCHMARK_MAIN();
