// Micro-benchmarks (google-benchmark) for the substrate hot paths: hash
// index construction, equi-join execution, support evaluation strategies,
// first-access analysis, Louvain clustering, and path canonicalization.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/engine.h"
#include "core/miner.h"
#include "graph/modularity.h"
#include "graph/user_graph.h"
#include "log/access_log.h"
#include "query/executor.h"

namespace eba {
namespace {

/// Shared small data set (generated once per process).
const CareWebData& SharedData() {
  static CareWebData* data = [] {
    auto generated = GenerateCareWeb(CareWebConfig::Small());
    EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
    auto* d = new CareWebData(std::move(generated).value());
    auto groups = BuildGroupsFromDays(&d->db, "Log", 1, 6, "Groups",
                                      HierarchyOptions{});
    EBA_CHECK_MSG(groups.ok(), groups.status().ToString());
    return d;
  }();
  return *data;
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  EBA_CHECK_MSG(s.ok(), s.status().ToString());
  return std::move(s).value();
}

void BM_HashIndexBuild(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    HashIndex index(&log->column(static_cast<size_t>(access_log.patient_col())));
    benchmark::DoNotOptimize(index.NumDistinctKeys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
BENCHMARK(BM_HashIndexBuild);

void BM_SupportNaive(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  for (auto _ : state) {
    auto count = executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                                        Executor::SupportStrategy::kNaive);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SupportNaive);

void BM_SupportDedupFrontier(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  for (auto _ : state) {
    auto count =
        executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                               Executor::SupportStrategy::kDedupFrontier);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SupportDedupFrontier);

void BM_GroupTemplateSupport(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl =
      Unwrap(TemplatesGroups(data.db, 1, false))[0];
  for (auto _ : state) {
    auto count =
        executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                               Executor::SupportStrategy::kDedupFrontier);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_GroupTemplateSupport);

void BM_ExplainSingleAccess(benchmark::State& state) {
  const CareWebData& data = SharedData();
  Executor executor(&data.db);
  ExplanationTemplate tmpl = Unwrap(TemplateApptWithDoctor(data.db));
  std::vector<Value> lids = {Value::Int64(1)};
  for (auto _ : state) {
    auto rel =
        executor.MaterializeForLogIds(tmpl.query(), tmpl.lid_attr(), lids);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_ExplainSingleAccess);

void BM_FirstAccessMask(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    auto mask = access_log.FirstAccessMask();
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
BENCHMARK(BM_FirstAccessMask);

void BM_UserGraphBuild(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (auto _ : state) {
    auto graph = UserGraph::Build(access_log);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_UserGraphBuild);

void BM_LouvainClustering(benchmark::State& state) {
  const CareWebData& data = SharedData();
  const Table* log = Unwrap(data.db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  UserGraph graph = Unwrap(UserGraph::Build(access_log));
  for (auto _ : state) {
    Clustering clustering = ClusterUserGraph(graph);
    benchmark::DoNotOptimize(clustering.num_clusters);
  }
}
BENCHMARK(BM_LouvainClustering);

void BM_CanonicalKey(benchmark::State& state) {
  MiningPath path({JoinEdge{{"Log", "Patient"}, {"Appointments", "Patient"}},
                   JoinEdge{{"Appointments", "Doctor"}, {"Groups", "User"}},
                   JoinEdge{{"Groups", "Group_id"}, {"Groups", "Group_id"}},
                   JoinEdge{{"Groups", "User"}, {"Log", "User"}}});
  for (auto _ : state) {
    auto key = path.CanonicalKey();
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_CanonicalKey);

// Full-log coverage (the misuse-detection operation) with a varying worker
// count; Arg(1) is the serial baseline the ISSUE speedup target compares
// against. Real time is reported because the work happens on pool threads.
void BM_ExplainAll(benchmark::State& state) {
  const CareWebData& data = SharedData();
  static ExplanationEngine* engine = [] {
    auto created = ExplanationEngine::Create(&SharedData().db, "Log");
    EBA_CHECK_MSG(created.ok(), created.status().ToString());
    auto* e = new ExplanationEngine(std::move(created).value());
    auto templates = TemplatesHandcraftedDirect(SharedData().db, true);
    EBA_CHECK_MSG(templates.ok(), templates.status().ToString());
    for (auto& tmpl : *templates) {
      Status s = e->AddTemplate(tmpl);
      EBA_CHECK_MSG(s.ok(), s.ToString());
    }
    return e;
  }();
  ExplainAllOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto report = engine->ExplainAll(options);
    EBA_CHECK_MSG(report.ok(), report.status().ToString());
    benchmark::DoNotOptimize(report->explained_lids.size());
  }
  const Table* log = Unwrap(data.db.GetTable("Log"));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log->num_rows()));
}
// 1 (serial baseline), 2, 4, plus the machine's full core count when that
// is not already covered.
void ExplainAllThreadCounts(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  if (HardwareThreads() > 4) {
    b->Arg(static_cast<int64_t>(HardwareThreads()));
  }
  b->UseRealTime()->Unit(benchmark::kMillisecond);
}
BENCHMARK(BM_ExplainAll)->Apply(ExplainAllThreadCounts);

void BM_MineOneWayTinyLog(benchmark::State& state) {
  const CareWebData& data = SharedData();
  // Mining over day 1's first accesses only (kept small so the benchmark
  // iterates); const_cast is safe: AddLogSlice only adds a table once.
  static bool initialized = [] {
    auto& db = const_cast<Database&>(SharedData().db);
    auto slice = AddLogSlice(&db, "Log", "MicroTrain", 1, 1, true);
    EBA_CHECK_MSG(slice.ok(), slice.status().ToString());
    return true;
  }();
  (void)initialized;
  MinerOptions options;
  options.log_table = "MicroTrain";
  options.support_fraction = 0.02;
  options.max_length = 3;
  options.max_tables = 3;
  options.excluded_tables = ExcludedLogsFor(data.db, "MicroTrain");
  TemplateMiner miner(&data.db, options);
  for (auto _ : state) {
    auto result = miner.MineOneWay();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MineOneWayTinyLog);

}  // namespace
}  // namespace eba

// Custom main instead of BENCHMARK_MAIN so CI can pass --smoke: every
// benchmark runs for a token min time, proving the binary and all cases
// work without paying for statistically meaningful timings.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time_flag);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
