// Regenerates Table 1: number of explanation templates mined per time
// period (days 1-6, day 1, day 3, day 7) broken down by template length,
// plus the set of templates common to every period.
//
// Paper shape: the template counts are stable across periods, with a large
// common core — mined templates represent generic reasons for access, so an
// administrator can review a small stable set.

#include <map>
#include <set>

#include "bench/bench_util.h"
#include "core/miner.h"

namespace eba {
namespace {

using bench::Unwrap;

struct PeriodResult {
  std::string name;
  std::map<int, int> count_by_length;
  std::map<int, std::set<std::string>> keys_by_length;
};

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, config.num_days - 1,
                                   "Groups", HierarchyOptions{}));

  struct Period {
    const char* label;
    int first_day;
    int last_day;
  };
  const Period periods[] = {
      {"Days 1-6", 1, config.num_days - 1},
      {"Day 1", 1, 1},
      {"Day 3", 3, 3},
      {"Day 7", config.num_days, config.num_days},
  };

  std::vector<PeriodResult> results;
  for (const Period& period : periods) {
    std::string table_name =
        std::string("Mine_") + std::to_string(period.first_day) + "_" +
        std::to_string(period.last_day);
    LogSlice slice = Unwrap(AddLogSlice(&db, "Log", table_name,
                                        period.first_day, period.last_day,
                                        /*first_only=*/true));
    MinerOptions options;
    options.log_table = table_name;
    options.support_fraction = 0.01;
    options.max_length = 5;
    options.max_tables = 3;
    options.excluded_tables = ExcludedLogsFor(db, table_name);
    MiningResult mined = Unwrap(TemplateMiner(&db, options).MineOneWay(),
                                period.label);

    PeriodResult result;
    result.name = period.label;
    for (const auto& m : mined.templates) {
      int length = m.tmpl.ReportedLength(db);
      result.count_by_length[length]++;
      result.keys_by_length[length].insert(
          Unwrap(m.tmpl.CanonicalKey(db)));
    }
    std::printf("  %-10s: %4zu first accesses -> %3zu templates\n",
                period.label, slice.lids.size(), mined.templates.size());
    results.push_back(std::move(result));
  }

  // Lengths observed anywhere.
  std::set<int> lengths;
  for (const auto& result : results) {
    for (const auto& [length, count] : result.count_by_length) {
      lengths.insert(length);
    }
  }

  bench::PrintTitle("Table 1: number of explanation templates mined");
  std::printf("  %-8s", "Length");
  for (const auto& result : results) {
    std::printf(" %10s", result.name.c_str());
  }
  std::printf(" %10s\n", "Common");
  for (int length : lengths) {
    std::printf("  %-8d", length);
    std::set<std::string> common;
    bool first = true;
    for (const auto& result : results) {
      auto it = result.count_by_length.find(length);
      std::printf(" %10d", it == result.count_by_length.end() ? 0 : it->second);
      auto keys_it = result.keys_by_length.find(length);
      std::set<std::string> keys = keys_it == result.keys_by_length.end()
                                       ? std::set<std::string>{}
                                       : keys_it->second;
      if (first) {
        common = keys;
        first = false;
      } else {
        std::set<std::string> intersection;
        for (const auto& k : common) {
          if (keys.count(k)) intersection.insert(k);
        }
        common = std::move(intersection);
      }
    }
    std::printf(" %10zu\n", common.size());
  }
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
