// Shared helpers for the per-figure benchmark harnesses: scale selection,
// common environment setup (data + groups + slices + eval logs), and
// fixed-width table/bar printing that mirrors the paper's figures.

#ifndef EBA_BENCH_BENCH_UTIL_H_
#define EBA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "careweb/config.h"
#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "log/access_log.h"

namespace eba {
namespace bench {

/// Unwraps a StatusOr or aborts with the error (benchmarks fail loudly).
template <typename T>
T Unwrap(StatusOr<T> s, const char* what = "bench setup") {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, s.status().ToString().c_str());
    std::abort();
  }
  return std::move(s).value();
}

inline void Check(const Status& s, const char* what = "bench setup") {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

/// Scale selection: --scale=tiny|small|paper (also env EBA_BENCH_SCALE);
/// default is the paper-shaped configuration unless the harness overrides
/// `default_scale` (ablation harnesses default to "small": they compare
/// configurations relatively, and their pessimal configurations are
/// deliberately expensive). --seed=N overrides the seed.
inline CareWebConfig ParseConfig(int argc, char** argv,
                                 const char* default_scale = "paper") {
  std::string scale = default_scale;
  if (const char* env = std::getenv("EBA_BENCH_SCALE")) scale = env;
  uint64_t seed = 0;
  bool seed_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = argv[i] + 8;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
      seed_set = true;
    }
  }
  CareWebConfig config;
  if (scale == "tiny") {
    config = CareWebConfig::Tiny();
  } else if (scale == "small") {
    config = CareWebConfig::Small();
  } else {
    config = CareWebConfig::PaperShaped();
  }
  if (seed_set) config.seed = seed;
  return config;
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints a labeled horizontal bar (paper-figure style).
inline void PrintBar(const std::string& label, double value,
                     double max_value = 1.0, int width = 40) {
  int filled = 0;
  if (max_value > 0) {
    filled = static_cast<int>(value / max_value * width + 0.5);
    if (filled > width) filled = width;
    if (filled < 0) filled = 0;
  }
  std::string bar(static_cast<size_t>(filled), '#');
  std::printf("  %-28s %6.3f  |%-*s|\n", label.c_str(), value, width,
              bar.c_str());
}

/// Prints a data-summary banner (log size, users, patients, density).
inline void PrintDataSummary(const CareWebData& data) {
  const Table* log_table = Unwrap(data.db.GetTable("Log"));
  AccessLog log = Unwrap(AccessLog::Wrap(log_table));
  std::printf(
      "data: %s accesses | %s users | %s patients | %s user-patient pairs | "
      "density %.5f | seed %llu\n",
      FormatCount(static_cast<int64_t>(log.size())).c_str(),
      FormatCount(static_cast<int64_t>(log.NumDistinctUsers())).c_str(),
      FormatCount(static_cast<int64_t>(log.NumDistinctPatients())).c_str(),
      FormatCount(static_cast<int64_t>(log.NumDistinctPairs())).c_str(),
      log.UserPatientDensity(),
      static_cast<unsigned long long>(data.config.seed));
  std::printf(
      "events: %s appts | %s visits | %s documents | %s labs | %s meds | "
      "%s radiology\n",
      FormatCount(static_cast<int64_t>(
                      Unwrap(data.db.GetTable("Appointments"))->num_rows()))
          .c_str(),
      FormatCount(
          static_cast<int64_t>(Unwrap(data.db.GetTable("Visits"))->num_rows()))
          .c_str(),
      FormatCount(static_cast<int64_t>(
                      Unwrap(data.db.GetTable("Documents"))->num_rows()))
          .c_str(),
      FormatCount(
          static_cast<int64_t>(Unwrap(data.db.GetTable("Labs"))->num_rows()))
          .c_str(),
      FormatCount(static_cast<int64_t>(
                      Unwrap(data.db.GetTable("Medications"))->num_rows()))
          .c_str(),
      FormatCount(static_cast<int64_t>(
                      Unwrap(data.db.GetTable("Radiology"))->num_rows()))
          .c_str());
}

}  // namespace bench
}  // namespace eba

#endif  // EBA_BENCH_BENCH_UTIL_H_
