// Regenerates Figure 14: predictive power of MINED explanation templates
// for first accesses — precision / recall / normalized recall by template
// length (2, 3, 4, All), trained on days 1-6, tested on day-7 first
// accesses against a same-size fake log.
//
// Paper shapes: length-2 templates have the best precision (~1.0) with
// moderate recall (~0.34); recall rises and precision falls with length;
// length-4 (group) templates lift recall to ~0.73 (~0.89 normalized); "All"
// is close to length-4 because long templates subsume short ones.

#include <map>

#include "bench/bench_util.h"
#include "core/metrics.h"
#include "core/miner.h"

namespace eba {
namespace {

using bench::Unwrap;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, config.num_days - 1,
                                   "Groups", HierarchyOptions{}));
  LogSlice train = Unwrap(
      AddLogSlice(&db, "Log", "TrainFirst", 1, config.num_days - 1, true));
  LogSlice test = Unwrap(AddLogSlice(&db, "Log", "TestFirst", config.num_days,
                                     config.num_days, true));
  EvalLogSetup eval = Unwrap(
      AddEvalLog(&db, "TestFirst", "EvalLog", data.truth,
                 config.seed ^ 0x14141414));

  MinerOptions options;
  options.log_table = "TrainFirst";
  options.support_fraction = 0.01;
  options.max_length = 5;
  options.max_tables = 3;
  options.excluded_tables = ExcludedLogsFor(db, "TrainFirst");
  MiningResult mined = Unwrap(TemplateMiner(&db, options).MineOneWay());
  std::printf(
      "mined %zu templates from %s training first accesses; testing on %s\n"
      "day-%d first accesses + %s fake accesses\n",
      mined.templates.size(),
      FormatCount(static_cast<int64_t>(train.lids.size())).c_str(),
      FormatCount(static_cast<int64_t>(eval.real_lids.size())).c_str(),
      config.num_days,
      FormatCount(static_cast<int64_t>(eval.fake_lids.size())).c_str());

  // Group templates by reported length (mapping hops excluded, §5.3.3).
  std::map<int, std::vector<ExplanationTemplate>> by_length;
  std::vector<ExplanationTemplate> all;
  for (const auto& m : mined.templates) {
    by_length[m.tmpl.ReportedLength(db)].push_back(m.tmpl);
    all.push_back(m.tmpl);
  }

  MetricsEvaluator evaluator(&db, "EvalLog");
  auto with_event = Unwrap(evaluator.LidsWithAnyEvent(AllEventTables()));
  std::unordered_set<int64_t> real_set(eval.real_lids.begin(),
                                       eval.real_lids.end());
  std::vector<int64_t> real_with_events;
  for (int64_t lid : with_event) {
    if (real_set.count(lid)) real_with_events.push_back(lid);
  }

  bench::PrintTitle(
      "Figure 14: mined explanations' predictive power (first accesses)");
  std::printf("  %-10s %10s %10s %10s %10s\n", "length", "#templates",
              "precision", "recall", "recall-norm");
  for (const auto& [length, templates] : by_length) {
    PrecisionRecall pr = Unwrap(evaluator.Evaluate(
        templates, eval.real_lids, eval.fake_lids, real_with_events));
    std::printf("  %-10d %10zu %10.3f %10.3f %10.3f\n", length,
                templates.size(), pr.Precision(), pr.Recall(),
                pr.NormalizedRecall());
  }
  PrecisionRecall pr_all = Unwrap(evaluator.Evaluate(
      all, eval.real_lids, eval.fake_lids, real_with_events));
  std::printf("  %-10s %10zu %10.3f %10.3f %10.3f\n", "All", all.size(),
              pr_all.Precision(), pr_all.Recall(), pr_all.NormalizedRecall());
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
