// bench_scaling: multicore scaling curves over a streamed workload
// scale-out. Sweeps the Scaled(factor) hospital generator (factor 1 is the
// ~18k-row Small log; 100 lands near 1.8M rows; 1000 near 18M) and times
// the two audit entry points at increasing worker counts:
//
//   - ExplainAll        — full-log coverage (misuse detection, §1),
//   - ExplainNew        — the streaming new-lid audit, re-run from row 0 so
//                         the lid-sharded incremental path sees the whole
//                         log as one delta.
//
//   ./bench_scaling [--smoke] [--factors=1,100,1000] [--threads=1,2,4]
//                   [--require_speedup=X] [--json[=PATH]]
//                                         (default PATH BENCH_scaling.json)
//
// --smoke restricts the sweep to factors {1,10} with one timing iteration —
// the CI shape: fast, but factor 10 (~180k rows) is large enough for the
// fan-out to beat its overhead. --require_speedup=X additionally fails the
// run unless 4-thread ExplainAll reaches X times the 1-thread time on the
// largest factor swept; on a machine with fewer than 4 cores the gate is
// skipped with a notice (the curves are still recorded). The equivalence
// self-check — reports byte-identical across all thread counts, and the
// from-zero ExplainNew matching ExplainAll — always gates the exit status.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "bench/bench_machine.h"
#include "bench/bench_util.h"
#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "storage/database.h"

namespace eba {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set of this process in MiB (the bounded-memory evidence
/// for the streamed 18M-row generation: the sweep's peak is recorded in
/// the JSON next to the row counts it was reached at).
double MaxRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // ru_maxrss is KiB
}

/// One operation (ExplainAll or ExplainNew) at one thread count.
struct TimedRun {
  size_t threads = 0;
  double seconds = 0.0;
};

struct FactorResult {
  int factor = 0;
  size_t log_rows = 0;
  double generate_seconds = 0.0;
  double coverage = 0.0;
  bool identical_across_threads = true;
  std::vector<TimedRun> explain_all;
  std::vector<TimedRun> explain_new;
};

bool SameReport(const ExplanationReport& a, const ExplanationReport& b) {
  return a.log_size == b.log_size &&
         a.per_template_counts == b.per_template_counts &&
         a.explained_lids == b.explained_lids &&
         a.unexplained_lids == b.unexplained_lids;
}

/// Times `fn` (min over `iters` runs — large factors pass 1, so a sweep's
/// cost stays one run per cell).
template <typename Fn>
double MinSeconds(int iters, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < iters; ++i) {
    const double t0 = Now();
    fn();
    const double s = Now() - t0;
    if (i == 0 || s < best) best = s;
  }
  return best;
}

FactorResult RunFactor(int factor, const std::vector<size_t>& thread_counts,
                       bool smoke) {
  FactorResult result;
  result.factor = factor;

  std::printf("\n--- scale factor %d ---\n", factor);
  const double gen0 = Now();
  CareWebData data =
      bench::Unwrap(GenerateCareWeb(CareWebConfig::Scaled(factor)));
  result.generate_seconds = Now() - gen0;
  const Table* log = bench::Unwrap(data.db.GetTable("Log"));
  result.log_rows = log->num_rows();
  std::printf("generated %zu access rows in %.2f s (%.0f rows/s), "
              "peak RSS %.0f MiB\n",
              result.log_rows, result.generate_seconds,
              static_cast<double>(result.log_rows) / result.generate_seconds,
              MaxRssMb());

  auto engine = bench::Unwrap(ExplanationEngine::Create(&data.db, "Log"));
  auto templates =
      bench::Unwrap(TemplatesHandcraftedDirect(data.db, /*use_groups=*/true));
  for (const auto& tmpl : templates) {
    bench::Check(engine.AddTemplate(tmpl));
  }

  // Small factors re-run a few times and keep the minimum; at factor >= 100
  // one run is already seconds long and repeat noise is irrelevant.
  const int iters = (smoke || factor >= 100) ? 1 : 3;

  ExplanationReport reference;
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    ExplainAllOptions options;
    options.num_threads = thread_counts[t];
    ExplanationReport report;
    const double s = MinSeconds(iters, [&] {
      report = bench::Unwrap(engine.ExplainAll(options));
    });
    result.explain_all.push_back(TimedRun{thread_counts[t], s});
    if (t == 0) {
      reference = report;
      result.coverage = report.Coverage();
    } else if (!SameReport(reference, report)) {
      result.identical_across_threads = false;
    }
    std::printf("ExplainAll  threads=%zu : %8.3f s (%.0f rows/s, %.2fx)\n",
                thread_counts[t], s,
                static_cast<double>(result.log_rows) / s,
                result.explain_all[0].seconds / s);
  }

  // Streaming path: ResetAudit rewinds the audited watermark to row 0 (the
  // catalog snapshot is untouched, so no foreign-table delta pass runs) and
  // ExplainNew audits the entire log as new lids through the lid-sharded
  // incremental machinery.
  auto auditor = bench::Unwrap(StreamingAuditor::Create(&data.db, "Log"));
  for (const auto& tmpl : templates) {
    bench::Check(auditor.AddTemplate(tmpl));
  }
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    StreamingOptions options;
    options.num_threads = thread_counts[t];
    StreamingReport report;
    const double s = MinSeconds(iters, [&] {
      auditor.ResetAudit();
      report = bench::Unwrap(auditor.ExplainNew(options));
    });
    result.explain_new.push_back(TimedRun{thread_counts[t], s});
    if (report.explained_lids != reference.explained_lids ||
        report.unexplained_lids != reference.unexplained_lids) {
      result.identical_across_threads = false;
    }
    std::printf("ExplainNew  threads=%zu : %8.3f s (%.0f rows/s, %.2fx)\n",
                thread_counts[t], s,
                static_cast<double>(result.log_rows) / s,
                result.explain_new[0].seconds / s);
  }

  std::printf("coverage %.4f, reports %s across thread counts\n",
              result.coverage,
              result.identical_across_threads ? "identical" : "DIVERGE");
  return result;
}

void WriteCurveJson(std::FILE* f, const char* name,
                    const std::vector<TimedRun>& runs, size_t log_rows,
                    const char* pad) {
  std::fprintf(f, "%s\"%s\": {\n", pad, name);
  for (size_t t = 0; t < runs.size(); ++t) {
    std::fprintf(f,
                 "%s  \"threads_%zu\": {\"seconds\": %.6f, "
                 "\"rows_per_second\": %.0f, \"speedup_vs_1_thread\": "
                 "%.2f}%s\n",
                 pad, runs[t].threads, runs[t].seconds,
                 static_cast<double>(log_rows) / runs[t].seconds,
                 runs[0].seconds / runs[t].seconds,
                 t + 1 == runs.size() ? "" : ",");
  }
  std::fprintf(f, "%s}", pad);
}

double SpeedupAtThreads(const std::vector<TimedRun>& runs, size_t threads) {
  for (const TimedRun& run : runs) {
    if (run.threads == threads) return runs[0].seconds / run.seconds;
  }
  return 0.0;
}

std::vector<size_t> ParseSizeList(const char* s) {
  std::vector<size_t> out;
  while (*s != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s) break;
    out.push_back(static_cast<size_t>(v));
    s = *end == ',' ? end + 1 : end;
  }
  return out;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) {
  using namespace eba;  // NOLINT
  bool smoke = false;
  bool write_json = false;
  std::string json_path = "BENCH_scaling.json";
  double require_speedup = 0.0;
  std::vector<size_t> factors;
  std::vector<size_t> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--factors=", 10) == 0) {
      factors = ParseSizeList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts = ParseSizeList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--require_speedup=", 18) == 0) {
      require_speedup = std::atof(argv[i] + 18);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      write_json = true;
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (factors.empty()) {
    factors = smoke ? std::vector<size_t>{1, 10}
                    : std::vector<size_t>{1, 100, 1000};
  }
  if (thread_counts.empty()) {
    thread_counts = {1, 2, 4};
    if (HardwareThreads() > 4) thread_counts.push_back(HardwareThreads());
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::printf("bench_scaling: factors {");
  for (size_t i = 0; i < factors.size(); ++i) {
    std::printf("%s%zu", i == 0 ? "" : ",", factors[i]);
  }
  std::printf("} x threads {");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%s%zu", i == 0 ? "" : ",", thread_counts[i]);
  }
  std::printf("} on %zu core(s)\n", HardwareThreads());

  std::vector<FactorResult> results;
  for (size_t factor : factors) {
    results.push_back(
        RunFactor(static_cast<int>(factor), thread_counts, smoke));
  }
  const double max_rss_mb = MaxRssMb();
  std::printf("\npeak RSS across the sweep: %.0f MiB\n", max_rss_mb);

  bool all_identical = true;
  for (const FactorResult& r : results) {
    all_identical = all_identical && r.identical_across_threads;
  }
  const FactorResult& largest = results.back();
  const double gate_speedup = SpeedupAtThreads(largest.explain_all, 4);

  if (write_json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"generated_by\": \"bench_scaling\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    bench::WriteMachineJson(f, "  ");
    std::fprintf(f, "  \"max_rss_mb\": %.0f,\n", max_rss_mb);
    std::fprintf(f, "  \"benchmarks\": {\n");
    std::fprintf(f, "    \"scaling\": {\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const FactorResult& r = results[i];
      std::fprintf(f, "      \"factor_%d\": {\n", r.factor);
      std::fprintf(f, "        \"scale_factor\": %d,\n", r.factor);
      std::fprintf(f, "        \"log_rows\": %zu,\n", r.log_rows);
      std::fprintf(f, "        \"generate_seconds\": %.3f,\n",
                   r.generate_seconds);
      std::fprintf(f, "        \"generate_rows_per_second\": %.0f,\n",
                   static_cast<double>(r.log_rows) / r.generate_seconds);
      std::fprintf(f, "        \"coverage\": %.6f,\n", r.coverage);
      WriteCurveJson(f, "explain_all", r.explain_all, r.log_rows, "        ");
      std::fprintf(f, ",\n");
      WriteCurveJson(f, "explain_new", r.explain_new, r.log_rows, "        ");
      std::fprintf(f, "\n      }%s\n", i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "    },\n");
    // The summary keys are the gate surface shared by smoke and full runs:
    // coverage of the base factor is a deterministic workload property, the
    // equivalence boolean must stay true, and the mid-size 4-thread speedup
    // is the headline curve point (relative-gated only when the committed
    // baseline itself shows headroom; see compare_bench.py).
    std::fprintf(f, "    \"scaling_summary\": {\n");
    std::fprintf(f, "      \"explain_all_coverage\": %.6f,\n",
                 results.front().coverage);
    std::fprintf(f, "      \"speedup_threads_4_vs_1\": %.2f,\n", gate_speedup);
    std::fprintf(f, "      \"matches_full_explain_all\": %s\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "    }\n");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: reports diverge across thread counts (or "
                         "ExplainNew diverges from ExplainAll)\n");
    return 1;
  }
  if (require_speedup > 0.0) {
    if (HardwareThreads() < 4) {
      std::printf("speedup gate skipped: %zu core(s) < 4 (curves recorded "
                  "only)\n",
                  HardwareThreads());
    } else if (gate_speedup < require_speedup) {
      std::fprintf(stderr,
                   "FAIL: 4-thread ExplainAll speedup %.2fx < required "
                   "%.2fx on factor %d (%zu rows)\n",
                   gate_speedup, require_speedup, largest.factor,
                   largest.log_rows);
      return 1;
    } else {
      std::printf("speedup gate: 4-thread ExplainAll %.2fx >= %.2fx on "
                  "factor %d\n",
                  gate_speedup, require_speedup, largest.factor);
    }
  }
  return 0;
}
