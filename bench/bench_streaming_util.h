// Shared streaming-ingest workload: sustained AppendAccessBatch calls
// interleaved with incremental ExplainNew audits and per-access Explain
// requests — the serving-loop shape the ISSUE-4 tentpole targets. Used by
// the standalone bench_streaming harness and by bench_micro's
// --executor_json emitter (so the committed BENCH_executor.json carries the
// streaming numbers, and the CI regression gate sees them).
//
// The fixture generates the 14-day Small hospital, seeds a "LogStream"
// table with the first `seed_days` days, and streams the remaining rows in
// `num_batches` batches. The headline metric is the engine plan cache's
// hit rate under appends: with watermark re-binding it stays >= 90%
// (every append is a rebind + hit); with the old epoch-invalidation
// behavior every batch would invalidate every plan (~0%).

#ifndef EBA_BENCH_BENCH_STREAMING_UTIL_H_
#define EBA_BENCH_BENCH_STREAMING_UTIL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "log/access_log.h"
#include "storage/io.h"

namespace eba {

struct StreamingBenchOptions {
  bool smoke = false;     // fewer batches, same shape
  size_t num_batches = 0; // 0 = default (48, smoke 12)
  int seed_days = 7;      // LogStream starts with days [1, seed_days]
  size_t explains_per_batch = 4;  // per-access Explain calls per batch
  size_t num_threads = 1;
  // Foreign-append interleave phase: batches of synthetic Appointments rows
  // (each mostly witnessing an already-audited access) absorbed by the
  // reverse semi-join delta pass, then a few forced full re-audits for the
  // delta-vs-full cost ratio. 0 = default (12, smoke 6).
  size_t foreign_batches = 0;
  size_t foreign_rows_per_batch = 8;
  size_t full_reaudits_timed = 3;
};

struct StreamingBenchResult {
  size_t initial_rows = 0;
  size_t streamed_rows = 0;
  size_t num_batches = 0;
  size_t num_templates = 0;

  double append_seconds = 0.0;
  double explain_new_seconds = 0.0;
  double per_access_seconds = 0.0;
  size_t per_access_explains = 0;

  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_rebinds = 0;
  uint64_t plan_invalidations = 0;

  // Foreign-append interleave phase (reverse semi-join delta audits).
  size_t foreign_batches = 0;
  size_t foreign_rows = 0;    // delta-phase appends (foreign_batches' worth)
  size_t reaudit_rows = 0;    // extra appends made by the timed A/B re-audits
  double foreign_delta_seconds = 0.0;  // total of the delta ExplainNew calls
  size_t delta_explained_total = 0;    // audited lids retroactively explained
  size_t delta_queries_total = 0;      // reverse semi-join evaluations run
  double full_reaudit_seconds = 0.0;   // total of the forced full re-audits
  size_t full_reaudits_timed = 0;

  double final_coverage = 0.0;
  /// Self-check: the incrementally accumulated explained set must equal a
  /// fresh full ExplainAll over the final log.
  bool matches_full_explain_all = false;

  double AppendsPerSecond() const {
    return append_seconds > 0.0
               ? static_cast<double>(streamed_rows) / append_seconds
               : 0.0;
  }
  double ExplainNewMsPerBatch() const {
    return num_batches > 0
               ? 1e3 * explain_new_seconds / static_cast<double>(num_batches)
               : 0.0;
  }
  double PerAccessExplainMs() const {
    return per_access_explains > 0
               ? 1e3 * per_access_seconds /
                     static_cast<double>(per_access_explains)
               : 0.0;
  }
  double PlanCacheHitRate() const {
    const uint64_t total = plan_hits + plan_misses;
    return total > 0 ? static_cast<double>(plan_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
  double ForeignDeltaMsPerBatch() const {
    return foreign_batches > 0 ? 1e3 * foreign_delta_seconds /
                                     static_cast<double>(foreign_batches)
                               : 0.0;
  }
  double FullReauditMs() const {
    return full_reaudits_timed > 0
               ? 1e3 * full_reaudit_seconds /
                     static_cast<double>(full_reaudits_timed)
               : 0.0;
  }
  /// The headline delta metric: how much cheaper absorbing a foreign append
  /// via the reverse semi-join is than the pre-ISSUE-5 behaviour (a full
  /// re-audit). A within-run timing ratio, so it is machine-portable and
  /// gated by compare_bench.py. A delta phase too fast for the clock to
  /// resolve saturates high — it must not read as a regression against the
  /// gate's absolute floor.
  double DeltaSpeedupVsFullReaudit() const {
    const double delta_ms = ForeignDeltaMsPerBatch();
    if (delta_ms > 0.0) return FullReauditMs() / delta_ms;
    return FullReauditMs() > 0.0 ? 1e6 : 0.0;
  }
};

inline StreamingBenchResult RunStreamingBench(
    const StreamingBenchOptions& options) {
  using Clock = std::chrono::steady_clock;
  auto unwrap_status = [](const Status& s) {
    EBA_CHECK_MSG(s.ok(), s.ToString());
  };

  StreamingBenchResult result;
  result.num_batches =
      options.num_batches > 0 ? options.num_batches : (options.smoke ? 12 : 48);

  CareWebConfig config = CareWebConfig::Small();
  config.num_days = 14;
  auto generated = GenerateCareWeb(config);
  EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
  CareWebData data = std::move(generated).value();

  const Table* source_log = data.db.GetTable("Log").value();
  auto source_view = AccessLog::Wrap(source_log);
  EBA_CHECK_MSG(source_view.ok(), source_view.status().ToString());
  auto slice = AddLogSlice(&data.db, "Log", "LogStream", 1, options.seed_days,
                           /*first_only=*/false);
  EBA_CHECK_MSG(slice.ok(), slice.status().ToString());

  std::unordered_set<size_t> seeded;
  for (size_t r : source_view->RowsInDayRange(1, options.seed_days)) {
    seeded.insert(r);
  }
  std::vector<Row> backlog;
  backlog.reserve(source_log->num_rows() - seeded.size());
  for (size_t r = 0; r < source_log->num_rows(); ++r) {
    if (!seeded.count(r)) backlog.push_back(source_log->GetRow(r));
  }
  const int lid_col = source_log->schema().ColumnIndex("Lid");

  auto created = StreamingAuditor::Create(&data.db, "LogStream");
  EBA_CHECK_MSG(created.ok(), created.status().ToString());
  StreamingAuditor auditor = std::move(created).value();
  auto templates = TemplatesHandcraftedDirect(data.db, true);
  EBA_CHECK_MSG(templates.ok(), templates.status().ToString());
  for (const auto& tmpl : *templates) {
    unwrap_status(auditor.AddTemplate(tmpl));
  }
  result.num_templates = auditor.engine().num_templates();
  result.initial_rows = data.db.GetTable("LogStream").value()->num_rows();
  result.streamed_rows = backlog.size();

  StreamingOptions stream_options;
  stream_options.num_threads = options.num_threads;

  // Cold audit of the seeded prefix (records the plans; excluded from the
  // interleaved timings below, like any warm-up).
  auto first = auditor.ExplainNew(stream_options);
  EBA_CHECK_MSG(first.ok(), first.status().ToString());

  const size_t batch_size =
      (backlog.size() + result.num_batches - 1) / result.num_batches;
  size_t next_explain = 0;
  for (size_t start = 0; start < backlog.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, backlog.size());
    const std::vector<Row> batch(backlog.begin() + start,
                                 backlog.begin() + end);

    const auto t0 = Clock::now();
    unwrap_status(auditor.AppendAccessBatch(batch));
    const auto t1 = Clock::now();
    auto report = auditor.ExplainNew(stream_options);
    EBA_CHECK_MSG(report.ok(), report.status().ToString());
    EBA_CHECK(!report->full_reaudit);
    const auto t2 = Clock::now();
    // The audit-portal shape: a few per-access explains against accesses of
    // this batch, spread deterministically across it.
    for (size_t k = 0; k < options.explains_per_batch && !batch.empty();
         ++k) {
      const Row& row = batch[(next_explain++) % batch.size()];
      auto instances = auditor.engine().Explain(
          row[static_cast<size_t>(lid_col)].AsInt64());
      EBA_CHECK_MSG(instances.ok(), instances.status().ToString());
      ++result.per_access_explains;
    }
    const auto t3 = Clock::now();

    result.append_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    result.explain_new_seconds +=
        std::chrono::duration<double>(t2 - t1).count();
    result.per_access_seconds +=
        std::chrono::duration<double>(t3 - t2).count();
  }

  // --- Foreign-append interleave: batches of synthetic appointments, each
  // --- witnessing an already-streamed access, absorbed by the reverse
  // --- semi-join delta pass (cost ~ the delta, not the log). ---
  const size_t foreign_batches = options.foreign_batches > 0
                                     ? options.foreign_batches
                                     : (options.smoke ? 6 : 12);
  const Table* stream = data.db.GetTable("LogStream").value();
  auto stream_view = AccessLog::Wrap(stream);
  EBA_CHECK_MSG(stream_view.ok(), stream_view.status().ToString());
  Random foreign_rng(20260728);
  auto synth_appointments = [&] {
    std::vector<Row> rows;
    rows.reserve(options.foreign_rows_per_batch);
    for (size_t i = 0; i < options.foreign_rows_per_batch; ++i) {
      const AccessLog::Entry e =
          stream_view->Get(foreign_rng.Uniform(stream->num_rows()));
      rows.push_back({Value::Int64(e.patient), Value::Timestamp(e.time - 1800),
                      Value::Int64(e.user)});
    }
    return rows;
  };
  for (size_t b = 0; b < foreign_batches; ++b) {
    // The append stays outside the timed window, mirroring the full
    // re-audit measurement below: both sides time the ExplainNew only.
    unwrap_status(auditor.AppendRows("Appointments", synth_appointments()));
    const auto t0 = Clock::now();
    auto report = auditor.ExplainNew(stream_options);
    EBA_CHECK_MSG(report.ok(), report.status().ToString());
    EBA_CHECK(!report->full_reaudit);  // the delta pass, never a re-audit
    const auto t1 = Clock::now();
    result.foreign_delta_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    result.delta_explained_total += report->delta_explained_lids.size();
    result.delta_queries_total += report->delta_queries;
  }
  result.foreign_batches = foreign_batches;
  result.foreign_rows = foreign_batches * options.foreign_rows_per_batch;

  // The pre-delta-path cost of the same drift for the A/B ratio: discard
  // the audit state (exactly what foreign drift used to trigger) and time
  // the resulting from-row-0 audit.
  for (size_t k = 0; k < options.full_reaudits_timed; ++k) {
    unwrap_status(auditor.AppendRows("Appointments", synth_appointments()));
    result.reaudit_rows += options.foreign_rows_per_batch;
    auditor.ResetAudit();
    const auto t0 = Clock::now();
    auto report = auditor.ExplainNew(stream_options);
    EBA_CHECK_MSG(report.ok(), report.status().ToString());
    EBA_CHECK(report->audited_from == 0 &&
              report->audited_to == stream->num_rows());
    const auto t1 = Clock::now();
    result.full_reaudit_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    ++result.full_reaudits_timed;
  }

  const PlanCache::Stats cache_stats =
      auditor.engine().plan_cache()->stats();
  result.plan_hits = cache_stats.hits;
  result.plan_misses = cache_stats.misses;
  result.plan_rebinds = cache_stats.rebinds;
  result.plan_invalidations = cache_stats.invalidations;

  // Self-check: incremental state vs a fresh full audit of the final log.
  auto full = auditor.engine().ExplainAll();
  EBA_CHECK_MSG(full.ok(), full.status().ToString());
  std::unordered_set<int64_t> full_set(full->explained_lids.begin(),
                                       full->explained_lids.end());
  result.matches_full_explain_all = auditor.ExplainedSetEquals(full_set);
  result.final_coverage = full->Coverage();
  return result;
}

// ---------------------------------------------------------------------------
// Concurrent-ingest phase: what do snapshot-pinned readers cost the writer?
// Phase A appends the backlog with no readers (the append-only baseline);
// phase B replays the identical batches on an identical fresh hospital
// while reader threads continuously audit (ExplainNew) and serve
// per-access Explain calls against the live table. Both phases time only
// the AppendAccessBatch calls, so the ratio isolates what reader
// concurrency costs the writer — snapshot pins, epoch traffic, watermark
// publication — rather than generic CPU sharing between loop iterations.

struct ConcurrentIngestOptions {
  bool smoke = false;
  size_t num_batches = 0;  // 0 = default (64, smoke 16)
  int seed_days = 7;
  size_t audit_threads = 2;  // shards per concurrent ExplainNew
};

struct ConcurrentIngestResult {
  size_t streamed_rows = 0;
  size_t num_batches = 0;
  size_t concurrent_audits = 0;   // ExplainNew calls overlapping the appends
  size_t point_explains = 0;      // Explain calls overlapping the appends
  double append_only_seconds = 0.0;
  double concurrent_append_seconds = 0.0;
  /// Self-check: after quiescing, the concurrently-audited explained set
  /// must equal a fresh full ExplainAll over the final log.
  bool matches_full_explain_all = false;

  double AppendOnlyRowsPerSecond() const {
    return append_only_seconds > 0.0
               ? static_cast<double>(streamed_rows) / append_only_seconds
               : 0.0;
  }
  double ConcurrentRowsPerSecond() const {
    return concurrent_append_seconds > 0.0
               ? static_cast<double>(streamed_rows) / concurrent_append_seconds
               : 0.0;
  }
  /// The headline metric, gated with an absolute floor by compare_bench.py:
  /// writer throughput with concurrent readers relative to append-only.
  /// Near 1.0 when readers never block the writer; a regression to
  /// stop-the-world reads drags it toward the audit duty cycle. Saturates
  /// high if either phase is too fast for the clock to resolve.
  double ConcurrentAppendRelativeThroughput() const {
    if (append_only_seconds <= 0.0 || concurrent_append_seconds <= 0.0) {
      return 1e6;
    }
    return append_only_seconds / concurrent_append_seconds;
  }
};

inline ConcurrentIngestResult RunConcurrentIngestBench(
    const ConcurrentIngestOptions& options) {
  using Clock = std::chrono::steady_clock;
  auto unwrap_status = [](const Status& s) {
    EBA_CHECK_MSG(s.ok(), s.ToString());
  };

  ConcurrentIngestResult result;
  result.num_batches =
      options.num_batches > 0 ? options.num_batches : (options.smoke ? 16 : 64);

  // Both phases get an identical fresh hospital (the generator is seeded),
  // so the batch sequences are byte-identical and the timings comparable.
  struct Fixture {
    CareWebData data;
    std::vector<Row> backlog;
    std::unique_ptr<StreamingAuditor> auditor;
    std::vector<int64_t> seed_lids;  // exist for the whole run
  };
  auto make_fixture = [&options, &unwrap_status] {
    Fixture f;
    CareWebConfig config = CareWebConfig::Small();
    config.num_days = 14;
    auto generated = GenerateCareWeb(config);
    EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
    f.data = std::move(generated).value();
    const Table* source_log = f.data.db.GetTable("Log").value();
    auto source_view = AccessLog::Wrap(source_log);
    EBA_CHECK_MSG(source_view.ok(), source_view.status().ToString());
    auto slice = AddLogSlice(&f.data.db, "Log", "LogStream", 1,
                             options.seed_days, /*first_only=*/false);
    EBA_CHECK_MSG(slice.ok(), slice.status().ToString());
    std::unordered_set<size_t> seeded;
    for (size_t r : source_view->RowsInDayRange(1, options.seed_days)) {
      seeded.insert(r);
    }
    for (size_t r = 0; r < source_log->num_rows(); ++r) {
      if (!seeded.count(r)) f.backlog.push_back(source_log->GetRow(r));
    }
    auto created = StreamingAuditor::Create(&f.data.db, "LogStream");
    EBA_CHECK_MSG(created.ok(), created.status().ToString());
    f.auditor = std::make_unique<StreamingAuditor>(std::move(created).value());
    auto templates = TemplatesHandcraftedDirect(f.data.db, true);
    EBA_CHECK_MSG(templates.ok(), templates.status().ToString());
    for (const auto& tmpl : *templates) {
      unwrap_status(f.auditor->AddTemplate(tmpl));
    }
    const Table* stream = f.data.db.GetTable("LogStream").value();
    auto stream_view = AccessLog::Wrap(stream);
    EBA_CHECK_MSG(stream_view.ok(), stream_view.status().ToString());
    for (size_t r = 0; r < stream->num_rows(); ++r) {
      f.seed_lids.push_back(stream_view->Get(r).lid);
    }
    return f;
  };

  // --- Phase A: append-only baseline. -------------------------------------
  {
    Fixture a = make_fixture();
    result.streamed_rows = a.backlog.size();
    const size_t batch_size =
        (a.backlog.size() + result.num_batches - 1) / result.num_batches;
    for (size_t start = 0; start < a.backlog.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, a.backlog.size());
      const std::vector<Row> batch(a.backlog.begin() + start,
                                   a.backlog.begin() + end);
      const auto t0 = Clock::now();
      unwrap_status(a.auditor->AppendAccessBatch(batch));
      const auto t1 = Clock::now();
      result.append_only_seconds +=
          std::chrono::duration<double>(t1 - t0).count();
    }
  }

  // --- Phase B: the same appends under concurrent audits. ------------------
  {
    Fixture b = make_fixture();
    StreamingOptions stream_options;
    stream_options.num_threads = options.audit_threads;
    // Cold audit before the clock starts, so the readers replay warm plans
    // (the serving regime) instead of compiling during the measurement.
    auto first = b.auditor->ExplainNew(stream_options);
    EBA_CHECK_MSG(first.ok(), first.status().ToString());

    std::atomic<bool> done{false};
    std::atomic<size_t> audits{0};
    std::atomic<size_t> explains{0};
    std::thread auditing_reader([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto report = b.auditor->ExplainNew(stream_options);
        EBA_CHECK_MSG(report.ok(), report.status().ToString());
        EBA_CHECK(!report->full_reaudit);
        audits.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::thread point_reader([&] {
      size_t next = 0;
      while (!done.load(std::memory_order_acquire)) {
        const int64_t lid = b.seed_lids[next++ % b.seed_lids.size()];
        auto instances = b.auditor->engine().Explain(lid);
        EBA_CHECK_MSG(instances.ok(), instances.status().ToString());
        explains.fetch_add(1, std::memory_order_relaxed);
      }
    });

    // Start barrier: on a single-core box the whole append loop can finish
    // before the OS ever schedules a reader thread, which would time an
    // unloaded writer. Wait until both readers have completed at least one
    // iteration so the measured appends genuinely overlap snapshot readers.
    while (audits.load(std::memory_order_relaxed) == 0 ||
           explains.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }

    const size_t batch_size =
        (b.backlog.size() + result.num_batches - 1) / result.num_batches;
    for (size_t start = 0; start < b.backlog.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, b.backlog.size());
      const std::vector<Row> batch(b.backlog.begin() + start,
                                   b.backlog.begin() + end);
      const auto t0 = Clock::now();
      unwrap_status(b.auditor->AppendAccessBatch(batch));
      const auto t1 = Clock::now();
      result.concurrent_append_seconds +=
          std::chrono::duration<double>(t1 - t0).count();
    }
    done.store(true, std::memory_order_release);
    auditing_reader.join();
    point_reader.join();
    result.concurrent_audits = audits.load();
    result.point_explains = explains.load();

    // Quiesce and self-check: the concurrently-accumulated explained set
    // must equal a fresh full audit of the final log.
    auto last = b.auditor->ExplainNew(stream_options);
    EBA_CHECK_MSG(last.ok(), last.status().ToString());
    auto full = b.auditor->engine().ExplainAll();
    EBA_CHECK_MSG(full.ok(), full.status().ToString());
    std::unordered_set<int64_t> full_set(full->explained_lids.begin(),
                                         full->explained_lids.end());
    result.matches_full_explain_all = b.auditor->ExplainedSetEquals(full_set);
  }
  return result;
}

/// Emits the concurrent-ingest result as a "concurrent_ingest" member
/// (with trailing comma) for embedding inside the "streaming" JSON object.
inline void WriteConcurrentIngestJson(std::FILE* f,
                                      const ConcurrentIngestResult& r,
                                      const char* pad) {
  std::fprintf(f, "%s\"concurrent_ingest\": {\n", pad);
  std::fprintf(f, "%s  \"streamed_rows\": %zu,\n", pad, r.streamed_rows);
  std::fprintf(f, "%s  \"num_batches\": %zu,\n", pad, r.num_batches);
  std::fprintf(f, "%s  \"concurrent_audits\": %zu,\n", pad,
               r.concurrent_audits);
  std::fprintf(f, "%s  \"point_explains\": %zu,\n", pad, r.point_explains);
  std::fprintf(f, "%s  \"append_only_rows_per_second\": %.0f,\n", pad,
               r.AppendOnlyRowsPerSecond());
  std::fprintf(f, "%s  \"concurrent_rows_per_second\": %.0f,\n", pad,
               r.ConcurrentRowsPerSecond());
  std::fprintf(f, "%s  \"concurrent_append_relative_throughput\": %.3f,\n",
               pad, r.ConcurrentAppendRelativeThroughput());
  std::fprintf(f, "%s  \"matches_full_explain_all\": %s\n", pad,
               r.matches_full_explain_all ? "true" : "false");
  std::fprintf(f, "%s},\n", pad);
}

// ---------------------------------------------------------------------------
// Durability phase: WAL append overhead (A/B vs plain appends) and
// time-to-recover vs a from-scratch full re-audit after a simulated crash.

struct DurabilityBenchOptions {
  bool smoke = false;
  /// Store directory; empty = "<system temp>/eba_bench_durability".
  std::string dir;
  size_t num_batches = 0;  // 0 = default (24, smoke 8)
  int seed_days = 7;
  /// Log span; 0 = default (42 days, smoke 14). The full-mode log is kept
  /// large enough that the recovery-vs-reaudit ratio measures the O(log)
  /// re-audit against the O(checkpoint + tail) recovery, not two constants.
  int num_days = 0;
};

struct DurabilityBenchResult {
  size_t streamed_rows = 0;
  size_t wal_tail_rows = 0;  // rows committed to the WAL after the checkpoint
  double plain_append_seconds = 0.0;
  double wal_append_seconds = 0.0;
  double plain_audit_seconds = 0.0;  // per-batch ExplainNew, no WAL
  double wal_audit_seconds = 0.0;    // per-batch ExplainNew, WAL enabled

  double recover_seconds = 0.0;         // RecoverFrom wall time
  double recover_db_load_seconds = 0.0; // portion reloading column data
  double checkpoint_load_seconds = 0.0; // manifest + audit state + columns
  double wal_replay_seconds = 0.0;      // WAL suffix decode + apply
  double converge_seconds = 0.0;        // the one converging ExplainNew
  double full_reaudit_seconds = 0.0;    // audit-state-lost baseline
  size_t wal_records_replayed = 0;
  size_t wal_rows_replayed = 0;
  uint64_t checkpoint_seq = 0;
  /// Differential acceptance: the recovered auditor's explained set equals
  /// a fresh full ExplainAll over the recovered log.
  bool recovered_matches_full_explain_all = false;

  double PlainAppendsPerSecond() const {
    return plain_append_seconds > 0.0
               ? static_cast<double>(streamed_rows) / plain_append_seconds
               : 0.0;
  }
  double WalAppendsPerSecond() const {
    return wal_append_seconds > 0.0
               ? static_cast<double>(streamed_rows) / wal_append_seconds
               : 0.0;
  }
  /// Raw-append tripwire: WAL appends/s relative to plain appends/s. The
  /// in-memory columnar append runs at ~90 ns/row, and the WAL's floor —
  /// encode + CRC + one buffered write() per batch — is of the same order,
  /// so this ratio sits near 0.5 by construction; its absolute floor exists
  /// to catch structural regressions (an accidental fsync per row, an O(n^2)
  /// re-encode), not to bound overhead at the operating point.
  double WalAppendRelativeThroughput() const {
    const double plain = PlainAppendsPerSecond();
    return plain > 0.0 ? WalAppendsPerSecond() / plain : 0.0;
  }
  /// The gated overhead ceiling at the auditor's operating point: the
  /// serving loop (append a batch, audit it with ExplainNew) with the WAL
  /// enabled vs without. >= 0.75 means write-ahead durability costs at most
  /// 25% of the end-to-end ingest+audit throughput a deployment sees.
  double ServingRelativeThroughput() const {
    const double plain = plain_append_seconds + plain_audit_seconds;
    const double wal = wal_append_seconds + wal_audit_seconds;
    return wal > 0.0 ? plain / wal : 0.0;
  }
  /// Audit-state recovery cost: checkpoint+WAL replay plus the converging
  /// audit, minus the raw column reload that ANY restart pays.
  double AuditStateRecoveryMs() const {
    const double s =
        recover_seconds - recover_db_load_seconds + converge_seconds;
    return 1e3 * (s > 0.0 ? s : 0.0);
  }
  double FullReauditAfterRestartMs() const {
    return 1e3 * full_reaudit_seconds;
  }
  /// The gated recovery metric: recovering the audit state from the
  /// checkpoint + WAL vs re-deriving it with a from-row-0 audit. A recovery
  /// too fast for the clock to resolve saturates high — it must not read as
  /// a regression against the gate's absolute floor.
  double RecoverySpeedupVsFullReaudit() const {
    const double recovery_ms = AuditStateRecoveryMs();
    if (recovery_ms > 0.0) return FullReauditAfterRestartMs() / recovery_ms;
    return FullReauditAfterRestartMs() > 0.0 ? 1e6 : 0.0;
  }
};

inline DurabilityBenchResult RunDurabilityBench(
    const DurabilityBenchOptions& options) {
  using Clock = std::chrono::steady_clock;
  auto unwrap_status = [](const Status& s) {
    EBA_CHECK_MSG(s.ok(), s.ToString());
  };
  DurabilityBenchResult result;
  const size_t num_batches =
      options.num_batches > 0 ? options.num_batches : (options.smoke ? 8 : 24);
  const std::string dir =
      !options.dir.empty()
          ? options.dir
          : (std::filesystem::temp_directory_path() / "eba_bench_durability")
                .string();

  CareWebConfig config = CareWebConfig::Small();
  config.num_days =
      options.num_days > 0 ? options.num_days : (options.smoke ? 14 : 42);
  auto generated = GenerateCareWeb(config);
  EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
  CareWebData data = std::move(generated).value();

  const Table* source_log = data.db.GetTable("Log").value();
  auto source_view = AccessLog::Wrap(source_log);
  EBA_CHECK_MSG(source_view.ok(), source_view.status().ToString());
  unwrap_status(AddLogSlice(&data.db, "Log", "LogStream", 1, options.seed_days,
                            /*first_only=*/false)
                    .status());
  std::unordered_set<size_t> seeded;
  for (size_t r : source_view->RowsInDayRange(1, options.seed_days)) {
    seeded.insert(r);
  }
  std::vector<Row> backlog;
  backlog.reserve(source_log->num_rows() - seeded.size());
  for (size_t r = 0; r < source_log->num_rows(); ++r) {
    if (!seeded.count(r)) backlog.push_back(source_log->GetRow(r));
  }
  result.streamed_rows = backlog.size();
  auto templates = TemplatesHandcraftedDirect(data.db, true);
  EBA_CHECK_MSG(templates.ok(), templates.status().ToString());
  const size_t batch_size = (backlog.size() + num_batches - 1) / num_batches;

  // The serving loop a deployment runs: append a batch, audit it. Append
  // and audit time are accumulated separately so the raw-append tripwire
  // and the operating-point overhead are both measurable from one pass.
  auto serve_batches = [&](StreamingAuditor* auditor, double* append_seconds,
                           double* audit_seconds) {
    for (size_t start = 0; start < backlog.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, backlog.size());
      const std::vector<Row> batch(backlog.begin() + start,
                                   backlog.begin() + end);
      const auto t0 = Clock::now();
      unwrap_status(auditor->AppendAccessBatch(batch));
      const auto t1 = Clock::now();
      auto report = auditor->ExplainNew();
      EBA_CHECK_MSG(report.ok(), report.status().ToString());
      const auto t2 = Clock::now();
      *append_seconds += std::chrono::duration<double>(t1 - t0).count();
      *audit_seconds += std::chrono::duration<double>(t2 - t1).count();
    }
  };

  // Phase A (no WAL) and phase B (WAL-committed before apply) run the
  // identical serving loop on fresh clones, interleaved A B A B with the
  // fastest repetition kept per phase: the first pass through either phase
  // pays one-time process costs (allocator growth, first-touch pages) that
  // would otherwise land entirely on whichever phase ran first and swamp
  // the ~100 ns/row WAL delta the ratio exists to measure. kNone sync
  // isolates the structural overhead (encode + CRC + one write()) from
  // fsync latency, which is policy, not subsystem cost.
  DurabilityOptions dopts;
  dopts.dir = dir;
  dopts.sync = WalSync::kNone;
  dopts.checkpoint_after_wal_bytes = 0;  // manual checkpoints only
  constexpr int kReps = 3;
  double plain_serve_best = std::numeric_limits<double>::infinity();
  double wal_serve_best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    {
      Database plain_db = data.db.Clone();
      auto created = StreamingAuditor::Create(&plain_db, "LogStream");
      EBA_CHECK_MSG(created.ok(), created.status().ToString());
      StreamingAuditor auditor = std::move(created).value();
      for (const auto& tmpl : *templates) {
        unwrap_status(auditor.AddTemplate(tmpl));
      }
      double append_s = 0.0;
      double audit_s = 0.0;
      serve_batches(&auditor, &append_s, &audit_s);
      if (append_s + audit_s < plain_serve_best) {
        plain_serve_best = append_s + audit_s;
        result.plain_append_seconds = append_s;
        result.plain_audit_seconds = audit_s;
      }
    }
    {
      // Every repetition rebuilds the store from scratch; the final one
      // leaves the checkpoint + WAL tail on disk for the recovery phase.
      unwrap_status(RealEnv()->RemoveAll(dir));
      Database wal_db = data.db.Clone();
      auto created = StreamingAuditor::Create(&wal_db, "LogStream");
      EBA_CHECK_MSG(created.ok(), created.status().ToString());
      StreamingAuditor auditor = std::move(created).value();
      for (const auto& tmpl : *templates) {
        unwrap_status(auditor.AddTemplate(tmpl));
      }
      unwrap_status(auditor.EnableDurability(dopts));
      double append_s = 0.0;
      double audit_s = 0.0;
      serve_batches(&auditor, &append_s, &audit_s);
      if (append_s + audit_s < wal_serve_best) {
        wal_serve_best = append_s + audit_s;
        result.wal_append_seconds = append_s;
        result.wal_audit_seconds = audit_s;
      }

      // Checkpoint the audited state, then leave a WAL tail past the
      // checkpoint so recovery exercises both the image load and the replay.
      unwrap_status(auditor.Checkpoint());
      std::vector<Row> tail;
      for (size_t r = 0; r + 1 < backlog.size() && tail.size() < 64; r += 2) {
        tail.push_back(backlog[r]);  // duplicate lids are fine: it is drift
      }
      unwrap_status(auditor.AppendAccessBatch(tail));
      result.wal_tail_rows = tail.size();
    }  // crash: the auditor and its database go away
  }

  // Restart + recovery, timed. The converging audit covers the WAL tail.
  Database recovered_db;
  RecoveryStats stats;
  const auto r0 = Clock::now();
  auto recovered_or =
      StreamingAuditor::RecoverFrom(&recovered_db, "LogStream", dopts, &stats);
  EBA_CHECK_MSG(recovered_or.ok(), recovered_or.status().ToString());
  const auto r1 = Clock::now();
  StreamingAuditor recovered = std::move(recovered_or).value();
  for (const auto& tmpl : *templates) {
    unwrap_status(recovered.AddTemplate(tmpl));
  }
  const auto c0 = Clock::now();
  auto converge = recovered.ExplainNew();
  EBA_CHECK_MSG(converge.ok(), converge.status().ToString());
  const auto c1 = Clock::now();
  result.recover_seconds = std::chrono::duration<double>(r1 - r0).count();
  result.recover_db_load_seconds = stats.db_load_seconds;
  result.checkpoint_load_seconds = stats.checkpoint_load_seconds;
  result.wal_replay_seconds = stats.wal_replay_seconds;
  result.converge_seconds = std::chrono::duration<double>(c1 - c0).count();
  result.wal_records_replayed = stats.wal_records_replayed;
  result.wal_rows_replayed = stats.wal_rows_replayed;
  result.checkpoint_seq = stats.checkpoint_seq;

  // Baseline: the same restart WITHOUT durable audit state — the explained
  // set and watermark are gone, so deriving them again is a from-row-0
  // audit of the whole log. Run on a fresh auditor over a fresh clone so it
  // pays the same cold costs (plan compilation, index builds) the converge
  // audit above paid; reusing `recovered` would hand the baseline a warm
  // plan cache and warm indexes no real restart has.
  Database cold_db = recovered_db.Clone();
  {
    auto fresh_or = StreamingAuditor::Create(&cold_db, "LogStream");
    EBA_CHECK_MSG(fresh_or.ok(), fresh_or.status().ToString());
    StreamingAuditor fresh = std::move(fresh_or).value();
    for (const auto& tmpl : *templates) {
      unwrap_status(fresh.AddTemplate(tmpl));
    }
    const auto f0 = Clock::now();
    auto reaudit = fresh.ExplainNew();
    EBA_CHECK_MSG(reaudit.ok(), reaudit.status().ToString());
    const auto f1 = Clock::now();
    result.full_reaudit_seconds =
        std::chrono::duration<double>(f1 - f0).count();
  }

  // Differential acceptance: recovered state == fresh ExplainAll on a clone.
  {
    Database clone = recovered_db.Clone();
    auto oracle = ExplanationEngine::Create(&clone, "LogStream");
    EBA_CHECK_MSG(oracle.ok(), oracle.status().ToString());
    for (const auto& tmpl : *templates) {
      unwrap_status(oracle->AddTemplate(tmpl));
    }
    auto full = oracle->ExplainAll();
    EBA_CHECK_MSG(full.ok(), full.status().ToString());
    std::unordered_set<int64_t> full_set(full->explained_lids.begin(),
                                         full->explained_lids.end());
    result.recovered_matches_full_explain_all =
        recovered.ExplainedSetEquals(full_set);
  }
  unwrap_status(RealEnv()->RemoveAll(dir));
  return result;
}

/// Emits the durability result as a JSON object body, indented with `pad`
/// spaces, e.g. under "streaming"."durability" in BENCH_executor.json.
inline void WriteDurabilityJson(std::FILE* f, const DurabilityBenchResult& r,
                                const char* pad) {
  std::fprintf(f, "%s\"streamed_rows\": %zu,\n", pad, r.streamed_rows);
  std::fprintf(f, "%s\"wal_tail_rows\": %zu,\n", pad, r.wal_tail_rows);
  std::fprintf(f, "%s\"plain_appends_per_second\": %.0f,\n", pad,
               r.PlainAppendsPerSecond());
  std::fprintf(f, "%s\"wal_appends_per_second\": %.0f,\n", pad,
               r.WalAppendsPerSecond());
  std::fprintf(f, "%s\"wal_append_relative_throughput\": %.3f,\n", pad,
               r.WalAppendRelativeThroughput());
  std::fprintf(f, "%s\"durable_serving_relative_throughput\": %.3f,\n", pad,
               r.ServingRelativeThroughput());
  std::fprintf(f, "%s\"recover_ms\": %.3f,\n", pad, 1e3 * r.recover_seconds);
  std::fprintf(f, "%s\"recover_db_load_ms\": %.3f,\n", pad,
               1e3 * r.recover_db_load_seconds);
  std::fprintf(f, "%s\"checkpoint_load_ms\": %.3f,\n", pad,
               1e3 * r.checkpoint_load_seconds);
  std::fprintf(f, "%s\"wal_replay_ms\": %.3f,\n", pad,
               1e3 * r.wal_replay_seconds);
  std::fprintf(f, "%s\"converge_audit_ms\": %.3f,\n", pad,
               1e3 * r.converge_seconds);
  std::fprintf(f, "%s\"audit_state_recovery_ms\": %.3f,\n", pad,
               r.AuditStateRecoveryMs());
  std::fprintf(f, "%s\"full_reaudit_after_restart_ms\": %.3f,\n", pad,
               r.FullReauditAfterRestartMs());
  std::fprintf(f, "%s\"recovery_speedup_vs_full_reaudit\": %.2f,\n", pad,
               r.RecoverySpeedupVsFullReaudit());
  std::fprintf(f, "%s\"wal_records_replayed\": %zu,\n", pad,
               r.wal_records_replayed);
  std::fprintf(f, "%s\"wal_rows_replayed\": %zu,\n", pad,
               r.wal_rows_replayed);
  std::fprintf(f, "%s\"checkpoint_seq\": %llu,\n", pad,
               static_cast<unsigned long long>(r.checkpoint_seq));
  std::fprintf(f, "%s\"recovered_matches_full_explain_all\": %s\n", pad,
               r.recovered_matches_full_explain_all ? "true" : "false");
}

/// Emits the streaming result as a JSON object body (no surrounding braces'
/// key), indented with `pad` spaces, e.g. under "streaming" in
/// BENCH_executor.json.
inline void WriteStreamingJson(std::FILE* f, const StreamingBenchResult& r,
                               const char* pad) {
  std::fprintf(f, "%s\"initial_rows\": %zu,\n", pad, r.initial_rows);
  std::fprintf(f, "%s\"streamed_rows\": %zu,\n", pad, r.streamed_rows);
  std::fprintf(f, "%s\"num_batches\": %zu,\n", pad, r.num_batches);
  std::fprintf(f, "%s\"templates\": %zu,\n", pad, r.num_templates);
  std::fprintf(f, "%s\"appends_per_second\": %.0f,\n", pad,
               r.AppendsPerSecond());
  std::fprintf(f, "%s\"explain_new_ms_per_batch\": %.3f,\n", pad,
               r.ExplainNewMsPerBatch());
  std::fprintf(f, "%s\"per_access_explain_ms\": %.3f,\n", pad,
               r.PerAccessExplainMs());
  std::fprintf(f, "%s\"plan_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"rebinds\": %llu, \"invalidations\": %llu},\n",
               pad, static_cast<unsigned long long>(r.plan_hits),
               static_cast<unsigned long long>(r.plan_misses),
               static_cast<unsigned long long>(r.plan_rebinds),
               static_cast<unsigned long long>(r.plan_invalidations));
  std::fprintf(f, "%s\"plan_cache_hit_rate\": %.3f,\n", pad,
               r.PlanCacheHitRate());
  std::fprintf(f, "%s\"foreign_append\": {\n", pad);
  std::fprintf(f, "%s  \"batches\": %zu,\n", pad, r.foreign_batches);
  std::fprintf(f, "%s  \"rows\": %zu,\n", pad, r.foreign_rows);
  std::fprintf(f, "%s  \"delta_ms_per_batch\": %.3f,\n", pad,
               r.ForeignDeltaMsPerBatch());
  std::fprintf(f, "%s  \"full_reaudit_ms\": %.3f,\n", pad, r.FullReauditMs());
  std::fprintf(f, "%s  \"full_reaudit_extra_rows\": %zu,\n", pad,
               r.reaudit_rows);
  std::fprintf(f, "%s  \"delta_explained_lids\": %zu,\n", pad,
               r.delta_explained_total);
  std::fprintf(f, "%s  \"delta_queries\": %zu,\n", pad,
               r.delta_queries_total);
  std::fprintf(f, "%s  \"speedup_delta_vs_full_reaudit\": %.2f\n", pad,
               r.DeltaSpeedupVsFullReaudit());
  std::fprintf(f, "%s},\n", pad);
  std::fprintf(f, "%s\"final_coverage\": %.3f,\n", pad, r.final_coverage);
  std::fprintf(f, "%s\"matches_full_explain_all\": %s\n", pad,
               r.matches_full_explain_all ? "true" : "false");
}

}  // namespace eba

#endif  // EBA_BENCH_BENCH_STREAMING_UTIL_H_
