#!/usr/bin/env python3
"""Bench-regression gate: compare a freshly generated BENCH_executor.json
against the committed baseline and fail on a >threshold regression.

Only machine-portable, higher-is-better metrics are compared:

  * keys containing "speedup"  — ratios of two timings taken on the same
    machine in the same run, so they transfer between the container that
    produced the committed baseline and the CI runner;
  * keys containing "hit_rate" / "coverage" — deterministic workload
    properties (the streaming plan-cache hit rate is the ISSUE-4
    acceptance metric);
  * "matches_full_explain_all" — a boolean equivalence self-check that must
    simply stay true;
  * keys ending in "byte_identical" — the serving bench's served-vs-
    in-process equivalence booleans (ISSUE 10), gated like the other
    equivalence flags: they must stay true.

Absolute timings (seconds_per_iter, appends_per_second, ...ms...) are
machine-dependent and are reported but never gated on. Speedup metrics with
baseline < MIN_GATED_SPEEDUP have no headroom above noise (e.g. the
probe-bound distinct-lid sweep at ~1.0x) and are skipped too.

Every bench JSON records the machine it ran on ("machine.num_cores", see
bench/bench_machine.h). When the baseline and the candidate ran on machines
with different core counts, relative comparisons are meaningless for the
parallelism-sensitive speedups (a 4-core runner legitimately reports 3x
where the 1-core container that produced the committed baseline reports
1.0x — and vice versa), so baseline-derived relative gates downgrade to
warnings. Absolute floors and boolean equivalence checks are
machine-independent acceptance criteria and stay hard either way.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]
Exit status: 0 ok, 1 regression (or missing metric), 2 usage error.
"""

import argparse
import json
import os
import sys

MIN_GATED_SPEEDUP = 1.2

# Structure every bench JSON must have before any gating runs: the harness
# always emits a top-level "benchmarks" object holding the per-benchmark
# metric groups. Validating up front turns "the bench crashed halfway" or
# "the artifact path is wrong" into a clear exit-2 diagnostic instead of a
# traceback or a silent zero-metric pass.
REQUIRED_TOP_LEVEL_KEYS = ("benchmarks",)

# Absolute floors that apply regardless of the baseline (acceptance
# criteria, not relative regressions): the streaming plan-cache hit rate
# must stay >= 0.9 under interleaved append/explain (ISSUE 4), a
# foreign-table append must stay much cheaper to absorb via the reverse
# semi-join delta pass than via the full re-audit it used to trigger
# (ISSUE 5; a regression to re-audit-like cost puts the ratio near 1), and
# for ISSUE 7: write-ahead durability must cost at most 25% of the serving
# loop's (append + audit) throughput, the raw-append WAL ratio must stay
# above a structural tripwire (an in-memory columnar append runs ~90 ns/row
# and the WAL's encode+CRC+write floor is of the same order, so ~0.5 is the
# physical operating point — 0.35 catches an accidental fsync-per-row or
# O(n^2) re-encode), and recovering the audit state from checkpoint + WAL
# must stay >= 10x faster than re-deriving it with a from-row-0 audit.
ABSOLUTE_FLOORS = {
    "benchmarks.streaming.plan_cache_hit_rate": 0.9,
    "streaming.plan_cache_hit_rate": 0.9,
    # ISSUE 9: snapshot-pinned readers must not halve the writer — append
    # throughput under concurrent audits stays >= 0.5x append-only. Only
    # meaningful with the writer on its own core (see
    # ABSOLUTE_FLOOR_MIN_CORES): on one core the ratio measures the OS
    # scheduler splitting the core three ways (~0.3x fair share), not lock
    # contention — a writer actually serialized behind audits sits far
    # lower (~0.04x, one full audit per append batch).
    "benchmarks.streaming.concurrent_ingest"
    ".concurrent_append_relative_throughput": 0.5,
    "streaming.concurrent_ingest.concurrent_append_relative_throughput": 0.5,
    "benchmarks.streaming.foreign_append.speedup_delta_vs_full_reaudit": 5.0,
    "streaming.foreign_append.speedup_delta_vs_full_reaudit": 5.0,
    "benchmarks.durability.wal_append_relative_throughput": 0.35,
    "durability.wal_append_relative_throughput": 0.35,
    "benchmarks.durability.durable_serving_relative_throughput": 0.75,
    "durability.durable_serving_relative_throughput": 0.75,
    "benchmarks.durability.recovery_speedup_vs_full_reaudit": 10.0,
    "durability.recovery_speedup_vs_full_reaudit": 10.0,
}

# Saturated ratios: the numerator (a full re-audit) is tens of ms while the
# denominator (a delta audit or checkpoint-state recovery) sits near the
# timer floor, so the recorded value legitimately swings by integer factors
# across machines. These are gated against their ABSOLUTE_FLOORS entry only
# — a regression back to re-audit-like cost drops them to ~1 and still
# fails loudly. Listed explicitly (not derived from ABSOLUTE_FLOORS) so
# adding an extra absolute floor to a normal speedup metric never disables
# its relative gate.
SATURATED_METRICS = {
    "benchmarks.streaming.foreign_append.speedup_delta_vs_full_reaudit",
    "streaming.foreign_append.speedup_delta_vs_full_reaudit",
    "benchmarks.durability.recovery_speedup_vs_full_reaudit",
    "durability.recovery_speedup_vs_full_reaudit",
    # Not a saturated ratio but the same gating shape: the raw-append WAL
    # ratio compares two sub-millisecond-per-batch timings and swings with
    # scheduler noise, so only its structural-tripwire absolute floor is
    # meaningful — a lucky-fast baseline must not turn that noise into a
    # relative regression.
    "benchmarks.durability.wal_append_relative_throughput",
    "durability.wal_append_relative_throughput",
    # Same shape again: a ratio of two append-phase timings that sits near
    # 1.0 and swings with scheduler noise — only the absolute floor gates.
    "benchmarks.streaming.concurrent_ingest"
    ".concurrent_append_relative_throughput",
    "streaming.concurrent_ingest.concurrent_append_relative_throughput",
}

# Concurrency floors only gate when the *current* run had at least this many
# cores: with fewer, the busy reader threads and the writer time-share one
# CPU and the ratio reflects scheduler fair-share, not blocking. Below the
# minimum (or when the current JSON predates the machine block) the floor
# downgrades to a warning, mirroring bench_scaling's self-skipped speedup
# gate on small machines. The CI bench job runs on a multi-core runner, so
# the floor stays hard where it is meaningful.
ABSOLUTE_FLOOR_MIN_CORES = {
    "benchmarks.streaming.concurrent_ingest"
    ".concurrent_append_relative_throughput": 2,
    "streaming.concurrent_ingest.concurrent_append_relative_throughput": 2,
}


def leaves(node, prefix=""):
    """Yields (dotted_path, value) for every scalar leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from leaves(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, (int, float, bool)):
        yield prefix, node


def gated(path, value):
    leaf = path.rsplit(".", 1)[-1]
    # Covers both the streaming "matches_full_explain_all" and the
    # durability "recovered_matches_full_explain_all" equivalence bits.
    if leaf.endswith("matches_full_explain_all"):
        return True
    # The serving bench's served-vs-in-process equivalence booleans.
    if leaf.endswith("byte_identical"):
        return True
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    # Acceptance-criteria metrics are always gated: the MIN_GATED_SPEEDUP
    # noise skip below must not silently disable an absolute floor just
    # because a (possibly already-regressed) baseline value is small.
    if path in ABSOLUTE_FLOORS:
        return True
    if "hit_rate" in leaf or "coverage" in leaf:
        return True
    if "speedup" in leaf:
        return value >= MIN_GATED_SPEEDUP
    return False


def load_bench_json(path, role):
    """Loads and structurally validates one bench JSON; exits 2 with a
    diagnostic naming the role (baseline/current) on any problem."""
    if not os.path.exists(path):
        hint = (" (was the committed baseline renamed or not checked out?)"
                if role == "baseline"
                else " (did the bench binary run and write its --json path?)")
        print(f"error: {role} file not found: {path}{hint}", file=sys.stderr)
        sys.exit(2)
    try:
        with open(path) as f:
            data = json.load(f)
    except json.JSONDecodeError as e:
        print(f"error: {role} file {path} is not valid JSON: {e} "
              "(truncated bench run?)", file=sys.stderr)
        sys.exit(2)
    except OSError as e:
        print(f"error: cannot read {role} file {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"error: {role} file {path} must hold a JSON object, got "
              f"{type(data).__name__}", file=sys.stderr)
        sys.exit(2)
    for key in REQUIRED_TOP_LEVEL_KEYS:
        if not isinstance(data.get(key), dict):
            print(f"error: {role} file {path} is missing the required "
                  f"'{key}' object — not a bench JSON?", file=sys.stderr)
            sys.exit(2)
    return dict(leaves(data))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional regression (default .25)")
    args = parser.parse_args()

    baseline = load_bench_json(args.baseline, "baseline")
    current = load_bench_json(args.current, "current")

    base_cores = baseline.get("machine.num_cores")
    cur_cores = current.get("machine.num_cores")
    core_mismatch = (base_cores is not None and cur_cores is not None
                     and base_cores != cur_cores)
    if core_mismatch:
        print(f"note: baseline ran on {base_cores} core(s), current on "
              f"{cur_cores} — relative gates downgraded to warnings "
              "(absolute floors and equivalence booleans stay hard)")

    failures = []
    warnings = 0
    compared = 0
    for path, base_value in sorted(baseline.items()):
        if not gated(path, base_value):
            continue
        if path not in current:
            failures.append(f"{path}: present in baseline, missing in current")
            continue
        cur_value = current[path]
        compared += 1
        # leaves() only yields scalars, but a malformed current file can
        # still put a bool where the baseline holds a number (or vice
        # versa); call that out as a structural failure, not a comparison.
        if isinstance(base_value, bool) != isinstance(cur_value, bool):
            failures.append(
                f"{path}: type mismatch — baseline "
                f"{type(base_value).__name__} vs current "
                f"{type(cur_value).__name__}")
            continue
        if isinstance(base_value, bool):
            ok = cur_value == base_value or cur_value is True
            verdict = "ok" if ok else "REGRESSION"
            print(f"{verdict:10s} {path}: {base_value} -> {cur_value}")
            if not ok:
                failures.append(f"{path}: {base_value} -> {cur_value}")
            continue
        # A relative floor is derived from the baseline value and only
        # meaningful between comparable machines; an absolute floor is an
        # acceptance criterion and always enforced.
        if path in SATURATED_METRICS:
            floor = ABSOLUTE_FLOORS[path]
            relative = False
        else:
            floor = base_value * (1.0 - args.threshold)
            relative = True
            if path in ABSOLUTE_FLOORS:
                absolute = ABSOLUTE_FLOORS[path]
                if core_mismatch:
                    floor = absolute
                    relative = False
                else:
                    floor = max(floor, absolute)
            elif core_mismatch:
                # Relative-only metric across different machines: report it,
                # warn if it would have failed, never gate.
                ok = cur_value >= floor
                verdict = "ok" if ok else "warn(cores)"
                if not ok:
                    warnings += 1
                print(f"{verdict:10s} {path}: baseline {base_value:.3f}, "
                      f"current {cur_value:.3f} (floor {floor:.3f}, "
                      "not gated across core counts)")
                continue
        min_cores = ABSOLUTE_FLOOR_MIN_CORES.get(path)
        if (not relative and min_cores is not None
                and (cur_cores is None or cur_cores < min_cores)):
            ok = cur_value >= floor
            verdict = "ok" if ok else "warn(cores)"
            if not ok:
                warnings += 1
            print(f"{verdict:10s} {path}: baseline {base_value:.3f}, "
                  f"current {cur_value:.3f} (floor {floor:.3f} needs >= "
                  f"{min_cores} cores to gate; current ran on "
                  f"{cur_cores if cur_cores is not None else 'unknown'})")
            continue
        ok = cur_value >= floor
        verdict = "ok" if ok else "REGRESSION"
        kind = "relative " if relative else "absolute "
        print(f"{verdict:10s} {path}: baseline {base_value:.3f}, "
              f"current {cur_value:.3f} ({kind}floor {floor:.3f})")
        if not ok:
            failures.append(
                f"{path}: {cur_value:.3f} < floor {floor:.3f} "
                f"(baseline {base_value:.3f})")

    if compared == 0:
        print("no gated metrics found in baseline", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{100 * args.threshold:.0f}%:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    suffix = f" ({warnings} ungated warning(s))" if warnings else ""
    print(f"\nall {compared} gated metrics within "
          f"{100 * args.threshold:.0f}% of baseline{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
