#!/usr/bin/env python3
"""Bench-regression gate: compare a freshly generated BENCH_executor.json
against the committed baseline and fail on a >threshold regression.

Only machine-portable, higher-is-better metrics are compared:

  * keys containing "speedup"  — ratios of two timings taken on the same
    machine in the same run, so they transfer between the container that
    produced the committed baseline and the CI runner;
  * keys containing "hit_rate" / "coverage" — deterministic workload
    properties (the streaming plan-cache hit rate is the ISSUE-4
    acceptance metric);
  * "matches_full_explain_all" — a boolean equivalence self-check that must
    simply stay true.

Absolute timings (seconds_per_iter, appends_per_second, ...ms...) are
machine-dependent and are reported but never gated on. Speedup metrics with
baseline < MIN_GATED_SPEEDUP have no headroom above noise (e.g. the
probe-bound distinct-lid sweep at ~1.0x) and are skipped too.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]
Exit status: 0 ok, 1 regression (or missing metric), 2 usage error.
"""

import argparse
import json
import sys

MIN_GATED_SPEEDUP = 1.2

# Absolute floors that apply regardless of the baseline (acceptance
# criteria, not relative regressions): the streaming plan-cache hit rate
# must stay >= 0.9 under interleaved append/explain (ISSUE 4), and a
# foreign-table append must stay much cheaper to absorb via the reverse
# semi-join delta pass than via the full re-audit it used to trigger
# (ISSUE 5; a regression to re-audit-like cost puts the ratio near 1).
ABSOLUTE_FLOORS = {
    "benchmarks.streaming.plan_cache_hit_rate": 0.9,
    "streaming.plan_cache_hit_rate": 0.9,
    "benchmarks.streaming.foreign_append.speedup_delta_vs_full_reaudit": 5.0,
    "streaming.foreign_append.speedup_delta_vs_full_reaudit": 5.0,
}

# Saturated ratios: the numerator (a full re-audit) is tens of ms while the
# denominator (a delta audit) sits near the timer floor, so the recorded
# value legitimately swings by integer factors across machines. These are
# gated against their ABSOLUTE_FLOORS entry only — a regression back to
# re-audit-like cost drops them to ~1 and still fails loudly. Listed
# explicitly (not derived from ABSOLUTE_FLOORS) so adding an extra absolute
# floor to a normal speedup metric never disables its relative gate.
SATURATED_METRICS = {
    "benchmarks.streaming.foreign_append.speedup_delta_vs_full_reaudit",
    "streaming.foreign_append.speedup_delta_vs_full_reaudit",
}


def leaves(node, prefix=""):
    """Yields (dotted_path, value) for every scalar leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from leaves(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, (int, float, bool)):
        yield prefix, node


def gated(path, value):
    leaf = path.rsplit(".", 1)[-1]
    if leaf == "matches_full_explain_all":
        return True
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    # Acceptance-criteria metrics are always gated: the MIN_GATED_SPEEDUP
    # noise skip below must not silently disable an absolute floor just
    # because a (possibly already-regressed) baseline value is small.
    if path in ABSOLUTE_FLOORS:
        return True
    if "hit_rate" in leaf or "coverage" in leaf:
        return True
    if "speedup" in leaf:
        return value >= MIN_GATED_SPEEDUP
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional regression (default .25)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = dict(leaves(json.load(f)))
    with open(args.current) as f:
        current = dict(leaves(json.load(f)))

    failures = []
    compared = 0
    for path, base_value in sorted(baseline.items()):
        if not gated(path, base_value):
            continue
        if path not in current:
            failures.append(f"{path}: present in baseline, missing in current")
            continue
        cur_value = current[path]
        compared += 1
        if isinstance(base_value, bool):
            ok = cur_value == base_value or cur_value is True
            verdict = "ok" if ok else "REGRESSION"
            print(f"{verdict:10s} {path}: {base_value} -> {cur_value}")
            if not ok:
                failures.append(f"{path}: {base_value} -> {cur_value}")
            continue
        if path in SATURATED_METRICS:
            floor = ABSOLUTE_FLOORS[path]
        else:
            floor = base_value * (1.0 - args.threshold)
            if path in ABSOLUTE_FLOORS:
                floor = max(floor, ABSOLUTE_FLOORS[path])
        ok = cur_value >= floor
        verdict = "ok" if ok else "REGRESSION"
        print(f"{verdict:10s} {path}: baseline {base_value:.3f}, "
              f"current {cur_value:.3f} (floor {floor:.3f})")
        if not ok:
            failures.append(
                f"{path}: {cur_value:.3f} < floor {floor:.3f} "
                f"(baseline {base_value:.3f})")

    if compared == 0:
        print("no gated metrics found in baseline", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{100 * args.threshold:.0f}%:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} gated metrics within "
          f"{100 * args.threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
