// bench_streaming: the streaming serving-loop benchmark — sustained
// AppendAccessBatch calls interleaved with incremental ExplainNew audits
// and per-access Explain requests over the 14-day Small hospital log.
//
//   ./bench_streaming [--smoke] [--batches=N] [--threads=N]
//                     [--json[=PATH]]    (default PATH BENCH_streaming.json)
//
// Exits non-zero when the incremental explained set diverges from a fresh
// full ExplainAll — the equivalence self-check doubles as a CI guard. The
// headline metric is the plan-cache hit rate under appends (>= 90% with
// watermark re-binding; ~0% under the old epoch-invalidation behavior).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_machine.h"
#include "bench/bench_streaming_util.h"

int main(int argc, char** argv) {
  eba::StreamingBenchOptions options;
  bool write_json = false;
  std::string json_path = "BENCH_streaming.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strncmp(argv[i], "--batches=", 10) == 0) {
      options.num_batches = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options.num_threads = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      write_json = true;
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const eba::StreamingBenchResult r = eba::RunStreamingBench(options);

  eba::ConcurrentIngestOptions concurrent_options;
  concurrent_options.smoke = options.smoke;
  if (options.num_batches > 0) {
    concurrent_options.num_batches = options.num_batches;
  }
  const eba::ConcurrentIngestResult ci =
      eba::RunConcurrentIngestBench(concurrent_options);

  std::printf("streaming ingest: %zu seed rows + %zu streamed rows in %zu "
              "batches, %zu templates, %zu threads\n",
              r.initial_rows, r.streamed_rows, r.num_batches,
              r.num_templates, options.num_threads == 0 ? 1u
                                                        : options.num_threads);
  std::printf("appends            : %.0f rows/s (%.3f s total)\n",
              r.AppendsPerSecond(), r.append_seconds);
  std::printf("ExplainNew         : %.3f ms/batch (%.3f s total)\n",
              r.ExplainNewMsPerBatch(), r.explain_new_seconds);
  std::printf("per-access Explain : %.3f ms/request (%zu requests)\n",
              r.PerAccessExplainMs(), r.per_access_explains);
  std::printf("plan cache         : %.1f%% hit rate (%llu hits, %llu misses, "
              "%llu rebinds, %llu invalidations)\n",
              100.0 * r.PlanCacheHitRate(),
              static_cast<unsigned long long>(r.plan_hits),
              static_cast<unsigned long long>(r.plan_misses),
              static_cast<unsigned long long>(r.plan_rebinds),
              static_cast<unsigned long long>(r.plan_invalidations));
  std::printf("foreign appends    : %zu rows in %zu batches, %.3f ms/delta "
              "audit (%zu lids retroactively explained, %zu reverse "
              "semi-joins)\n",
              r.foreign_rows, r.foreign_batches, r.ForeignDeltaMsPerBatch(),
              r.delta_explained_total, r.delta_queries_total);
  std::printf("delta vs re-audit  : %.1fx (full re-audit %.3f ms)\n",
              r.DeltaSpeedupVsFullReaudit(), r.FullReauditMs());
  std::printf("final coverage     : %.1f%% (%s full ExplainAll)\n",
              100.0 * r.final_coverage,
              r.matches_full_explain_all ? "matches" : "DIVERGES FROM");
  std::printf("concurrent ingest  : %.0f rows/s under %zu concurrent audits "
              "+ %zu explains vs %.0f rows/s append-only (%.2fx, %s full "
              "ExplainAll)\n",
              ci.ConcurrentRowsPerSecond(), ci.concurrent_audits,
              ci.point_explains, ci.AppendOnlyRowsPerSecond(),
              ci.ConcurrentAppendRelativeThroughput(),
              ci.matches_full_explain_all ? "matches" : "DIVERGES FROM");

  if (write_json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"generated_by\": \"bench_streaming\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", options.smoke ? "true" : "false");
    eba::bench::WriteMachineJson(f, "  ");
    std::fprintf(f, "  \"streaming\": {\n");
    eba::WriteConcurrentIngestJson(f, ci, "    ");
    eba::WriteStreamingJson(f, r, "    ");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!r.matches_full_explain_all || !ci.matches_full_explain_all) {
    std::fprintf(stderr,
                 "FAIL: incremental explained set diverges from full "
                 "ExplainAll\n");
    return 1;
  }
  return 0;
}
