// Regenerates Figure 6 (frequency of events in the database for all
// accesses) and Figure 7 (hand-crafted explanations' recall for all
// accesses).
//
// Paper shapes to reproduce: most accesses correspond to a patient with
// some event (~0.97 "All" in Fig. 6); repeat accesses dominate; template
// recall (Fig. 7) is lower than event frequency because events reference
// only the primary doctor; the combined hand-crafted set still explains
// ~0.90 of all accesses.

#include <unordered_set>

#include "bench/bench_util.h"
#include "core/metrics.h"

namespace eba {
namespace {

using bench::Unwrap;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  const Table* log_table = Unwrap(db.GetTable("Log"));
  AccessLog log = Unwrap(AccessLog::Wrap(log_table));
  const double n = static_cast<double>(log.size());

  MetricsEvaluator evaluator(&db, "Log");
  auto frac_of_log = [&](const std::vector<int64_t>& lids) {
    return static_cast<double>(lids.size()) / n;
  };

  // ---------- Figure 6: event frequency over all accesses ----------
  bench::PrintTitle("Figure 6: frequency of events (all accesses)");
  auto appt = Unwrap(evaluator.LidsWithEvent("Appointments", "Patient"));
  auto visit = Unwrap(evaluator.LidsWithEvent("Visits", "Patient"));
  auto doc = Unwrap(evaluator.LidsWithEvent("Documents", "Patient"));
  auto repeat_lids = log.RepeatAccessLids();

  std::unordered_set<int64_t> all_events;
  for (const auto* v : {&appt, &visit, &doc}) {
    all_events.insert(v->begin(), v->end());
  }
  // Data set B events also count toward "some event in the database".
  for (const auto& [table, column] : DataSetBEventTables()) {
    auto lids = Unwrap(evaluator.LidsWithEvent(table, column));
    all_events.insert(lids.begin(), lids.end());
  }
  std::unordered_set<int64_t> all_with_repeat = all_events;
  all_with_repeat.insert(repeat_lids.begin(), repeat_lids.end());

  bench::PrintBar("Appt", frac_of_log(appt));
  bench::PrintBar("Visit", frac_of_log(visit));
  bench::PrintBar("Document", frac_of_log(doc));
  bench::PrintBar("Repeat Access",
                  static_cast<double>(repeat_lids.size()) / n);
  bench::PrintBar("All", static_cast<double>(all_with_repeat.size()) / n);

  // ---------- Figure 7: hand-crafted template recall ----------
  bench::PrintTitle("Figure 7: hand-crafted explanations' recall (all accesses)");
  auto recall_of = [&](const std::vector<ExplanationTemplate>& templates) {
    auto explained = Unwrap(evaluator.ExplainedSet(templates));
    return static_cast<double>(explained.size()) / n;
  };

  std::vector<ExplanationTemplate> appt_t = {
      Unwrap(TemplateApptWithDoctor(db))};
  std::vector<ExplanationTemplate> visit_t = {
      Unwrap(TemplateVisitWithDoctor(db)),
      Unwrap(TemplateVisitWithAttending(db))};
  std::vector<ExplanationTemplate> doc_t = {
      Unwrap(TemplateDocumentWithAuthor(db))};
  std::vector<ExplanationTemplate> repeat_t = {
      Unwrap(TemplateRepeatAccess(db))};

  std::vector<ExplanationTemplate> all_t;
  for (const auto* group : {&appt_t, &visit_t, &doc_t, &repeat_t}) {
    for (const auto& t : *group) all_t.push_back(t);
  }

  bench::PrintBar("Appt w/Dr.", recall_of(appt_t));
  bench::PrintBar("Visit w/Dr.", recall_of(visit_t));
  bench::PrintBar("Doc. w/Dr.", recall_of(doc_t));
  bench::PrintBar("Repeat Access", recall_of(repeat_t));
  bench::PrintBar("All w/Dr.", recall_of(all_t));

  // Supplementary: adding the data set B direct templates (orders name the
  // consult user, §5.2's expansion of the study).
  auto with_b = all_t;
  for (auto& t : Unwrap(TemplatesDataSetB(db))) with_b.push_back(t);
  bench::PrintBar("All w/Dr. + data set B", recall_of(with_b));
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
