// Extension experiment E2: access-level explanation-based auditing vs the
// user-level anomaly-detection baseline (Chen & Malin-style, §6).
//
// Two misuse patterns are planted in the synthetic week:
//   (a) a BULK snooper: one employee opens many random records — a user
//       whose whole profile is anomalous;
//   (b) ISOLATED snooping: several otherwise-normal employees each open one
//       record they have no business with (the Britney Spears / passport
//       cases the paper cites).
// The user-level baseline ranks users by profile deviation; explanation-
// based auditing flags individual unexplained accesses. Expected shape
// (the paper's §6 argument): both approaches surface the bulk snooper, but
// isolated snoopers keep normal profiles (poor baseline ranks) while their
// bad accesses land in the unexplained set with precision.

#include <algorithm>
#include <unordered_set>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/engine.h"
#include "graph/anomaly.h"

namespace eba {
namespace {

using bench::Unwrap;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  Table* log_table = Unwrap(db.GetTable("Log"));
  AccessLog log = Unwrap(AccessLog::Wrap(log_table));
  Random rng(config.seed ^ 0xba5e11);

  // --- Plant misuse. ---
  int64_t next_lid = 0;
  for (size_t r = 0; r < log.size(); ++r) {
    next_lid = std::max(next_lid, log.Get(r).lid);
  }
  ++next_lid;
  int64_t when = log.MaxTime() + 60;

  // (a) Bulk snooper: an existing nurse opens 40 random records.
  int64_t bulk_snooper = 0;
  for (const auto& team : data.truth.teams) {
    for (int64_t member : team.members) {
      if (member != team.doctors.front()) {
        bulk_snooper = member;
        break;
      }
    }
    if (bulk_snooper) break;
  }
  std::vector<int64_t> bulk_lids;
  for (int i = 0; i < 40; ++i) {
    int64_t patient =
        data.truth.all_patients[rng.Uniform(data.truth.all_patients.size())];
    bulk_lids.push_back(next_lid);
    bench::Check(log_table->AppendRow(
        {Value::Int64(next_lid++), Value::Timestamp(when += 30),
         Value::Int64(bulk_snooper), Value::Int64(patient),
         Value::String("viewed record")}));
  }

  // (b) Isolated snoopers: 8 distinct well-behaved users, one bad access
  //     each, all to the same VIP.
  const int64_t vip = data.truth.all_patients.back();
  std::vector<int64_t> isolated_users;
  std::vector<int64_t> isolated_lids;
  while (isolated_users.size() < 8) {
    int64_t candidate =
        data.truth.all_users[rng.Uniform(data.truth.all_users.size())];
    if (candidate == bulk_snooper) continue;
    if (std::find(isolated_users.begin(), isolated_users.end(), candidate) !=
        isolated_users.end()) {
      continue;
    }
    isolated_users.push_back(candidate);
    isolated_lids.push_back(next_lid);
    bench::Check(log_table->AppendRow(
        {Value::Int64(next_lid++), Value::Timestamp(when += 45),
         Value::Int64(candidate), Value::Int64(vip),
         Value::String("viewed record")}));
  }
  std::printf(
      "planted: 1 bulk snooper (user %lld, 40 accesses) + 8 isolated "
      "snooping accesses to patient %lld\n",
      static_cast<long long>(bulk_snooper), static_cast<long long>(vip));

  // --- Baseline: user-level anomaly scores over the full (tainted) log. ---
  UserGraph graph = Unwrap(UserGraph::Build(log));
  auto scores = Unwrap(ScoreUsersByDeviation(graph, log));

  bench::PrintTitle(
      "Extension E2: user-level anomaly baseline vs explanation-based "
      "auditing");
  size_t bulk_rank = RankOfUser(scores, bulk_snooper);
  std::printf("  users scored: %zu\n", scores.size());
  std::printf("  bulk snooper rank by the baseline: %zu", bulk_rank);
  std::printf(bulk_rank <= scores.size() / 10 ? "  (top decile: caught)\n"
                                              : "  (NOT in top decile)\n");
  std::printf("  isolated snoopers' baseline ranks:");
  size_t top_decile = 0;
  for (int64_t user : isolated_users) {
    size_t rank = RankOfUser(scores, user);
    std::printf(" %zu", rank);
    if (rank > 0 && rank <= scores.size() / 10) ++top_decile;
  }
  std::printf("\n  isolated snoopers in the baseline's top decile: %zu/8 "
              "(the paper's point: normal profiles hide isolated misuse)\n",
              top_decile);

  // --- Explanation-based auditing over the same tainted log. ---
  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, config.num_days - 1,
                                   "Groups", HierarchyOptions{}));
  ExplanationEngine engine = Unwrap(ExplanationEngine::Create(&db, "Log"));
  for (auto& t : Unwrap(TemplatesHandcraftedDirect(db, true))) {
    bench::Check(engine.AddTemplate(t));
  }
  for (auto& t : Unwrap(TemplatesDataSetB(db))) {
    bench::Check(engine.AddTemplate(t));
  }
  for (auto& t : Unwrap(TemplatesGroups(db, 1, true))) {
    bench::Check(engine.AddTemplate(t));
  }
  ExplanationReport report = Unwrap(engine.ExplainAll());
  std::unordered_set<int64_t> unexplained(report.unexplained_lids.begin(),
                                          report.unexplained_lids.end());
  size_t bulk_flagged = 0;
  for (int64_t lid : bulk_lids) {
    if (unexplained.count(lid)) ++bulk_flagged;
  }
  size_t isolated_flagged = 0;
  for (int64_t lid : isolated_lids) {
    if (unexplained.count(lid)) ++isolated_flagged;
  }
  std::printf("\n  explanation-based auditing (coverage %.1f%%):\n",
              100.0 * report.Coverage());
  std::printf("    bulk snooping accesses flagged:     %zu/40\n",
              bulk_flagged);
  std::printf("    isolated snooping accesses flagged: %zu/8\n",
              isolated_flagged);
  std::printf("    total accesses needing review:      %zu of %zu\n",
              report.unexplained_lids.size(), report.log_size);
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
