// Regenerates Figure 12: predictive power of collaborative groups for
// first accesses (data set A). Groups are trained on days 1-6; precision,
// recall and normalized recall are measured on day-7 first accesses against
// a same-size fake log, for group hierarchy depths 0..max plus the
// same-department baseline.
//
// Paper shapes: depth 0 (one global group) has the highest recall and the
// lowest precision; precision rises and recall falls with depth; depth 1
// balances high precision (>0.90 in the paper) with much better recall than
// the w/Dr.-only templates; group templates beat same-department templates.

#include "bench/bench_util.h"
#include "core/metrics.h"

namespace eba {
namespace {

using bench::Unwrap;

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv);
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);

  // Groups trained on days 1-6 (include the depth-0 all-users baseline —
  // it is exactly Figure 12's leftmost bar).
  GroupHierarchy hierarchy = Unwrap(BuildGroupsFromDays(
      &db, "Log", 1, config.num_days - 1, "Groups", HierarchyOptions{},
      /*include_depth_zero=*/true));

  // Day-7 first accesses + the §5.3.2 fake log.
  LogSlice test = Unwrap(AddLogSlice(&db, "Log", "TestFirst", config.num_days,
                                     config.num_days, true));
  EvalLogSetup eval =
      Unwrap(AddEvalLog(&db, "TestFirst", "EvalLog", data.truth,
                        config.seed ^ 0xf19f12));
  std::printf("day-%d first accesses: %s real + %s fake\n", config.num_days,
              FormatCount(static_cast<int64_t>(eval.real_lids.size())).c_str(),
              FormatCount(static_cast<int64_t>(eval.fake_lids.size())).c_str());

  MetricsEvaluator evaluator(&db, "EvalLog");

  // Normalized-recall denominator: real accesses with a data set A event.
  auto with_event =
      Unwrap(evaluator.LidsWithAnyEvent(DataSetAEventTables()));
  std::unordered_set<int64_t> real_set(eval.real_lids.begin(),
                                       eval.real_lids.end());
  std::vector<int64_t> real_with_events;
  for (int64_t lid : with_event) {
    if (real_set.count(lid)) real_with_events.push_back(lid);
  }
  std::printf("real first accesses with a data set A event: %zu (%.1f%%)\n",
              real_with_events.size(),
              eval.real_lids.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(real_with_events.size()) /
                        static_cast<double>(eval.real_lids.size()));

  bench::PrintTitle(
      "Figure 12: group predictive power for first accesses (data set A)");
  std::printf("  %-12s %10s %10s %10s\n", "depth", "precision", "recall",
              "recall-norm");

  for (int depth = 0; depth <= hierarchy.max_depth(); ++depth) {
    auto templates =
        Unwrap(TemplatesGroups(db, depth, /*include_dataset_b=*/false));
    PrecisionRecall pr = Unwrap(evaluator.Evaluate(
        templates, eval.real_lids, eval.fake_lids, real_with_events));
    std::printf("  %-12d %10.3f %10.3f %10.3f\n", depth, pr.Precision(),
                pr.Recall(), pr.NormalizedRecall());
  }

  auto dept = Unwrap(TemplatesSameDepartment(db));
  PrecisionRecall pr_dept = Unwrap(evaluator.Evaluate(
      dept, eval.real_lids, eval.fake_lids, real_with_events));
  std::printf("  %-12s %10.3f %10.3f %10.3f\n", "Same Dept.",
              pr_dept.Precision(), pr_dept.Recall(),
              pr_dept.NormalizedRecall());

  // The §5.3.2 headline: day-7 ALL accesses explained by direct templates +
  // repeat access + depth-1 groups (paper: over 94%).
  bench::PrintTitle("Headline: day-7 coverage (direct + repeat + depth-1 groups)");
  LogSlice day7 = Unwrap(AddLogSlice(&db, "Log", "Day7All", config.num_days,
                                     config.num_days, false));
  MetricsEvaluator day7_eval(&db, "Day7All");
  std::vector<ExplanationTemplate> headline =
      Unwrap(TemplatesHandcraftedDirect(db, /*include_repeat=*/true));
  for (auto& t : Unwrap(TemplatesDataSetB(db))) headline.push_back(t);
  for (auto& t : Unwrap(TemplatesGroups(db, 1, true))) headline.push_back(t);
  auto explained = Unwrap(day7_eval.ExplainedSet(headline));
  double coverage = day7.lids.empty()
                        ? 0.0
                        : static_cast<double>(explained.size()) /
                              static_cast<double>(day7.lids.size());
  std::printf("  day-7 accesses explained: %.1f%%  (paper: >94%%)\n",
              100.0 * coverage);
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
