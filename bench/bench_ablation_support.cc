// Ablation A1 (DESIGN.md decision 2): support-evaluation strategies.
// Compares the naive evaluator (materialize the full join, then count
// distinct lids) against the dedup-frontier evaluator (the generalized
// "reducing result multiplicity" optimization of §3.2.1) on representative
// explanation templates, reporting run time and peak intermediate size.

#include <chrono>

#include "bench/bench_util.h"
#include "query/executor.h"

namespace eba {
namespace {

using bench::Unwrap;
using Clock = std::chrono::steady_clock;

double TimeIt(const std::function<void()>& fn) {
  auto start = Clock::now();
  fn();
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - start)
      .count();
}

int Run(int argc, char** argv) {
  CareWebConfig config = bench::ParseConfig(argc, argv, "small");
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  Database& db = data.db;
  bench::PrintDataSummary(data);
  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, config.num_days - 1,
                                   "Groups", HierarchyOptions{}));

  struct Case {
    const char* name;
    StatusOr<ExplanationTemplate> tmpl;
  };
  std::vector<Case> cases;
  cases.push_back({"appt_with_doctor (len 2)", TemplateApptWithDoctor(db)});
  cases.push_back({"lab_resulted_by (len 3)",
                   [&]() -> StatusOr<ExplanationTemplate> {
                     auto all = TemplatesDataSetB(db);
                     if (!all.ok()) return all.status();
                     return (*all)[1];
                   }()});
  cases.push_back({"group_appt depth-1 (len 4)",
                   [&]() -> StatusOr<ExplanationTemplate> {
                     auto all = TemplatesGroups(db, 1, false);
                     if (!all.ok()) return all.status();
                     return (*all)[0];
                   }()});
  cases.push_back({"group_appt all-depths (len 4)",
                   [&]() -> StatusOr<ExplanationTemplate> {
                     auto all = TemplatesGroups(db, -1, false);
                     if (!all.ok()) return all.status();
                     return (*all)[0];
                   }()});
  // High-multiplicity event chain: a patient with k lab orders and m
  // medication orders contributes k*m intermediate rows to the naive plan —
  // exactly the multiplicity blow-up §3.2.1's rewrite targets.
  cases.push_back(
      {"labs x medications chain (len 4)",
       ExplanationTemplate::Parse(
           db, "labs_meds_chain", "Log L, Labs B, Medications M, UserMap U",
           "L.Patient = B.Patient AND B.Orderer = M.Requester AND "
           "M.Signer = U.audit_id AND U.caregiver_id = L.User",
           "chained lab and medication orders")});
  cases.push_back(
      {"meds x meds chain (len 4)",
       ExplanationTemplate::Parse(
           db, "meds_meds_chain",
           "Log L, Medications M1, Medications M2, UserMap U",
           "L.Patient = M1.Patient AND M1.Requester = M2.Requester AND "
           "M2.Administrator = U.audit_id AND U.caregiver_id = L.User",
           "chained medication orders")});
  // The paper's motivating example: a (user, patient) pair with k accesses
  // matches k log rows per probe — the naive plan materializes k rows per
  // access (quadratic in pair frequency) where the frontier stays linear.
  cases.push_back({"repeat access (log self-join)", TemplateRepeatAccess(db)});

  bench::PrintTitle(
      "Ablation: naive vs dedup-frontier support evaluation (COUNT DISTINCT "
      "Lid over the full log)");
  std::printf("  %-30s %10s %12s %10s %12s %8s\n", "template", "naive(s)",
              "naive-peak", "dedup(s)", "dedup-peak", "support");

  Executor executor(&db);
  for (auto& c : cases) {
    ExplanationTemplate tmpl = Unwrap(std::move(c.tmpl), c.name);
    int64_t naive_count = 0, dedup_count = 0;
    double naive_s = TimeIt([&] {
      naive_count = Unwrap(executor.CountDistinct(
          tmpl.query(), tmpl.lid_attr(), Executor::SupportStrategy::kNaive));
    });
    size_t naive_peak = executor.last_stats().peak_intermediate;
    double dedup_s = TimeIt([&] {
      dedup_count = Unwrap(
          executor.CountDistinct(tmpl.query(), tmpl.lid_attr(),
                                 Executor::SupportStrategy::kDedupFrontier));
    });
    size_t dedup_peak = executor.last_stats().peak_intermediate;
    std::printf("  %-30s %10.3f %12zu %10.3f %12zu %8lld%s\n", c.name,
                naive_s, naive_peak, dedup_s, dedup_peak,
                static_cast<long long>(naive_count),
                naive_count == dedup_count ? "" : "  MISMATCH!");
  }
  return 0;
}

}  // namespace
}  // namespace eba

int main(int argc, char** argv) { return eba::Run(argc, argv); }
