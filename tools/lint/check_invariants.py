#!/usr/bin/env python3
"""Determinism lint for the EBA tree.

The executor's contract is byte-identical reports regardless of thread
count, and the bench gate diffs JSON across runs — so nondeterminism that
the type system cannot see (hash-order iteration, unseeded randomness,
wall-clock reads) is a correctness bug here, not a style issue. This lint
enforces these invariants over src/ (and CMake test registration):

  R1 unordered-iteration: iterating a std::unordered_{map,set} (range-for
     or .begin()) feeds hash order into whatever is built from it. Allowed
     only when a std::sort appears within the next few lines (sort-at-the-
     boundary idiom) or the line carries a `// lint:ordered` annotation
     stating why order cannot escape (e.g. order-insensitive aggregation).
  R2 unseeded-rng: std::random_device, bare rand()/srand(), or a
     default-constructed std::mt19937 make runs unreproducible. Use
     common/random.h (explicitly seeded) instead; `// lint:rng` overrides.
  R3 wall-clock: system_clock::now / time(NULL) / gettimeofday / localtime
     in result paths make outputs depend on when they ran. steady_clock is
     fine for durations; `// lint:wall-clock` overrides (e.g. a log line).
  R4 test-timeout: every add_test() in a CMakeLists.txt must have a
     matching set_tests_properties(... TIMEOUT ...) in the same file, so a
     hung test fails CI instead of stalling it.
  R5 raw-io: std::ofstream or fopen() inside src/storage/ bypasses the Env
     seam, so durability code using them escapes both fault injection
     (kill-at-every-write-op testing) and the fsync policy. Route file I/O
     through storage/io.h; `// lint:raw-io` overrides per line, and a
     line-1 annotation exempts a whole file (io.cc IS the seam — every raw
     call is supposed to live there).
  R6 column-payload: Column payloads live in fixed 64k-row chunks
     (storage/chunk.h), so outside src/storage/ there is no contiguous
     array to point into — a ChunkedVector escaping storage/, a column
     payload member (ints_/doubles_/nulls_/dict_lookup_), or a raw
     .data() taken off a column all assume the monolithic layout that
     chunking removed and would read garbage past a chunk seam. Go through
     the typed accessors or the ForEach*Span scan primitives;
     `// lint:column-data` overrides (e.g. a span pointer handed out BY the
     accessor itself). The chunk-size constants (kColumnChunkRows et al.)
     are fine anywhere — aligning shards to chunks is the point.
  R7 raw-net: raw POSIX socket calls (::socket/::bind/::accept/...) or
     socket-API headers anywhere in src/ bypass the NetEnv seam
     (net/socket.h), so serving code using them escapes the in-memory
     transport the deterministic server tests and fuzz harness run on.
     `// lint:raw-net` overrides per line, and a line-1 annotation exempts
     a whole file (socket.cc IS the seam — every raw socket call is
     supposed to live there, mirroring R5 and storage/io.cc).

Exit status: 0 = clean, 1 = violations found, 2 = usage/IO error.
"""

import argparse
import os
import re
import sys

# How many lines after an unordered iteration a std::sort may appear and
# still count as "sorted at the boundary".
SORT_WINDOW = 4

CPP_EXTENSIONS = (".h", ".cc")

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;()]*?>\s*"
    r"[&*]?\s*(\w+)\s*(?:[;={(\[]|$)"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;]*?:\s*&?(\w+)\s*\)")
BEGIN_CALL = re.compile(r"\b(\w+)\.begin\(\)")
SORT_CALL = re.compile(r"\bstd::(?:stable_)?sort\s*\(")

RNG_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"), "bare rand()"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"\bstd::mt19937(?:_64)?\s+\w+\s*;"),
     "default-constructed std::mt19937"),
]

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock::now\b"), "system_clock::now"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time(NULL)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"\blocaltime(?:_r)?\s*\("), "localtime"),
]

RAW_IO_PATTERNS = [
    (re.compile(r"\bstd::[io]?fstream\b"), "a std:: file stream"),
    (re.compile(r"(?<![\w:])(?:std::)?fopen\s*\("), "fopen()"),
]

# Only durability code is held to the Env-seam rule; the rest of src/ may
# use streams (e.g. report writers) without fault-injection coverage.
RAW_IO_SUBTREE = "src/storage/"

# R6: the chunked-payload layout must not leak out of this subtree. Inside
# it, Column/ChunkedVector implementation code touches payloads directly by
# design.
COLUMN_PAYLOAD_SUBTREE = "src/storage/"

COLUMN_PAYLOAD_PATTERNS = [
    (re.compile(r"\bChunkedVector\s*<"),
     "a ChunkedVector (the chunked payload container)"),
    (re.compile(r"\b(?:ints_|doubles_|nulls_|dict_lookup_)\b"),
     "a Column payload member"),
]

# A .data() pointer taken on the same line as a column expression: the
# classic pre-chunking idiom (`&col->...data()[row]`) that assumes one
# contiguous array. Heuristic on purpose — the fixture self-tests pin it.
COLUMN_DATA_CALL = re.compile(r"(?:\.|->)\s*data\s*\(")
COLUMN_MENTION = re.compile(r"[Cc]olumn")

# R7: global-scope POSIX socket calls and the headers that provide them.
# The `::` prefix keeps member functions (conn->Connect()), std::bind and
# the capitalized wrappers out of scope — the seam file itself writes raw
# calls in exactly this form.
RAW_NET_PATTERNS = [
    (re.compile(r"(?<!\w)::(?:socket|bind|listen|accept|connect|recv|send"
                r"|sendto|recvfrom|setsockopt|getsockopt|getsockname"
                r"|shutdown)\s*\("),
     "a raw POSIX socket call"),
    (re.compile(r"#include\s*<(?:sys/socket|netinet/in|netinet/tcp"
                r"|arpa/inet|netdb)\.h>"),
     "a socket-API header"),
]

ADD_TEST = re.compile(r"\badd_test\s*\(\s*(?:NAME\s+)?(\S+)")
SET_TESTS_PROPERTIES = re.compile(r"\bset_tests_properties\s*\(\s*(\S+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comment(line):
    """Code portion of a line (// comments removed; strings left alone —
    good enough for this tree, which holds no '//' inside literals that
    would matter to these patterns)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def has_annotation(lines, i, tag):
    """True if line i or the line above carries `// lint:<tag>`."""
    marker = f"lint:{tag}"
    if marker in lines[i]:
        return True
    return i > 0 and marker in lines[i - 1]


def check_cpp_file(path, rel, findings):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    unordered_vars = set()
    for raw in lines:
        code = strip_comment(raw)
        for m in UNORDERED_DECL.finditer(code):
            unordered_vars.add(m.group(1))

    # R5 scope: only durability code, and a line-1 annotation exempts the
    # whole file (the io.cc seam, where every raw call belongs).
    check_raw_io = (
        rel.replace(os.sep, "/").startswith(RAW_IO_SUBTREE)
        and not (lines and "lint:raw-io" in lines[0]))

    # R6 scope: everything outside the storage subtree (where the chunk
    # layout is implementation detail, not leakage).
    check_column_payload = not rel.replace(os.sep, "/").startswith(
        COLUMN_PAYLOAD_SUBTREE)

    # R7 scope: all of src/; a line-1 annotation exempts the seam file
    # itself (net/socket.cc), where every raw socket call belongs.
    check_raw_net = not (lines and "lint:raw-net" in lines[0])

    for i, raw in enumerate(lines):
        code = strip_comment(raw)

        # R1: iteration over an unordered container.
        iterated = set()
        m = RANGE_FOR.search(code)
        if m and m.group(1) in unordered_vars:
            iterated.add(m.group(1))
        for m in BEGIN_CALL.finditer(code):
            if m.group(1) in unordered_vars:
                iterated.add(m.group(1))
        if iterated and not has_annotation(lines, i, "ordered"):
            window = lines[i : i + 1 + SORT_WINDOW]
            if not any(SORT_CALL.search(strip_comment(w)) for w in window):
                names = ", ".join(sorted(iterated))
                findings.append(Finding(
                    rel, i + 1, "unordered-iteration",
                    f"iterating unordered container '{names}' without a "
                    f"std::sort within {SORT_WINDOW} lines; sort at the "
                    "boundary or annotate `// lint:ordered <why>`"))

        # R2: unseeded randomness.
        if not has_annotation(lines, i, "rng"):
            for pattern, what in RNG_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rel, i + 1, "unseeded-rng",
                        f"{what} makes runs unreproducible; use the seeded "
                        "common/random.h Random or annotate "
                        "`// lint:rng <why>`"))

        # R3: wall-clock reads.
        if not has_annotation(lines, i, "wall-clock"):
            for pattern, what in WALL_CLOCK_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rel, i + 1, "wall-clock",
                        f"{what} in a result path makes output depend on "
                        "when it ran; use steady_clock for durations or "
                        "annotate `// lint:wall-clock <why>`"))

        # R5: raw file I/O bypassing the Env seam in durability code.
        if check_raw_io and not has_annotation(lines, i, "raw-io"):
            for pattern, what in RAW_IO_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rel, i + 1, "raw-io",
                        f"{what} in {RAW_IO_SUBTREE} bypasses the Env seam "
                        "(no fault injection, no fsync policy); route "
                        "through storage/io.h or annotate "
                        "`// lint:raw-io <why>`"))

        # R7: raw sockets bypassing the NetEnv transport seam.
        if check_raw_net and not has_annotation(lines, i, "raw-net"):
            for pattern, what in RAW_NET_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rel, i + 1, "raw-net",
                        f"{what} outside the net/socket.cc seam escapes the "
                        "in-memory transport (no deterministic server tests, "
                        "no connection fault injection); route through "
                        "net/socket.h or annotate `// lint:raw-net <why>`"))

        # R6: chunked column payloads accessed as if monolithic.
        if check_column_payload and not has_annotation(lines, i,
                                                       "column-data"):
            for pattern, what in COLUMN_PAYLOAD_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rel, i + 1, "column-payload",
                        f"{what} outside {COLUMN_PAYLOAD_SUBTREE} bypasses "
                        "the chunk accessors; use the typed accessors / "
                        "ForEach*Span or annotate "
                        "`// lint:column-data <why>`"))
            if (COLUMN_DATA_CALL.search(code)
                    and COLUMN_MENTION.search(code)):
                findings.append(Finding(
                    rel, i + 1, "column-payload",
                    "raw .data() on a column expression assumes one "
                    "contiguous payload array (chunked since "
                    "storage/chunk.h); scan via ForEach*Span or annotate "
                    "`// lint:column-data <why>`"))


def check_cmake_file(path, rel, findings):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    text = "\n".join(strip_comment_cmake(l) for l in lines)
    # Tests with a TIMEOUT: set_tests_properties(<token> ... TIMEOUT appears
    # anywhere in the same file. Tokens compare literally, so the
    # foreach(${suite}) registration idiom matches its own properties call.
    with_timeout = set()
    for m in SET_TESTS_PROPERTIES.finditer(text):
        tail = text[m.end() : m.end() + 400]
        call = tail.split(")", 1)[0]
        if "TIMEOUT" in call:
            with_timeout.add(m.group(1).rstrip(")"))

    for i, raw in enumerate(lines):
        code = strip_comment_cmake(raw)
        m = ADD_TEST.search(code)
        if not m:
            continue
        token = m.group(1).rstrip(")")
        if token not in with_timeout:
            findings.append(Finding(
                rel, i + 1, "test-timeout",
                f"add_test({token}) has no matching set_tests_properties("
                f"{token} ... TIMEOUT ...) in this file; a hung test must "
                "fail CI, not stall it"))


def strip_comment_cmake(line):
    idx = line.find("#")
    return line if idx < 0 else line[:idx]


def walk(root, subdir, extensions):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(extensions):
                full = os.path.join(dirpath, name)
                yield full, os.path.relpath(full, root)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: two levels above this script)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"error: no src/ under root {root}", file=sys.stderr)
        return 2

    findings = []
    for full, rel in walk(root, "src", CPP_EXTENSIONS):
        check_cpp_file(full, rel, findings)
    for subdir in ("src", "tests", "bench", "examples", "tools", "."):
        path = os.path.join(root, subdir, "CMakeLists.txt")
        if os.path.isfile(path):
            check_cmake_file(path, os.path.relpath(path, root), findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} determinism-lint violation(s).",
              file=sys.stderr)
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
