#!/usr/bin/env python3
"""Self-test for check_invariants.py.

Builds throwaway repo trees (a src/ with seeded violations or with the
allowed idioms) and asserts the linter's exit status and reported rules.
This is the fixture the CI lint job relies on: a lint that silently stopped
matching would pass every repo, so the test seeds one violation per rule
and demands a nonzero exit.
"""

import os
import subprocess
import sys
import tempfile
import unittest

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_invariants.py")


def run_lint(root):
    return subprocess.run(
        [sys.executable, LINT, "--root", root],
        capture_output=True, text=True)


class LintFixture(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        os.makedirs(os.path.join(self.root, "src"))

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def assert_clean(self, result):
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def assert_flags(self, result, rule):
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn(f"[{rule}]", result.stdout)


class EmptyTree(LintFixture):
    def test_clean_tree_exits_zero(self):
        self.assert_clean(run_lint(self.root))

    def test_missing_src_is_usage_error(self):
        with tempfile.TemporaryDirectory() as empty:
            self.assertEqual(run_lint(empty).returncode, 2)


class UnorderedIteration(LintFixture):
    def test_range_for_over_unordered_is_flagged(self):
        self.write("src/a.cc", """
#include <unordered_set>
void Report(std::vector<int>* out) {
  std::unordered_set<int> seen;
  for (int v : seen) out->push_back(v);
}
""")
        self.assert_flags(run_lint(self.root), "unordered-iteration")

    def test_begin_call_is_flagged(self):
        self.write("src/a.cc", """
std::unordered_map<int, int> counts;
void Dump(std::vector<int>* out) {
  out->assign(counts.begin(), counts.end());
}
""")
        self.assert_flags(run_lint(self.root), "unordered-iteration")

    def test_sort_at_the_boundary_is_allowed(self):
        self.write("src/a.cc", """
#include <unordered_set>
void Report(std::vector<int>* out) {
  std::unordered_set<int> seen;
  out->assign(seen.begin(), seen.end());
  std::sort(out->begin(), out->end());
}
""")
        self.assert_clean(run_lint(self.root))

    def test_ordered_annotation_is_allowed(self):
        self.write("src/a.cc", """
#include <unordered_map>
double Sum() {
  std::unordered_map<int, int> counts;
  double total = 0;
  // lint:ordered integer accumulation is order-insensitive
  for (const auto& [k, v] : counts) total += v;
  return total;
}
""")
        self.assert_clean(run_lint(self.root))

    def test_membership_lookup_is_not_flagged(self):
        self.write("src/a.cc", """
#include <unordered_set>
bool Has(const std::unordered_set<int>& seen, int v) {
  return seen.count(v) > 0;
}
""")
        self.assert_clean(run_lint(self.root))


class UnseededRng(LintFixture):
    def test_random_device_is_flagged(self):
        self.write("src/a.cc", "std::random_device rd;\n")
        self.assert_flags(run_lint(self.root), "unseeded-rng")

    def test_default_mt19937_is_flagged(self):
        self.write("src/a.cc", "std::mt19937 gen;\n")
        self.assert_flags(run_lint(self.root), "unseeded-rng")

    def test_bare_rand_is_flagged(self):
        self.write("src/a.cc", "int r = rand();\n")
        self.assert_flags(run_lint(self.root), "unseeded-rng")

    def test_seeded_mt19937_is_allowed(self):
        self.write("src/a.cc", "std::mt19937 gen(42);\n")
        self.assert_clean(run_lint(self.root))

    def test_rng_annotation_is_allowed(self):
        self.write("src/a.cc",
                   "std::random_device rd;  // lint:rng entropy for salt\n")
        self.assert_clean(run_lint(self.root))


class WallClock(LintFixture):
    def test_system_clock_now_is_flagged(self):
        self.write("src/a.cc",
                   "auto t = std::chrono::system_clock::now();\n")
        self.assert_flags(run_lint(self.root), "wall-clock")

    def test_time_null_is_flagged(self):
        self.write("src/a.cc", "time_t t = time(NULL);\n")
        self.assert_flags(run_lint(self.root), "wall-clock")

    def test_steady_clock_is_allowed(self):
        self.write("src/a.cc",
                   "auto t = std::chrono::steady_clock::now();\n")
        self.assert_clean(run_lint(self.root))

    def test_wall_clock_annotation_is_allowed(self):
        self.write("src/a.cc",
                   "// lint:wall-clock log line only\n"
                   "auto t = std::chrono::system_clock::now();\n")
        self.assert_clean(run_lint(self.root))


class RawIo(LintFixture):
    def test_ofstream_in_storage_is_flagged(self):
        self.write("src/storage/snapshot.cc", """
#include <fstream>
void Dump(const std::string& path) {
  std::ofstream out(path);
}
""")
        self.assert_flags(run_lint(self.root), "raw-io")

    def test_fopen_in_storage_is_flagged(self):
        self.write("src/storage/snapshot.cc",
                   'std::FILE* f = std::fopen(path.c_str(), "wb");\n')
        self.assert_flags(run_lint(self.root), "raw-io")

    def test_streams_outside_storage_are_allowed(self):
        self.write("src/report/writer.cc", """
#include <fstream>
void Dump(const std::string& path) {
  std::ofstream out(path);
}
""")
        self.assert_clean(run_lint(self.root))

    def test_line_annotation_is_allowed(self):
        self.write("src/storage/snapshot.cc",
                   "// lint:raw-io debug-only dump, not in the commit path\n"
                   "std::ofstream out(path);\n")
        self.assert_clean(run_lint(self.root))

    def test_file_level_annotation_exempts_whole_file(self):
        self.write("src/storage/io_impl.cc", """\
// lint:raw-io (this file IS the seam: every raw write lives here)
#include <cstdio>
std::FILE* Open(const char* path) {
  return std::fopen(path, "ab");
}
std::ofstream MakeStream(const std::string& p) { return std::ofstream(p); }
""")
        self.assert_clean(run_lint(self.root))

    def test_env_seam_usage_is_not_flagged(self):
        self.write("src/storage/wal2.cc", """
#include "storage/io.h"
void Append(Env* env, const std::string& path) {
  auto file = env->NewWritableFile(path, /*truncate=*/false);
}
""")
        self.assert_clean(run_lint(self.root))


class RawNet(LintFixture):
    def test_raw_socket_call_is_flagged(self):
        self.write("src/core/sidechannel.cc", """
void Leak(int port) {
  int fd = ::socket(2, 1, 0);
  ::connect(fd, nullptr, 0);
}
""")
        self.assert_flags(run_lint(self.root), "raw-net")

    def test_socket_header_is_flagged(self):
        self.write("src/net/server2.cc", "#include <sys/socket.h>\n")
        self.assert_flags(run_lint(self.root), "raw-net")

    def test_recv_send_are_flagged(self):
        self.write("src/net/fastpath.cc", """
void Pump(int fd, char* buf) {
  ::recv(fd, buf, 1, 0);
  ::send(fd, buf, 1, 0);
}
""")
        self.assert_flags(run_lint(self.root), "raw-net")

    def test_wrappers_and_std_bind_are_not_flagged(self):
        # Member calls, the capitalized seam API and std::bind must stay
        # out of scope: only global-namespace POSIX calls are the seam's.
        self.write("src/net/user.cc", """
#include <functional>
#include "net/socket.h"
void Use(NetEnv* net, Connection* conn) {
  auto c = net->Connect("h", 1);
  conn->ShutdownBoth();
  auto f = std::bind(&Use, net, conn);
}
""")
        self.assert_clean(run_lint(self.root))

    def test_line_annotation_is_allowed(self):
        self.write("src/net/probe.cc",
                   "// lint:raw-net startup self-check, not a data path\n"
                   "int fd = ::socket(2, 1, 0);\n")
        self.assert_clean(run_lint(self.root))

    def test_file_level_annotation_exempts_whole_file(self):
        self.write("src/net/socket_impl.cc", """\
// lint:raw-net (this file IS the transport seam)
#include <sys/socket.h>
int Open() { return ::socket(2, 1, 0); }
""")
        self.assert_clean(run_lint(self.root))


class ColumnPayload(LintFixture):
    def test_chunked_vector_outside_storage_is_flagged(self):
        self.write("src/query/gather.cc", """
#include "storage/chunk.h"
void Gather(const ChunkedVector<int64_t>& payload) {}
""")
        self.assert_flags(run_lint(self.root), "column-payload")

    def test_payload_member_outside_storage_is_flagged(self):
        self.write("src/query/hack.cc",
                   "const auto& raw = column->ints_;\n")
        self.assert_flags(run_lint(self.root), "column-payload")

    def test_column_data_call_outside_storage_is_flagged(self):
        self.write("src/query/scan.cc",
                   "const int64_t* base = column_ints.data();\n")
        self.assert_flags(run_lint(self.root), "column-payload")

    def test_chunked_vector_inside_storage_is_allowed(self):
        self.write("src/storage/column2.h",
                   "ChunkedVector<int64_t> ints_;\n")
        self.assert_clean(run_lint(self.root))

    def test_plain_vector_data_is_not_flagged(self):
        # .data() on a non-column vector (output buffers, string payloads)
        # stays legal outside storage/.
        self.write("src/query/buffer.cc",
                   "std::vector<Value> out;\n"
                   "Fill(out.data(), out.size());\n")
        self.assert_clean(run_lint(self.root))

    def test_chunk_constants_are_allowed_anywhere(self):
        self.write("src/core/shard.cc", """
#include "storage/chunk.h"
size_t Align(size_t n) { return n & ~kColumnChunkMask; }
""")
        self.assert_clean(run_lint(self.root))

    def test_span_accessor_is_allowed(self):
        self.write("src/query/probe.cc", """
void Probe(const Column& col, size_t n) {
  col.ForEachInt64Span(0, n, [](size_t row, const int64_t* data, size_t c) {
  });
}
""")
        self.assert_clean(run_lint(self.root))

    def test_column_data_annotation_is_allowed(self):
        self.write("src/query/scan.cc",
                   "// lint:column-data span pointer from ForEachInt64Span\n"
                   "Consume(column_span.data());\n")
        self.assert_clean(run_lint(self.root))


class TestTimeout(LintFixture):
    def test_add_test_without_timeout_is_flagged(self):
        self.write("tests/CMakeLists.txt",
                   "add_test(NAME foo_test COMMAND foo_test)\n")
        self.assert_flags(run_lint(self.root), "test-timeout")

    def test_add_test_with_timeout_is_allowed(self):
        self.write("tests/CMakeLists.txt", """
add_test(NAME foo_test COMMAND foo_test)
set_tests_properties(foo_test PROPERTIES TIMEOUT 120)
""")
        self.assert_clean(run_lint(self.root))

    def test_foreach_variable_token_matches(self):
        self.write("tests/CMakeLists.txt", """
foreach(suite IN LISTS SUITES)
  add_test(NAME ${suite} COMMAND ${suite})
  set_tests_properties(${suite} PROPERTIES TIMEOUT 120)
endforeach()
""")
        self.assert_clean(run_lint(self.root))

    def test_properties_without_timeout_is_flagged(self):
        self.write("tests/CMakeLists.txt", """
add_test(NAME foo_test COMMAND foo_test)
set_tests_properties(foo_test PROPERTIES LABELS slow)
""")
        self.assert_flags(run_lint(self.root), "test-timeout")


if __name__ == "__main__":
    unittest.main()
