// serve_auditor: stands up the auditing server over a synthetic hospital
// log and serves the framed wire protocol until killed.
//
//   ./serve_auditor [--port=N] [--host=ADDR] [--token=SECRET]
//                   [--scale=tiny|small|paper] [--seed=N]
//                   [--quota=N] [--max-pending=N]
//
// The database is generated deterministically from --scale/--seed, the
// LogStream table is seeded with days 1-2 of the access log, and the
// handcrafted paper templates are registered — the same convention
// bench_serving uses to build its in-process twin, which is what makes the
// served-vs-in-process byte-equivalence check meaningful across processes.
//
// Prints one machine-readable line once the listener is bound:
//
//   READY port=<port> seed_rows=<n> backlog_rows=<m>
//
// and then blocks forever (CI kills the process when the smoke run ends).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/ingest.h"
#include "log/access_log.h"
#include "net/server.h"

using namespace eba;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> s, const char* what) {
  Check(s.status(), what);
  return std::move(s).value();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  std::string scale = "small";
  uint64_t seed = 0;
  bool seed_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      options.port = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      options.host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--token=", 8) == 0) {
      options.auth_token = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
      seed_set = true;
    } else if (std::strncmp(argv[i], "--quota=", 8) == 0) {
      options.max_requests_per_connection =
          static_cast<uint64_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--max-pending=", 14) == 0) {
      options.max_pending_appends = static_cast<size_t>(std::atoi(argv[i] + 14));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  CareWebConfig config;
  if (scale == "tiny") {
    config = CareWebConfig::Tiny();
  } else if (scale == "small") {
    config = CareWebConfig::Small();
  } else {
    config = CareWebConfig::PaperShaped();
  }
  if (seed_set) config.seed = seed;

  // Deterministic setup shared with bench_serving's twin: generate, seed
  // LogStream with days 1-2, register the handcrafted templates.
  CareWebData data = Unwrap(GenerateCareWeb(config), "generate");
  const Table* log = Unwrap(data.db.GetTable("Log"), "log table");
  const size_t total_rows = log->num_rows();
  (void)Unwrap(AddLogSlice(&data.db, "Log", "LogStream", 1, 2,
                           /*first_only=*/false),
               "log slice");
  const size_t seed_rows =
      Unwrap(static_cast<const Database&>(data.db).GetTable("LogStream"),
             "stream table")
          ->num_rows();

  StreamingAuditor auditor =
      Unwrap(StreamingAuditor::Create(&data.db, "LogStream"), "auditor");
  for (const auto& t :
       Unwrap(TemplatesHandcraftedDirect(data.db, true), "templates")) {
    Check(auditor.AddTemplate(t), "add template");
  }

  auto server = Unwrap(AuditServer::Start(&auditor, options), "start server");
  std::printf("READY port=%d seed_rows=%zu backlog_rows=%zu\n",
              server->port(), seed_rows, total_rows - seed_rows);
  std::fflush(stdout);

  for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
}
