// eba_tool: command-line driver for the whole explanation-based-auditing
// workflow, operating on databases persisted with storage/persist.h and
// template catalogs from core/catalog.h. This is the shape of a deployment:
// data lands in a directory, templates are mined once and reviewed as a
// text artifact, and audits/reports run against both.
//
//   eba_tool generate --dir DATA [--scale tiny|small|paper] [--seed N]
//   eba_tool info     --dir DATA
//   eba_tool groups   --dir DATA [--first-day 1 --last-day 6]
//   eba_tool mine     --dir DATA --catalog FILE [--support 0.01]
//                     [--max-length 5] [--max-tables 3] [--log Log]
//   eba_tool explain  --dir DATA --catalog FILE --lid N
//   eba_tool audit    --dir DATA --catalog FILE --patient N
//   eba_tool report   --dir DATA --catalog FILE

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/date.h"
#include "core/catalog.h"
#include "core/engine.h"
#include "core/miner.h"
#include "graph/hierarchy.h"
#include "graph/user_graph.h"
#include "log/access_log.h"
#include "query/sql.h"
#include "storage/persist.h"

using namespace eba;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "eba_tool: %s\n", message.c_str());
  std::exit(1);
}

void CheckOk(const Status& s) {
  if (!s.ok()) Die(s.ToString());
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  CheckOk(s.status());
  return std::move(s).value();
}

Args Parse(int argc, char** argv) {
  Args args;
  if (argc < 2) Die("usage: eba_tool <command> [--flag value ...]");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) Die("expected --flag, got: " + token);
    std::string key = token.substr(2);
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      args.flags[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (i + 1 < argc) {
      args.flags[key] = argv[++i];
    } else {
      Die("flag --" + key + " needs a value");
    }
  }
  return args;
}

Database LoadDir(const Args& args) {
  if (!args.Has("dir")) Die("--dir is required");
  return Unwrap(LoadDatabase(args.Get("dir", "")));
}

ExplanationEngine EngineWithCatalog(const Database& db, const Args& args) {
  std::string log_table = args.Get("log", "Log");
  ExplanationEngine engine = Unwrap(ExplanationEngine::Create(&db, log_table));
  if (!args.Has("catalog")) Die("--catalog is required");
  TemplateCatalog catalog =
      Unwrap(TemplateCatalog::LoadFromFile(db, args.Get("catalog", "")));
  for (const auto& tmpl : catalog.templates()) {
    CheckOk(engine.AddTemplate(tmpl));
  }
  std::printf("loaded %zu templates from %s\n", catalog.size(),
              args.Get("catalog", "").c_str());
  return engine;
}

int CmdGenerate(const Args& args) {
  if (!args.Has("dir")) Die("--dir is required");
  std::string scale = args.Get("scale", "small");
  CareWebConfig config;
  if (scale == "tiny") {
    config = CareWebConfig::Tiny();
  } else if (scale == "small") {
    config = CareWebConfig::Small();
  } else if (scale == "paper") {
    config = CareWebConfig::PaperShaped();
  } else {
    Die("unknown --scale: " + scale);
  }
  if (args.Has("seed")) {
    config.seed = static_cast<uint64_t>(args.GetInt("seed", 0));
  }
  std::printf("generating synthetic hospital (%s, seed %llu)...\n",
              scale.c_str(), static_cast<unsigned long long>(config.seed));
  CareWebData data = Unwrap(GenerateCareWeb(config));
  CheckOk(SaveDatabase(data.db, args.Get("dir", "")));
  std::printf("wrote %zu tables (%zu rows) to %s\n",
              data.db.TableNames().size(), data.db.TotalRows(),
              args.Get("dir", "").c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  Database db = LoadDir(args);
  std::printf("%-16s %10s  %s\n", "table", "rows", "columns");
  for (const std::string& name : db.TableNames()) {
    const Table* table = Unwrap(db.GetTable(name));
    std::string cols;
    for (const auto& def : table->schema().columns()) {
      if (!cols.empty()) cols += ", ";
      cols += def.name;
      if (!def.domain.empty()) cols += "[" + def.domain + "]";
    }
    std::printf("%-16s %10zu  %s\n", name.c_str(), table->num_rows(),
                cols.c_str());
  }
  if (db.HasTable("Log")) {
    const Table* log_table = Unwrap(db.GetTable("Log"));
    AccessLog log = Unwrap(AccessLog::Wrap(log_table));
    std::printf(
        "\nlog: %zu accesses, %zu users, %zu patients, density %.5f, "
        "%zu first accesses\n",
        log.size(), log.NumDistinctUsers(), log.NumDistinctPatients(),
        log.UserPatientDensity(), log.FirstAccessLids().size());
  }
  return 0;
}

int CmdGroups(const Args& args) {
  if (!args.Has("dir")) Die("--dir is required");
  Database db = LoadDir(args);
  int first_day = static_cast<int>(args.GetInt("first-day", 1));
  int last_day = static_cast<int>(args.GetInt("last-day", 6));
  GroupHierarchy hierarchy = Unwrap(BuildGroupsFromDays(
      &db, args.Get("log", "Log"), first_day, last_day, "Groups",
      HierarchyOptions{}));
  std::printf("built Groups from days %d-%d: %zu top-level groups, depth %d\n",
              first_day, last_day, hierarchy.GroupsAtDepth(1).size(),
              hierarchy.max_depth());
  CheckOk(SaveDatabase(db, args.Get("dir", "")));
  std::printf("database updated in %s\n", args.Get("dir", "").c_str());
  return 0;
}

int CmdMine(const Args& args) {
  Database db = LoadDir(args);
  if (!args.Has("catalog")) Die("--catalog is required");

  MinerOptions options;
  options.log_table = args.Get("log", "Log");
  options.support_fraction = args.GetDouble("support", 0.01);
  options.max_length = static_cast<int>(args.GetInt("max-length", 5));
  options.max_tables = static_cast<int>(args.GetInt("max-tables", 3));
  options.excluded_tables = ExcludedLogsFor(db, options.log_table);

  std::printf("mining %s (s=%.2f%%, M=%d, T=%d)...\n",
              options.log_table.c_str(), 100 * options.support_fraction,
              options.max_length, options.max_tables);
  MiningResult result = Unwrap(TemplateMiner(&db, options).MineOneWay());

  TemplateCatalog catalog;
  for (const auto& mined : result.templates) {
    CheckOk(catalog.Add(mined.tmpl));
  }
  CheckOk(catalog.SaveToFile(db, args.Get("catalog", "")));
  std::printf(
      "mined %zu templates (%zu support queries, %zu skipped); wrote %s\n",
      result.templates.size(), result.stats.support_queries,
      result.stats.skipped_paths, args.Get("catalog", "").c_str());
  std::printf("review the catalog, delete unwanted TEMPLATE blocks, then use "
              "it with `explain`, `audit` and `report`.\n");
  return 0;
}

int CmdExplain(const Args& args) {
  Database db = LoadDir(args);
  ExplanationEngine engine = EngineWithCatalog(db, args);
  if (!args.Has("lid")) Die("--lid is required");
  int64_t lid = args.GetInt("lid", 0);
  auto instances = Unwrap(engine.Explain(lid));
  if (instances.empty()) {
    std::printf("L%lld is UNEXPLAINED by the catalog.\n",
                static_cast<long long>(lid));
    return 0;
  }
  std::printf("L%lld has %zu explanation(s):\n", static_cast<long long>(lid),
              instances.size());
  for (const auto& instance : instances) {
    std::printf("  - %s   [%s, length %d]\n",
                instance.ToNaturalLanguage(db).c_str(),
                instance.tmpl().name().c_str(), instance.tmpl().RawLength());
  }
  return 0;
}

int CmdAudit(const Args& args) {
  Database db = LoadDir(args);
  ExplanationEngine engine = EngineWithCatalog(db, args);
  if (!args.Has("patient")) Die("--patient is required");
  int64_t patient = args.GetInt("patient", 0);

  const Table* log_table = Unwrap(db.GetTable(engine.log_table()));
  AccessLog log = Unwrap(AccessLog::Wrap(log_table));
  const HashIndex& index =
      log_table->GetOrBuildIndex(static_cast<size_t>(log.patient_col()));
  auto rows = index.LookupInt64(patient);
  std::printf("%zu accesses to patient %lld:\n", rows.size(),
              static_cast<long long>(patient));
  for (uint32_t r : rows) {
    AccessLog::Entry e = log.Get(r);
    auto instances = Unwrap(engine.Explain(e.lid));
    std::printf("  L%-8lld %s  user %-6lld %s\n",
                static_cast<long long>(e.lid),
                Date::FromSeconds(e.time).ToLogString().c_str(),
                static_cast<long long>(e.user),
                instances.empty()
                    ? "!! UNEXPLAINED"
                    : instances.front().ToNaturalLanguage(db).c_str());
  }
  return 0;
}

int CmdReport(const Args& args) {
  Database db = LoadDir(args);
  ExplanationEngine engine = EngineWithCatalog(db, args);
  ExplanationReport report = Unwrap(engine.ExplainAll());
  std::printf("log size:    %zu\n", report.log_size);
  std::printf("explained:   %zu (%.2f%%)\n", report.explained_lids.size(),
              100.0 * report.Coverage());
  std::printf("unexplained: %zu\n", report.unexplained_lids.size());
  std::printf("\nper-template coverage:\n");
  for (size_t i = 0; i < engine.templates().size(); ++i) {
    std::printf("  %-48s %8zu\n", engine.templates()[i].name().c_str(),
                report.per_template_counts[i]);
  }
  size_t shown = 0;
  std::printf("\nfirst unexplained lids:");
  for (int64_t lid : report.unexplained_lids) {
    std::printf(" %lld", static_cast<long long>(lid));
    if (++shown == 15) break;
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "info") return CmdInfo(args);
  if (args.command == "groups") return CmdGroups(args);
  if (args.command == "mine") return CmdMine(args);
  if (args.command == "explain") return CmdExplain(args);
  if (args.command == "audit") return CmdAudit(args);
  if (args.command == "report") return CmdReport(args);
  Die("unknown command: " + args.command +
      " (expected generate|info|groups|mine|explain|audit|report)");
}
