// Patient portal: the user-centric auditing scenario of §1 (Example 1.1).
//
// Generates a synthetic hospital week, prepares the Auditor facade
// (collaborative groups + hand-crafted templates), then prints the audit
// report a patient like Alice would see: every access to her record with a
// plain-language explanation — or a flag that the access is unexplained and
// can be reported to the compliance office.
//
// Run: ./patient_portal [patient_id]

#include <cstdio>
#include <cstdlib>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/date.h"
#include "core/auditor.h"

using namespace eba;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  Check(s.status());
  return std::move(s).value();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Generating synthetic hospital week...\n");
  CareWebData data = Unwrap(GenerateCareWeb(CareWebConfig::Small()));
  Database& db = data.db;

  Auditor auditor = Unwrap(Auditor::Create(&db));
  std::printf("Inferring collaborative groups from the access log (Sec 4)...\n");
  Check(auditor.BuildCollaborativeGroups());
  std::printf("  %zu top-level groups, hierarchy depth %d\n",
              auditor.hierarchy()->GroupsAtDepth(1).size(),
              auditor.hierarchy()->max_depth());

  for (auto& tmpl : Unwrap(TemplatesHandcraftedDirect(db, true))) {
    Check(auditor.AddTemplate(tmpl));
  }
  for (auto& tmpl : Unwrap(TemplatesDataSetB(db))) {
    Check(auditor.AddTemplate(tmpl));
  }
  for (auto& tmpl : Unwrap(TemplatesGroups(db, 1, true))) {
    Check(auditor.AddTemplate(tmpl));
  }
  std::printf("  %zu explanation templates registered\n\n",
              auditor.engine().num_templates());

  // Pick a patient: the command-line argument, or the first patient that
  // has a few accesses.
  int64_t patient = argc > 1 ? std::atoll(argv[1]) : -1;
  if (patient < 0) {
    const Table* log = Unwrap(db.GetTable("Log"));
    AccessLog access_log = Unwrap(AccessLog::Wrap(log));
    std::map<int64_t, int> counts;
    for (size_t r = 0; r < access_log.size(); ++r) {
      counts[access_log.Get(r).patient]++;
    }
    for (const auto& [pid, count] : counts) {
      if (count >= 4 && count <= 10) {
        patient = pid;
        break;
      }
    }
  }

  std::printf("=== Access report for patient %lld ===\n",
              static_cast<long long>(patient));
  auto entries = Unwrap(auditor.AuditPatient(patient));
  if (entries.empty()) {
    std::printf("No accesses to this record in the audited period.\n");
    return 0;
  }
  size_t unexplained = 0;
  for (const auto& entry : entries) {
    std::printf("\n%s  accessed by user %lld (L%lld)\n",
                Date::FromSeconds(entry.access.time).ToLogString().c_str(),
                static_cast<long long>(entry.access.user),
                static_cast<long long>(entry.access.lid));
    if (entry.explanations.empty()) {
      std::printf("   !! no explanation found - you may report this access "
                  "to the compliance office\n");
      ++unexplained;
    } else {
      // Explanations are ranked by ascending path length; show the top two.
      size_t shown = 0;
      for (const auto& text : entry.explanations) {
        std::printf("   - %s\n", text.c_str());
        if (++shown == 2) break;
      }
      if (entry.explanations.size() > 2) {
        std::printf("   (and %zu more explanations)\n",
                    entry.explanations.size() - 2);
      }
    }
  }
  std::printf("\n%zu accesses, %zu unexplained\n", entries.size(),
              unexplained);
  return 0;
}
