// Group discovery: the §4 pipeline in isolation — build the user
// collaboration graph (W = AᵀA over the access matrix), cluster it by
// modularity, build the hierarchy, and inspect how well the discovered
// groups line up with the hospital's real (ground-truth) care teams and
// department codes.
//
// Run: ./group_discovery

#include <algorithm>
#include <cstdio>
#include <map>

#include "careweb/generator.h"
#include "graph/hierarchy.h"
#include "graph/modularity.h"
#include "graph/user_graph.h"
#include "log/access_log.h"

using namespace eba;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  Check(s.status());
  return std::move(s).value();
}

}  // namespace

int main() {
  std::printf("Generating synthetic hospital week...\n");
  CareWebData data = Unwrap(GenerateCareWeb(CareWebConfig::Small()));
  const Table* log_table = Unwrap(data.db.GetTable("Log"));
  AccessLog log = Unwrap(AccessLog::Wrap(log_table));

  // --- Build W = AᵀA over the training days.
  auto rows = log.RowsInDayRange(1, 6);
  UserGraph graph = Unwrap(UserGraph::BuildFromRows(log, rows));
  std::printf("Collaboration graph: %zu users, %zu weighted edges\n",
              graph.num_users(), graph.NumEdges());

  // --- One flat clustering (what a single Louvain pass gives).
  Clustering flat = ClusterUserGraph(graph);
  std::printf("Flat clustering: %d clusters, modularity Q = %.3f\n",
              flat.num_clusters, flat.modularity);

  // --- The full hierarchy (recursive re-clustering, §4.1).
  HierarchyOptions options;
  options.max_depth = 8;
  GroupHierarchy hierarchy = Unwrap(GroupHierarchy::Build(graph, options));
  std::printf("Hierarchy: depth %d, %zu groups total\n\n",
              hierarchy.max_depth(), hierarchy.nodes().size());
  for (int depth = 0; depth <= hierarchy.max_depth(); ++depth) {
    auto groups = hierarchy.GroupsAtDepth(depth);
    size_t largest = 0;
    for (const GroupNode* g : groups) {
      largest = std::max(largest, g->users.size());
    }
    std::printf("  depth %d: %4zu groups, largest has %zu users\n", depth,
                groups.size(), largest);
  }

  // --- Compare depth-1 groups against ground-truth teams (precision of
  //     "works together" pairs) and show one group's department mix.
  size_t same_team = 0, total = 0;
  for (const auto& team : data.truth.teams) {
    for (size_t i = 0; i < team.members.size(); ++i) {
      for (size_t j = i + 1; j < team.members.size(); ++j) {
        const GroupNode* gi = hierarchy.GroupOf(team.members[i], 1);
        const GroupNode* gj = hierarchy.GroupOf(team.members[j], 1);
        if (gi == nullptr || gj == nullptr) continue;
        ++total;
        if (gi->group_id == gj->group_id) ++same_team;
      }
    }
  }
  std::printf("\nSame-team pairs clustered together at depth 1: %.1f%%\n",
              total ? 100.0 * static_cast<double>(same_team) /
                          static_cast<double>(total)
                    : 0.0);

  auto top = hierarchy.GroupsAtDepth(1);
  auto largest_it = std::max_element(
      top.begin(), top.end(), [](const GroupNode* a, const GroupNode* b) {
        return a->users.size() < b->users.size();
      });
  if (largest_it != top.end()) {
    const GroupNode* g = *largest_it;
    const Table* users = Unwrap(data.db.GetTable("Users"));
    const HashIndex& index = users->GetOrBuildIndex(0);
    std::map<std::string, int> dept_mix;
    for (int64_t uid : g->users) {
      for (uint32_t r : index.LookupInt64(uid)) {
        dept_mix[users->Get(r, 2).AsString()]++;
      }
    }
    std::printf("\nLargest depth-1 group (%zu users) department mix "
                "(cf. Figures 10/11):\n",
                g->users.size());
    for (const auto& [dept, count] : dept_mix) {
      std::printf("  %-45s %d\n", dept.c_str(), count);
    }
  }
  return 0;
}
