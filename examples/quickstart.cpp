// Quickstart: the paper's running example (Figures 1-3) end to end.
//
// Builds the Example 2.2 hospital database by hand, registers explanation
// templates (A) and (B), and explains each access in the log — reproducing
// the worked example from §2 of the paper, including the natural-language
// renderings and the support numbers of Example 3.1.
//
// Run: ./quickstart

#include <cstdio>

#include "common/date.h"
#include "core/engine.h"
#include "log/access_log.h"
#include "query/sql.h"
#include "storage/database.h"

using namespace eba;

namespace {

/// Aborts on error — examples fail loudly.
void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  Check(s.status());
  return std::move(s).value();
}

}  // namespace

int main() {
  // --- 1. Create the schema of Figure 3. Key domains ("patient", "user")
  //        declare which attributes are joinable — the key/FK relationships
  //        the miner is allowed to use.
  Database db;
  Check(db.CreateTable(TableSchema(
      "Appointments",
      {ColumnDef{"Patient", DataType::kInt64, "patient", false},
       ColumnDef{"Date", DataType::kTimestamp, "", false},
       ColumnDef{"Doctor", DataType::kInt64, "user", false}})));
  Check(db.CreateTable(TableSchema(
      "Doctor_Info", {ColumnDef{"Doctor", DataType::kInt64, "user", false},
                      ColumnDef{"Department", DataType::kString, "dept",
                                false}})));
  Check(db.CreateTable(AccessLog::StandardSchema("Log")));
  Check(db.AllowSelfJoin(AttrId{"Doctor_Info", "Department"}));

  // --- 2. Populate it: Alice saw Dr. Dave on 1/1/2010; Bob saw Dr. Mike on
  //        2/2/2010; Dave and Mike share the Pediatrics department.
  const int64_t kAlice = 1, kBob = 2, kDave = 10, kMike = 11;
  Table* appointments = Unwrap(db.GetTable("Appointments"));
  int64_t jan1 = Date::FromCivil(2010, 1, 1, 9, 0, 0).ToSeconds();
  int64_t feb2 = Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds();
  Check(appointments->AppendRow(
      {Value::Int64(kAlice), Value::Timestamp(jan1), Value::Int64(kDave)}));
  Check(appointments->AppendRow(
      {Value::Int64(kBob), Value::Timestamp(feb2), Value::Int64(kMike)}));

  Table* info = Unwrap(db.GetTable("Doctor_Info"));
  Check(info->AppendRow({Value::Int64(kMike), Value::String("Pediatrics")}));
  Check(info->AppendRow({Value::Int64(kDave), Value::String("Pediatrics")}));

  Table* log = Unwrap(db.GetTable("Log"));
  Check(log->AppendRow({Value::Int64(1), Value::Timestamp(jan1 + 3600),
                        Value::Int64(kDave), Value::Int64(kAlice),
                        Value::String("viewed record")}));
  Check(log->AppendRow({Value::Int64(2), Value::Timestamp(feb2 + 3600),
                        Value::Int64(kDave), Value::Int64(kBob),
                        Value::String("viewed record")}));

  // --- 3. Register the paper's explanation templates (A) and (B) from
  //        FROM/WHERE text; description strings use [alias.Column]
  //        placeholders (§2.2).
  ExplanationEngine engine = Unwrap(ExplanationEngine::Create(&db, "Log"));
  Check(engine.AddTemplate(Unwrap(ExplanationTemplate::Parse(
      db, "template_A", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User",
      "Patient [L.Patient] had an appointment with doctor [L.User] on "
      "[A.Date]"))));
  Check(engine.AddTemplate(Unwrap(ExplanationTemplate::Parse(
      db, "template_B", "Log L, Appointments A, Doctor_Info I1, Doctor_Info I2",
      "L.Patient = A.Patient AND A.Doctor = I1.Doctor AND "
      "I1.Department = I2.Department AND I2.Doctor = L.User",
      "Patient [L.Patient] had an appointment with doctor [A.Doctor], and "
      "doctor [L.User] works with them in the [I1.Department] department"))));

  // --- 4. Show the generated SQL (what would run against PostgreSQL).
  std::printf("Template (A) as SQL:\n%s\n\n",
              Unwrap(engine.templates()[0].ToSql(db)).c_str());

  // --- 5. Explain every access (the user-centric audit of §1).
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  for (size_t r = 0; r < access_log.size(); ++r) {
    AccessLog::Entry e = access_log.Get(r);
    std::printf("L%lld  %s  user %lld -> patient %lld\n",
                static_cast<long long>(e.lid),
                Date::FromSeconds(e.time).ToLogString().c_str(),
                static_cast<long long>(e.user),
                static_cast<long long>(e.patient));
    auto instances = Unwrap(engine.Explain(e.lid));
    if (instances.empty()) {
      std::printf("    (unexplained - candidate for compliance review)\n");
    }
    for (const auto& instance : instances) {
      std::printf("    because: %s  [template %s, length %d]\n",
                  instance.ToNaturalLanguage(db).c_str(),
                  instance.tmpl().name().c_str(), instance.tmpl().RawLength());
    }
  }

  // --- 6. Support (Example 3.1): template (A) explains 50% of the log,
  //        template (B) explains 100%.
  ExplanationReport report = Unwrap(engine.ExplainAll());
  std::printf("\nSupport: template_A explains %zu/%zu accesses, "
              "template_B explains %zu/%zu accesses\n",
              report.per_template_counts[0], report.log_size,
              report.per_template_counts[1], report.log_size);
  std::printf("Combined coverage: %.0f%%\n", 100.0 * report.Coverage());
  return 0;
}
