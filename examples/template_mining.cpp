// Template mining: the administrator's workflow from §3 — mine frequent
// explanation templates from the data instead of writing them by hand, then
// review the suggestions (as SQL + support) before applying them.
//
// Run: ./template_mining

#include <algorithm>
#include <cstdio>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/miner.h"
#include "query/sql.h"

using namespace eba;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  Check(s.status());
  return std::move(s).value();
}

}  // namespace

int main() {
  std::printf("Generating synthetic hospital week...\n");
  CareWebData data = Unwrap(GenerateCareWeb(CareWebConfig::Small()));
  Database& db = data.db;

  // Groups first: mined templates can then use the Groups self-join.
  (void)Unwrap(BuildGroupsFromDays(&db, "Log", 1, 6, "Groups",
                                   HierarchyOptions{}));

  // Mine over the first accesses of the training days (§5.3.3).
  LogSlice train = Unwrap(AddLogSlice(&db, "Log", "TrainFirst", 1, 6, true));
  std::printf("Mining log: %zu first accesses (days 1-6)\n\n",
              train.lids.size());

  MinerOptions options;
  options.log_table = "TrainFirst";
  options.support_fraction = 0.01;  // s = 1%
  options.max_length = 5;          // M
  options.max_tables = 3;          // T
  options.excluded_tables = ExcludedLogsFor(db, "TrainFirst");

  TemplateMiner miner(&db, options);
  MiningResult result = Unwrap(miner.MineOneWay());

  std::printf("Mined %zu templates (support threshold %.0f accesses).\n",
              result.templates.size(), result.support_threshold);
  std::printf("Support queries: %zu, support-cache hits: %zu, plan-cache "
              "hits: %zu, paths skipped by the optimizer estimate: %zu\n\n",
              result.stats.support_queries,
              result.stats.support_cache_hits, result.stats.plan_cache_hits,
              result.stats.skipped_paths);

  // Sort by support for review; show the strongest template per reported
  // length — exactly what an administrator would eyeball first.
  std::vector<const MinedTemplate*> sorted;
  for (const auto& m : result.templates) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](const MinedTemplate* a, const MinedTemplate* b) {
              return a->support > b->support;
            });

  std::printf("=== Administrator review queue (top template per length) ===\n");
  std::map<int, const MinedTemplate*> best_by_length;
  for (const MinedTemplate* m : sorted) {
    int length = m->tmpl.ReportedLength(db);
    if (!best_by_length.count(length)) best_by_length[length] = m;
  }
  for (const auto& [length, m] : best_by_length) {
    std::printf("\n--- length %d | support %lld (%.1f%% of the log) ---\n",
                length, static_cast<long long>(m->support),
                100.0 * m->support_fraction);
    SqlRenderOptions sql_options;
    sql_options.count_distinct_lid = true;
    std::printf("%s\n", Unwrap(m->tmpl.ToSql(db, sql_options)).c_str());
  }

  // Count by length, as in Table 1.
  std::map<int, int> by_length;
  for (const auto& m : result.templates) {
    by_length[m.tmpl.ReportedLength(db)]++;
  }
  std::printf("\n=== Mined templates by length (cf. Table 1) ===\n");
  for (const auto& [length, count] : by_length) {
    std::printf("  length %d: %d templates\n", length, count);
  }

  // Sanity check the paper reports: the hand-crafted appointment template
  // is among the mined ones.
  ExplanationTemplate appt = Unwrap(TemplateApptWithDoctor(db));
  std::string appt_key = Unwrap(appt.CanonicalKey(db));
  bool found = false;
  for (const auto& m : result.templates) {
    if (Unwrap(m.tmpl.CanonicalKey(db)) == appt_key) found = true;
  }
  std::printf("\nappointment-with-doctor recovered by mining: %s\n",
              found ? "yes" : "NO");
  return 0;
}
