// Misuse detection: the secondary application from §1 — instead of manual
// analysis of millions of accesses, explain what can be explained and hand
// the compliance office only the unexplained remainder.
//
// This example also plants a "celebrity snooping" incident (several
// employees with no clinical relationship open the same record, mirroring
// the Britney Spears case the paper cites) and shows that the incident
// surfaces in the unexplained report.
//
// Run: ./misuse_detection

#include <cstdio>
#include <map>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/date.h"
#include "common/random.h"
#include "core/auditor.h"

using namespace eba;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> s) {
  Check(s.status());
  return std::move(s).value();
}

}  // namespace

int main() {
  std::printf("Generating synthetic hospital week...\n");
  CareWebData data = Unwrap(GenerateCareWeb(CareWebConfig::Small()));
  Database& db = data.db;

  // --- Plant a snooping incident: five random employees open the VIP's
  //     record on the last day, with no appointment/order/group tie.
  const int64_t kVip = data.truth.all_patients.back();
  {
    Table* log = Unwrap(db.GetTable("Log"));
    AccessLog access_log = Unwrap(AccessLog::Wrap(log));
    int64_t next_lid = static_cast<int64_t>(access_log.size()) + 1;
    int64_t when = access_log.MaxTime() + 60;
    Random rng(2008);  // the year of the incidents the paper cites
    for (int i = 0; i < 5; ++i) {
      int64_t snoop =
          data.truth.all_users[rng.Uniform(data.truth.all_users.size())];
      Check(log->AppendRow({Value::Int64(next_lid++), Value::Timestamp(when),
                            Value::Int64(snoop), Value::Int64(kVip),
                            Value::String("viewed record")}));
      when += 30;
    }
    std::printf("Planted 5 snooping accesses to VIP patient %lld.\n\n",
                static_cast<long long>(kVip));
  }

  // --- Prepare the auditor: groups + the full hand-crafted template set.
  Auditor auditor = Unwrap(Auditor::Create(&db));
  Check(auditor.BuildCollaborativeGroups());
  for (auto& tmpl : Unwrap(TemplatesHandcraftedDirect(db, true))) {
    Check(auditor.AddTemplate(tmpl));
  }
  for (auto& tmpl : Unwrap(TemplatesDataSetB(db))) {
    Check(auditor.AddTemplate(tmpl));
  }
  for (auto& tmpl : Unwrap(TemplatesGroups(db, 1, true))) {
    Check(auditor.AddTemplate(tmpl));
  }

  // --- Run the full-log report.
  ExplanationReport report = Unwrap(auditor.FindUnexplained());
  std::printf("Log size:          %zu accesses\n", report.log_size);
  std::printf("Explained:         %zu (%.1f%%)\n", report.explained_lids.size(),
              100.0 * report.Coverage());
  std::printf("Needs review:      %zu (%.1f%%)\n",
              report.unexplained_lids.size(),
              100.0 * (1.0 - report.Coverage()));
  std::printf(
      "Manual-review workload reduced by %.1fx.\n\n",
      report.unexplained_lids.empty()
          ? 0.0
          : static_cast<double>(report.log_size) /
                static_cast<double>(report.unexplained_lids.size()));

  // --- Cross-check the unexplained set against ground truth and find the
  //     planted incident.
  const Table* log = Unwrap(db.GetTable("Log"));
  AccessLog access_log = Unwrap(AccessLog::Wrap(log));
  std::map<int64_t, AccessLog::Entry> by_lid;
  for (size_t r = 0; r < access_log.size(); ++r) {
    AccessLog::Entry e = access_log.Get(r);
    by_lid[e.lid] = e;
  }

  std::map<std::string, int> unexplained_reasons;
  int vip_flagged = 0;
  for (int64_t lid : report.unexplained_lids) {
    auto it = data.truth.access_reason.find(lid);
    unexplained_reasons[it == data.truth.access_reason.end() ? "planted_snoop"
                                                             : it->second]++;
    if (by_lid.at(lid).patient == kVip) ++vip_flagged;
  }
  std::printf("Ground-truth composition of the unexplained set:\n");
  for (const auto& [reason, count] : unexplained_reasons) {
    std::printf("  %-15s %d\n", reason.c_str(), count);
  }
  std::printf("\nVIP snooping accesses flagged: %d / 5\n", vip_flagged);

  std::printf("\nSample of flagged accesses (most recent first):\n");
  int shown = 0;
  for (auto it = report.unexplained_lids.rbegin();
       it != report.unexplained_lids.rend() && shown < 8; ++it, ++shown) {
    const AccessLog::Entry& e = by_lid.at(*it);
    std::printf("  L%-7lld %s  user %lld -> patient %lld\n",
                static_cast<long long>(e.lid),
                Date::FromSeconds(e.time).ToLogString().c_str(),
                static_cast<long long>(e.user),
                static_cast<long long>(e.patient));
  }
  return 0;
}
