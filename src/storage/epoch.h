// EpochManager: epoch-based reclamation for retired column-tail state.
//
// The snapshot layer lets readers walk append-only structures lock-free
// while the single writer grows them. Almost everything is publish-in-place
// (slots below a PublishedSize watermark never move), but two allocations
// do get superseded as a table grows: a ChunkedVector's chunk-pointer
// directory when it doubles, and a HashIndex's slot directory / per-key row
// buckets when they fill. The writer cannot free the old allocation
// immediately — a reader that loaded the pointer a microsecond earlier may
// still be iterating it — so it *retires* the allocation here instead.
//
// The protocol is the classic three-phase EBR, deliberately run under a
// plain mutex rather than per-thread epoch slots: pins happen once per
// snapshot (i.e. once per query or audit, not per probe), so a mutex is
// cold, simple, and obviously correct, while the data-structure read paths
// the pins protect stay entirely lock-free.
//
//   * A reader pins the current epoch when it creates a snapshot and
//     unpins when the snapshot is destroyed.
//   * The writer retires an allocation with a deleter; the retirement is
//     stamped with a fresh epoch strictly greater than any pin taken
//     before it.
//   * A retired allocation is freed once every pin taken at or before its
//     retirement epoch is gone: later pins cannot have observed the old
//     pointer (it was unreachable before they pinned).
//
// With no readers pinned, Retire frees eagerly — single-threaded callers
// (loads, tests, standalone tables) pay one mutex hop and no deferral.

#ifndef EBA_STORAGE_EPOCH_H_
#define EBA_STORAGE_EPOCH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eba {

class EpochManager {
 public:
  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;
  ~EpochManager() {
    // Any still-retired allocation is unreachable by construction (pins
    // must not outlive the manager; Database owns both sides).
    for (auto& r : retired_) r.free();
  }

  /// Reader side: pin the current epoch. Pair with Unpin (Snapshot's pin
  /// token does this via RAII).
  uint64_t Pin() EBA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++pins_[epoch_];
    return epoch_;
  }

  void Unpin(uint64_t epoch) EBA_EXCLUDES(mu_) {
    std::vector<Retired> free_now;
    {
      MutexLock lock(mu_);
      auto it = pins_.find(epoch);
      if (it != pins_.end() && --it->second == 0) pins_.erase(it);
      CollectLocked(&free_now);
    }
    // Deleters run outside the lock: they may be arbitrarily expensive and
    // must not serialize against concurrent Pin/Retire.
    for (auto& r : free_now) r.free();
  }

  /// Writer side: defer freeing `free` until every currently pinned reader
  /// has unpinned. Freed immediately when nothing is pinned.
  template <typename FreeFn>
  void Retire(FreeFn&& free) EBA_EXCLUDES(mu_) {
    std::vector<Retired> free_now;
    {
      MutexLock lock(mu_);
      // Advance the epoch so readers pinning after this retirement are
      // provably unable to hold the retired pointer.
      const uint64_t stamp = epoch_++;
      retired_.push_back(Retired{stamp, std::forward<FreeFn>(free)});
      CollectLocked(&free_now);
    }
    for (auto& r : free_now) r.free();
  }

  /// Diagnostics for tests and the README's reclamation story.
  size_t pinned_snapshots() const EBA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    size_t n = 0;
    for (const auto& [epoch, count] : pins_) n += count;  // lint:ordered
    return n;
  }
  size_t retired_pending() const EBA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return retired_.size();
  }
  uint64_t freed_total() const EBA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return freed_;
  }

 private:
  struct Retired {
    uint64_t epoch;
    std::function<void()> free;
  };

  void CollectLocked(std::vector<Retired>* free_now) EBA_REQUIRES(mu_) {
    const uint64_t min_pinned =
        pins_.empty() ? UINT64_MAX : pins_.begin()->first;
    size_t kept = 0;
    for (auto& r : retired_) {
      // Free once every pin taken at or before the retirement stamp is
      // gone (pins_ is an ordered map, so begin() is the oldest pin).
      if (r.epoch < min_pinned) {
        free_now->push_back(std::move(r));
        ++freed_;
      } else {
        retired_[kept++] = std::move(r);
      }
    }
    retired_.resize(kept);
  }

  mutable Mutex mu_;
  uint64_t epoch_ EBA_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, uint32_t> pins_ EBA_GUARDED_BY(mu_);
  std::vector<Retired> retired_ EBA_GUARDED_BY(mu_);
  uint64_t freed_ EBA_GUARDED_BY(mu_) = 0;
};

/// RAII pin held by a Database::Snapshot; copyable snapshots share one pin.
class EpochPin {
 public:
  EpochPin(EpochManager* manager, uint64_t epoch)
      : manager_(manager), epoch_(epoch) {}
  ~EpochPin() {
    if (manager_ != nullptr) manager_->Unpin(epoch_);
  }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

 private:
  EpochManager* manager_;
  uint64_t epoch_;
};

}  // namespace eba

#endif  // EBA_STORAGE_EPOCH_H_
