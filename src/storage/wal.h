// Write-ahead log for streaming audit appends.
//
// Record framing (all integers little-endian):
//
//   +----------------+----------------+------+-----------------+
//   | u32 payload_len| u32 crc32      | u8   | payload bytes   |
//   |                | (type+payload) | type | (payload_len)   |
//   +----------------+----------------+------+-----------------+
//
// The CRC covers the type byte and the payload, so a bit flip anywhere in a
// record (including its type) is detected. Readers stop at the first record
// whose header is short, whose payload is short, or whose CRC mismatches:
// everything before that point is the valid prefix, everything after is a
// torn/corrupt tail to be truncated — never applied.
//
// Group commit: AppendRecord only buffers; Commit writes the whole buffer
// with one Append call and then syncs per the WalSync policy. A batch is
// therefore one contiguous byte range on disk, and a crash mid-Commit tears
// at most the last batch.

#ifndef EBA_STORAGE_WAL_H_
#define EBA_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/io.h"
#include "storage/table.h"

namespace eba {

/// When the WAL forces data to stable storage.
enum class WalSync : uint8_t {
  /// Never fsync: durable against process kill (data reached the kernel via
  /// write()), not against power loss. This is the mode the fault-injection
  /// suite exercises, and the default for benchmarks of structural overhead.
  kNone = 0,
  /// fsync once per Commit (group commit): each committed batch is durable
  /// against power loss before the append call returns.
  kBatch = 1,
  /// fsync on every record: AppendRecord implies Commit.
  kAlways = 2,
};

/// WAL record types.
enum WalRecordType : uint8_t {
  /// Payload: u32 table_name_len | table_name | u32 nrows |
  ///          per row: u32 ncols | per value: u8 DataType tag + payload.
  kWalAppendBatch = 1,
};

/// A decoded record: the type byte plus the raw payload bytes.
struct WalRecord {
  uint8_t type = 0;
  std::string payload;
};

/// Result of scanning a WAL file: the valid record prefix, how many bytes
/// it spans, and how many trailing bytes were dropped as torn/corrupt.
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  uint64_t dropped_bytes = 0;
};

/// Appends framed records to a log file with group commit.
class WalWriter {
 public:
  /// Opens `path` for appending (created if absent).
  static StatusOr<std::unique_ptr<WalWriter>> Open(Env* env,
                                                   const std::string& path,
                                                   WalSync sync);

  /// Frames `payload` under `type` into the commit buffer. Under
  /// WalSync::kAlways this also commits.
  Status AppendRecord(uint8_t type, std::string_view payload);

  /// Writes the buffered records with a single Append and syncs per policy.
  /// No-op when the buffer is empty.
  Status Commit();

  /// Total framed bytes handed to AppendRecord since Open (committed or
  /// still buffered); drives the auto-checkpoint threshold.
  uint64_t bytes_logged() const { return bytes_logged_; }

  /// Commits any buffered records, then closes the file.
  Status Close();

 private:
  WalWriter(std::unique_ptr<WritableFile> file, WalSync sync)
      : file_(std::move(file)), sync_(sync) {}

  std::unique_ptr<WritableFile> file_;
  WalSync sync_;
  std::string buffer_;
  uint64_t bytes_logged_ = 0;
};

/// Scans the WAL at `path`, returning the longest valid record prefix.
/// Truncated or CRC-mismatching tails are reported via dropped_bytes, not
/// errors: a torn tail is the expected shape of a crash. NotFound only if
/// the file itself is missing.
StatusOr<WalReadResult> ReadWalFile(Env* env, const std::string& path);

/// Serializes a batch of rows destined for `table_name` into a
/// kWalAppendBatch payload.
std::string EncodeAppendPayload(const std::string& table_name,
                                const std::vector<Row>& rows);

/// Decoded form of a kWalAppendBatch payload.
struct WalAppendBatch {
  std::string table_name;
  std::vector<Row> rows;
};

/// Parses a kWalAppendBatch payload. A payload that passed its CRC should
/// always decode; failure here means a logic error or hand-corrupted input
/// and is reported as Internal.
StatusOr<WalAppendBatch> DecodeAppendPayload(std::string_view payload);

}  // namespace eba

#endif  // EBA_STORAGE_WAL_H_
