#include "storage/index.h"

#include <new>
#include <type_traits>

#include "common/logging.h"

namespace eba {

namespace {

/// splitmix64 finalizer: int64 keys (ids, timestamps, dictionary codes)
/// are frequently sequential or share low bits; the mixer spreads them
/// across the power-of-two slot space.
inline uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr size_t kMinDirCapacity = 64;
constexpr size_t kInitialBucketCapacity = 4;

}  // namespace

HashIndex::Bucket* HashIndex::NewBucket(size_t capacity) {
  void* mem = ::operator new(sizeof(Bucket) + capacity * sizeof(uint32_t));
  return new (mem) Bucket(capacity);
}

void HashIndex::FreeBucket(Bucket* b) {
  b->~Bucket();
  ::operator delete(b);
}

template <typename T>
void HashIndex::Retire(T* p) {
  constexpr bool is_bucket = std::is_same_v<T, Bucket>;
  if (epochs_ != nullptr) {
    epochs_->Retire([p] {
      if constexpr (is_bucket) {
        FreeBucket(p);
      } else {
        delete p;
      }
    });
  } else {
    if constexpr (is_bucket) {
      FreeBucket(p);
    } else {
      delete p;
    }
  }
}

HashIndex::HashIndex(const Column* column) : column_(column) {
  EBA_CHECK(column != nullptr);
  // Pre-size the directory with a quarter of the existing rows as the
  // distinct-key guess, bounding build-time rehash passes; it grows on
  // demand past that.
  const size_t guess =
      RoundUpPow2(std::max(kMinDirCapacity, column->size() / 4));
  dir_.store(new Dir(guess), std::memory_order_relaxed);
  ExtendTo(column->size());
}

HashIndex::~HashIndex() {
  Dir* dir = dir_.load(std::memory_order_relaxed);
  if (dir == nullptr) return;
  for (size_t i = 0; i <= dir->mask; ++i) {
    Bucket* b = dir->slots[i].bucket.load(std::memory_order_relaxed);
    if (b != nullptr) FreeBucket(b);
  }
  delete dir;
  // Superseded buckets/directories were retired to the EpochManager and
  // are not reachable from the current directory.
}

void HashIndex::InsertInt(int64_t key, uint32_t row) {
  Dir* dir = dir_.load(std::memory_order_relaxed);
  size_t i = MixHash(static_cast<uint64_t>(key)) & dir->mask;
  while (true) {
    Slot& slot = dir->slots[i];
    Bucket* b = slot.bucket.load(std::memory_order_relaxed);
    if (b == nullptr) {
      // Claim the empty slot: key first; the release store of the bucket
      // publishes the key and the first row together.
      slot.key = key;
      Bucket* fresh = NewBucket(kInitialBucketCapacity);
      fresh->rows()[0] = row;
      fresh->size.store(1, std::memory_order_relaxed);
      slot.bucket.store(fresh, std::memory_order_release);
      num_int_keys_.Increment();
      // Keep the load factor below 3/4 (int keys only; doubles live in
      // the boxed map).
      if (num_int_keys_.Load() * 4 > (dir->mask + 1) * 3) GrowDirectory();
      return;
    }
    if (slot.key == key) {
      const size_t n = b->size.load(std::memory_order_relaxed);
      if (n == b->capacity) {
        // Grow by copy: a reader still holding the old bucket keeps a
        // complete prefix; the old allocation is retired, not freed.
        Bucket* fresh = NewBucket(b->capacity * 2);
        std::copy(b->rows(), b->rows() + n, fresh->rows());
        fresh->rows()[n] = row;
        fresh->size.store(n + 1, std::memory_order_relaxed);
        slot.bucket.store(fresh, std::memory_order_release);
        Retire(b);
      } else {
        b->rows()[n] = row;
        b->size.store(n + 1, std::memory_order_release);
      }
      return;
    }
    i = (i + 1) & dir->mask;
  }
}

void HashIndex::GrowDirectory() {
  Dir* old = dir_.load(std::memory_order_relaxed);
  Dir* fresh = new Dir((old->mask + 1) * 2);
  // Private rebuild: no reader sees `fresh` until the release store below,
  // so plain stores suffice. Bucket allocations are shared, not copied —
  // a reader probing the old directory reaches the same (or a retired but
  // still-live prefix) bucket.
  for (size_t i = 0; i <= old->mask; ++i) {
    Bucket* b = old->slots[i].bucket.load(std::memory_order_relaxed);
    if (b == nullptr) continue;
    const int64_t key = old->slots[i].key;
    size_t j = MixHash(static_cast<uint64_t>(key)) & fresh->mask;
    while (fresh->slots[j].bucket.load(std::memory_order_relaxed) !=
           nullptr) {
      j = (j + 1) & fresh->mask;
    }
    fresh->slots[j].key = key;
    fresh->slots[j].bucket.store(b, std::memory_order_relaxed);
  }
  dir_.store(fresh, std::memory_order_release);
  Retire(old);
}

void HashIndex::ExtendTo(size_t num_rows) {
  // Clamp to the column's published size: the fold may run concurrently
  // with the table writer, and rows past the publication watermark are
  // not yet readable.
  const size_t target = std::min(num_rows, column_->size());
  const size_t from = indexed_rows_.LoadRelaxed();
  if (target <= from) return;
  if (column_->IsIntLike() || column_->IsString()) {
    // Chunk-aware fold: the span callback hands a raw per-chunk payload
    // array (int values or dictionary codes), so the inner loop indexes a
    // plain array instead of doing shift+mask access per row.
    column_->ForEachInt64Span(
        from, target,
        [&](size_t first_row, const int64_t* data, size_t count) {
          for (size_t i = 0; i < count; ++i) {
            const size_t row = first_row + i;
            if (column_->IsNull(row)) continue;
            InsertInt(data[i], static_cast<uint32_t>(row));
          }
        });
  } else {
    WriterMutexLock lock(value_mu_);
    for (size_t row = from; row < target; ++row) {
      if (column_->IsNull(row)) continue;
      value_map_[column_->Get(row)].push_back(static_cast<uint32_t>(row));
    }
  }
  // Published last: a reader observing indexed_rows() >= its bound also
  // observes every insert for rows below the bound.
  indexed_rows_.Publish(target);
}

RowIdSpan HashIndex::LookupInt64(int64_t key) const {
  const Dir* dir = dir_.load(std::memory_order_acquire);
  size_t i = MixHash(static_cast<uint64_t>(key)) & dir->mask;
  while (true) {
    const Slot& slot = dir->slots[i];
    const Bucket* b = slot.bucket.load(std::memory_order_acquire);
    // Null bucket = stop sentinel: linear probing without deletions means
    // this key cannot be stored past an empty slot on its probe path.
    if (b == nullptr) return RowIdSpan{};
    if (slot.key == key) {
      return RowIdSpan{b->rows(), b->size.load(std::memory_order_acquire)};
    }
    i = (i + 1) & dir->mask;
  }
}

std::vector<uint32_t> HashIndex::Lookup(const Value& v, size_t bound) const {
  if (v.is_null()) return {};
  if (column_->IsIntLike()) {
    if (v.type() != DataType::kBool && v.type() != DataType::kInt64 &&
        v.type() != DataType::kTimestamp) {
      return {};
    }
    RowIdSpan span = LookupInt64(v.RawInt64()).ClampTo(bound);
    return std::vector<uint32_t>(span.begin(), span.end());
  }
  if (column_->IsString()) {
    if (v.type() != DataType::kString) return {};
    auto code = column_->FindStringCode(v.AsString());
    if (!code) return {};
    RowIdSpan span = LookupInt64(*code).ClampTo(bound);
    return std::vector<uint32_t>(span.begin(), span.end());
  }
  SharedMutexLock lock(value_mu_);
  auto it = value_map_.find(v);
  if (it == value_map_.end()) return {};
  const std::vector<uint32_t>& rows = it->second;
  auto cut = std::lower_bound(rows.begin(), rows.end(),
                              static_cast<uint32_t>(bound));
  return std::vector<uint32_t>(rows.begin(), cut);
}

std::vector<int64_t> HashIndex::TranslateCodesFrom(
    const Column& probe_column) const {
  EBA_CHECK(column_->IsString());
  EBA_CHECK(probe_column.IsString());
  std::vector<int64_t> translated(probe_column.DictionarySize(), -1);
  for (size_t code = 0; code < translated.size(); ++code) {
    auto own = column_->FindStringCode(
        probe_column.DictionaryEntry(static_cast<int64_t>(code)));
    if (own) translated[code] = *own;
  }
  return translated;
}

size_t HashIndex::NumDistinctKeys() const {
  size_t n = static_cast<size_t>(num_int_keys_.Load());
  SharedMutexLock lock(value_mu_);
  n += value_map_.size();
  return n;
}

}  // namespace eba
