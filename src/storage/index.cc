#include "storage/index.h"

#include "common/logging.h"

namespace eba {

HashIndex::HashIndex(const Column* column) : column_(column) {
  EBA_CHECK(column != nullptr);
  if (column->IsIntLike() || column->IsString()) {
    int_map_.reserve(column->size());
  } else {
    value_map_.reserve(column->size());
  }
  ExtendTo(column->size());
}

void HashIndex::ExtendTo(size_t num_rows) {
  EBA_CHECK(num_rows <= column_->size());
  if (column_->IsIntLike() || column_->IsString()) {
    // Chunk-aware fold: the span callback hands a raw per-chunk payload
    // array (int values or dictionary codes), so the inner loop indexes a
    // plain array instead of doing shift+mask access per row.
    column_->ForEachInt64Span(
        indexed_rows_, num_rows,
        [&](size_t first_row, const int64_t* data, size_t count) {
          for (size_t i = 0; i < count; ++i) {
            const size_t row = first_row + i;
            if (column_->IsNull(row)) continue;
            int_map_[data[i]].push_back(static_cast<uint32_t>(row));
          }
        });
  } else {
    for (size_t row = indexed_rows_; row < num_rows; ++row) {
      if (column_->IsNull(row)) continue;
      value_map_[column_->Get(row)].push_back(static_cast<uint32_t>(row));
    }
  }
  if (num_rows > indexed_rows_) indexed_rows_ = num_rows;
}

const std::vector<uint32_t>& HashIndex::Lookup(const Value& v) const {
  if (v.is_null()) return empty_;
  if (column_->IsIntLike()) {
    if (v.type() != DataType::kBool && v.type() != DataType::kInt64 &&
        v.type() != DataType::kTimestamp) {
      return empty_;
    }
    return LookupInt64(v.RawInt64());
  }
  if (column_->IsString()) {
    if (v.type() != DataType::kString) return empty_;
    auto code = column_->FindStringCode(v.AsString());
    if (!code) return empty_;
    return LookupInt64(*code);
  }
  auto it = value_map_.find(v);
  return it == value_map_.end() ? empty_ : it->second;
}

std::vector<int64_t> HashIndex::TranslateCodesFrom(
    const Column& probe_column) const {
  EBA_CHECK(column_->IsString());
  EBA_CHECK(probe_column.IsString());
  std::vector<int64_t> translated(probe_column.DictionarySize(), -1);
  for (size_t code = 0; code < translated.size(); ++code) {
    auto own = column_->FindStringCode(
        probe_column.DictionaryEntry(static_cast<int64_t>(code)));
    if (own) translated[code] = *own;
  }
  return translated;
}

const std::vector<uint32_t>& HashIndex::LookupInt64(int64_t key) const {
  auto it = int_map_.find(key);
  return it == int_map_.end() ? empty_ : it->second;
}

size_t HashIndex::NumDistinctKeys() const {
  return int_map_.empty() ? value_map_.size() : int_map_.size();
}

}  // namespace eba
