// Column: an append-only typed vector with dictionary-encoded strings.
//
// Integer-like types (bool/int64/timestamp) share an int64 payload so the
// join machinery has a single fast path. Strings are dictionary-encoded:
// the payload stores a code into a per-column dictionary, which makes
// grouping and joining on strings cheap and keeps memory bounded for the
// highly repetitive categorical attributes (department codes, action codes).
//
// Payloads are stored in fixed 64k-row chunks (storage/chunk.h): tables
// grow by appending chunks instead of reallocating, so an append never
// copies existing rows and completed-chunk addresses stay stable. All
// payload access goes through the typed accessors or the ForEach*Span scan
// primitives — nothing outside storage/ sees the chunk layout (enforced by
// the column-payload lint rule).

#ifndef EBA_STORAGE_COLUMN_H_
#define EBA_STORAGE_COLUMN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/chunk.h"

namespace eba {

class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n);

  /// Appends a value; the value must be NULL or match the column type.
  Status Append(const Value& v);

  /// Fast typed appends (no per-call type dispatch). CHECK on misuse.
  void AppendInt64(int64_t v);
  void AppendTimestamp(int64_t seconds);
  void AppendBool(bool v);
  void AppendDouble(double v);
  void AppendString(const std::string& v);
  void AppendNull();

  bool IsNull(size_t row) const {
    return !nulls_.empty() && nulls_[row] != 0;
  }

  /// Boxed accessor.
  Value Get(size_t row) const;

  /// Raw payload accessors (undefined for NULL rows; callers check IsNull).
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const {
    return dict_[static_cast<size_t>(ints_[row])];
  }
  /// Dictionary code of a string cell.
  int64_t StringCodeAt(size_t row) const { return ints_[row]; }

  /// The string a dictionary code decodes to. `code` must come from this
  /// column (0 <= code < DictionarySize()).
  const std::string& DictionaryEntry(int64_t code) const {
    return dict_[static_cast<size_t>(code)];
  }

  /// True for types whose payload lives in the int64 vector.
  bool IsIntLike() const {
    return type_ == DataType::kBool || type_ == DataType::kInt64 ||
           type_ == DataType::kTimestamp;
  }
  bool IsString() const { return type_ == DataType::kString; }

  /// Number of distinct strings in this column's dictionary.
  size_t DictionarySize() const { return dict_.size(); }

  /// Code for a string, if it occurs in this column.
  std::optional<int64_t> FindStringCode(const std::string& s) const;

  /// Number of NULL cells.
  size_t NullCount() const { return null_count_; }

  /// Appends boxed Values for `row_ids` (one per id, in order) onto `out`.
  /// This is the single materialization point of the late-materialization
  /// executor: row ids flow through joins and filters unboxed, and boxed
  /// Values are produced here exactly once, at the final projection.
  void MaterializeInto(const std::vector<uint32_t>& row_ids,
                       std::vector<Value>* out) const;

  /// Random-access variant for sharded gathers: writes Get(row_ids[i]) into
  /// out[i] for i in [begin, end). `out` must span at least row_ids.size()
  /// slots; disjoint ranges may be filled from different threads.
  void MaterializeRange(const std::vector<uint32_t>& row_ids, size_t begin,
                        size_t end, Value* out) const;

  /// Chunk-aware scan over the int64 payload (int-like and string columns —
  /// for strings the values are dictionary codes): invokes
  /// fn(first_row, data, count) for each maximal single-chunk run of rows
  /// in [begin, end). Incremental index builds and stats folds use this so
  /// their inner loops run over raw per-chunk arrays instead of per-row
  /// shift+mask access.
  template <typename Fn>
  void ForEachInt64Span(size_t begin, size_t end, Fn&& fn) const {
    ints_.ForEachSpan(begin, end, fn);
  }

 private:
  int64_t InternString(const std::string& s);

  DataType type_;
  size_t size_ = 0;
  size_t null_count_ = 0;
  ChunkedVector<int64_t> ints_;
  ChunkedVector<double> doubles_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int64_t> dict_lookup_;
  ChunkedVector<uint8_t> nulls_;  // allocated lazily on first NULL
};

}  // namespace eba

#endif  // EBA_STORAGE_COLUMN_H_
