// Column: an append-only typed vector with dictionary-encoded strings.
//
// Integer-like types (bool/int64/timestamp) share an int64 payload so the
// join machinery has a single fast path. Strings are dictionary-encoded:
// the payload stores a code into a per-column dictionary, which makes
// grouping and joining on strings cheap and keeps memory bounded for the
// highly repetitive categorical attributes (department codes, action codes).
//
// Payloads are stored in fixed 64k-row chunks (storage/chunk.h): tables
// grow by appending chunks instead of reallocating, so an append never
// copies existing rows and slot addresses stay stable. All payload access
// goes through the typed accessors or the ForEach*Span scan primitives —
// nothing outside storage/ sees the chunk layout (enforced by the
// column-payload lint rule).
//
// Single-writer/multi-reader contract: one writer appends while any number
// of snapshot-pinned readers access rows strictly below their pinned
// watermark. Every side structure a reader touches is publish-after-write:
// payload and null-bitmap sizes are release-published (ChunkedVector), the
// dictionary stores entries in small stable chunks with a published size,
// and the writer-side dictionary hash (InternString/FindStringCode, both
// planning-time-cold) is the one boxed mutex on the read path. Structural
// mutation (Set/clear) is NOT covered — it requires external exclusion of
// all readers, which Table's structural-epoch contract provides.

#ifndef EBA_STORAGE_COLUMN_H_
#define EBA_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/chunk.h"

namespace eba {

class Column {
 public:
  explicit Column(DataType type);
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  DataType type() const { return type_; }
  /// Release-published: a reader that observes size n can access every row
  /// below n through any accessor.
  size_t size() const { return size_.Load(); }
  bool empty() const { return size() == 0; }

  void Reserve(size_t n);

  /// Routes retired chunk directories to the database's reclamation domain
  /// (storage/epoch.h). Called by Table when it joins a Database.
  void AttachEpochManager(EpochManager* epochs);

  /// Appends a value; the value must be NULL or match the column type.
  Status Append(const Value& v);

  /// Fast typed appends (no per-call type dispatch). CHECK on misuse.
  void AppendInt64(int64_t v);
  void AppendTimestamp(int64_t seconds);
  void AppendBool(bool v);
  void AppendDouble(double v);
  void AppendString(const std::string& v);
  void AppendNull();

  bool IsNull(size_t row) const {
    // The null bitmap is backfilled lazily on the first NULL; a reader that
    // observes a shorter (or empty) bitmap correctly treats the row as
    // non-null — the bitmap covering `row` is published before the size
    // that makes `row` readable.
    return row < nulls_.size() && nulls_[row] != 0;
  }

  /// Boxed accessor.
  Value Get(size_t row) const;

  /// Raw payload accessors (undefined for NULL rows; callers check IsNull).
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const {
    return dict_[static_cast<size_t>(ints_[row])];
  }
  /// Dictionary code of a string cell.
  int64_t StringCodeAt(size_t row) const { return ints_[row]; }

  /// The string a dictionary code decodes to. `code` must come from this
  /// column (0 <= code < DictionarySize()). Entries never move once
  /// published, so the reference stays valid across concurrent appends.
  const std::string& DictionaryEntry(int64_t code) const {
    return dict_[static_cast<size_t>(code)];
  }

  /// True for types whose payload lives in the int64 vector.
  bool IsIntLike() const {
    return type_ == DataType::kBool || type_ == DataType::kInt64 ||
           type_ == DataType::kTimestamp;
  }
  bool IsString() const { return type_ == DataType::kString; }

  /// Number of distinct strings in this column's dictionary
  /// (release-published; codes below it decode safely).
  size_t DictionarySize() const { return dict_.size(); }

  /// Code for a string, if it occurs in this column. Takes the dictionary
  /// mutex — planning-time only, never in a probe inner loop.
  std::optional<int64_t> FindStringCode(const std::string& s) const;

  /// Number of NULL cells (relaxed; exact only for the writer).
  size_t NullCount() const {
    return static_cast<size_t>(null_count_.Load());
  }

  /// Appends boxed Values for `row_ids` (one per id, in order) onto `out`.
  /// This is the single materialization point of the late-materialization
  /// executor: row ids flow through joins and filters unboxed, and boxed
  /// Values are produced here exactly once, at the final projection.
  void MaterializeInto(const std::vector<uint32_t>& row_ids,
                       std::vector<Value>* out) const;

  /// Random-access variant for sharded gathers: writes Get(row_ids[i]) into
  /// out[i] for i in [begin, end). `out` must span at least row_ids.size()
  /// slots; disjoint ranges may be filled from different threads.
  void MaterializeRange(const std::vector<uint32_t>& row_ids, size_t begin,
                        size_t end, Value* out) const;

  /// Chunk-aware scan over the int64 payload (int-like and string columns —
  /// for strings the values are dictionary codes): invokes
  /// fn(first_row, data, count) for each maximal single-chunk run of rows
  /// in [begin, end). Incremental index builds and stats folds use this so
  /// their inner loops run over raw per-chunk arrays instead of per-row
  /// shift+mask access.
  template <typename Fn>
  void ForEachInt64Span(size_t begin, size_t end, Fn&& fn) const {
    ints_.ForEachSpan(begin, end, fn);
  }

 private:
  int64_t InternString(const std::string& s);

  DataType type_;
  PublishedSize size_;
  AtomicCounter null_count_;
  ChunkedVector<int64_t> ints_;
  ChunkedVector<double> doubles_;
  /// Dictionary entries in small stable chunks: readers decode codes
  /// lock-free below the published size.
  ChunkedVector<std::string, kDictChunkShift> dict_;
  /// The writer-side reverse map. Boxed so Column stays movable (moves are
  /// single-threaded setup/teardown, like every other member).
  std::unique_ptr<Mutex> dict_mu_;
  std::unordered_map<std::string, int64_t> dict_lookup_
      EBA_GUARDED_BY(*dict_mu_);
  ChunkedVector<uint8_t> nulls_;  // allocated lazily on first NULL
};

}  // namespace eba

#endif  // EBA_STORAGE_COLUMN_H_
