#include "storage/persist.h"

#include <filesystem>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace eba {

namespace {

constexpr char kHeader[] = "# eba database manifest v1";

const char* TypeName(DataType type) { return DataTypeToString(type); }

StatusOr<DataType> TypeFromName(const std::string& name) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kDouble,
                     DataType::kString, DataType::kTimestamp}) {
    if (name == DataTypeToString(t)) return t;
  }
  return Status::InvalidArgument("unknown column type: " + name);
}

StatusOr<AttrId> ParseAttr(const std::string& text) {
  size_t dot = text.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= text.size()) {
    return Status::InvalidArgument("expected Table.Column, got: " + text);
  }
  return AttrId{Trim(text.substr(0, dot)), Trim(text.substr(dot + 1))};
}

}  // namespace

Status SaveDatabase(const Database& db, const std::string& directory,
                    Env* env) {
  if (env == nullptr) env = RealEnv();

  // Stage the complete save in a sibling temp directory, then swap it into
  // place with renames: `directory` is never observable half-written.
  const std::string tmp_dir = directory + ".tmp-save";
  const std::string old_dir = directory + ".old";
  if (env->FileExists(tmp_dir)) EBA_RETURN_IF_ERROR(env->RemoveAll(tmp_dir));
  if (env->FileExists(old_dir)) EBA_RETURN_IF_ERROR(env->RemoveAll(old_dir));
  EBA_RETURN_IF_ERROR(env->CreateDirs(tmp_dir));

  std::ostringstream manifest;
  manifest << kHeader << "\n";
  for (const std::string& name : db.TableNames()) {
    EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    manifest << "\nTABLE " << name << "\n";
    for (const auto& def : table->schema().columns()) {
      manifest << "COLUMN " << def.name << " " << TypeName(def.type);
      if (!def.domain.empty()) manifest << " domain=" << def.domain;
      if (def.is_primary_key) manifest << " pk";
      manifest << "\n";
    }
    manifest << "END\n";
    EBA_RETURN_IF_ERROR(
        env->WriteFile(tmp_dir + "/" + name + ".csv",
                       table->ToCsvString(0, table->num_rows())));
  }
  manifest << "\n";
  for (const std::string& name : db.mapping_tables()) {
    manifest << "MAPPING " << name << "\n";
  }
  for (const auto& attr : db.self_join_attrs()) {
    manifest << "SELFJOIN " << attr.ToString() << "\n";
  }
  for (const auto& rel : db.admin_relationships()) {
    manifest << "ADMINREL " << rel.a.ToString() << " = " << rel.b.ToString()
             << "\n";
  }
  for (const auto& fk : db.foreign_keys()) {
    manifest << "FK " << fk.from.ToString() << " -> " << fk.to.ToString()
             << "\n";
  }
  EBA_RETURN_IF_ERROR(
      env->WriteFile(tmp_dir + "/manifest.txt", manifest.str()));
  EBA_RETURN_IF_ERROR(env->SyncDir(tmp_dir));

  // Swap: existing dir (if any) steps aside, temp takes its place. A crash
  // between the renames leaves either the old save under `.old` plus the
  // complete new save under `directory`, or the complete new save still
  // under `.tmp-save` — never a torn `directory`.
  if (env->FileExists(directory)) {
    EBA_RETURN_IF_ERROR(env->RenameFile(directory, old_dir));
  }
  EBA_RETURN_IF_ERROR(env->RenameFile(tmp_dir, directory));
  if (env->FileExists(old_dir)) EBA_RETURN_IF_ERROR(env->RemoveAll(old_dir));
  const std::string parent =
      std::filesystem::path(directory).parent_path().string();
  return env->SyncDir(parent.empty() ? "." : parent);
}

StatusOr<Database> LoadDatabase(const std::string& directory) {
  StatusOr<std::string> manifest_text =
      RealEnv()->ReadFileToString(directory + "/manifest.txt");
  if (!manifest_text.ok()) {
    return Status::NotFound("no manifest.txt in '" + directory + "'");
  }
  std::istringstream manifest(*std::move(manifest_text));

  Database db;
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  std::string current_table;
  std::vector<ColumnDef> current_columns;
  auto parse_error = [&](const std::string& message) {
    return Status::InvalidArgument("manifest line " +
                                   std::to_string(line_number) + ": " +
                                   message);
  };

  // Deferred metadata: validated after all tables are loaded.
  std::vector<std::string> mapping_tables;
  std::vector<AttrId> self_joins;
  std::vector<std::pair<AttrId, AttrId>> admin_rels;
  std::vector<std::pair<AttrId, AttrId>> fks;

  auto finish_table = [&]() -> Status {
    if (current_table.empty()) return Status::OK();
    TableSchema schema(current_table, current_columns);
    // Validate before constructing a Table: Table's constructor CHECK-fails
    // on a bad schema, but a corrupt manifest (e.g. duplicate COLUMN names)
    // must surface as a load error naming the table, not a crash.
    if (Status s = schema.Validate(); !s.ok()) {
      return Status::InvalidArgument("table '" + current_table +
                                     "': " + s.message());
    }
    EBA_ASSIGN_OR_RETURN(
        Table table,
        Table::ReadCsv(directory + "/" + current_table + ".csv",
                       std::move(schema)));
    EBA_RETURN_IF_ERROR(db.AddTable(std::move(table)));
    current_table.clear();
    current_columns.clear();
    return Status::OK();
  };

  std::set<std::string> declared_tables;

  while (std::getline(manifest, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      if (StartsWith(trimmed, kHeader)) saw_header = true;
      continue;
    }
    if (StartsWith(trimmed, "TABLE ")) {
      if (!current_table.empty()) return parse_error("TABLE inside TABLE");
      current_table = Trim(trimmed.substr(6));
      if (!declared_tables.insert(current_table).second) {
        return parse_error("duplicate TABLE '" + current_table + "'");
      }
    } else if (StartsWith(trimmed, "COLUMN ")) {
      if (current_table.empty()) return parse_error("COLUMN outside TABLE");
      std::vector<std::string> parts;
      for (const auto& p : Split(Trim(trimmed.substr(7)), ' ')) {
        if (!Trim(p).empty()) parts.push_back(Trim(p));
      }
      if (parts.size() < 2) return parse_error("COLUMN needs name and type");
      ColumnDef def;
      def.name = parts[0];
      EBA_ASSIGN_OR_RETURN(def.type, TypeFromName(parts[1]));
      for (size_t i = 2; i < parts.size(); ++i) {
        if (StartsWith(parts[i], "domain=")) {
          def.domain = parts[i].substr(7);
        } else if (parts[i] == "pk") {
          def.is_primary_key = true;
        } else {
          return parse_error("unknown COLUMN attribute: " + parts[i]);
        }
      }
      current_columns.push_back(std::move(def));
    } else if (trimmed == "END") {
      if (current_table.empty()) return parse_error("END outside TABLE");
      EBA_RETURN_IF_ERROR(finish_table());
    } else if (StartsWith(trimmed, "MAPPING ")) {
      mapping_tables.push_back(Trim(trimmed.substr(8)));
    } else if (StartsWith(trimmed, "SELFJOIN ")) {
      EBA_ASSIGN_OR_RETURN(AttrId attr, ParseAttr(Trim(trimmed.substr(9))));
      self_joins.push_back(attr);
    } else if (StartsWith(trimmed, "ADMINREL ")) {
      auto parts = Split(trimmed.substr(9), '=');
      if (parts.size() != 2) return parse_error("ADMINREL needs a = b");
      EBA_ASSIGN_OR_RETURN(AttrId a, ParseAttr(Trim(parts[0])));
      EBA_ASSIGN_OR_RETURN(AttrId b, ParseAttr(Trim(parts[1])));
      admin_rels.emplace_back(a, b);
    } else if (StartsWith(trimmed, "FK ")) {
      std::string body = trimmed.substr(3);
      size_t arrow = body.find("->");
      if (arrow == std::string::npos) return parse_error("FK needs a -> b");
      EBA_ASSIGN_OR_RETURN(AttrId from, ParseAttr(Trim(body.substr(0, arrow))));
      EBA_ASSIGN_OR_RETURN(AttrId to, ParseAttr(Trim(body.substr(arrow + 2))));
      fks.emplace_back(from, to);
    } else {
      return parse_error("unrecognized directive: " + trimmed);
    }
  }
  if (!current_table.empty()) {
    return Status::InvalidArgument("manifest ends inside a TABLE block");
  }
  if (!saw_header) {
    return Status::InvalidArgument("missing manifest header");
  }

  for (const auto& name : mapping_tables) {
    EBA_RETURN_IF_ERROR(db.MarkMappingTable(name));
  }
  for (const auto& attr : self_joins) {
    EBA_RETURN_IF_ERROR(db.AllowSelfJoin(attr));
  }
  for (const auto& [a, b] : admin_rels) {
    EBA_RETURN_IF_ERROR(db.AddAdminRelationship(a, b));
  }
  for (const auto& [from, to] : fks) {
    EBA_RETURN_IF_ERROR(db.AddForeignKey(from, to));
  }
  return db;
}

}  // namespace eba
