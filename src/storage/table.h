// Table: a column-oriented, append-only relation with lazily built hash
// indexes and column statistics.
//
// Mutations are split into two classes so a streaming append workload does
// not throw derived state away:
//  - appends (AppendRow) advance the *append watermark* only; cached hash
//    indexes and statistics stay live and are extended incrementally past
//    the watermark on next access (HashIndex::ExtendTo /
//    IncrementalColumnStats::ExtendTo), so consumers holding index pointers
//    (e.g. compiled query plans) re-bind instead of re-planning;
//  - structural mutations (mutable_column, explicit invalidation — anything
//    that may rewrite existing cells, schemas or dictionaries in place)
//    advance the *structural epoch*, dropping all derived state; consumers
//    must treat a structural-epoch mismatch as "stale — rebuild".

#ifndef EBA_STORAGE_TABLE_H_
#define EBA_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "storage/column.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/statistics.h"

namespace eba {

/// A boxed row (one Value per column).
using Row = std::vector<Value>;

class Table {
 public:
  explicit Table(TableSchema schema);

  // Movable, not copyable (indexes hold pointers into columns).
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  /// Release-published row count: a reader that observes n can read every
  /// cell of every row below n (columns publish before the table does).
  size_t num_rows() const { return num_rows_.Load(); }
  size_t num_columns() const { return columns_.size(); }

  void Reserve(size_t rows);

  /// Routes retired derived-state allocations (chunk directories, index
  /// buckets) to the database's reclamation domain. Called by Database when
  /// the table joins it; standalone tables free retired state immediately.
  void AttachEpochManager(EpochManager* epochs) EBA_EXCLUDES(*lazy_mu_);

  /// Checks a row against the schema (arity, per-column types) without
  /// appending it. A row that validates cannot fail to append — write-ahead
  /// logging relies on this: validate, log, then apply.
  Status ValidateRow(const Row& row) const;

  /// Appends a row; the arity and value types must match the schema.
  Status AppendRow(const Row& row);

  /// Appends a row the caller has already passed through ValidateRow. The
  /// durable append path validates the whole batch before WAL-logging it;
  /// re-validating on apply would double the per-row schema-check cost.
  void AppendValidatedRow(const Row& row);

  /// Cell accessors.
  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }
  Row GetRow(size_t row) const;

  const Column& column(size_t idx) const { return columns_[idx]; }
  Column* mutable_column(size_t idx);

  /// Column by name; Status error if absent.
  StatusOr<const Column*> ColumnByName(const std::string& name) const;

  /// Hash index over `col`, built on first use, cached, and extended past
  /// the append watermark on access (the HashIndex object — and therefore
  /// pointers to it — survives appends; only a structural mutation drops
  /// it). Safe to call from concurrent readers (lazy construction and
  /// extension are serialized internally) AND concurrently with the single
  /// writer appending: the extension folds only rows below the columns'
  /// published sizes, and probes are lock-free (see storage/index.h).
  /// Snapshot readers clamp every lookup to their pinned watermark.
  const HashIndex& GetOrBuildIndex(size_t col) const EBA_EXCLUDES(*lazy_mu_);

  /// Statistics for `col`, computed on first use, cached, and extended past
  /// the append watermark on access; the copy is taken under the lazy
  /// mutex, so it is internally consistent. Under a concurrent writer the
  /// summary covers *at least* the rows below any watermark the caller
  /// observed before the call — possibly more. That slack only perturbs
  /// cardinality estimates (join order); result sets are order-independent.
  ColumnStats GetOrComputeStats(size_t col) const EBA_EXCLUDES(*lazy_mu_);

  /// Drops cached indexes and statistics and advances the structural epoch.
  /// Called automatically by mutable_column; appends do NOT call this.
  void InvalidateDerivedState() const EBA_EXCLUDES(*lazy_mu_);

  /// Monotonic structural-mutation counter: advanced by mutable accesses and
  /// explicit invalidation (anything that may rewrite existing cells in
  /// place), NOT by appends. Consumers holding derived state (hash-index
  /// pointers, compiled query plans) record it at build time and treat a
  /// mismatch as "stale — rebuild".
  uint64_t structural_epoch() const EBA_EXCLUDES(*lazy_mu_) {
    MutexLock lock(*lazy_mu_);
    return structural_epoch_;
  }

  /// The append watermark: number of rows ever appended (== num_rows()).
  /// Consumers that recorded the watermark and observe only a watermark
  /// advance (same structural epoch) may *re-bind* their derived state for
  /// the new suffix instead of rebuilding it.
  uint64_t append_watermark() const {
    return static_cast<uint64_t>(num_rows());
  }

  /// Dumps the table (header + rows) to CSV.
  Status WriteCsv(const std::string& path) const;

  /// Renders rows [from_row, to_row) as CSV text (header included), the
  /// same format WriteCsv produces. Used by checkpoint segments and
  /// crash-safe saves that route bytes through an Env.
  std::string ToCsvString(size_t from_row, size_t to_row) const;

  /// Loads rows from a CSV file previously produced by WriteCsv (header row
  /// required and validated against `schema`). Timestamps are parsed from
  /// "YYYY-MM-DD HH:MM:SS"; empty fields load as NULL. Malformed numeric
  /// fields (including truncated rows) are rejected with a Status naming
  /// the table, line, and column.
  static StatusOr<Table> ReadCsv(const std::string& path, TableSchema schema);

  /// Appends the rows of in-memory CSV text (header validated against this
  /// table's schema) — the replay half of ToCsvString. `source` names the
  /// origin in error messages.
  Status AppendCsvString(const std::string& csv, const std::string& source);

 private:
  /// Shared CSV ingestion: validates the header row against the schema and
  /// appends the data rows with typed, error-naming field parsing.
  Status AppendParsedCsv(const std::vector<std::vector<std::string>>& rows,
                         const std::string& source);

  TableSchema schema_;
  std::vector<Column> columns_;
  PublishedSize num_rows_;
  EpochManager* epochs_ = nullptr;

  // Guards lazy construction of indexes_/stats_ so concurrent readers can
  // share a table. Boxed so the table stays movable (moved-from tables must
  // not be used). The guarded vectors hold owning pointers; the pointees
  // are read lock-free by readers afterwards (the locked extension check in
  // GetOrBuildIndex is the happens-before edge), and only a structural
  // mutation — which holds the lock — frees them.
  mutable std::unique_ptr<Mutex> lazy_mu_;
  mutable std::vector<std::unique_ptr<HashIndex>> indexes_
      EBA_GUARDED_BY(*lazy_mu_);
  mutable std::vector<std::unique_ptr<IncrementalColumnStats>> stats_
      EBA_GUARDED_BY(*lazy_mu_);
  mutable uint64_t structural_epoch_ EBA_GUARDED_BY(*lazy_mu_) = 0;
};

}  // namespace eba

#endif  // EBA_STORAGE_TABLE_H_
