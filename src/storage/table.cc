#include "storage/table.h"

#include <cerrno>
#include <cstdlib>

#include "common/csv.h"
#include "common/date.h"
#include "common/logging.h"

namespace eba {

Table::Table(TableSchema schema)
    : schema_(std::move(schema)), lazy_mu_(std::make_unique<Mutex>()) {
  Status s = schema_.Validate();
  EBA_CHECK_MSG(s.ok(), s.ToString());
  columns_.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) {
    columns_.emplace_back(def.type);
  }
  indexes_.resize(columns_.size());
  stats_.resize(columns_.size());
}

void Table::Reserve(size_t rows) {
  for (auto& col : columns_) col.Reserve(rows);
}

void Table::AttachEpochManager(EpochManager* epochs) {
  epochs_ = epochs;
  for (auto& col : columns_) col.AttachEpochManager(epochs);
  MutexLock lock(*lazy_mu_);
  for (auto& idx : indexes_) {
    if (idx) idx->SetEpochManager(epochs);
  }
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()) + " for table '" + name() + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name + "': " +
          DataTypeToString(row[i].type()) + " vs " +
          DataTypeToString(schema_.column(i).type));
    }
  }
  return Status::OK();
}

Status Table::AppendRow(const Row& row) {
  EBA_RETURN_IF_ERROR(ValidateRow(row));
  AppendValidatedRow(row);
  return Status::OK();
}

void Table::AppendValidatedRow(const Row& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    Status s = columns_[i].Append(row[i]);
    EBA_CHECK_MSG(s.ok(), s.ToString());  // types were pre-validated
  }
  // Appends advance the watermark only (num_rows_ doubles as the
  // watermark); cached indexes/stats stay live and extend on next access.
  // The release publish — after every column published its own append —
  // is what lets a snapshot reader that observed the new count read the
  // whole row.
  num_rows_.Publish(num_rows_.LoadRelaxed() + 1);
}

Row Table::GetRow(size_t row) const {
  EBA_CHECK(row < num_rows());
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.Get(row));
  return out;
}

Column* Table::mutable_column(size_t idx) {
  InvalidateDerivedState();
  return &columns_[idx];
}

StatusOr<const Column*> Table::ColumnByName(const std::string& col_name) const {
  int idx = schema_.ColumnIndex(col_name);
  if (idx < 0) {
    return Status::NotFound("no column '" + col_name + "' in table '" +
                            name() + "'");
  }
  return &columns_[static_cast<size_t>(idx)];
}

const HashIndex& Table::GetOrBuildIndex(size_t col) const {
  EBA_CHECK(col < columns_.size());
  MutexLock lock(*lazy_mu_);
  if (!indexes_[col]) {
    auto idx = std::make_unique<HashIndex>(&columns_[col]);
    // Attach reclamation after the initial build: the index is private
    // until stored below, so build-time supersessions free eagerly.
    idx->SetEpochManager(epochs_);
    indexes_[col] = std::move(idx);
  } else {
    // Extend past the append watermark (no-op when already current). The
    // fold clamps to the columns' published sizes, so it is safe under a
    // concurrent writer; after it returns the index covers at least every
    // watermark the caller observed before this call.
    indexes_[col]->ExtendTo(columns_[col].size());
  }
  return *indexes_[col];
}

ColumnStats Table::GetOrComputeStats(size_t col) const {
  EBA_CHECK(col < columns_.size());
  MutexLock lock(*lazy_mu_);
  if (!stats_[col]) {
    stats_[col] = std::make_unique<IncrementalColumnStats>();
  }
  stats_[col]->ExtendTo(columns_[col]);
  return stats_[col]->stats();
}

void Table::InvalidateDerivedState() const {
  MutexLock lock(*lazy_mu_);
  for (auto& idx : indexes_) idx.reset();
  for (auto& st : stats_) st.reset();
  ++structural_epoch_;
}

Status Table::WriteCsv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(num_rows() + 1);
  std::vector<std::string> header;
  for (const auto& def : schema_.columns()) header.push_back(def.name);
  rows.push_back(std::move(header));
  for (size_t r = 0; r < num_rows(); ++r) {
    std::vector<std::string> fields;
    fields.reserve(columns_.size());
    for (const auto& col : columns_) {
      Value v = col.Get(r);
      fields.push_back(v.is_null() ? "" : v.ToString());
    }
    rows.push_back(std::move(fields));
  }
  return CsvWriteFile(path, rows);
}

std::string Table::ToCsvString(size_t from_row, size_t to_row) const {
  std::string out;
  std::vector<std::string> fields;
  for (const auto& def : schema_.columns()) fields.push_back(def.name);
  out += CsvEncodeRow(fields);
  out += '\n';
  for (size_t r = from_row; r < to_row && r < num_rows(); ++r) {
    fields.clear();
    for (const auto& col : columns_) {
      Value v = col.Get(r);
      fields.push_back(v.is_null() ? "" : v.ToString());
    }
    out += CsvEncodeRow(fields);
    out += '\n';
  }
  return out;
}

namespace {

/// strtoll/strtod with full-consumption and range checks: garbage or
/// truncated numeric fields become errors instead of exceptions (std::stoll
/// throws) or silent prefixes (raw strtoll).
StatusOr<int64_t> ParseInt64Field(const std::string& f) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(f.c_str(), &end, 10);
  if (end == f.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not an int64: '" + f + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> ParseDoubleField(const std::string& f) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(f.c_str(), &end);
  if (end == f.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a double: '" + f + "'");
  }
  return v;
}

StatusOr<Value> ParseCsvField(const std::string& f, const ColumnDef& def) {
  if (f.empty()) return Value::Null();
  switch (def.type) {
    case DataType::kBool:
      return Value::Bool(f == "true" || f == "1");
    case DataType::kInt64: {
      EBA_ASSIGN_OR_RETURN(int64_t v, ParseInt64Field(f));
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      EBA_ASSIGN_OR_RETURN(double v, ParseDoubleField(f));
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(f);
    case DataType::kTimestamp: {
      EBA_ASSIGN_OR_RETURN(Date d, Date::Parse(f));
      return Value::Timestamp(d.ToSeconds());
    }
    case DataType::kNull:
      return Value::Null();
  }
  return Status::InvalidArgument("unknown column type");
}

}  // namespace

Status Table::AppendParsedCsv(
    const std::vector<std::vector<std::string>>& rows,
    const std::string& source) {
  if (rows.empty()) {
    return Status::InvalidArgument("empty csv: " + source);
  }
  const auto& header = rows[0];
  if (header.size() != num_columns()) {
    return Status::InvalidArgument("csv header arity mismatch in " + source);
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema_.column(i).name) {
      return Status::InvalidArgument("csv header mismatch at column " +
                                     std::to_string(i) + " in " + source);
    }
  }
  Reserve(num_rows() + rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& fields = rows[r];
    if (fields.size() != num_columns()) {
      return Status::InvalidArgument(
          "csv row arity mismatch (truncated row?) at line " +
          std::to_string(r + 1) + " in " + source + " for table '" + name() +
          "'");
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      StatusOr<Value> v = ParseCsvField(fields[c], schema_.column(c));
      if (!v.ok()) {
        return Status::InvalidArgument(
            "bad field in table '" + name() + "', column '" +
            schema_.column(c).name + "', line " + std::to_string(r + 1) +
            " of " + source + ": " + v.status().message());
      }
      row.push_back(std::move(*v));
    }
    EBA_RETURN_IF_ERROR(AppendRow(row));
  }
  return Status::OK();
}

StatusOr<Table> Table::ReadCsv(const std::string& path, TableSchema schema) {
  EBA_ASSIGN_OR_RETURN(auto rows, CsvReadFile(path));
  Table table(std::move(schema));
  EBA_RETURN_IF_ERROR(table.AppendParsedCsv(rows, path));
  return table;
}

Status Table::AppendCsvString(const std::string& csv,
                              const std::string& source) {
  EBA_ASSIGN_OR_RETURN(auto rows, CsvParseString(csv));
  return AppendParsedCsv(rows, source);
}

}  // namespace eba
