#include "storage/table.h"

#include "common/csv.h"
#include "common/date.h"
#include "common/logging.h"

namespace eba {

Table::Table(TableSchema schema)
    : schema_(std::move(schema)), lazy_mu_(std::make_unique<Mutex>()) {
  Status s = schema_.Validate();
  EBA_CHECK_MSG(s.ok(), s.ToString());
  columns_.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) {
    columns_.emplace_back(def.type);
  }
  indexes_.resize(columns_.size());
  stats_.resize(columns_.size());
}

void Table::Reserve(size_t rows) {
  for (auto& col : columns_) col.Reserve(rows);
}

Status Table::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()) + " for table '" + name() + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name + "': " +
          DataTypeToString(row[i].type()) + " vs " +
          DataTypeToString(schema_.column(i).type));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Status s = columns_[i].Append(row[i]);
    EBA_CHECK_MSG(s.ok(), s.ToString());  // types were pre-validated
  }
  // Appends advance the watermark only (num_rows_ doubles as the
  // watermark); cached indexes/stats stay live and extend on next access.
  ++num_rows_;
  return Status::OK();
}

Row Table::GetRow(size_t row) const {
  EBA_CHECK(row < num_rows_);
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.Get(row));
  return out;
}

Column* Table::mutable_column(size_t idx) {
  InvalidateDerivedState();
  return &columns_[idx];
}

StatusOr<const Column*> Table::ColumnByName(const std::string& col_name) const {
  int idx = schema_.ColumnIndex(col_name);
  if (idx < 0) {
    return Status::NotFound("no column '" + col_name + "' in table '" +
                            name() + "'");
  }
  return &columns_[static_cast<size_t>(idx)];
}

const HashIndex& Table::GetOrBuildIndex(size_t col) const {
  EBA_CHECK(col < columns_.size());
  MutexLock lock(*lazy_mu_);
  if (!indexes_[col]) {
    indexes_[col] = std::make_unique<HashIndex>(&columns_[col]);
  } else {
    // Extend past the append watermark (no-op when already current). The
    // locked check doubles as the happens-before edge for readers that
    // probe the index without the lock afterwards.
    indexes_[col]->ExtendTo(columns_[col].size());
  }
  return *indexes_[col];
}

const ColumnStats& Table::GetOrComputeStats(size_t col) const {
  EBA_CHECK(col < columns_.size());
  MutexLock lock(*lazy_mu_);
  if (!stats_[col]) {
    stats_[col] = std::make_unique<IncrementalColumnStats>();
  }
  stats_[col]->ExtendTo(columns_[col]);
  return stats_[col]->stats();
}

void Table::InvalidateDerivedState() const {
  MutexLock lock(*lazy_mu_);
  for (auto& idx : indexes_) idx.reset();
  for (auto& st : stats_) st.reset();
  ++structural_epoch_;
}

Status Table::WriteCsv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(num_rows_ + 1);
  std::vector<std::string> header;
  for (const auto& def : schema_.columns()) header.push_back(def.name);
  rows.push_back(std::move(header));
  for (size_t r = 0; r < num_rows_; ++r) {
    std::vector<std::string> fields;
    fields.reserve(columns_.size());
    for (const auto& col : columns_) {
      Value v = col.Get(r);
      fields.push_back(v.is_null() ? "" : v.ToString());
    }
    rows.push_back(std::move(fields));
  }
  return CsvWriteFile(path, rows);
}

StatusOr<Table> Table::ReadCsv(const std::string& path, TableSchema schema) {
  EBA_ASSIGN_OR_RETURN(auto rows, CsvReadFile(path));
  if (rows.empty()) return Status::InvalidArgument("empty csv: " + path);
  const auto& header = rows[0];
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument("csv header arity mismatch in " + path);
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema.column(i).name) {
      return Status::InvalidArgument("csv header mismatch at column " +
                                     std::to_string(i) + " in " + path);
    }
  }
  Table table(std::move(schema));
  table.Reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& fields = rows[r];
    if (fields.size() != table.num_columns()) {
      return Status::InvalidArgument("csv row arity mismatch at line " +
                                     std::to_string(r + 1) + " in " + path);
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      const std::string& f = fields[c];
      if (f.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (table.schema().column(c).type) {
        case DataType::kBool:
          row.push_back(Value::Bool(f == "true" || f == "1"));
          break;
        case DataType::kInt64:
          row.push_back(Value::Int64(std::stoll(f)));
          break;
        case DataType::kDouble:
          row.push_back(Value::Double(std::stod(f)));
          break;
        case DataType::kString:
          row.push_back(Value::String(f));
          break;
        case DataType::kTimestamp: {
          EBA_ASSIGN_OR_RETURN(Date d, Date::Parse(f));
          row.push_back(Value::Timestamp(d.ToSeconds()));
          break;
        }
        case DataType::kNull:
          row.push_back(Value::Null());
          break;
      }
    }
    EBA_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace eba
