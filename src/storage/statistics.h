// Per-column statistics used by the cardinality estimator ("the database
// optimizer" in the paper's skip-non-selective-paths optimization, §3.2.1).

#ifndef EBA_STORAGE_STATISTICS_H_
#define EBA_STORAGE_STATISTICS_H_

#include <cstddef>

#include "common/value.h"
#include "storage/column.h"

namespace eba {

/// Summary statistics of one column.
struct ColumnStats {
  size_t num_rows = 0;
  size_t num_nulls = 0;
  /// Distinct non-NULL values.
  size_t num_distinct = 0;
  /// Min/max over non-NULL values (NULL Values if the column is all-NULL).
  Value min;
  Value max;

  /// Average rows per distinct key (>= 1 when non-empty).
  double AvgMultiplicity() const {
    if (num_distinct == 0) return 0.0;
    return static_cast<double>(num_rows - num_nulls) /
           static_cast<double>(num_distinct);
  }
};

/// Computes exact statistics with a single pass over the column.
ColumnStats ComputeColumnStats(const Column& column);

}  // namespace eba

#endif  // EBA_STORAGE_STATISTICS_H_
