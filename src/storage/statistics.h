// Per-column statistics used by the cardinality estimator ("the database
// optimizer" in the paper's skip-non-selective-paths optimization, §3.2.1).

#ifndef EBA_STORAGE_STATISTICS_H_
#define EBA_STORAGE_STATISTICS_H_

#include <cstddef>
#include <unordered_set>

#include "common/value.h"
#include "storage/column.h"

namespace eba {

/// Summary statistics of one column.
struct ColumnStats {
  size_t num_rows = 0;
  size_t num_nulls = 0;
  /// Distinct non-NULL values.
  size_t num_distinct = 0;
  /// Min/max over non-NULL values (NULL Values if the column is all-NULL).
  Value min;
  Value max;

  /// Average rows per distinct key (>= 1 when non-empty).
  double AvgMultiplicity() const {
    if (num_distinct == 0) return 0.0;
    return static_cast<double>(num_rows - num_nulls) /
           static_cast<double>(num_distinct);
  }
};

/// Computes exact statistics with a single pass over the column.
ColumnStats ComputeColumnStats(const Column& column);

/// Exact statistics that extend incrementally past an append watermark:
/// ExtendTo folds only the rows appended since the last call into the
/// summary, so a streaming Table keeps its stats current in O(new rows)
/// instead of rescanning the prefix on every append. The distinct-value
/// state (which the one-shot ComputeColumnStats discards) is retained for
/// int-like and double columns; string columns read their dictionary size,
/// so they carry no extra state at all.
class IncrementalColumnStats {
 public:
  const ColumnStats& stats() const { return stats_; }
  size_t rows_seen() const { return rows_seen_; }

  /// Folds rows [rows_seen(), column.size()) into the summary. Every call
  /// must see the same column (append-only between calls).
  void ExtendTo(const Column& column);

 private:
  ColumnStats stats_;
  size_t rows_seen_ = 0;
  std::unordered_set<int64_t> distinct_ints_;   // int-like columns
  std::unordered_set<Value> distinct_values_;   // double columns
};

}  // namespace eba

#endif  // EBA_STORAGE_STATISTICS_H_
