// Database: the catalog of tables plus the join metadata the mining
// algorithms are allowed to use (paper §3.1):
//   (2) equi-joins along key/FK relationships (modeled as shared key
//       domains plus explicitly declared foreign keys),
//   (3) self-joins only on administrator-allowed attributes, and
//       administrator-provided relationships between attribute pairs.
// Mapping tables (e.g. the caregiver_id <-> audit_id table of §5.3.3) can be
// marked so they count toward neither the table budget T nor the reported
// template length.

#ifndef EBA_STORAGE_DATABASE_H_
#define EBA_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/epoch.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace eba {

/// A declared foreign-key relationship (from child attr to parent key attr).
struct ForeignKey {
  AttrId from;
  AttrId to;
};

/// An administrator-provided joinable attribute pair (paper §3.1 item 2).
struct AdminRelationship {
  AttrId a;
  AttrId b;
};

/// What changed between two Database::Snapshot handles, classified by the
/// Table mutation split (storage/table.h): appends are reported per table
/// with the grown row range, anything stronger collapses to a
/// rebuild-everything signal.
struct CatalogDrift {
  /// One table whose append watermark advanced (structure intact): rows
  /// [from_watermark, to_watermark) are new.
  struct Append {
    std::string table;
    uint64_t from_watermark = 0;
    uint64_t to_watermark = 0;
  };

  /// CreateTable/AddTable/DropTable moved the catalog generation (table
  /// pointers from the snapshot's era may dangle).
  bool catalog_changed = false;
  /// At least one snapshotted table's structural epoch moved (cells may
  /// have been rewritten in place).
  bool structural_mutation = false;
  /// Tables that only grew, in name order.
  std::vector<Append> appends;

  /// True when incremental consumers must rebuild from scratch: per-table
  /// append deltas are only meaningful below this.
  bool RequiresRebuild() const { return catalog_changed || structural_mutation; }
  bool Empty() const {
    return !catalog_changed && !structural_mutation && appends.empty();
  }
};

class Database {
 public:
  /// A consistent read view of the database: the sole read-side handle of
  /// the single-writer/multi-reader contract. Creating one pins the
  /// reclamation epoch (storage/epoch.h) and captures the catalog
  /// generation plus every table's (structural epoch, append watermark).
  /// A reader executing against a snapshot
  ///
  ///   * only dereferences state reachable below the pinned watermarks
  ///     (every scan, probe, and stats read is clamped to the watermark),
  ///     which stays valid — versioned column tails above the watermark
  ///     grow concurrently without disturbing it;
  ///   * holds const Table pointers only, so a mutation cannot compile
  ///     through the handle.
  ///
  /// Snapshots are cheap (one mutex hop plus a few counter reads) and
  /// copyable — copies share the pin. Release the pin (drop the snapshot,
  /// or ReleasePin() for long-lived drift baselines) promptly: retired
  /// tail versions cannot be reclaimed while a pin from their era lives.
  ///
  /// The writer side is NOT covered: appends need a single serialized
  /// writer, and structural mutations (in-place cell rewrites, drop/add
  /// table) additionally require that no reader is executing — snapshot
  /// holders detect them afterwards via generation/epoch drift.
  class Snapshot {
   public:
    /// One table's pinned view, in name order.
    struct TableView {
      const Table* table = nullptr;
      std::string name;
      uint64_t structural_epoch = 0;
      uint64_t watermark = 0;
    };

    /// An empty snapshot (no database, no pin); assign a real one over it.
    Snapshot() = default;

    const Database* database() const { return db_; }
    uint64_t generation() const { return generation_; }
    const std::vector<TableView>& tables() const { return tables_; }

    /// The pinned view of a table by name; nullptr when the table did not
    /// exist at snapshot time.
    const TableView* Find(const std::string& name) const;

    /// The pinned view of `table`, or nullptr when the table is not part of
    /// this snapshot. O(#tables) — catalogs are small.
    const TableView* ViewOf(const Table* table) const;

    /// The pinned watermark of `table`, or 0 when the table is not part of
    /// this snapshot (a table created afterwards has no visible rows in
    /// it). O(#tables) — catalogs are small.
    size_t BoundOf(const Table* table) const;

    /// Classifies what changed from `older` to this snapshot. Pure counter
    /// comparison — no live reads, and safe on unpinned snapshots. Append
    /// ranges are accurate even when RequiresRebuild() is true, but
    /// consumers should check RequiresRebuild() first.
    CatalogDrift DriftSince(const Snapshot& older) const;

    /// Rewinds one table's captured watermark — baseline bookkeeping only.
    /// Recovery installs the checkpointed audit watermarks over a fresh
    /// handle so rows that landed after the last audit re-surface as drift.
    /// Meaningless on a handle used for reads; pair with ReleasePin().
    void SetWatermark(const std::string& name, uint64_t watermark);

    /// Drops the reclamation pin while keeping the captured counters:
    /// long-lived drift baselines (StreamingAuditor's last-audit snapshot,
    /// checkpoint bookkeeping) must not block tail reclamation forever.
    /// After this, the handle must not be used for reads — only for
    /// DriftSince comparisons.
    void ReleasePin() { pin_.reset(); }
    bool pinned() const { return pin_ != nullptr; }

   private:
    friend class Database;

    const Database* db_ = nullptr;
    uint64_t generation_ = 0;
    std::vector<TableView> tables_;
    std::shared_ptr<EpochPin> pin_;
  };

  Database();

  // Movable only: tables are not copyable.
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Explicit deep copy: schemas, rows, and join metadata. Mutation
  /// counters restart from zero — a clone is a fresh catalog, not a shared
  /// history, so snapshots taken on the original do not apply to it.
  Database Clone() const;

  /// Creates an empty table with the given schema.
  Status CreateTable(TableSchema schema);

  /// Moves an already-populated table into the database.
  Status AddTable(Table table);

  /// Removes a table (and any metadata referencing it stays; callers that
  /// drop tables should re-derive the schema graph).
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  StatusOr<Table*> GetTable(const std::string& name);
  StatusOr<const Table*> GetTable(const std::string& name) const;

  /// All table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

  /// Resolves an attribute to (table, column index); errors if missing.
  StatusOr<int> ResolveColumn(const AttrId& attr) const;

  /// Declares a foreign key; both endpoints must exist and `to` must be a
  /// primary key.
  Status AddForeignKey(const AttrId& from, const AttrId& to);

  /// Declares an administrator-provided relationship between two attributes.
  Status AddAdminRelationship(const AttrId& a, const AttrId& b);

  /// Allows `attr`'s table to participate in a self-join through `attr`
  /// (paper §3.1 item 3).
  Status AllowSelfJoin(const AttrId& attr);

  /// Marks a table as an identifier-mapping table that is exempt from the
  /// table budget T and from reported template length (paper §5.3.3).
  Status MarkMappingTable(const std::string& name);

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const std::vector<AdminRelationship>& admin_relationships() const {
    return admin_rels_;
  }
  const std::vector<AttrId>& self_join_attrs() const {
    return self_join_attrs_;
  }
  bool IsSelfJoinAllowed(const AttrId& attr) const;
  bool IsMappingTable(const std::string& name) const {
    return mapping_tables_.count(name) > 0;
  }
  const std::set<std::string>& mapping_tables() const {
    return mapping_tables_;
  }

  /// Total number of rows across all tables (diagnostics).
  size_t TotalRows() const;

  /// Pins a consistent read view (see Snapshot above). Safe to call from
  /// any reader concurrently with the single appending writer.
  Snapshot CreateSnapshot() const;

  /// The reclamation domain retired column-tail state (chunk directories,
  /// index buckets) is deferred to until every older snapshot unpins.
  EpochManager* epoch_manager() const { return epochs_.get(); }

  /// Monotonic catalog counter: advanced by CreateTable/AddTable/DropTable.
  /// Within one generation, Table pointers returned by GetTable are stable
  /// (std::map nodes only die on erase); consumers caching Table pointers
  /// (e.g. compiled query plans) record the generation at build time and
  /// treat a mismatch as "stale — do not dereference".
  uint64_t catalog_generation() const { return catalog_generation_; }

 private:
  Status ValidateAttr(const AttrId& attr) const;

  /// Declared first so it is destroyed last: retired-state deleters are
  /// independent of the tables, but pins must never outlive the manager.
  /// Boxed so the Database stays movable (the manager's address — which
  /// tables and snapshots hold — is stable across moves).
  std::unique_ptr<EpochManager> epochs_;
  std::map<std::string, Table> tables_;
  uint64_t catalog_generation_ = 0;
  std::vector<ForeignKey> fks_;
  std::vector<AdminRelationship> admin_rels_;
  std::vector<AttrId> self_join_attrs_;
  std::set<std::string> mapping_tables_;
};

}  // namespace eba

#endif  // EBA_STORAGE_DATABASE_H_
