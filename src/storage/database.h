// Database: the catalog of tables plus the join metadata the mining
// algorithms are allowed to use (paper §3.1):
//   (2) equi-joins along key/FK relationships (modeled as shared key
//       domains plus explicitly declared foreign keys),
//   (3) self-joins only on administrator-allowed attributes, and
//       administrator-provided relationships between attribute pairs.
// Mapping tables (e.g. the caregiver_id <-> audit_id table of §5.3.3) can be
// marked so they count toward neither the table budget T nor the reported
// template length.

#ifndef EBA_STORAGE_DATABASE_H_
#define EBA_STORAGE_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace eba {

/// A declared foreign-key relationship (from child attr to parent key attr).
struct ForeignKey {
  AttrId from;
  AttrId to;
};

/// An administrator-provided joinable attribute pair (paper §3.1 item 2).
struct AdminRelationship {
  AttrId a;
  AttrId b;
};

class Database {
 public:
  Database() = default;

  // Movable only: tables are not copyable.
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table with the given schema.
  Status CreateTable(TableSchema schema);

  /// Moves an already-populated table into the database.
  Status AddTable(Table table);

  /// Removes a table (and any metadata referencing it stays; callers that
  /// drop tables should re-derive the schema graph).
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  StatusOr<Table*> GetTable(const std::string& name);
  StatusOr<const Table*> GetTable(const std::string& name) const;

  /// All table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

  /// Resolves an attribute to (table, column index); errors if missing.
  StatusOr<int> ResolveColumn(const AttrId& attr) const;

  /// Declares a foreign key; both endpoints must exist and `to` must be a
  /// primary key.
  Status AddForeignKey(const AttrId& from, const AttrId& to);

  /// Declares an administrator-provided relationship between two attributes.
  Status AddAdminRelationship(const AttrId& a, const AttrId& b);

  /// Allows `attr`'s table to participate in a self-join through `attr`
  /// (paper §3.1 item 3).
  Status AllowSelfJoin(const AttrId& attr);

  /// Marks a table as an identifier-mapping table that is exempt from the
  /// table budget T and from reported template length (paper §5.3.3).
  Status MarkMappingTable(const std::string& name);

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const std::vector<AdminRelationship>& admin_relationships() const {
    return admin_rels_;
  }
  const std::vector<AttrId>& self_join_attrs() const {
    return self_join_attrs_;
  }
  bool IsSelfJoinAllowed(const AttrId& attr) const;
  bool IsMappingTable(const std::string& name) const {
    return mapping_tables_.count(name) > 0;
  }
  const std::set<std::string>& mapping_tables() const {
    return mapping_tables_;
  }

  /// Total number of rows across all tables (diagnostics).
  size_t TotalRows() const;

  /// Monotonic catalog counter: advanced by CreateTable/AddTable/DropTable.
  /// Within one generation, Table pointers returned by GetTable are stable
  /// (std::map nodes only die on erase); consumers caching Table pointers
  /// (e.g. compiled query plans) record the generation at build time and
  /// treat a mismatch as "stale — do not dereference".
  uint64_t catalog_generation() const { return catalog_generation_; }

 private:
  Status ValidateAttr(const AttrId& attr) const;

  std::map<std::string, Table> tables_;
  uint64_t catalog_generation_ = 0;
  std::vector<ForeignKey> fks_;
  std::vector<AdminRelationship> admin_rels_;
  std::vector<AttrId> self_join_attrs_;
  std::set<std::string> mapping_tables_;
};

}  // namespace eba

#endif  // EBA_STORAGE_DATABASE_H_
