// Database: the catalog of tables plus the join metadata the mining
// algorithms are allowed to use (paper §3.1):
//   (2) equi-joins along key/FK relationships (modeled as shared key
//       domains plus explicitly declared foreign keys),
//   (3) self-joins only on administrator-allowed attributes, and
//       administrator-provided relationships between attribute pairs.
// Mapping tables (e.g. the caregiver_id <-> audit_id table of §5.3.3) can be
// marked so they count toward neither the table budget T nor the reported
// template length.

#ifndef EBA_STORAGE_DATABASE_H_
#define EBA_STORAGE_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace eba {

/// A declared foreign-key relationship (from child attr to parent key attr).
struct ForeignKey {
  AttrId from;
  AttrId to;
};

/// An administrator-provided joinable attribute pair (paper §3.1 item 2).
struct AdminRelationship {
  AttrId a;
  AttrId b;
};

/// A point-in-time view of the catalog's mutation counters: the catalog
/// generation plus every table's (structural epoch, append watermark).
/// Consumers of incremental invariants (e.g. StreamingAuditor) snapshot
/// after each pass and later ask Database::DriftSince what changed — per
/// table, split by mutation class — instead of treating any change as one
/// opaque "something moved" blob.
struct CatalogSnapshot {
  struct TableState {
    uint64_t structural_epoch = 0;
    uint64_t watermark = 0;
  };
  uint64_t generation = 0;
  std::map<std::string, TableState> tables;
};

/// What changed since a CatalogSnapshot, classified by the Table mutation
/// split (storage/table.h): appends are reported per table with the grown
/// row range, anything stronger collapses to a rebuild-everything signal.
struct CatalogDrift {
  /// One table whose append watermark advanced (structure intact): rows
  /// [from_watermark, to_watermark) are new.
  struct Append {
    std::string table;
    uint64_t from_watermark = 0;
    uint64_t to_watermark = 0;
  };

  /// CreateTable/AddTable/DropTable moved the catalog generation (table
  /// pointers from the snapshot's era may dangle).
  bool catalog_changed = false;
  /// At least one snapshotted table's structural epoch moved (cells may
  /// have been rewritten in place).
  bool structural_mutation = false;
  /// Tables that only grew, in name order.
  std::vector<Append> appends;

  /// True when incremental consumers must rebuild from scratch: per-table
  /// append deltas are only meaningful below this.
  bool RequiresRebuild() const { return catalog_changed || structural_mutation; }
  bool Empty() const {
    return !catalog_changed && !structural_mutation && appends.empty();
  }
};

class Database {
 public:
  Database() = default;

  // Movable only: tables are not copyable.
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Explicit deep copy: schemas, rows, and join metadata. Mutation
  /// counters restart from zero — a clone is a fresh catalog, not a shared
  /// history, so snapshots taken on the original do not apply to it.
  Database Clone() const;

  /// Creates an empty table with the given schema.
  Status CreateTable(TableSchema schema);

  /// Moves an already-populated table into the database.
  Status AddTable(Table table);

  /// Removes a table (and any metadata referencing it stays; callers that
  /// drop tables should re-derive the schema graph).
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  StatusOr<Table*> GetTable(const std::string& name);
  StatusOr<const Table*> GetTable(const std::string& name) const;

  /// All table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

  /// Resolves an attribute to (table, column index); errors if missing.
  StatusOr<int> ResolveColumn(const AttrId& attr) const;

  /// Declares a foreign key; both endpoints must exist and `to` must be a
  /// primary key.
  Status AddForeignKey(const AttrId& from, const AttrId& to);

  /// Declares an administrator-provided relationship between two attributes.
  Status AddAdminRelationship(const AttrId& a, const AttrId& b);

  /// Allows `attr`'s table to participate in a self-join through `attr`
  /// (paper §3.1 item 3).
  Status AllowSelfJoin(const AttrId& attr);

  /// Marks a table as an identifier-mapping table that is exempt from the
  /// table budget T and from reported template length (paper §5.3.3).
  Status MarkMappingTable(const std::string& name);

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const std::vector<AdminRelationship>& admin_relationships() const {
    return admin_rels_;
  }
  const std::vector<AttrId>& self_join_attrs() const {
    return self_join_attrs_;
  }
  bool IsSelfJoinAllowed(const AttrId& attr) const;
  bool IsMappingTable(const std::string& name) const {
    return mapping_tables_.count(name) > 0;
  }
  const std::set<std::string>& mapping_tables() const {
    return mapping_tables_;
  }

  /// Total number of rows across all tables (diagnostics).
  size_t TotalRows() const;

  /// Captures the catalog generation and every table's mutation counters.
  CatalogSnapshot Snapshot() const;

  /// Classifies everything that changed since `snapshot`. Per-table append
  /// ranges are populated even when RequiresRebuild() is true (they are
  /// accurate as long as the table still exists), but consumers should
  /// check RequiresRebuild() first.
  CatalogDrift DriftSince(const CatalogSnapshot& snapshot) const;

  /// Monotonic catalog counter: advanced by CreateTable/AddTable/DropTable.
  /// Within one generation, Table pointers returned by GetTable are stable
  /// (std::map nodes only die on erase); consumers caching Table pointers
  /// (e.g. compiled query plans) record the generation at build time and
  /// treat a mismatch as "stale — do not dereference".
  uint64_t catalog_generation() const { return catalog_generation_; }

 private:
  Status ValidateAttr(const AttrId& attr) const;

  std::map<std::string, Table> tables_;
  uint64_t catalog_generation_ = 0;
  std::vector<ForeignKey> fks_;
  std::vector<AdminRelationship> admin_rels_;
  std::vector<AttrId> self_join_attrs_;
  std::set<std::string> mapping_tables_;
};

}  // namespace eba

#endif  // EBA_STORAGE_DATABASE_H_
