// ChunkedVector: a fixed-chunk append-only vector for column payloads.
//
// The monolithic std::vector payload was the scaling bottleneck: growing an
// 18M-row column reallocates and copies hundreds of megabytes, and a morsel
// scan that straddles a reallocation point reads memory the allocator just
// moved. ChunkedVector stores elements in fixed 64k-element chunks appended
// to an outer directory — growth never copies completed chunks (the outer
// vector moves cheap inner-vector handles, not payload), element addresses
// in completed chunks are stable, and a scan aligned to chunk boundaries
// touches exactly the chunks it owns.
//
// Only the operations Column needs are provided; this is not a general
// std::vector replacement. Random access is shift+mask+double-indirection;
// sequential scans should use ForEachSpan, which hands out raw per-chunk
// spans so inner loops run at plain-array speed.

#ifndef EBA_STORAGE_CHUNK_H_
#define EBA_STORAGE_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace eba {

/// Rows per chunk. 64k rows keeps an int64 chunk at 512 KB — large enough
/// that per-chunk overhead vanishes, small enough that the tail chunk's
/// geometric growth copies a bounded amount and a chunk-aligned morsel is a
/// sensible unit of parallel work.
inline constexpr size_t kColumnChunkShift = 16;
inline constexpr size_t kColumnChunkRows = size_t{1} << kColumnChunkShift;
inline constexpr size_t kColumnChunkMask = kColumnChunkRows - 1;

template <typename T>
class ChunkedVector {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) {
    return chunks_[i >> kColumnChunkShift][i & kColumnChunkMask];
  }
  const T& operator[](size_t i) const {
    return chunks_[i >> kColumnChunkShift][i & kColumnChunkMask];
  }

  void push_back(const T& v) { EmplaceSlot() = v; }
  void push_back(T&& v) { EmplaceSlot() = std::move(v); }

  /// Pre-sizes the chunk directory (and the first tail chunk) for n total
  /// elements. Completed chunks are never reallocated, so this only saves
  /// the outer-vector growth and the tail chunk's geometric steps.
  void Reserve(size_t n) {
    chunks_.reserve((n + kColumnChunkRows - 1) >> kColumnChunkShift);
    if (!chunks_.empty()) {
      std::vector<T>& tail = chunks_.back();
      size_t want = n - ((chunks_.size() - 1) << kColumnChunkShift);
      tail.reserve(want < kColumnChunkRows ? want : kColumnChunkRows);
    }
  }

  /// Replaces the contents with n copies of `value` (used for the lazy
  /// null-bitmap backfill).
  void assign(size_t n, const T& value) {
    chunks_.clear();
    size_ = 0;
    while (size_ < n) {
      size_t take = n - size_;
      if (take > kColumnChunkRows) take = kColumnChunkRows;
      chunks_.emplace_back(take, value);
      size_ += take;
    }
  }

  size_t num_chunks() const { return chunks_.size(); }

  /// Invokes fn(first_row, data, count) for each maximal run of rows in
  /// [begin, end) lying within a single chunk; `data` points at the slot of
  /// row `first_row`. The chunk-aware scan primitive: index builds, stats
  /// folds, and kernel loops iterate spans instead of per-row operator[].
  template <typename Fn>
  void ForEachSpan(size_t begin, size_t end, Fn&& fn) const {
    if (end > size_) end = size_;
    while (begin < end) {
      const size_t chunk = begin >> kColumnChunkShift;
      const size_t offset = begin & kColumnChunkMask;
      size_t count = kColumnChunkRows - offset;
      if (count > end - begin) count = end - begin;
      fn(begin, chunks_[chunk].data() + offset, count);
      begin += count;
    }
  }

 private:
  T& EmplaceSlot() {
    if (chunks_.empty() || chunks_.back().size() == kColumnChunkRows) {
      chunks_.emplace_back();
    }
    std::vector<T>& tail = chunks_.back();
    tail.emplace_back();
    ++size_;
    return tail.back();
  }

  std::vector<std::vector<T>> chunks_;
  size_t size_ = 0;
};

}  // namespace eba

#endif  // EBA_STORAGE_CHUNK_H_
