// ChunkedVector: a fixed-chunk append-only vector for column payloads,
// readable by snapshot-pinned readers while the single writer appends.
//
// The monolithic std::vector payload was the scaling bottleneck: growing an
// 18M-row column reallocates and copies hundreds of megabytes. The chunked
// layout fixed that for serial use; the snapshot layer tightens the
// contract to single-writer/multi-reader:
//
//   * Chunks are allocated at full capacity up front and never reallocate
//     or move — a slot's address is stable for the structure's lifetime,
//     so a reader holding a span is never invalidated by an append (the
//     old tail chunk's geometric std::vector growth was a realloc race).
//   * The chunk-pointer directory is published through an atomic pointer.
//     When it fills, the writer builds a larger copy, publishes it with a
//     release store, and *retires* the old array to the EpochManager —
//     readers that loaded it before the swap keep iterating it safely
//     until their snapshot pin is released (see storage/epoch.h).
//   * size() is a release-published watermark (common/mutex.h
//     PublishedSize): a reader that observes size n also observes every
//     slot below n fully written. Readers must bound every access by a
//     size they loaded; the snapshot layer above bounds them by the
//     pinned append watermark, which is never ahead of size().
//
// Only the operations Column needs are provided; this is not a general
// std::vector replacement. Random access is shift+mask+double-indirection;
// sequential scans should use ForEachSpan, which hands out raw per-chunk
// spans so inner loops run at plain-array speed.

#ifndef EBA_STORAGE_CHUNK_H_
#define EBA_STORAGE_CHUNK_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/mutex.h"
#include "storage/epoch.h"

namespace eba {

/// Rows per chunk. 64k rows keeps an int64 chunk at 512 KB — large enough
/// that per-chunk overhead vanishes, small enough that a chunk-aligned
/// morsel is a sensible unit of parallel work.
inline constexpr size_t kColumnChunkShift = 16;
inline constexpr size_t kColumnChunkRows = size_t{1} << kColumnChunkShift;
inline constexpr size_t kColumnChunkMask = kColumnChunkRows - 1;

/// Chunk shift for dictionary entry storage: dictionaries hold distinct
/// values, not rows, so full 64k-slot chunks would waste megabytes per
/// string column. 1k entries per chunk keeps eager allocation small.
inline constexpr size_t kDictChunkShift = 10;

template <typename T, size_t Shift = kColumnChunkShift>
class ChunkedVector {
 public:
  static constexpr size_t kRows = size_t{1} << Shift;
  static constexpr size_t kMask = kRows - 1;

  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  // Moves are not atomic: they happen while the structure is being set up
  // or torn down single-threaded (table construction, Database moves), with
  // the same external serialization as moving the owning aggregate.
  ChunkedVector(ChunkedVector&& other) noexcept
      : dir_(other.dir_.load(std::memory_order_relaxed)),
        dir_capacity_(other.dir_capacity_),
        num_chunks_(other.num_chunks_),
        size_(std::move(other.size_)),
        epochs_(other.epochs_) {
    other.dir_.store(nullptr, std::memory_order_relaxed);
    other.dir_capacity_ = 0;
    other.num_chunks_ = 0;
    other.size_.Publish(0);
    other.epochs_ = nullptr;
  }
  ChunkedVector& operator=(ChunkedVector&& other) noexcept {
    if (this != &other) {
      Free();
      dir_.store(other.dir_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      dir_capacity_ = other.dir_capacity_;
      num_chunks_ = other.num_chunks_;
      size_ = std::move(other.size_);
      epochs_ = other.epochs_;
      other.dir_.store(nullptr, std::memory_order_relaxed);
      other.dir_capacity_ = 0;
      other.num_chunks_ = 0;
      other.size_.Publish(0);
      other.epochs_ = nullptr;
    }
    return *this;
  }

  ~ChunkedVector() { Free(); }

  /// Attaches the reclamation domain retired directory arrays go to.
  /// Unattached structures (standalone tables, loads, tests) free retired
  /// arrays immediately — legal because they have no concurrent readers.
  void SetEpochManager(EpochManager* epochs) { epochs_ = epochs; }

  /// Reader-safe: everything below the returned value is fully written.
  size_t size() const { return size_.Load(); }
  bool empty() const { return size() == 0; }

  T& operator[](size_t i) {
    return dir_.load(std::memory_order_relaxed)[i >> Shift][i & kMask];
  }
  /// Reader-safe for i below a size() the caller observed.
  const T& operator[](size_t i) const {
    return dir_.load(std::memory_order_acquire)[i >> Shift][i & kMask];
  }

  void push_back(const T& v) {
    *NextSlot() = v;
    PublishAppend();
  }
  void push_back(T&& v) {
    *NextSlot() = std::move(v);
    PublishAppend();
  }

  /// Pre-sizes the chunk directory for n total elements. Chunks themselves
  /// are always allocated at full capacity, so this only saves directory
  /// regrowth (and the epoch-retirements it would cause).
  void Reserve(size_t n) {
    const size_t need = (n + kRows - 1) >> Shift;
    if (need > dir_capacity_) GrowDirectory(need);
  }

  size_t num_chunks() const { return num_chunks_; }

  /// Invokes fn(first_row, data, count) for each maximal run of rows in
  /// [begin, end) lying within a single chunk; `data` points at the slot of
  /// row `first_row`. The chunk-aware scan primitive: index builds, stats
  /// folds, and kernel loops iterate spans instead of per-row operator[].
  /// `end` is clamped to the published size, so a racing append can only
  /// shrink the iteration, never expose unwritten slots.
  template <typename Fn>
  void ForEachSpan(size_t begin, size_t end, Fn&& fn) const {
    const size_t published = size();
    if (end > published) end = published;
    if (begin >= end) return;
    T* const* dir = dir_.load(std::memory_order_acquire);
    while (begin < end) {
      const size_t chunk = begin >> Shift;
      const size_t offset = begin & kMask;
      size_t count = kRows - offset;
      if (count > end - begin) count = end - begin;
      fn(begin, dir[chunk] + offset, count);
      begin += count;
    }
  }

 private:
  T* NextSlot() {
    const size_t n = size_.LoadRelaxed();
    const size_t chunk = n >> Shift;
    if (chunk == num_chunks_) {
      if (chunk == dir_capacity_) GrowDirectory(dir_capacity_ + 1);
      // Full-capacity allocation: the chunk never grows in place, so a
      // reader's span pointer stays valid while the writer fills it.
      dir_.load(std::memory_order_relaxed)[chunk] = new T[kRows];
      ++num_chunks_;
    }
    return dir_.load(std::memory_order_relaxed)[chunk] + (n & kMask);
  }

  void PublishAppend() { size_.Publish(size_.LoadRelaxed() + 1); }

  void GrowDirectory(size_t min_capacity) {
    size_t capacity = dir_capacity_ > 0 ? dir_capacity_ * 2 : 8;
    while (capacity < min_capacity) capacity *= 2;
    T** fresh = new T*[capacity]();
    T** old = dir_.load(std::memory_order_relaxed);
    if (old != nullptr) std::copy(old, old + num_chunks_, fresh);
    // Publish before any slot of a new chunk is written through it; the
    // size watermark published after the write makes both visible.
    dir_.store(fresh, std::memory_order_release);
    dir_capacity_ = capacity;
    if (old != nullptr) {
      if (epochs_ != nullptr) {
        epochs_->Retire([old] { delete[] old; });
      } else {
        delete[] old;
      }
    }
  }

  void Free() {
    T** dir = dir_.load(std::memory_order_relaxed);
    if (dir == nullptr) return;
    for (size_t c = 0; c < num_chunks_; ++c) delete[] dir[c];
    delete[] dir;
    dir_.store(nullptr, std::memory_order_relaxed);
  }

  std::atomic<T**> dir_{nullptr};
  size_t dir_capacity_ = 0;  // writer-only
  size_t num_chunks_ = 0;    // writer-only
  PublishedSize size_;
  EpochManager* epochs_ = nullptr;
};

}  // namespace eba

#endif  // EBA_STORAGE_CHUNK_H_
