// lint:raw-io (this file IS the seam: every raw write lives here)
#include "storage/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace eba {

namespace fs = std::filesystem;

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " +
                          std::strerror(errno));  // lint:raw-io
}

/// POSIX-backed file: buffered writes via stdio, Sync = fflush + fsync.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("append to closed file: " + path_);
    }
    if (data.empty()) return Status::OK();
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return IoError("write failed for", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("sync of closed file: " + path_);
    }
    if (std::fflush(file_) != 0) return IoError("flush failed for", path_);
    if (::fsync(::fileno(file_)) != 0) return IoError("fsync failed for", path_);
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) return IoError("close failed for", path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::string> ReadFileToString(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::Internal("read failed for '" + path + "'");
    return buffer.str();
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) override {
    std::error_code ec;
    if (!fs::is_directory(path, ec)) {
      return Status::NotFound("not a directory: '" + path + "'");
    }
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) {
      return Status::Internal("cannot list '" + path + "': " + ec.message());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) return IoError("cannot open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      return Status::Internal("cannot create '" + path + "': " + ec.message());
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::Internal("cannot rename '" + from + "' -> '" + to +
                              "': " + ec.message());
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::Internal("cannot remove '" + path + "'" +
                              (ec ? ": " + ec.message() : ""));
    }
    return Status::OK();
  }

  Status RemoveAll(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) {
      return Status::Internal("cannot remove '" + path + "': " + ec.message());
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) {
      return Status::Internal("cannot truncate '" + path +
                              "': " + ec.message());
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return IoError("cannot open directory", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    // Some filesystems refuse fsync on directories (EINVAL); a completed
    // rename is still the best available publish on them.
    if (rc != 0 && errno != EINVAL) return IoError("fsync failed for", path);
    return Status::OK();
  }
};

std::string ParentDir(const std::string& path) {
  const std::string parent = fs::path(path).parent_path().string();
  return parent.empty() ? "." : parent;
}

}  // namespace

Status Env::WriteFile(const std::string& path, std::string_view data) {
  EBA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       NewWritableFile(path, /*truncate=*/true));
  EBA_RETURN_IF_ERROR(file->Append(data));
  EBA_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Status Env::WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  EBA_RETURN_IF_ERROR(WriteFile(tmp, data));
  EBA_RETURN_IF_ERROR(RenameFile(tmp, path));
  return SyncDir(ParentDir(path));
}

Env* RealEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// --- FaultInjectingEnv ---

namespace {

Status DeadStatus() {
  return Status::Internal("injected fault: process killed");
}

}  // namespace

/// Wraps a base WritableFile, charging each call against the env's op
/// budget. The killing Append lands the first half of its data (torn).
/// Namespace-scope (not anonymous) so the friend declaration in io.h finds
/// it.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingEnv* env,
                     std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::OpFate FaultInjectingEnv::BeginWriteOp() {
  if (dead_.load(std::memory_order_relaxed)) return OpFate::kAlreadyDead;
  const uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed);
  if (op >= kill_at_.load(std::memory_order_relaxed)) {
    dead_.store(true, std::memory_order_relaxed);
    return OpFate::kKilledNow;
  }
  return OpFate::kAlive;
}

Status FaultInjectingFile::Append(std::string_view data) {
  const auto fate = env_->BeginWriteOp();
  if (fate == FaultInjectingEnv::OpFate::kAlive) return base_->Append(data);
  // The op that kills the process may have partially reached the kernel:
  // land a deterministic prefix so recovery faces a torn record.
  if (fate == FaultInjectingEnv::OpFate::kKilledNow && !data.empty()) {
    (void)base_->Append(data.substr(0, data.size() / 2));
    (void)base_->Sync();
  }
  return DeadStatus();
}

Status FaultInjectingFile::Sync() {
  if (env_->BeginWriteOp() != FaultInjectingEnv::OpFate::kAlive) {
    return DeadStatus();
  }
  return base_->Sync();
}

Status FaultInjectingFile::Close() {
  if (env_->BeginWriteOp() != FaultInjectingEnv::OpFate::kAlive) {
    return DeadStatus();
  }
  return base_->Close();
}

StatusOr<std::string> FaultInjectingEnv::ReadFileToString(
    const std::string& path) {
  if (dead()) return DeadStatus();
  return base_->ReadFileToString(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return !dead() && base_->FileExists(path);
}

StatusOr<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  if (dead()) return DeadStatus();
  return base_->ListDir(path);
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (BeginWriteOp() != OpFate::kAlive) return DeadStatus();
  EBA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingFile>(this, std::move(base)));
}

Status FaultInjectingEnv::CreateDirs(const std::string& path) {
  if (BeginWriteOp() != OpFate::kAlive) return DeadStatus();
  return base_->CreateDirs(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (BeginWriteOp() != OpFate::kAlive) return DeadStatus();
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  if (BeginWriteOp() != OpFate::kAlive) return DeadStatus();
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::RemoveAll(const std::string& path) {
  if (BeginWriteOp() != OpFate::kAlive) return DeadStatus();
  return base_->RemoveAll(path);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  if (BeginWriteOp() != OpFate::kAlive) return DeadStatus();
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  if (BeginWriteOp() != OpFate::kAlive) return DeadStatus();
  return base_->SyncDir(path);
}

}  // namespace eba
