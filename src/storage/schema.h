// Table schemas and attribute identities.
//
// A ColumnDef may carry a *key domain* label (e.g. "patient", "user",
// "dept", "group"). Attributes that share a domain reference the same
// underlying key space — this is how the catalog models key/foreign-key
// relationships for the purpose of generating join edges (paper §3.1
// restriction 2: equi-joins are only considered along key/FK relationships
// or administrator-provided relationships).

#ifndef EBA_STORAGE_SCHEMA_H_
#define EBA_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace eba {

/// Definition of a single column.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kNull;
  /// Key-domain label; empty means "not a key attribute".
  std::string domain;
  /// True if this column is the table's primary key within its domain.
  bool is_primary_key = false;
};

/// An attribute identified by (table name, column name).
struct AttrId {
  std::string table;
  std::string column;

  bool operator==(const AttrId& o) const {
    return table == o.table && column == o.column;
  }
  bool operator!=(const AttrId& o) const { return !(*this == o); }
  bool operator<(const AttrId& o) const {
    return table != o.table ? table < o.table : column < o.column;
  }

  /// "Table.Column".
  std::string ToString() const { return table + "." + column; }
};

/// Schema of one table: a name plus an ordered list of column definitions.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t idx) const { return columns_[idx]; }

  /// Index of a column by name, or -1 if absent. Case-sensitive.
  int ColumnIndex(const std::string& column_name) const;

  /// True if a column with the given name exists.
  bool HasColumn(const std::string& column_name) const {
    return ColumnIndex(column_name) >= 0;
  }

  /// Index of the primary-key column, or -1 if the table has none.
  int PrimaryKeyIndex() const;

  /// Columns whose domain equals `domain`.
  std::vector<int> ColumnsInDomain(const std::string& domain) const;

  /// Verifies the schema is well-formed: non-empty name, unique non-empty
  /// column names, at most one primary key.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace eba

namespace std {
template <>
struct hash<eba::AttrId> {
  size_t operator()(const eba::AttrId& a) const {
    return std::hash<std::string>{}(a.table) * 1000003 ^
           std::hash<std::string>{}(a.column);
  }
};
}  // namespace std

#endif  // EBA_STORAGE_SCHEMA_H_
