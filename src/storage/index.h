// HashIndex: an equi-join index over one column, probe-able by
// snapshot-pinned readers while the (single, serialized) mutator extends it
// past the append watermark.
//
// Integer-like columns index their raw int64 payloads; string columns index
// dictionary codes (probing translates the probe string through the
// dictionary, so cross-column string joins work); doubles fall back to a
// mutex-guarded Value-keyed map (the cold boxed-oracle path). NULL cells are
// never indexed — a NULL join key matches nothing, mirroring SQL equi-join
// semantics.
//
// Layout: an open-addressing directory of {key, bucket*} slots probed with
// linear probing, where each bucket is a single allocation holding the
// key's row ids in ascending order behind a release-published count.
// Readers are entirely lock-free:
//
//   * An empty (null-bucket) slot is a stop sentinel. Linear probing
//     without deletions makes this sound: if a reader's key were stored
//     beyond an empty slot on its probe path, that slot must have been
//     occupied when the key was inserted — slots never empty out.
//   * The mutator writes a slot's key before release-publishing its bucket
//     pointer, so a reader that observes the bucket also observes the key.
//   * Buckets grow by copy: the mutator builds a larger bucket, publishes
//     it in the slot, and retires the old one to the EpochManager. A
//     reader still iterating the old bucket sees a complete prefix — every
//     row id below the watermark at which the reader obtained the index
//     was already in it.
//   * The directory grows the same way (private rebuild moving bucket
//     pointers, release publish, retire). Keys inserted only into the new
//     directory first occur in rows past any older reader's bound, so a
//     miss in a stale directory is still a correct (empty-after-clamp)
//     answer.
//
// Every lookup returns rows in ascending order; snapshot readers clamp the
// span to their pinned watermark with RowIdSpan::ClampTo, which is how one
// shared index serves snapshots pinned at different watermarks.
//
// Mutation (construction, ExtendTo) must stay serialized — Table's lazy
// mutex provides that — but runs concurrently with readers.

#ifndef EBA_STORAGE_INDEX_H_
#define EBA_STORAGE_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "storage/column.h"
#include "storage/epoch.h"

namespace eba {

/// A borrowed view of one key's row ids, ascending. Valid until the
/// holder's snapshot pin is released (epoch reclamation keeps the backing
/// bucket alive at least that long).
struct RowIdSpan {
  const uint32_t* data = nullptr;
  size_t count = 0;

  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  uint32_t operator[](size_t i) const { return data[i]; }

  /// Restricts the span to rows below `bound` (a snapshot watermark).
  /// O(log size): rows are ascending.
  RowIdSpan ClampTo(size_t bound) const {
    const uint32_t* cut =
        std::lower_bound(data, data + count, static_cast<uint32_t>(bound));
    return RowIdSpan{data, static_cast<size_t>(cut - data)};
  }
};

class HashIndex {
 public:
  /// Builds an index over `column` covering its current published size.
  /// The column must outlive the index.
  explicit HashIndex(const Column* column);
  ~HashIndex();
  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  /// Routes retired buckets/directories to the database's reclamation
  /// domain. Unattached indexes free retired allocations immediately
  /// (legal only without concurrent readers).
  void SetEpochManager(EpochManager* epochs) { epochs_ = epochs; }

  /// Row ids whose cell equals `v`, restricted to rows below `bound`;
  /// empty if none (or v is NULL). The boxed slow path: copies, and takes
  /// the value-map mutex for double columns. Use the typed spans in loops.
  std::vector<uint32_t> Lookup(const Value& v, size_t bound) const;

  /// Fast path for integer-like columns. Lock-free; caller clamps.
  RowIdSpan LookupInt64(int64_t key) const;

  /// Fast path for string columns: probes by a dictionary code of the
  /// *indexed* column (string payloads are codes, so this is the string
  /// analog of LookupInt64). Foreign codes must be translated first — see
  /// TranslateCodesFrom.
  RowIdSpan LookupCode(int64_t code) const { return LookupInt64(code); }

  /// Builds the probe-side code translation for a string-string equi-join:
  /// result[c] is the indexed column's code for probe_column's dictionary
  /// entry `c`, or -1 when the string does not occur in the indexed column.
  /// Computed once per join (O(|probe dictionary|)), it turns every probe
  /// into an array lookup plus LookupCode — no per-row string hashing.
  std::vector<int64_t> TranslateCodesFrom(const Column& probe_column) const;

  /// Number of distinct (non-NULL) keys folded in so far.
  size_t NumDistinctKeys() const;

  /// Rows already folded into the index (release-published after the fold:
  /// a reader observing indexed_rows() >= bound may probe clamped to
  /// bound). Smaller than the column size iff rows were appended since the
  /// last extension.
  size_t indexed_rows() const { return indexed_rows_.Load(); }

  /// Folds rows [indexed_rows(), num_rows) into the index. A no-op when
  /// the index already covers the range; never touches the indexed prefix.
  /// Mutators must be serialized (Table's lazy mutex); readers need not.
  void ExtendTo(size_t num_rows);

 private:
  /// One key's row ids: a single allocation with the ids trailing the
  /// header, ascending, behind a release-published count.
  struct Bucket {
    explicit Bucket(size_t cap) : capacity(cap) {}
    const size_t capacity;
    std::atomic<size_t> size{0};
    uint32_t* rows() { return reinterpret_cast<uint32_t*>(this + 1); }
    const uint32_t* rows() const {
      return reinterpret_cast<const uint32_t*>(this + 1);
    }
  };

  struct Slot {
    int64_t key = 0;  // written before `bucket` is published
    std::atomic<Bucket*> bucket{nullptr};
  };

  /// The open-addressing directory. `mask` and the slot array are
  /// immutable after construction (published by the release store of
  /// dir_); only slot contents mutate.
  struct Dir {
    explicit Dir(size_t capacity)
        : mask(capacity - 1), slots(new Slot[capacity]) {}
    const size_t mask;
    std::unique_ptr<Slot[]> slots;
  };

  static Bucket* NewBucket(size_t capacity);
  static void FreeBucket(Bucket* b);
  template <typename T>
  void Retire(T* p);

  void InsertInt(int64_t key, uint32_t row);
  void GrowDirectory();

  const Column* column_;
  PublishedSize indexed_rows_;
  std::atomic<Dir*> dir_{nullptr};
  AtomicCounter num_int_keys_;
  EpochManager* epochs_ = nullptr;

  /// Double columns only: boxed fallback map. Mutated under the writer
  /// lock by ExtendTo; Lookup copies under the shared lock.
  mutable SharedMutex value_mu_;
  std::unordered_map<Value, std::vector<uint32_t>> value_map_
      EBA_GUARDED_BY(value_mu_);
};

}  // namespace eba

#endif  // EBA_STORAGE_INDEX_H_
