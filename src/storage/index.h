// HashIndex: an equi-join index over one column.
//
// Integer-like columns index their raw int64 payloads; string columns index
// dictionary codes (probing translates the probe string through the
// dictionary, so cross-column string joins work); doubles fall back to a
// Value-keyed map. NULL cells are never indexed — a NULL join key matches
// nothing, mirroring SQL equi-join semantics.

#ifndef EBA_STORAGE_INDEX_H_
#define EBA_STORAGE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/column.h"

namespace eba {

class HashIndex {
 public:
  /// Builds an index over `column`. The column must outlive the index.
  explicit HashIndex(const Column* column);

  /// Row ids whose cell equals `v`; empty if none (or v is NULL).
  const std::vector<uint32_t>& Lookup(const Value& v) const;

  /// Fast path for integer-like columns.
  const std::vector<uint32_t>& LookupInt64(int64_t key) const;

  /// Number of distinct (non-NULL) keys.
  size_t NumDistinctKeys() const;

 private:
  const Column* column_;
  std::unordered_map<int64_t, std::vector<uint32_t>> int_map_;
  std::unordered_map<Value, std::vector<uint32_t>> value_map_;
  std::vector<uint32_t> empty_;
};

}  // namespace eba

#endif  // EBA_STORAGE_INDEX_H_
