// HashIndex: an equi-join index over one column.
//
// Integer-like columns index their raw int64 payloads; string columns index
// dictionary codes (probing translates the probe string through the
// dictionary, so cross-column string joins work); doubles fall back to a
// Value-keyed map. NULL cells are never indexed — a NULL join key matches
// nothing, mirroring SQL equi-join semantics.
//
// The index is append-extendable: ExtendTo folds rows past the build-time
// watermark into the maps without touching the already-indexed prefix, so a
// Table append does not force a rebuild (and cached pointers to the index
// stay valid — see Table::GetOrBuildIndex). Extension requires the same
// external serialization against readers as any other mutation.

#ifndef EBA_STORAGE_INDEX_H_
#define EBA_STORAGE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/column.h"

namespace eba {

class HashIndex {
 public:
  /// Builds an index over `column`. The column must outlive the index.
  explicit HashIndex(const Column* column);

  /// Row ids whose cell equals `v`; empty if none (or v is NULL).
  const std::vector<uint32_t>& Lookup(const Value& v) const;

  /// Fast path for integer-like columns.
  const std::vector<uint32_t>& LookupInt64(int64_t key) const;

  /// Fast path for string columns: probes by a dictionary code of the
  /// *indexed* column (string payloads are codes, so this is the string
  /// analog of LookupInt64). Foreign codes must be translated first — see
  /// TranslateCodesFrom.
  const std::vector<uint32_t>& LookupCode(int64_t code) const {
    return LookupInt64(code);
  }

  /// Builds the probe-side code translation for a string-string equi-join:
  /// result[c] is the indexed column's code for probe_column's dictionary
  /// entry `c`, or -1 when the string does not occur in the indexed column.
  /// Computed once per join (O(|probe dictionary|)), it turns every probe
  /// into an array lookup plus LookupCode — no per-row string hashing.
  std::vector<int64_t> TranslateCodesFrom(const Column& probe_column) const;

  /// Number of distinct (non-NULL) keys.
  size_t NumDistinctKeys() const;

  /// Rows already folded into the maps. Equal to the column size at the
  /// last construction/extension; smaller iff rows were appended since.
  size_t indexed_rows() const { return indexed_rows_; }

  /// Folds rows [indexed_rows(), num_rows) into the index. A no-op when the
  /// index already covers the range; never touches the indexed prefix.
  void ExtendTo(size_t num_rows);

 private:
  const Column* column_;
  size_t indexed_rows_ = 0;
  std::unordered_map<int64_t, std::vector<uint32_t>> int_map_;
  std::unordered_map<Value, std::vector<uint32_t>> value_map_;
  std::vector<uint32_t> empty_;
};

}  // namespace eba

#endif  // EBA_STORAGE_INDEX_H_
