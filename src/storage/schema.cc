#include "storage/schema.h"

#include <unordered_set>

namespace eba {

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

int TableSchema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

int TableSchema::PrimaryKeyIndex() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].is_primary_key) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> TableSchema::ColumnsInDomain(const std::string& domain) const {
  std::vector<int> out;
  if (domain.empty()) return out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].domain == domain) out.push_back(static_cast<int>(i));
  }
  return out;
}

Status TableSchema::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("table name is empty");
  if (columns_.empty()) {
    return Status::InvalidArgument("table '" + name_ + "' has no columns");
  }
  std::unordered_set<std::string> seen;
  int pk_count = 0;
  for (const auto& col : columns_) {
    if (col.name.empty()) {
      return Status::InvalidArgument("table '" + name_ +
                                     "' has an unnamed column");
    }
    if (!seen.insert(col.name).second) {
      return Status::InvalidArgument("table '" + name_ +
                                     "' has duplicate column '" + col.name +
                                     "'");
    }
    if (col.type == DataType::kNull) {
      return Status::InvalidArgument("column '" + name_ + "." + col.name +
                                     "' has null type");
    }
    if (col.is_primary_key) {
      ++pk_count;
      if (col.domain.empty()) {
        return Status::InvalidArgument("primary key '" + name_ + "." +
                                       col.name + "' must declare a domain");
      }
    }
  }
  if (pk_count > 1) {
    return Status::InvalidArgument("table '" + name_ +
                                   "' has multiple primary keys");
  }
  return Status::OK();
}

}  // namespace eba
