#include "storage/column.h"

#include "common/logging.h"

namespace eba {

Column::Column(DataType type)
    : type_(type), dict_mu_(std::make_unique<Mutex>()) {
  EBA_CHECK(type != DataType::kNull);
}

void Column::Reserve(size_t n) {
  if (type_ == DataType::kDouble) {
    doubles_.Reserve(n);
  } else {
    ints_.Reserve(n);
  }
}

void Column::AttachEpochManager(EpochManager* epochs) {
  ints_.SetEpochManager(epochs);
  doubles_.SetEpochManager(epochs);
  dict_.SetEpochManager(epochs);
  nulls_.SetEpochManager(epochs);
}

int64_t Column::InternString(const std::string& s) {
  MutexLock lock(*dict_mu_);
  auto it = dict_lookup_.find(s);
  if (it != dict_lookup_.end()) return it->second;
  int64_t code = static_cast<int64_t>(dict_.size());
  // The entry is published (dict_ release-stores its size) before the code
  // referencing it lands in the payload, so a reader that can see the cell
  // can always decode it.
  dict_.push_back(s);
  dict_lookup_.emplace(s, code);
  return code;
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (v.type() != type_) {
    return Status::InvalidArgument(
        std::string("type mismatch: column is ") + DataTypeToString(type_) +
        ", value is " + DataTypeToString(v.type()));
  }
  switch (type_) {
    case DataType::kBool:
      AppendBool(v.AsBool());
      break;
    case DataType::kInt64:
      AppendInt64(v.AsInt64());
      break;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case DataType::kString:
      AppendString(v.AsString());
      break;
    case DataType::kTimestamp:
      AppendTimestamp(v.AsTimestamp());
      break;
    case DataType::kNull:
      break;  // unreachable
  }
  return Status::OK();
}

void Column::AppendInt64(int64_t v) {
  EBA_CHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
  if (!nulls_.empty()) nulls_.push_back(0);
  size_.Publish(size_.LoadRelaxed() + 1);
}

void Column::AppendTimestamp(int64_t seconds) {
  EBA_CHECK(type_ == DataType::kTimestamp);
  ints_.push_back(seconds);
  if (!nulls_.empty()) nulls_.push_back(0);
  size_.Publish(size_.LoadRelaxed() + 1);
}

void Column::AppendBool(bool v) {
  EBA_CHECK(type_ == DataType::kBool);
  ints_.push_back(v ? 1 : 0);
  if (!nulls_.empty()) nulls_.push_back(0);
  size_.Publish(size_.LoadRelaxed() + 1);
}

void Column::AppendDouble(double v) {
  EBA_CHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
  if (!nulls_.empty()) nulls_.push_back(0);
  size_.Publish(size_.LoadRelaxed() + 1);
}

void Column::AppendString(const std::string& v) {
  EBA_CHECK(type_ == DataType::kString);
  ints_.push_back(InternString(v));
  if (!nulls_.empty()) nulls_.push_back(0);
  size_.Publish(size_.LoadRelaxed() + 1);
}

void Column::AppendNull() {
  if (nulls_.empty()) {
    // Lazy backfill: rows appended before the first NULL have no bitmap
    // entry yet. Appending zeros (instead of a bulk assign) keeps the
    // publication invariant — a reader observing a short bitmap treats the
    // uncovered rows as non-null, which they are.
    const size_t n = size_.LoadRelaxed();
    nulls_.Reserve(n + 1);
    for (size_t i = 0; i < n; ++i) nulls_.push_back(0);
  }
  if (type_ == DataType::kDouble) {
    doubles_.push_back(0);
  } else {
    ints_.push_back(0);
  }
  nulls_.push_back(1);
  null_count_.Increment();
  size_.Publish(size_.LoadRelaxed() + 1);
}

Value Column::Get(size_t row) const {
  EBA_CHECK(row < size_.Load());
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(ints_[row] != 0);
    case DataType::kInt64:
      return Value::Int64(ints_[row]);
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kString:
      return Value::String(dict_[static_cast<size_t>(ints_[row])]);
    case DataType::kTimestamp:
      return Value::Timestamp(ints_[row]);
    case DataType::kNull:
      break;
  }
  return Value::Null();
}

void Column::MaterializeInto(const std::vector<uint32_t>& row_ids,
                             std::vector<Value>* out) const {
  EBA_CHECK(out != nullptr);
  out->reserve(out->size() + row_ids.size());
  for (uint32_t row : row_ids) out->push_back(Get(row));
}

void Column::MaterializeRange(const std::vector<uint32_t>& row_ids,
                              size_t begin, size_t end, Value* out) const {
  EBA_CHECK(out != nullptr);
  EBA_CHECK(end <= row_ids.size());
  for (size_t i = begin; i < end; ++i) out[i] = Get(row_ids[i]);
}

std::optional<int64_t> Column::FindStringCode(const std::string& s) const {
  MutexLock lock(*dict_mu_);
  auto it = dict_lookup_.find(s);
  if (it == dict_lookup_.end()) return std::nullopt;
  return it->second;
}

}  // namespace eba
