#include "storage/wal.h"

#include <cstring>

#include "common/crc32.h"

namespace eba {

namespace {

constexpr size_t kHeaderBytes = 4 + 4 + 1;  // len + crc + type

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

/// Cursor over an immutable byte range; Get* return false on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (data_.size() < pos_ + 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (data_.size() < pos_ + 4) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = (uint64_t{hi} << 32) | lo;
    return true;
  }

  bool GetBytes(size_t n, std::string_view* out) {
    if (data_.size() < pos_ + n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Cursor-based encoding: the append path serializes every streamed row, so
// the payload is sized exactly up front and filled through a raw pointer —
// growing a std::string one 4-byte append at a time costs more than the
// table apply it write-protects.
inline char* PutU32At(char* p, uint32_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
  p[2] = static_cast<char>((v >> 16) & 0xFF);
  p[3] = static_cast<char>((v >> 24) & 0xFF);
  return p + 4;
}

inline char* PutU64At(char* p, uint64_t v) {
  p = PutU32At(p, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  return PutU32At(p, static_cast<uint32_t>(v >> 32));
}

size_t EncodedValueSize(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 2;
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kDouble:
      return 9;
    case DataType::kString:
      return 5 + v.AsString().size();
  }
  return 1;
}

char* EncodeValueAt(char* p, const Value& v) {
  *p++ = static_cast<char>(v.type());
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      *p++ = v.AsBool() ? '\1' : '\0';
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      p = PutU64At(p, static_cast<uint64_t>(v.RawInt64()));
      break;
    case DataType::kDouble: {
      uint64_t bits = 0;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      p = PutU64At(p, bits);
      break;
    }
    case DataType::kString: {
      const std::string& s = v.AsString();
      p = PutU32At(p, static_cast<uint32_t>(s.size()));
      std::memcpy(p, s.data(), s.size());
      p += s.size();
      break;
    }
  }
  return p;
}

bool DecodeValue(ByteReader* in, Value* out) {
  uint8_t tag = 0;
  if (!in->GetU8(&tag)) return false;
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      *out = Value::Null();
      return true;
    case DataType::kBool: {
      uint8_t b = 0;
      if (!in->GetU8(&b)) return false;
      *out = Value::Bool(b != 0);
      return true;
    }
    case DataType::kInt64: {
      uint64_t v = 0;
      if (!in->GetU64(&v)) return false;
      *out = Value::Int64(static_cast<int64_t>(v));
      return true;
    }
    case DataType::kTimestamp: {
      uint64_t v = 0;
      if (!in->GetU64(&v)) return false;
      *out = Value::Timestamp(static_cast<int64_t>(v));
      return true;
    }
    case DataType::kDouble: {
      uint64_t bits = 0;
      if (!in->GetU64(&bits)) return false;
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return true;
    }
    case DataType::kString: {
      uint32_t len = 0;
      std::string_view bytes;
      if (!in->GetU32(&len) || !in->GetBytes(len, &bytes)) return false;
      *out = Value::String(std::string(bytes));
      return true;
    }
  }
  return false;  // unknown tag
}

}  // namespace

// --- WalWriter ---

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                     const std::string& path,
                                                     WalSync sync) {
  EBA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env->NewWritableFile(path, /*truncate=*/false));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), sync));
}

Status WalWriter::AppendRecord(uint8_t type, std::string_view payload) {
  // Framed as: len | crc(type+payload) | type | payload.
  PutU32(&buffer_, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32(&type, 1);
  crc = Crc32(payload.data(), payload.size(), crc);
  PutU32(&buffer_, crc);
  buffer_.push_back(static_cast<char>(type));
  buffer_.append(payload);
  bytes_logged_ += kHeaderBytes + payload.size();
  if (sync_ == WalSync::kAlways) return Commit();
  return Status::OK();
}

Status WalWriter::Commit() {
  if (buffer_.empty()) return Status::OK();
  EBA_RETURN_IF_ERROR(file_->Append(buffer_));
  buffer_.clear();
  if (sync_ != WalSync::kNone) return file_->Sync();
  return Status::OK();
}

Status WalWriter::Close() {
  EBA_RETURN_IF_ERROR(Commit());
  return file_->Close();
}

// --- reading ---

StatusOr<WalReadResult> ReadWalFile(Env* env, const std::string& path) {
  EBA_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  WalReadResult result;
  ByteReader in(data);
  uint64_t consumed = 0;
  while (true) {
    uint32_t len = 0;
    uint32_t crc = 0;
    uint8_t type = 0;
    std::string_view payload;
    if (!in.GetU32(&len) || !in.GetU32(&crc) || !in.GetU8(&type) ||
        !in.GetBytes(len, &payload)) {
      break;  // short header or short payload: torn tail
    }
    uint32_t actual = Crc32(&type, 1);
    actual = Crc32(payload.data(), payload.size(), actual);
    if (actual != crc) break;  // bit flip (or torn length field): corrupt tail
    consumed += kHeaderBytes + len;
    result.records.push_back(WalRecord{type, std::string(payload)});
  }
  result.valid_bytes = consumed;
  result.dropped_bytes = data.size() - consumed;
  return result;
}

// --- append-batch payloads ---

std::string EncodeAppendPayload(const std::string& table_name,
                                const std::vector<Row>& rows) {
  size_t total = 4 + table_name.size() + 4;
  for (const Row& row : rows) {
    total += 4;
    for (const Value& v : row) total += EncodedValueSize(v);
  }
  std::string out(total, '\0');
  char* p = &out[0];
  p = PutU32At(p, static_cast<uint32_t>(table_name.size()));
  std::memcpy(p, table_name.data(), table_name.size());
  p += table_name.size();
  p = PutU32At(p, static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) {
    p = PutU32At(p, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) p = EncodeValueAt(p, v);
  }
  return out;
}

StatusOr<WalAppendBatch> DecodeAppendPayload(std::string_view payload) {
  const auto malformed = [] {
    return Status::Internal("malformed kWalAppendBatch payload");
  };
  ByteReader in(payload);
  WalAppendBatch batch;
  uint32_t name_len = 0;
  std::string_view name;
  if (!in.GetU32(&name_len) || !in.GetBytes(name_len, &name)) {
    return malformed();
  }
  batch.table_name = std::string(name);
  uint32_t nrows = 0;
  if (!in.GetU32(&nrows)) return malformed();
  batch.rows.reserve(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    uint32_t ncols = 0;
    if (!in.GetU32(&ncols)) return malformed();
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      Value v;
      if (!DecodeValue(&in, &v)) return malformed();
      row.push_back(std::move(v));
    }
    batch.rows.push_back(std::move(row));
  }
  if (!in.AtEnd()) return malformed();
  return batch;
}

}  // namespace eba
