// Checkpoints of streaming-audit state: the database contents plus the
// auditor's explained-lid set and audit watermarks, published atomically so
// recovery always sees either the previous checkpoint or the complete new
// one.
//
// Store directory layout:
//
//   <dir>/CURRENT          "ckpt-<seq>\n" — atomically renamed into place;
//                          the single commit point of a checkpoint.
//   <dir>/ckpt-<seq>/      one checkpoint:
//       ckpt.txt           manifest (SEQ/BASE/WALSEQ/TABLE/SEGMENT/
//                          WATERMARK/AUDITED/EXPLAINED lines) with a
//                          trailing CRC line over the body.
//       db/                full checkpoints: a complete SaveDatabase image.
//       seg-<table>.csv    incremental checkpoints: rows appended to
//                          <table> since the BASE checkpoint.
//   <dir>/wal-<seq>.log    the WAL opened when ckpt-<seq> was published;
//                          recovery replays every wal-N.log with N >= the
//                          newest checkpoint's WALSEQ, in order.
//
// Incremental checkpoints chain through BASE pointers back to a full
// checkpoint. Publish garbage-collects checkpoints outside the new chain
// and WAL files older than the new WALSEQ.

#ifndef EBA_STORAGE_CHECKPOINT_H_
#define EBA_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "storage/io.h"

namespace eba {

/// The auditor-side state a checkpoint persists alongside the database.
struct AuditState {
  /// Log rows covered by the last completed audit pass.
  uint64_t audited_rows = 0;
  /// Explained log row ids, sorted ascending.
  std::vector<int64_t> explained_lids;
  /// Per-table append watermarks as of the last completed audit pass (NOT
  /// current row counts: tables may have grown since the last audit, and
  /// recovery must re-observe that drift or the delta pass silently skips
  /// it).
  std::map<std::string, uint64_t> audit_watermarks;
};

/// A fully reconstructed checkpoint: the database at checkpoint time plus
/// the audit state and the WAL sequence to resume replay from.
struct CheckpointContents {
  Database db;
  AuditState audit;
  uint64_t seq = 0;
  uint64_t wal_seq = 0;
  /// Chain length (1 = full checkpoint only) and pure data-load time,
  /// reported so benchmarks can separate "reload the tables" (paid by any
  /// restart) from "recover the audit state".
  size_t chain_length = 0;
  double db_load_seconds = 0.0;
};

class CheckpointStore {
 public:
  /// `env` == nullptr means the real filesystem.
  CheckpointStore(Env* env, std::string dir);

  const std::string& dir() const { return dir_; }

  /// Creates the store directory if missing.
  Status Init();

  /// Sequence number named by CURRENT; NotFound when no checkpoint has ever
  /// been published.
  StatusOr<uint64_t> CurrentSeq() const;

  /// Path of the WAL file paired with checkpoint `seq`.
  std::string WalPath(uint64_t seq) const;

  /// Writes checkpoint `max(CurrentSeq()+1, min_seq)` (starting at 1)
  /// without publishing it: a crash before Publish leaves CURRENT pointing
  /// at the old checkpoint. `min_seq` lets callers keep the sequence ahead
  /// of WAL files that outrank CURRENT — recovery opens its fresh WAL at
  /// (highest replayed seq + 1) without publishing a checkpoint, so the
  /// next checkpoint must not re-allocate a sequence whose wal-<seq>.log
  /// already holds stale records. `full` forces a complete database image;
  /// otherwise rows past the current checkpoint's per-table counts are
  /// saved as segments (promoted to full when there is no usable base, e.g.
  /// tables were added/dropped or rewritten). Returns the new sequence
  /// number.
  StatusOr<uint64_t> Prepare(const Database& db, const AuditState& audit,
                             bool full, uint64_t min_seq = 0);

  /// Atomically flips CURRENT to `seq`, then garbage-collects checkpoints
  /// outside the new BASE chain and WAL files older than the new WALSEQ.
  Status Publish(uint64_t seq);

  /// Loads the checkpoint named by CURRENT: walks the BASE chain to its
  /// full root, loads that database image, and applies each chain link's
  /// segments in order. Manifests failing their CRC are an error — CURRENT
  /// only ever names fully synced checkpoints, so corruption here is real
  /// damage, not a crash artifact. NotFound when no checkpoint exists.
  StatusOr<CheckpointContents> LoadNewest() const;

 private:
  /// Parsed ckpt.txt.
  struct Manifest {
    uint64_t seq = 0;
    bool has_base = false;
    uint64_t base = 0;
    uint64_t wal_seq = 0;
    AuditState audit;
    /// Per-table cumulative row counts at this checkpoint, by name.
    std::map<std::string, uint64_t> table_rows;
    /// Incremental links: table -> (from_row, to_row, file name).
    struct Segment {
      uint64_t from_row = 0;
      uint64_t to_row = 0;
      std::string file;
    };
    std::map<std::string, Segment> segments;
  };

  std::string CkptDir(uint64_t seq) const;
  StatusOr<Manifest> ReadManifest(uint64_t seq) const;
  Status WriteManifest(uint64_t seq, const Manifest& m) const;

  Env* env_;
  std::string dir_;
};

}  // namespace eba

#endif  // EBA_STORAGE_CHECKPOINT_H_
