#include "storage/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/crc32.h"
#include "common/string_util.h"
#include "storage/persist.h"
#include "storage/table.h"

namespace eba {

namespace {

constexpr char kManifestHeader[] = "# eba checkpoint v1";
constexpr char kCurrentFile[] = "CURRENT";

StatusOr<uint64_t> ParseU64(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a u64: '" + text + "'");
  }
  return static_cast<uint64_t>(v);
}


std::string CrcHex(uint32_t crc) {
  std::ostringstream out;
  out << std::hex << crc;
  return out.str();
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Fields of one manifest line after the directive keyword.
std::vector<std::string> SplitFields(const std::string& text) {
  std::vector<std::string> fields;
  for (const auto& part : Split(text, ' ')) {
    if (!Trim(part).empty()) fields.push_back(Trim(part));
  }
  return fields;
}

}  // namespace

CheckpointStore::CheckpointStore(Env* env, std::string dir)
    : env_(env != nullptr ? env : RealEnv()), dir_(std::move(dir)) {}

Status CheckpointStore::Init() { return env_->CreateDirs(dir_); }

std::string CheckpointStore::CkptDir(uint64_t seq) const {
  return dir_ + "/ckpt-" + std::to_string(seq);
}

std::string CheckpointStore::WalPath(uint64_t seq) const {
  return dir_ + "/wal-" + std::to_string(seq) + ".log";
}

StatusOr<uint64_t> CheckpointStore::CurrentSeq() const {
  const std::string current_path = dir_ + "/" + kCurrentFile;
  if (!env_->FileExists(current_path)) {
    return Status::NotFound("no checkpoint published in '" + dir_ + "'");
  }
  EBA_ASSIGN_OR_RETURN(std::string content,
                       env_->ReadFileToString(current_path));
  const std::string name = Trim(content);
  if (!StartsWith(name, "ckpt-")) {
    return Status::Internal("corrupt CURRENT in '" + dir_ + "': " + name);
  }
  return ParseU64(name.substr(5));
}

Status CheckpointStore::WriteManifest(uint64_t seq, const Manifest& m) const {
  std::ostringstream body;
  body << kManifestHeader << "\n";
  body << "SEQ " << m.seq << "\n";
  if (m.has_base) body << "BASE " << m.base << "\n";
  body << "WALSEQ " << m.wal_seq << "\n";
  body << "AUDITED " << m.audit.audited_rows << "\n";
  for (const auto& [name, rows] : m.table_rows) {
    body << "TABLE " << name << " " << rows << "\n";
  }
  for (const auto& [name, seg] : m.segments) {
    body << "SEGMENT " << name << " " << seg.from_row << " " << seg.to_row
         << " " << seg.file << "\n";
  }
  for (const auto& [name, wm] : m.audit.audit_watermarks) {
    body << "WATERMARK " << name << " " << wm << "\n";
  }
  // One LIDS line, not one line per lid: recovery parses this section for
  // every explained access, so its cost is part of the gated time-to-recover
  // metric and must stay linear with a small constant.
  body << "EXPLAINED " << m.audit.explained_lids.size() << "\n";
  body << "LIDS";
  for (int64_t lid : m.audit.explained_lids) {
    body << ' ' << lid;
  }
  body << "\n";
  std::string text = body.str();
  text += "CRC " + CrcHex(Crc32(text)) + "\n";
  return env_->WriteFile(CkptDir(seq) + "/ckpt.txt", text);
}

StatusOr<CheckpointStore::Manifest> CheckpointStore::ReadManifest(
    uint64_t seq) const {
  const std::string path = CkptDir(seq) + "/ckpt.txt";
  EBA_ASSIGN_OR_RETURN(std::string text, env_->ReadFileToString(path));

  const size_t crc_pos = text.rfind("\nCRC ");
  if (crc_pos == std::string::npos) {
    return Status::Internal("checkpoint manifest missing CRC: " + path);
  }
  const std::string body = text.substr(0, crc_pos + 1);  // includes the '\n'
  const std::string crc_text = Trim(text.substr(crc_pos + 5));
  errno = 0;
  char* end = nullptr;
  const unsigned long long stored = std::strtoull(crc_text.c_str(), &end, 16);
  if (end == crc_text.c_str() || *end != '\0' || errno == ERANGE ||
      static_cast<uint32_t>(stored) != Crc32(body)) {
    return Status::Internal("checkpoint manifest failed CRC: " + path);
  }

  Manifest m;
  std::istringstream in(body);
  std::string line;
  int line_number = 0;
  auto parse_error = [&](const std::string& message) {
    return Status::Internal("checkpoint manifest " + path + " line " +
                            std::to_string(line_number) + ": " + message);
  };
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "SEQ ")) {
      EBA_ASSIGN_OR_RETURN(m.seq, ParseU64(Trim(trimmed.substr(4))));
    } else if (StartsWith(trimmed, "BASE ")) {
      m.has_base = true;
      EBA_ASSIGN_OR_RETURN(m.base, ParseU64(Trim(trimmed.substr(5))));
    } else if (StartsWith(trimmed, "WALSEQ ")) {
      EBA_ASSIGN_OR_RETURN(m.wal_seq, ParseU64(Trim(trimmed.substr(7))));
    } else if (StartsWith(trimmed, "AUDITED ")) {
      EBA_ASSIGN_OR_RETURN(m.audit.audited_rows,
                           ParseU64(Trim(trimmed.substr(8))));
    } else if (StartsWith(trimmed, "TABLE ")) {
      const auto fields = SplitFields(trimmed.substr(6));
      if (fields.size() != 2) return parse_error("TABLE needs name rows");
      EBA_ASSIGN_OR_RETURN(m.table_rows[fields[0]], ParseU64(fields[1]));
    } else if (StartsWith(trimmed, "SEGMENT ")) {
      const auto fields = SplitFields(trimmed.substr(8));
      if (fields.size() != 4) {
        return parse_error("SEGMENT needs name from to file");
      }
      Manifest::Segment seg;
      EBA_ASSIGN_OR_RETURN(seg.from_row, ParseU64(fields[1]));
      EBA_ASSIGN_OR_RETURN(seg.to_row, ParseU64(fields[2]));
      seg.file = fields[3];
      m.segments[fields[0]] = std::move(seg);
    } else if (StartsWith(trimmed, "WATERMARK ")) {
      const auto fields = SplitFields(trimmed.substr(10));
      if (fields.size() != 2) return parse_error("WATERMARK needs name wm");
      EBA_ASSIGN_OR_RETURN(m.audit.audit_watermarks[fields[0]],
                           ParseU64(fields[1]));
    } else if (StartsWith(trimmed, "EXPLAINED ")) {
      uint64_t count = 0;
      EBA_ASSIGN_OR_RETURN(count, ParseU64(Trim(trimmed.substr(10))));
      m.audit.explained_lids.reserve(count);
    } else if (StartsWith(trimmed, "LIDS")) {
      // Hot during recovery: strtoll straight over the line, no per-lid
      // string slicing.
      const char* p = trimmed.c_str() + 4;
      while (true) {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(p, &end, 10);
        if (end == p) break;  // no more numbers
        if (errno == ERANGE) return parse_error("lid out of range");
        m.audit.explained_lids.push_back(static_cast<int64_t>(v));
        p = end;
      }
    } else {
      return parse_error("unrecognized directive: " + trimmed);
    }
  }
  return m;
}

StatusOr<uint64_t> CheckpointStore::Prepare(const Database& db,
                                            const AuditState& audit,
                                            bool full, uint64_t min_seq) {
  uint64_t base_seq = 0;
  bool has_current = false;
  {
    StatusOr<uint64_t> cur = CurrentSeq();
    if (cur.ok()) {
      has_current = true;
      base_seq = *cur;
    } else if (!cur.status().IsNotFound()) {
      return cur.status();
    }
  }
  const uint64_t seq = std::max(base_seq + 1, min_seq);

  Manifest base;
  if (!has_current) {
    full = true;
  } else if (!full) {
    StatusOr<Manifest> base_or = ReadManifest(base_seq);
    if (!base_or.ok()) {
      full = true;  // unreadable base: fall back to a self-contained image
    } else {
      base = std::move(*base_or);
      // An incremental checkpoint only works when every table strictly grew
      // from the base (join metadata is carried by the full root, so table
      // churn or in-place rewrites demote to a full image).
      if (base.table_rows.size() != db.TableNames().size()) full = true;
      for (const std::string& name : db.TableNames()) {
        const auto it = base.table_rows.find(name);
        if (it == base.table_rows.end()) {
          full = true;
          break;
        }
        EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
        if (it->second > table->num_rows()) {
          full = true;
          break;
        }
      }
    }
  }

  const std::string ckpt_dir = CkptDir(seq);
  if (env_->FileExists(ckpt_dir)) {
    EBA_RETURN_IF_ERROR(env_->RemoveAll(ckpt_dir));  // unpublished leftover
  }
  EBA_RETURN_IF_ERROR(env_->CreateDirs(ckpt_dir));

  Manifest m;
  m.seq = seq;
  m.wal_seq = seq;
  m.audit = audit;
  std::sort(m.audit.explained_lids.begin(), m.audit.explained_lids.end());
  for (const std::string& name : db.TableNames()) {
    EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    m.table_rows[name] = table->num_rows();
  }

  if (full) {
    EBA_RETURN_IF_ERROR(SaveDatabase(db, ckpt_dir + "/db", env_));
  } else {
    m.has_base = true;
    m.base = base_seq;
    for (const std::string& name : db.TableNames()) {
      EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
      const uint64_t from = base.table_rows.at(name);
      const uint64_t to = table->num_rows();
      if (from == to) continue;
      Manifest::Segment seg;
      seg.from_row = from;
      seg.to_row = to;
      seg.file = "seg-" + name + ".csv";
      EBA_RETURN_IF_ERROR(env_->WriteFile(
          ckpt_dir + "/" + seg.file,
          table->ToCsvString(static_cast<size_t>(from),
                             static_cast<size_t>(to))));
      m.segments[name] = std::move(seg);
    }
  }

  EBA_RETURN_IF_ERROR(WriteManifest(seq, m));
  EBA_RETURN_IF_ERROR(env_->SyncDir(ckpt_dir));
  return seq;
}

Status CheckpointStore::Publish(uint64_t seq) {
  EBA_RETURN_IF_ERROR(env_->WriteFileAtomic(
      dir_ + "/" + kCurrentFile, "ckpt-" + std::to_string(seq) + "\n"));

  // Garbage-collect: keep only the new chain and its WAL suffix. Leftovers
  // from a crash mid-GC are harmless (recovery only follows CURRENT) and
  // are swept by the next Publish.
  std::set<uint64_t> chain;
  uint64_t wal_min = seq;
  uint64_t walk = seq;
  while (true) {
    EBA_ASSIGN_OR_RETURN(Manifest m, ReadManifest(walk));
    chain.insert(walk);
    wal_min = m.wal_seq;
    if (!m.has_base) break;
    walk = m.base;
  }

  EBA_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
  for (const std::string& name : names) {
    if (StartsWith(name, "ckpt-")) {
      StatusOr<uint64_t> n = ParseU64(name.substr(5));
      if (n.ok() && chain.count(*n) == 0) {
        EBA_RETURN_IF_ERROR(env_->RemoveAll(dir_ + "/" + name));
      }
    } else if (StartsWith(name, "wal-") && EndsWith(name, ".log")) {
      StatusOr<uint64_t> n =
          ParseU64(name.substr(4, name.size() - 4 - 4));
      if (n.ok() && *n < wal_min) {
        EBA_RETURN_IF_ERROR(env_->RemoveFile(dir_ + "/" + name));
      }
    }
  }
  return Status::OK();
}

StatusOr<CheckpointContents> CheckpointStore::LoadNewest() const {
  EBA_ASSIGN_OR_RETURN(uint64_t seq, CurrentSeq());

  // Walk the BASE chain down to the full root, newest first.
  std::vector<Manifest> chain;
  uint64_t walk = seq;
  while (true) {
    EBA_ASSIGN_OR_RETURN(Manifest m, ReadManifest(walk));
    const bool at_root = !m.has_base;
    const uint64_t next = m.base;
    chain.push_back(std::move(m));
    if (at_root) break;
    walk = next;
  }
  std::reverse(chain.begin(), chain.end());  // root (full) first

  const auto load_start = std::chrono::steady_clock::now();
  EBA_ASSIGN_OR_RETURN(Database db,
                       LoadDatabase(CkptDir(chain.front().seq) + "/db"));
  for (size_t i = 1; i < chain.size(); ++i) {
    for (const auto& [name, seg] : chain[i].segments) {
      EBA_ASSIGN_OR_RETURN(Table * table, db.GetTable(name));
      if (table->num_rows() != seg.from_row) {
        return Status::Internal(
            "checkpoint chain mismatch for table '" + name + "': have " +
            std::to_string(table->num_rows()) + " rows, segment starts at " +
            std::to_string(seg.from_row));
      }
      const std::string seg_path = CkptDir(chain[i].seq) + "/" + seg.file;
      EBA_ASSIGN_OR_RETURN(std::string csv, env_->ReadFileToString(seg_path));
      EBA_RETURN_IF_ERROR(table->AppendCsvString(csv, seg_path));
    }
  }
  const Manifest& newest = chain.back();
  for (const auto& [name, rows] : newest.table_rows) {
    EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    if (table->num_rows() != rows) {
      return Status::Internal("checkpoint row-count mismatch for table '" +
                              name + "': have " +
                              std::to_string(table->num_rows()) +
                              ", manifest says " + std::to_string(rows));
    }
  }

  CheckpointContents out;
  out.db = std::move(db);
  out.audit = newest.audit;
  out.seq = newest.seq;
  out.wal_seq = newest.wal_seq;
  out.chain_length = chain.size();
  out.db_load_seconds = SecondsSince(load_start);
  return out;
}

}  // namespace eba
