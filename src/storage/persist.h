// Whole-database persistence: a directory with a human-readable schema
// manifest plus one CSV file per table. This is how a deployment would load
// a real EHR extract into the engine (the paper's study received flat
// extracts of the CareWeb tables), and how synthetic data sets are frozen
// for reproducibility.
//
// manifest.txt format:
//
//   # eba database manifest v1
//   TABLE Users
//   COLUMN uid int64 domain=user pk
//   COLUMN Name string
//   ...
//   END
//   MAPPING UserMap
//   SELFJOIN Users.Department
//   ADMINREL Appointments.Doctor = Doctor_Info.Doctor
//   FK Appointments.Doctor -> Users.uid

#ifndef EBA_STORAGE_PERSIST_H_
#define EBA_STORAGE_PERSIST_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace eba {

/// Writes `db` into `directory` (created if missing): manifest.txt plus
/// one <table>.csv per table. Fails if an existing manifest in the
/// directory cannot be overwritten.
Status SaveDatabase(const Database& db, const std::string& directory);

/// Loads a database previously written by SaveDatabase.
StatusOr<Database> LoadDatabase(const std::string& directory);

}  // namespace eba

#endif  // EBA_STORAGE_PERSIST_H_
