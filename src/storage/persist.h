// Whole-database persistence: a directory with a human-readable schema
// manifest plus one CSV file per table. This is how a deployment would load
// a real EHR extract into the engine (the paper's study received flat
// extracts of the CareWeb tables), and how synthetic data sets are frozen
// for reproducibility.
//
// manifest.txt format:
//
//   # eba database manifest v1
//   TABLE Users
//   COLUMN uid int64 domain=user pk
//   COLUMN Name string
//   ...
//   END
//   MAPPING UserMap
//   SELFJOIN Users.Department
//   ADMINREL Appointments.Doctor = Doctor_Info.Doctor
//   FK Appointments.Doctor -> Users.uid

#ifndef EBA_STORAGE_PERSIST_H_
#define EBA_STORAGE_PERSIST_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"
#include "storage/io.h"

namespace eba {

/// Writes `db` into `directory`: manifest.txt plus one <table>.csv per
/// table. Crash-safe: everything is staged in a sibling temp directory,
/// synced, and renamed into place, so `directory` either keeps its previous
/// contents or holds the complete new save — a crash mid-save can never
/// leave a half-written database that LoadDatabase accepts. All writes go
/// through `env` (nullptr = the real filesystem).
Status SaveDatabase(const Database& db, const std::string& directory,
                    Env* env = nullptr);

/// Loads a database previously written by SaveDatabase. Rejects malformed
/// input with a Status naming the offender: duplicate TABLE directives,
/// duplicate COLUMN names within a table, truncated or non-numeric CSV
/// fields.
StatusOr<Database> LoadDatabase(const std::string& directory);

}  // namespace eba

#endif  // EBA_STORAGE_PERSIST_H_
