#include "storage/database.h"

#include <algorithm>

#include "common/logging.h"

namespace eba {

Database::Database() : epochs_(std::make_unique<EpochManager>()) {}

Status Database::CreateTable(TableSchema schema) {
  EBA_RETURN_IF_ERROR(schema.Validate());
  if (HasTable(schema.name())) {
    return Status::AlreadyExists("table '" + schema.name() + "' exists");
  }
  std::string name = schema.name();
  auto [it, inserted] = tables_.emplace(name, Table(std::move(schema)));
  it->second.AttachEpochManager(epochs_.get());
  ++catalog_generation_;
  return Status::OK();
}

Database Database::Clone() const {
  Database clone;
  for (const auto& [name, table] : tables_) {
    const Status created = clone.CreateTable(table.schema());
    EBA_CHECK_MSG(created.ok(), created.ToString());
    Table& copy = clone.tables_.at(name);
    copy.Reserve(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Status appended = copy.AppendRow(table.GetRow(r));
      EBA_CHECK_MSG(appended.ok(), appended.ToString());
    }
  }
  // Metadata was validated against the same schemas when first declared.
  clone.fks_ = fks_;
  clone.admin_rels_ = admin_rels_;
  clone.self_join_attrs_ = self_join_attrs_;
  clone.mapping_tables_ = mapping_tables_;
  return clone;
}

Status Database::AddTable(Table table) {
  if (HasTable(table.name())) {
    return Status::AlreadyExists("table '" + table.name() + "' exists");
  }
  std::string name = table.name();
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  it->second.AttachEpochManager(epochs_.get());
  ++catalog_generation_;
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  tables_.erase(it);
  ++catalog_generation_;
  mapping_tables_.erase(name);
  auto drop_attr = [&name](const AttrId& a) { return a.table == name; };
  fks_.erase(std::remove_if(fks_.begin(), fks_.end(),
                            [&](const ForeignKey& fk) {
                              return drop_attr(fk.from) || drop_attr(fk.to);
                            }),
             fks_.end());
  admin_rels_.erase(std::remove_if(admin_rels_.begin(), admin_rels_.end(),
                                   [&](const AdminRelationship& rel) {
                                     return drop_attr(rel.a) ||
                                            drop_attr(rel.b);
                                   }),
                    admin_rels_.end());
  self_join_attrs_.erase(std::remove_if(self_join_attrs_.begin(),
                                        self_join_attrs_.end(), drop_attr),
                         self_join_attrs_.end());
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

StatusOr<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

StatusOr<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

StatusOr<int> Database::ResolveColumn(const AttrId& attr) const {
  EBA_ASSIGN_OR_RETURN(const Table* table, GetTable(attr.table));
  int idx = table->schema().ColumnIndex(attr.column);
  if (idx < 0) {
    return Status::NotFound("no column '" + attr.ToString() + "'");
  }
  return idx;
}

Status Database::ValidateAttr(const AttrId& attr) const {
  return ResolveColumn(attr).status();
}

Status Database::AddForeignKey(const AttrId& from, const AttrId& to) {
  EBA_RETURN_IF_ERROR(ValidateAttr(from));
  EBA_RETURN_IF_ERROR(ValidateAttr(to));
  EBA_ASSIGN_OR_RETURN(const Table* parent, GetTable(to.table));
  int pk = parent->schema().PrimaryKeyIndex();
  if (pk < 0 || parent->schema().column(static_cast<size_t>(pk)).name != to.column) {
    return Status::InvalidArgument("FK target " + to.ToString() +
                                   " is not a primary key");
  }
  fks_.push_back(ForeignKey{from, to});
  return Status::OK();
}

Status Database::AddAdminRelationship(const AttrId& a, const AttrId& b) {
  EBA_RETURN_IF_ERROR(ValidateAttr(a));
  EBA_RETURN_IF_ERROR(ValidateAttr(b));
  if (a == b) {
    return Status::InvalidArgument(
        "admin relationship endpoints are identical: " + a.ToString() +
        " (use AllowSelfJoin for self-joins)");
  }
  admin_rels_.push_back(AdminRelationship{a, b});
  return Status::OK();
}

Status Database::AllowSelfJoin(const AttrId& attr) {
  EBA_RETURN_IF_ERROR(ValidateAttr(attr));
  if (!IsSelfJoinAllowed(attr)) self_join_attrs_.push_back(attr);
  return Status::OK();
}

bool Database::IsSelfJoinAllowed(const AttrId& attr) const {
  for (const auto& a : self_join_attrs_) {
    if (a == attr) return true;
  }
  return false;
}

Status Database::MarkMappingTable(const std::string& name) {
  if (!HasTable(name)) return Status::NotFound("no table '" + name + "'");
  mapping_tables_.insert(name);
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.num_rows();
  return total;
}

Database::Snapshot Database::CreateSnapshot() const {
  Snapshot snapshot;
  snapshot.db_ = this;
  // Pin FIRST: the pin's mutex acquisition orders this snapshot after any
  // retirement that already ran, so every pointer published before our pin
  // is either current or protected until we unpin. Watermarks read after
  // the pin are therefore always dereferenceable through it.
  snapshot.pin_ =
      std::make_shared<EpochPin>(epochs_.get(), epochs_->Pin());
  snapshot.generation_ = catalog_generation_;
  snapshot.tables_.reserve(tables_.size());
  // tables_ is name-ordered, so the view vector comes out name-ordered.
  for (const auto& [name, table] : tables_) {
    snapshot.tables_.push_back(Snapshot::TableView{
        &table, name, table.structural_epoch(), table.append_watermark()});
  }
  return snapshot;
}

const Database::Snapshot::TableView* Database::Snapshot::Find(
    const std::string& name) const {
  auto it = std::lower_bound(
      tables_.begin(), tables_.end(), name,
      [](const TableView& tv, const std::string& n) { return tv.name < n; });
  if (it == tables_.end() || it->name != name) return nullptr;
  return &*it;
}

const Database::Snapshot::TableView* Database::Snapshot::ViewOf(
    const Table* table) const {
  for (const auto& tv : tables_) {
    if (tv.table == table) return &tv;
  }
  return nullptr;
}

size_t Database::Snapshot::BoundOf(const Table* table) const {
  const TableView* view = ViewOf(table);
  // Not part of this snapshot (created after it): nothing is visible.
  return view != nullptr ? static_cast<size_t>(view->watermark) : 0;
}

void Database::Snapshot::SetWatermark(const std::string& name,
                                      uint64_t watermark) {
  for (TableView& tv : tables_) {
    if (tv.name == name) {
      tv.watermark = watermark;
      return;
    }
  }
}

CatalogDrift Database::Snapshot::DriftSince(const Snapshot& older) const {
  CatalogDrift drift;
  drift.catalog_changed = generation_ != older.generation_;
  // Pure counter comparison between the two captured views — never reads
  // live state, so the result is exact for this snapshot even while the
  // writer keeps appending.
  for (const TableView& tv : tables_) {
    const TableView* prev = older.Find(tv.name);
    if (prev == nullptr) continue;  // new table: catalog_changed
    if (tv.structural_epoch != prev->structural_epoch) {
      drift.structural_mutation = true;
      continue;  // the append range is meaningless across a structural edit
    }
    if (tv.watermark != prev->watermark) {
      drift.appends.push_back(
          CatalogDrift::Append{tv.name, prev->watermark, tv.watermark});
    }
  }
  return drift;
}

}  // namespace eba
