#include "storage/database.h"

#include <algorithm>

#include "common/logging.h"

namespace eba {

Status Database::CreateTable(TableSchema schema) {
  EBA_RETURN_IF_ERROR(schema.Validate());
  if (HasTable(schema.name())) {
    return Status::AlreadyExists("table '" + schema.name() + "' exists");
  }
  std::string name = schema.name();
  tables_.emplace(name, Table(std::move(schema)));
  ++catalog_generation_;
  return Status::OK();
}

Database Database::Clone() const {
  Database clone;
  for (const auto& [name, table] : tables_) {
    const Status created = clone.CreateTable(table.schema());
    EBA_CHECK_MSG(created.ok(), created.ToString());
    Table& copy = clone.tables_.at(name);
    copy.Reserve(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Status appended = copy.AppendRow(table.GetRow(r));
      EBA_CHECK_MSG(appended.ok(), appended.ToString());
    }
  }
  // Metadata was validated against the same schemas when first declared.
  clone.fks_ = fks_;
  clone.admin_rels_ = admin_rels_;
  clone.self_join_attrs_ = self_join_attrs_;
  clone.mapping_tables_ = mapping_tables_;
  return clone;
}

Status Database::AddTable(Table table) {
  if (HasTable(table.name())) {
    return Status::AlreadyExists("table '" + table.name() + "' exists");
  }
  std::string name = table.name();
  tables_.emplace(name, std::move(table));
  ++catalog_generation_;
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  tables_.erase(it);
  ++catalog_generation_;
  mapping_tables_.erase(name);
  auto drop_attr = [&name](const AttrId& a) { return a.table == name; };
  fks_.erase(std::remove_if(fks_.begin(), fks_.end(),
                            [&](const ForeignKey& fk) {
                              return drop_attr(fk.from) || drop_attr(fk.to);
                            }),
             fks_.end());
  admin_rels_.erase(std::remove_if(admin_rels_.begin(), admin_rels_.end(),
                                   [&](const AdminRelationship& rel) {
                                     return drop_attr(rel.a) ||
                                            drop_attr(rel.b);
                                   }),
                    admin_rels_.end());
  self_join_attrs_.erase(std::remove_if(self_join_attrs_.begin(),
                                        self_join_attrs_.end(), drop_attr),
                         self_join_attrs_.end());
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

StatusOr<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

StatusOr<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

StatusOr<int> Database::ResolveColumn(const AttrId& attr) const {
  EBA_ASSIGN_OR_RETURN(const Table* table, GetTable(attr.table));
  int idx = table->schema().ColumnIndex(attr.column);
  if (idx < 0) {
    return Status::NotFound("no column '" + attr.ToString() + "'");
  }
  return idx;
}

Status Database::ValidateAttr(const AttrId& attr) const {
  return ResolveColumn(attr).status();
}

Status Database::AddForeignKey(const AttrId& from, const AttrId& to) {
  EBA_RETURN_IF_ERROR(ValidateAttr(from));
  EBA_RETURN_IF_ERROR(ValidateAttr(to));
  EBA_ASSIGN_OR_RETURN(const Table* parent, GetTable(to.table));
  int pk = parent->schema().PrimaryKeyIndex();
  if (pk < 0 || parent->schema().column(static_cast<size_t>(pk)).name != to.column) {
    return Status::InvalidArgument("FK target " + to.ToString() +
                                   " is not a primary key");
  }
  fks_.push_back(ForeignKey{from, to});
  return Status::OK();
}

Status Database::AddAdminRelationship(const AttrId& a, const AttrId& b) {
  EBA_RETURN_IF_ERROR(ValidateAttr(a));
  EBA_RETURN_IF_ERROR(ValidateAttr(b));
  if (a == b) {
    return Status::InvalidArgument(
        "admin relationship endpoints are identical: " + a.ToString() +
        " (use AllowSelfJoin for self-joins)");
  }
  admin_rels_.push_back(AdminRelationship{a, b});
  return Status::OK();
}

Status Database::AllowSelfJoin(const AttrId& attr) {
  EBA_RETURN_IF_ERROR(ValidateAttr(attr));
  if (!IsSelfJoinAllowed(attr)) self_join_attrs_.push_back(attr);
  return Status::OK();
}

bool Database::IsSelfJoinAllowed(const AttrId& attr) const {
  for (const auto& a : self_join_attrs_) {
    if (a == attr) return true;
  }
  return false;
}

Status Database::MarkMappingTable(const std::string& name) {
  if (!HasTable(name)) return Status::NotFound("no table '" + name + "'");
  mapping_tables_.insert(name);
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.num_rows();
  return total;
}

CatalogSnapshot Database::Snapshot() const {
  CatalogSnapshot snapshot;
  snapshot.generation = catalog_generation_;
  for (const auto& [name, table] : tables_) {
    snapshot.tables[name] = CatalogSnapshot::TableState{
        table.structural_epoch(), table.append_watermark()};
  }
  return snapshot;
}

CatalogDrift Database::DriftSince(const CatalogSnapshot& snapshot) const {
  CatalogDrift drift;
  drift.catalog_changed = catalog_generation_ != snapshot.generation;
  // tables_ is name-ordered, so drift.appends comes out in name order.
  for (const auto& [name, table] : tables_) {
    auto it = snapshot.tables.find(name);
    if (it == snapshot.tables.end()) continue;  // new table: catalog_changed
    if (table.structural_epoch() != it->second.structural_epoch) {
      drift.structural_mutation = true;
      continue;  // the append range is meaningless across a structural edit
    }
    const uint64_t watermark = table.append_watermark();
    if (watermark != it->second.watermark) {
      drift.appends.push_back(
          CatalogDrift::Append{name, it->second.watermark, watermark});
    }
  }
  return drift;
}

}  // namespace eba
