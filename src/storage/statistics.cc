#include "storage/statistics.h"

#include <unordered_set>

namespace eba {

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats stats;
  stats.num_rows = column.size();
  stats.num_nulls = column.NullCount();

  if (column.IsString()) {
    // The dictionary may contain strings from rows that were appended and
    // are all that exist, so dictionary size equals distinct count; min/max
    // still require a scan because dictionary order is insertion order.
    stats.num_distinct = column.DictionarySize();
  }

  bool first = true;
  std::unordered_set<int64_t> distinct_ints;
  std::unordered_set<Value> distinct_values;
  for (size_t row = 0; row < column.size(); ++row) {
    if (column.IsNull(row)) continue;
    Value v = column.Get(row);
    if (first) {
      stats.min = v;
      stats.max = v;
      first = false;
    } else {
      if (v < stats.min) stats.min = v;
      if (stats.max < v) stats.max = v;
    }
    if (column.IsString()) continue;  // distinct handled via dictionary
    if (column.IsIntLike()) {
      distinct_ints.insert(column.Int64At(row));
    } else {
      distinct_values.insert(v);
    }
  }
  if (!column.IsString()) {
    stats.num_distinct =
        column.IsIntLike() ? distinct_ints.size() : distinct_values.size();
  }
  return stats;
}

}  // namespace eba
