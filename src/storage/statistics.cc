#include "storage/statistics.h"

namespace eba {

void IncrementalColumnStats::ExtendTo(const Column& column) {
  const size_t n = column.size();
  // True no-op when nothing was appended: readers may hold the returned
  // stats reference outside the table's lazy mutex, so an already-current
  // summary must not be rewritten (even with identical values).
  if (n == rows_seen_) return;
  if (column.IsIntLike()) {
    // Chunk-aware fold over the raw int64 payload: distinct set and
    // min/max run over per-chunk arrays; boxing happens only when a new
    // extremum is recorded.
    column.ForEachInt64Span(
        rows_seen_, n,
        [&](size_t first_row, const int64_t* data, size_t count) {
          for (size_t i = 0; i < count; ++i) {
            if (column.IsNull(first_row + i)) continue;
            distinct_ints_.insert(data[i]);
            Value v = column.Get(first_row + i);
            if (stats_.min.is_null()) {
              stats_.min = v;
              stats_.max = std::move(v);
            } else {
              if (v < stats_.min) stats_.min = v;
              if (stats_.max < v) stats_.max = std::move(v);
            }
          }
        });
  } else {
    for (size_t row = rows_seen_; row < n; ++row) {
      if (column.IsNull(row)) continue;
      Value v = column.Get(row);
      if (!column.IsString()) {  // string distinct uses the dictionary
        distinct_values_.insert(v);
      }
      if (stats_.min.is_null()) {
        stats_.min = v;
        stats_.max = std::move(v);
      } else {
        if (v < stats_.min) stats_.min = v;
        if (stats_.max < v) stats_.max = std::move(v);
      }
    }
  }
  rows_seen_ = n;
  stats_.num_rows = n;
  stats_.num_nulls = column.NullCount();
  if (column.IsString()) {
    // Dictionary size equals the exact distinct count (codes are only
    // minted for strings that occur); min/max still required the scan
    // above because dictionary order is insertion order.
    stats_.num_distinct = column.DictionarySize();
  } else {
    stats_.num_distinct = column.IsIntLike() ? distinct_ints_.size()
                                             : distinct_values_.size();
  }
}

ColumnStats ComputeColumnStats(const Column& column) {
  IncrementalColumnStats incremental;
  incremental.ExtendTo(column);
  return incremental.stats();
}

}  // namespace eba
