// The storage I/O seam: every durable write in the WAL/checkpoint/persist
// layer goes through an Env so that crash behavior is testable. RealEnv
// talks to the filesystem; FaultInjectingEnv wraps any Env and
// deterministically "kills the process" at the k-th write-class operation —
// the failing Append lands only a prefix on disk (a torn write), and every
// subsequent operation fails, exactly like a process that died mid-syscall.
// Recovery code then reads what actually reached the base Env.
//
// Write-class operations (the kill boundaries) are: WritableFile::Append/
// Sync/Close, NewWritableFile, CreateDirs, RenameFile, RemoveFile,
// RemoveAll, TruncateFile, SyncDir. Reads are not kill boundaries, but they
// too fail once the injected process is dead (catching accidental reuse of
// a dead handle).

#ifndef EBA_STORAGE_IO_H_
#define EBA_STORAGE_IO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace eba {

/// An append-only file handle. Append buffers in the OS (no durability
/// guarantee until Sync); Close flushes but does not sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Flushes to the OS and forces the data to stable storage (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // --- reads ---
  virtual StatusOr<std::string> ReadFileToString(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Entry names (not paths) in `path`, sorted; NotFound if absent.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  // --- writes (kill boundaries under FaultInjectingEnv) ---
  /// Opens `path` for appending; truncate=true starts the file empty.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  /// Renames a file or directory (the atomic-publish primitive).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveAll(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  /// fsyncs the directory itself so a completed rename survives a crash.
  virtual Status SyncDir(const std::string& path) = 0;

  // --- convenience, built on the virtuals above ---
  /// Creates/overwrites `path` with `data`, synced.
  Status WriteFile(const std::string& path, std::string_view data);
  /// Write-temp + fsync + rename + dir-fsync: `path` either keeps its old
  /// contents or holds all of `data`, never a torn mix.
  Status WriteFileAtomic(const std::string& path, std::string_view data);
};

/// The process-wide filesystem Env.
Env* RealEnv();

/// Deterministic crash injection: the `kill_at`-th write-class operation
/// (0-based, counted across the env and every file it opened) fails — an
/// Append lands only the first half of its data first (torn write) — and
/// every operation after it fails too. Thread-safe counters; intended use
/// is single-threaded schedules (dry-run to count ops, then one run per
/// kill point).
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base = nullptr)
      : base_(base != nullptr ? base : RealEnv()) {}

  /// Schedules the kill. Counting restarts from zero.
  void ScheduleKill(uint64_t kill_at) {
    ops_.store(0, std::memory_order_relaxed);
    kill_at_.store(kill_at, std::memory_order_relaxed);
    dead_.store(false, std::memory_order_relaxed);
  }
  /// No kill: count operations only (the dry-run mode).
  void DisarmKill() {
    ops_.store(0, std::memory_order_relaxed);
    kill_at_.store(kNever, std::memory_order_relaxed);
    dead_.store(false, std::memory_order_relaxed);
  }

  /// Write-class operations attempted so far.
  uint64_t write_ops() const { return ops_.load(std::memory_order_relaxed); }
  /// True once the scheduled kill has fired.
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

  StatusOr<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status CreateDirs(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveAll(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultInjectingFile;
  static constexpr uint64_t kNever = ~uint64_t{0};

  enum class OpFate {
    kAlive,        // op proceeds normally
    kKilledNow,    // this op IS the kill: may land a torn prefix
    kAlreadyDead,  // a previous op killed the process: nothing lands
  };

  /// Advances the op counter and classifies this op against the schedule.
  OpFate BeginWriteOp();

  Env* base_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> kill_at_{kNever};
  std::atomic<bool> dead_{false};
};

}  // namespace eba

#endif  // EBA_STORAGE_IO_H_
