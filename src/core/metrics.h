// Precision / recall / normalized recall of explanation template sets,
// exactly as defined in §5.3.2:
//   recall            = |real accesses explained| / |real log|
//   precision         = |real explained| / |real + fake explained|
//   normalized recall = |real explained| / |real accesses with events|
// evaluated over a combined log of real and uniformly-random fake accesses.

#ifndef EBA_CORE_METRICS_H_
#define EBA_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/template.h"
#include "storage/database.h"

namespace eba {

struct PrecisionRecall {
  size_t real_total = 0;
  size_t fake_total = 0;
  size_t real_explained = 0;
  size_t fake_explained = 0;
  size_t real_with_events = 0;

  double Recall() const {
    return real_total == 0 ? 0.0
                           : static_cast<double>(real_explained) /
                                 static_cast<double>(real_total);
  }
  double Precision() const {
    size_t denom = real_explained + fake_explained;
    return denom == 0 ? 1.0
                      : static_cast<double>(real_explained) /
                            static_cast<double>(denom);
  }
  double NormalizedRecall() const {
    return real_with_events == 0
               ? 0.0
               : static_cast<double>(real_explained) /
                     static_cast<double>(real_with_events);
  }
};

class MetricsEvaluator {
 public:
  /// `combined_log_table` holds real + fake accesses (standard log schema)
  /// inside `db`; the database must outlive the evaluator.
  MetricsEvaluator(const Database* db, std::string combined_log_table);

  /// Lids (from `universe`, or all when empty) explained by at least one of
  /// the given templates. Templates are rebound onto the combined table.
  StatusOr<std::unordered_set<int64_t>> ExplainedSet(
      const std::vector<ExplanationTemplate>& templates) const;

  /// Computes precision/recall over the given real/fake lid sets.
  /// `real_with_events` feeds normalized recall (pass real_lids to make
  /// normalized recall equal recall).
  StatusOr<PrecisionRecall> Evaluate(
      const std::vector<ExplanationTemplate>& templates,
      const std::vector<int64_t>& real_lids,
      const std::vector<int64_t>& fake_lids,
      const std::vector<int64_t>& real_lids_with_events) const;

  /// Lids in the combined table whose patient has any row in `event_table`
  /// (matching on the patient-domain column) — the "events" denominators of
  /// Figures 6/8.
  StatusOr<std::vector<int64_t>> LidsWithEvent(
      const std::string& event_table,
      const std::string& patient_column) const;

  /// Lids whose patient has a row in at least one of the event tables.
  StatusOr<std::vector<int64_t>> LidsWithAnyEvent(
      const std::vector<std::pair<std::string, std::string>>&
          event_tables_and_patient_columns) const;

 private:
  const Database* db_;
  std::string log_table_;
};

}  // namespace eba

#endif  // EBA_CORE_METRICS_H_
