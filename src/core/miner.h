// TemplateMiner: mines frequent explanation templates from the database
// (paper §3). Implements:
//   - the one-way bottom-up algorithm (Algorithm 1),
//   - the two-way algorithm (§3.3), and
//   - bridged mining (§3.3.1): grow both frontiers to length ℓ with support
//     pruning, then assemble longer candidates by sharing the bridge edge
//     (n <= 2ℓ-1), by direct adjacency (n = 2ℓ), or by enumerating free
//     middle edges (n > 2ℓ).
// All three return the same template set (monotonicity of support is
// property-tested); they differ in run time, which is what Figure 13
// measures.
//
// The three performance optimizations of §3.2.1 are individually
// switchable for the ablation benchmarks:
//   1. support caching keyed on the canonicalized selection-condition set,
//   2. intermediate-result deduplication (kDedupFrontier strategy),
//   3. skipping non-selective paths via the cardinality estimator
//      (threshold S*c; never applied to explanation candidates).

#ifndef EBA_CORE_MINER_H_
#define EBA_CORE_MINER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/template.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "storage/database.h"

namespace eba {

struct MinerOptions {
  /// Log table to mine over (often a first-access training slice).
  std::string log_table = "Log";
  std::string start_column = "Patient";  // path start (Definition 1)
  std::string end_column = "User";       // path end
  std::string lid_column = "Lid";

  /// Minimum support as a fraction of the log (s% in Definition 5).
  double support_fraction = 0.01;
  /// Maximum raw path length M.
  int max_length = 5;
  /// Maximum counted tables T (mapping tables exempt).
  int max_tables = 3;

  /// §3.2.1 optimization toggles.
  bool cache_support = true;
  Executor::SupportStrategy support_strategy =
      Executor::SupportStrategy::kDedupFrontier;
  /// Executor engine/join-order knobs for support evaluation (threaded to
  /// every support query; the benches A/B the boxed reference engine
  /// against the late-materialization one through this).
  ExecutorOptions executor;
  /// Cache compiled physical plans (join order, condition closures,
  /// dictionary translations, index bindings) across support queries,
  /// keyed on the canonical condition set and revalidated against table
  /// structural epochs + append watermarks. Orthogonal to
  /// cache_support, which caches final support *counts*: plan caching also
  /// pays off when the same template shape is re-executed (e.g. with
  /// support caching disabled for ablation, or across mining runs sharing
  /// an external cache via executor.plan_cache).
  bool cache_plans = true;
  bool skip_nonselective = true;
  /// The constant c that widens the skip threshold to S*c.
  double skip_constant_c = 10.0;

  /// Tables to exclude from the schema graph entirely (e.g. other log
  /// slices living in the same database).
  std::vector<std::string> excluded_tables;

  /// Safety valve: abort if a frontier exceeds this many paths.
  size_t max_frontier_paths = 2'000'000;
};

/// Per-length progress record (drives Figure 13).
struct LengthTiming {
  int length = 0;
  double cumulative_seconds = 0;
  size_t frontier_paths = 0;       // supported paths alive at this length
  size_t explanations_total = 0;   // cumulative explanations found
};

struct MiningStats {
  size_t candidates_considered = 0;
  size_t support_queries = 0;
  /// Support-count cache hits (the §3.2.1 caching optimization): the query
  /// was skipped entirely because its canonical key already had a count.
  size_t support_cache_hits = 0;
  /// Compiled-plan cache hits: the query ran, but replayed a cached
  /// physical plan instead of planning from scratch.
  size_t plan_cache_hits = 0;
  size_t plan_cache_invalidations = 0;
  size_t skipped_paths = 0;
  size_t pruned_paths = 0;  // candidates failing the support threshold
  std::vector<LengthTiming> timings;
};

/// A mined template with its measured support.
struct MinedTemplate {
  ExplanationTemplate tmpl;
  MiningPath path;
  int64_t support = 0;
  double support_fraction = 0.0;
};

struct MiningResult {
  std::vector<MinedTemplate> templates;
  MiningStats stats;
  int64_t log_size = 0;
  double support_threshold = 0.0;  // S = |Log| * s
};

class TemplateMiner {
 public:
  /// The database must outlive the miner.
  TemplateMiner(const Database* db, MinerOptions options);

  StatusOr<MiningResult> MineOneWay() const;
  StatusOr<MiningResult> MineTwoWay() const;
  /// Bridge-ℓ: `bridge_length` is ℓ (>= 2).
  StatusOr<MiningResult> MineBridged(int bridge_length) const;

  const MinerOptions& options() const { return options_; }

 private:
  struct Context;

  StatusOr<Context> MakeContext() const;

  /// Exact or assumed support of a path. Returns the exact count, or -1 if
  /// the path was skipped as presumed-supported (never for explanations).
  StatusOr<int64_t> PathSupport(Context* ctx, const MiningPath& path,
                                bool is_explanation) const;

  /// Extends every frontier path with every connected edge, keeping
  /// supported restricted-simple paths; explanations are recorded into ctx.
  StatusOr<std::vector<MiningPath>> GrowFrontier(
      Context* ctx, const std::vector<MiningPath>& frontier,
      bool forward) const;

  /// Seeds the length-1 frontier (forward: edges from start; backward:
  /// edges into end), applying support pruning.
  StatusOr<std::vector<MiningPath>> SeedFrontier(Context* ctx,
                                                 bool forward) const;

  Status RecordExplanation(Context* ctx, const MiningPath& path) const;

  const Database* db_;
  MinerOptions options_;
};

}  // namespace eba

#endif  // EBA_CORE_MINER_H_
