#include "core/instance.h"

#include "common/logging.h"

namespace eba {

ExplanationInstance::ExplanationInstance(const ExplanationTemplate* tmpl,
                                         std::vector<QAttr> attrs, Row values)
    : template_(tmpl), attrs_(std::move(attrs)), values_(std::move(values)) {
  EBA_CHECK(template_ != nullptr);
  EBA_CHECK(attrs_.size() == values_.size());
}

Value ExplanationInstance::LogId() const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == template_->lid_attr()) return values_[i];
  }
  return Value::Null();
}

Value ExplanationInstance::ValueOf(const Database& db,
                                   const std::string& alias,
                                   const std::string& column) const {
  auto resolved = template_->query().Resolve(db, alias, column);
  if (!resolved.ok()) return Value::Null();
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == *resolved) return values_[i];
  }
  return Value::Null();
}

std::string ExplanationInstance::ToNaturalLanguage(const Database& db) const {
  const std::string& format = template_->description_format();
  std::string out;
  out.reserve(format.size());
  size_t i = 0;
  while (i < format.size()) {
    if (format[i] == '[') {
      size_t close = format.find(']', i);
      size_t dot = format.find('.', i);
      if (close != std::string::npos && dot != std::string::npos &&
          dot < close) {
        std::string alias = format.substr(i + 1, dot - i - 1);
        std::string column = format.substr(dot + 1, close - dot - 1);
        Value v = ValueOf(db, alias, column);
        out += v.is_null() ? "?" : v.ToString();
        i = close + 1;
        continue;
      }
    }
    out.push_back(format[i]);
    ++i;
  }
  return out;
}

bool ExplanationInstance::RankLess(const ExplanationInstance& a,
                                   const ExplanationInstance& b) {
  int la = a.tmpl().RawLength();
  int lb = b.tmpl().RawLength();
  if (la != lb) return la < lb;
  return a.tmpl().name() < b.tmpl().name();
}

}  // namespace eba
