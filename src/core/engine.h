// ExplanationEngine: the runtime side of explanation-based auditing.
// Holds a registry of explanation templates over one log table and answers:
//   - Explain(lid): all explanation instances for a single access, ranked
//     by ascending path length (the user-centric audit portal operation);
//   - ExplainAll(): which accesses each template explains, combined
//     coverage, and the unexplained remainder (the misuse-detection
//     operation of §1).

#ifndef EBA_CORE_ENGINE_H_
#define EBA_CORE_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/instance.h"
#include "core/template.h"
#include "query/executor.h"
#include "storage/database.h"

namespace eba {

/// Result of ExplainAll.
struct ExplanationReport {
  size_t log_size = 0;
  /// Per registered template: number of log records it explains.
  std::vector<size_t> per_template_counts;
  /// Lids explained by at least one template.
  std::vector<int64_t> explained_lids;
  /// Lids explained by no template (candidates for compliance review).
  std::vector<int64_t> unexplained_lids;

  double Coverage() const {
    return log_size == 0
               ? 0.0
               : static_cast<double>(explained_lids.size()) /
                     static_cast<double>(log_size);
  }
};

class ExplanationEngine {
 public:
  /// `db` must contain `log_table` (standard log schema) and outlive the
  /// engine.
  static StatusOr<ExplanationEngine> Create(const Database* db,
                                            const std::string& log_table);

  /// Registers a template. The template's variable-0 table is rebound to
  /// this engine's log table automatically.
  Status AddTemplate(const ExplanationTemplate& tmpl);

  const std::vector<ExplanationTemplate>& templates() const {
    return templates_;
  }
  size_t num_templates() const { return templates_.size(); }

  const std::string& log_table() const { return log_table_; }

  /// All explanation instances for one access, ranked by path length.
  StatusOr<std::vector<ExplanationInstance>> Explain(int64_t lid) const;

  /// Lids explained by template `index`.
  StatusOr<std::vector<int64_t>> ExplainedLids(size_t index) const;

  /// Full-log coverage report.
  StatusOr<ExplanationReport> ExplainAll() const;

 private:
  ExplanationEngine(const Database* db, std::string log_table, QAttr lid_attr);

  const Database* db_;
  std::string log_table_;
  QAttr lid_attr_;
  std::vector<ExplanationTemplate> templates_;
};

}  // namespace eba

#endif  // EBA_CORE_ENGINE_H_
