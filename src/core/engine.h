// ExplanationEngine: the runtime side of explanation-based auditing.
// Holds a registry of explanation templates over one log table and answers:
//   - Explain(lid): all explanation instances for a single access, ranked
//     by ascending path length (the user-centric audit portal operation);
//   - ExplainAll(): which accesses each template explains, combined
//     coverage, and the unexplained remainder (the misuse-detection
//     operation of §1).
//
// Thread safety: the const query surface (Explain/ExplainedLids/ExplainAll)
// is safe to call concurrently — the shared PlanCache and each Table's lazy
// index/stats construction carry their own capability-annotated locks
// (common/thread_annotations.h), so ExplainAll's template fan-out needs no
// external locking. Each call pins one Database::Snapshot (or takes the
// caller's) and evaluates everything against that read view, so queries are
// also safe under the single concurrent appending writer: a call observes
// exactly the rows below its snapshot's watermarks. Registering templates
// (AddTemplate) and structural database mutations still require external
// serialization against all concurrent queries.

#ifndef EBA_CORE_ENGINE_H_
#define EBA_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/instance.h"
#include "core/template.h"
#include "query/executor.h"
#include "query/plan_cache.h"
#include "storage/database.h"

namespace eba {

/// Tuning knobs for ExplainAll.
struct ExplainAllOptions {
  /// Worker threads. <= 1 evaluates everything on the calling thread; any
  /// higher value fans templates and log shards out over a fixed pool. The
  /// report is byte-identical regardless of the thread count.
  size_t num_threads = 1;
  /// Lower bound on log rows per classification shard, so tiny logs are not
  /// split into shards smaller than the fan-out overhead.
  size_t min_rows_per_shard = 1024;
  /// Executor engine/join-order/parallelism knobs used for template
  /// evaluation. The defaults run the late-materialization engine with
  /// cost-based join ordering; the boxed reference engine is available for
  /// A/B comparison. ExplainAll threads its own pool into
  /// `executor.pool`/`executor.num_threads` when they are unset, so probe
  /// morsels and template fan-out share the same workers.
  ExecutorOptions executor;
  /// When true (default) and `executor.plan_cache` is null, template
  /// evaluation shares the engine's persistent plan cache, so repeated
  /// ExplainAll calls skip planning for every registered template. Epoch
  /// validation drops stale plans when a table mutates.
  bool use_engine_plan_cache = true;
};

/// Result of ExplainAll.
struct ExplanationReport {
  size_t log_size = 0;
  /// Per registered template: number of log records it explains.
  std::vector<size_t> per_template_counts;
  /// Lids explained by at least one template.
  std::vector<int64_t> explained_lids;
  /// Lids explained by no template (candidates for compliance review).
  std::vector<int64_t> unexplained_lids;

  double Coverage() const {
    return log_size == 0
               ? 0.0
               : static_cast<double>(explained_lids.size()) /
                     static_cast<double>(log_size);
  }
};

class ExplanationEngine {
 public:
  /// `db` must contain `log_table` (standard log schema) and outlive the
  /// engine.
  static StatusOr<ExplanationEngine> Create(const Database* db,
                                            const std::string& log_table);

  /// Registers a template. The template's variable-0 table is rebound to
  /// this engine's log table automatically.
  Status AddTemplate(const ExplanationTemplate& tmpl);

  const std::vector<ExplanationTemplate>& templates() const {
    return templates_;
  }
  size_t num_templates() const { return templates_.size(); }

  const std::string& log_table() const { return log_table_; }

  /// All explanation instances for one access, ranked by path length. The
  /// snapshot-less overload pins a fresh read view for the call; pass a
  /// Database::Snapshot to audit a specific pinned view (e.g. many explains
  /// against one consistent state while the writer keeps appending).
  StatusOr<std::vector<ExplanationInstance>> Explain(int64_t lid) const;
  StatusOr<std::vector<ExplanationInstance>> Explain(
      int64_t lid, const Database::Snapshot& snapshot) const;

  /// Lids explained by template `index` (ascending). Evaluated through
  /// Executor::DistinctLids — the semi-join fast path that never builds a
  /// boxed row.
  StatusOr<std::vector<int64_t>> ExplainedLids(size_t index) const;
  StatusOr<std::vector<int64_t>> ExplainedLids(
      size_t index, const ExecutorOptions& executor_options) const;
  StatusOr<std::vector<int64_t>> ExplainedLids(
      size_t index, const ExecutorOptions& executor_options,
      const Database::Snapshot& snapshot) const;

  /// Full-log coverage report (serial; equivalent to ExplainAll({})).
  StatusOr<ExplanationReport> ExplainAll() const;

  /// Full-log coverage report. With options.num_threads > 1, templates are
  /// evaluated concurrently (one executor per worker) and the log is
  /// partitioned into contiguous shards for classification; per-shard
  /// results are merged in shard order, so the report is deterministic and
  /// identical to the serial one. The whole report — template evaluation
  /// and classification — runs against one snapshot: the caller's, or a
  /// fresh one pinned at call entry.
  StatusOr<ExplanationReport> ExplainAll(const ExplainAllOptions& options) const;
  StatusOr<ExplanationReport> ExplainAll(
      const ExplainAllOptions& options,
      const Database::Snapshot& snapshot) const;

  /// The engine's persistent compiled-plan cache (shared by default across
  /// ExplainAll calls; see ExplainAllOptions::use_engine_plan_cache).
  PlanCache* plan_cache() const { return plan_cache_.get(); }

 private:
  ExplanationEngine(const Database* db, std::string log_table, QAttr lid_attr);

  const Database* db_;
  std::string log_table_;
  QAttr lid_attr_;
  std::vector<ExplanationTemplate> templates_;
  // shared_ptr (not a member by value) keeps the engine movable/copyable;
  // copies deliberately share the cache.
  std::shared_ptr<PlanCache> plan_cache_ = std::make_shared<PlanCache>();
};

}  // namespace eba

#endif  // EBA_CORE_ENGINE_H_
