// Decorated-template refinement — the paper's stated future work (§5.3.4):
//
//   "group information at one depth may be sufficient to explain an access
//    with an appointment, but group information at another depth may be
//    necessary to explain accesses with medication information to attain a
//    desired level of precision. In the future, we will consider how to
//    mine decorated explanation templates that restrict the groups that can
//    be used to better control precision."
//
// RefineGroupDepth implements exactly that: given a mined simple template
// that traverses the Groups table, it evaluates the decorated variants
// "... AND G.Group_Depth = d" for every depth on a validation log (real +
// fake accesses, §5.3.2) and returns the deepest decoration that meets the
// administrator's precision target — maximizing recall subject to the
// precision constraint. Templates that cannot meet the target even at the
// deepest level are reported as rejected.

#ifndef EBA_CORE_REFINE_H_
#define EBA_CORE_REFINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/metrics.h"
#include "core/template.h"
#include "storage/database.h"

namespace eba {

struct RefineOptions {
  /// Validation log (real + fake accesses) living in the database.
  std::string validation_log_table;
  std::vector<int64_t> real_lids;
  std::vector<int64_t> fake_lids;

  /// Precision the decorated template must reach on the validation log.
  double precision_target = 0.90;

  /// The Groups table name (its Group_Depth column is decorated).
  std::string groups_table = "Groups";
  std::string depth_column = "Group_Depth";
};

/// Outcome of refining one template.
struct RefinedTemplate {
  ExplanationTemplate tmpl;
  /// Chosen depth decoration (nullopt = the undecorated template already
  /// met the target).
  std::optional<int> chosen_depth;
  PrecisionRecall validation;
  /// False when no decoration met the precision target; `tmpl` then holds
  /// the best-precision variant for inspection.
  bool meets_target = false;
};

/// True if the template references the Groups table.
bool UsesGroups(const ExplanationTemplate& tmpl,
                const std::string& groups_table);

/// Refines a single group template as described above. Non-group templates
/// are returned unchanged (evaluated, chosen_depth = nullopt).
StatusOr<RefinedTemplate> RefineGroupDepth(const Database& db,
                                           const ExplanationTemplate& tmpl,
                                           const RefineOptions& options);

/// Refines every template in a set; preserves order. Templates that cannot
/// meet the target are still returned (meets_target = false) so the
/// administrator can triage them.
StatusOr<std::vector<RefinedTemplate>> RefineTemplateSet(
    const Database& db, const std::vector<ExplanationTemplate>& templates,
    const RefineOptions& options);

}  // namespace eba

#endif  // EBA_CORE_REFINE_H_
