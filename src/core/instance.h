// ExplanationInstance: one data-specific explanation — a binding of an
// explanation template's attributes for one log record — plus its rendering
// to natural language via the template's description string (§2.1).

#ifndef EBA_CORE_INSTANCE_H_
#define EBA_CORE_INSTANCE_H_

#include <string>
#include <vector>

#include "core/template.h"
#include "query/executor.h"

namespace eba {

class ExplanationInstance {
 public:
  /// `attrs`/`values` are parallel: the materialized attributes and their
  /// bound values for this instance. The template must outlive the instance.
  ExplanationInstance(const ExplanationTemplate* tmpl, std::vector<QAttr> attrs,
                      Row values);

  const ExplanationTemplate& tmpl() const { return *template_; }

  /// Log id this instance explains (NULL Value if the lid attribute was not
  /// materialized).
  Value LogId() const;

  /// Bound value of `alias.Column`, or NULL if absent.
  Value ValueOf(const Database& db, const std::string& alias,
                const std::string& column) const;

  /// Renders the template's description format, substituting each
  /// "[alias.Column]" placeholder with the bound value. Unresolvable
  /// placeholders render as "?".
  std::string ToNaturalLanguage(const Database& db) const;

  /// Ranking key: ascending raw path length (§2.1 — shorter explanations
  /// first), then template name for determinism.
  static bool RankLess(const ExplanationInstance& a,
                       const ExplanationInstance& b);

  const std::vector<QAttr>& attrs() const { return attrs_; }
  const Row& values() const { return values_; }

 private:
  const ExplanationTemplate* template_;
  std::vector<QAttr> attrs_;
  Row values_;
};

}  // namespace eba

#endif  // EBA_CORE_INSTANCE_H_
