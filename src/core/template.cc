#include "core/template.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "query/parser.h"

namespace eba {

ExplanationTemplate::ExplanationTemplate(std::string name, PathQuery query,
                                         QAttr lid_attr,
                                         std::string description_format)
    : name_(std::move(name)),
      query_(std::move(query)),
      lid_attr_(lid_attr),
      description_(std::move(description_format)) {
  EBA_CHECK_MSG(lid_attr_.var == 0, "lid attribute must be on variable 0");
}

namespace {

/// Attributes mentioned as "[alias.Column]" placeholders in a description
/// string (unresolvable placeholders are ignored; they render as "?").
std::vector<QAttr> PlaceholderAttrs(const Database& db, const PathQuery& q,
                                    const std::string& description) {
  std::vector<QAttr> attrs;
  size_t i = 0;
  while (i < description.size()) {
    if (description[i] == '[') {
      size_t close = description.find(']', i);
      size_t dot = description.find('.', i);
      if (close != std::string::npos && dot != std::string::npos &&
          dot < close) {
        auto resolved = q.Resolve(db, description.substr(i + 1, dot - i - 1),
                                  description.substr(dot + 1, close - dot - 1));
        if (resolved.ok() &&
            std::find(attrs.begin(), attrs.end(), *resolved) == attrs.end()) {
          attrs.push_back(*resolved);
        }
        i = close + 1;
        continue;
      }
    }
    ++i;
  }
  return attrs;
}

}  // namespace

StatusOr<ExplanationTemplate> ExplanationTemplate::Parse(
    const Database& db, const std::string& name,
    const std::string& from_clause, const std::string& where_clause,
    const std::string& description) {
  EBA_ASSIGN_OR_RETURN(PathQuery q,
                       ParsePathQuery(db, from_clause, where_clause));
  EBA_ASSIGN_OR_RETURN(const Table* log_table, db.GetTable(q.vars[0].table));
  int lid_col = log_table->schema().ColumnIndex("Lid");
  if (lid_col < 0) {
    return Status::InvalidArgument("log table '" + q.vars[0].table +
                                   "' has no Lid column");
  }
  // Materialize every attribute the description references (e.g. the
  // appointment date in "... on [A.Date]") in addition to the condition
  // attributes, so instances can render their placeholders.
  q.projection = q.ReferencedAttrs();
  for (const QAttr& attr : PlaceholderAttrs(db, q, description)) {
    if (std::find(q.projection.begin(), q.projection.end(), attr) ==
        q.projection.end()) {
      q.projection.push_back(attr);
    }
  }
  return ExplanationTemplate(name, std::move(q), QAttr{0, lid_col},
                             description);
}

namespace {

/// Serializes one condition side as "Table[instance].Column", where the
/// instance is the tuple-variable's occurrence index among variables of the
/// same table — stable across alias renamings. The log table is normalized
/// to "<log>".
std::string SideKey(const PathQuery& q, const std::string& log_table,
                    const QAttr& a, const Database& db) {
  const TupleVar& var = q.vars[static_cast<size_t>(a.var)];
  int occurrence = 0;
  for (int i = 0; i < a.var; ++i) {
    if (q.vars[static_cast<size_t>(i)].table == var.table) ++occurrence;
  }
  std::string table =
      var.table == log_table ? std::string("<log>") : var.table;
  auto table_ptr = db.GetTable(var.table);
  std::string column = table_ptr.ok()
                           ? table_ptr.value()
                                 ->schema()
                                 .column(static_cast<size_t>(a.col))
                                 .name
                           : std::to_string(a.col);
  return table + "#" + std::to_string(occurrence) + "." + column;
}

}  // namespace

StatusOr<std::string> ExplanationTemplate::CanonicalKey(
    const Database& db) const {
  EBA_RETURN_IF_ERROR(query_.Validate(db));
  const std::string& log_table = query_.vars[0].table;
  std::vector<std::string> parts;
  for (const auto& c : query_.join_chain) {
    std::string l = SideKey(query_, log_table, c.lhs, db);
    std::string r = SideKey(query_, log_table, c.rhs, db);
    if (r < l) std::swap(l, r);
    parts.push_back(l + "=" + r);
  }
  for (const auto& c : query_.extra_conditions) {
    parts.push_back(SideKey(query_, log_table, c.lhs, db) +
                    CmpOpToString(c.op) +
                    SideKey(query_, log_table, c.rhs, db));
  }
  for (const auto& c : query_.const_conditions) {
    parts.push_back(SideKey(query_, log_table, c.lhs, db) +
                    CmpOpToString(c.op) + c.rhs.ToString());
  }
  std::sort(parts.begin(), parts.end());
  return Join(parts, "&");
}

ExplanationTemplate ExplanationTemplate::WithLogTable(
    const std::string& log_table) const {
  ExplanationTemplate copy = *this;
  const std::string old_log = query_.vars[0].table;
  for (auto& var : copy.query_.vars) {
    if (var.table == old_log) var.table = log_table;
  }
  return copy;
}

StatusOr<std::string> ExplanationTemplate::ToSql(
    const Database& db, const SqlRenderOptions& options) const {
  SqlRenderOptions opts = options;
  if (opts.count_distinct_lid) opts.lid_attr = lid_attr_;
  return eba::ToSql(db, query_, opts);
}

}  // namespace eba
