// ExplanationTemplate (Definitions 1-4): a stylized query that explains many
// accesses, plus a parameterized description string that renders each
// explanation instance as natural language (§2.1).

#ifndef EBA_CORE_TEMPLATE_H_
#define EBA_CORE_TEMPLATE_H_

#include <string>

#include "common/status.h"
#include "query/path_query.h"
#include "query/sql.h"
#include "storage/database.h"

namespace eba {

class ExplanationTemplate {
 public:
  /// Builds a template from a parsed/constructed query. `lid_attr` must be
  /// the log-id attribute of tuple variable 0. The description format uses
  /// `[alias.Column]` placeholders, e.g.
  ///   "[L.Patient] had an appointment with [L.User] on [T1.Date]".
  ExplanationTemplate(std::string name, PathQuery query, QAttr lid_attr,
                      std::string description_format);

  /// Parses FROM/WHERE text into a template (admin-specified templates).
  static StatusOr<ExplanationTemplate> Parse(const Database& db,
                                             const std::string& name,
                                             const std::string& from_clause,
                                             const std::string& where_clause,
                                             const std::string& description);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const PathQuery& query() const { return query_; }
  PathQuery* mutable_query() { return &query_; }
  QAttr lid_attr() const { return lid_attr_; }

  const std::string& description_format() const { return description_; }
  void set_description_format(std::string d) { description_ = std::move(d); }

  /// Simple template (Definition 2): no decorations beyond the join chain.
  bool IsSimple() const {
    return query_.extra_conditions.empty() && query_.const_conditions.empty();
  }
  /// Decorated template (Definition 3).
  bool IsDecorated() const { return !IsSimple(); }

  /// Raw path length (join-chain conditions) and the reported length used in
  /// the paper's figures (mapping-table hops excluded; see DESIGN.md).
  int RawLength() const { return query_.RawLength(); }
  int ReportedLength(const Database& db) const {
    return query_.ReportedLength(db);
  }
  /// Tables referenced, counting self-joins once, mapping tables never.
  int CountedTables(const Database& db) const {
    return query_.CountedTables(db);
  }

  /// Canonical key over the selection-condition set: invariant to traversal
  /// order and to the concrete log-table name, so templates mined from
  /// different log slices compare equal (Table 1's "common templates").
  StatusOr<std::string> CanonicalKey(const Database& db) const;

  /// Clone with every tuple variable that references `this` template's log
  /// table rebound to `log_table` (to evaluate a template mined on a
  /// training slice against a different test log).
  ExplanationTemplate WithLogTable(const std::string& log_table) const;

  /// SQL text (for admin review / display).
  StatusOr<std::string> ToSql(const Database& db,
                              const SqlRenderOptions& options = {}) const;

 private:
  std::string name_;
  PathQuery query_;
  QAttr lid_attr_;
  std::string description_;
};

}  // namespace eba

#endif  // EBA_CORE_TEMPLATE_H_
