#include "core/catalog.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "query/sql.h"

namespace eba {

namespace {
constexpr char kHeader[] = "# eba template catalog v1";
}  // namespace

Status TemplateCatalog::Add(const ExplanationTemplate& tmpl) {
  if (Find(tmpl.name()) != nullptr) {
    return Status::AlreadyExists("template '" + tmpl.name() +
                                 "' already in catalog");
  }
  templates_.push_back(tmpl);
  return Status::OK();
}

const ExplanationTemplate* TemplateCatalog::Find(
    const std::string& name) const {
  for (const auto& tmpl : templates_) {
    if (tmpl.name() == name) return &tmpl;
  }
  return nullptr;
}

StatusOr<std::string> TemplateCatalog::Serialize(const Database& db) const {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const auto& tmpl : templates_) {
    EBA_ASSIGN_OR_RETURN(std::string from, RenderFromClause(db, tmpl.query()));
    EBA_ASSIGN_OR_RETURN(std::string where,
                         RenderWhereClause(db, tmpl.query()));
    // Names/descriptions are single-line by construction; reject otherwise
    // rather than corrupting the file.
    if (tmpl.name().find('\n') != std::string::npos ||
        tmpl.description_format().find('\n') != std::string::npos) {
      return Status::InvalidArgument("template '" + tmpl.name() +
                                     "' has a multi-line name/description");
    }
    out << "\nTEMPLATE " << tmpl.name() << "\n";
    out << "FROM " << from << "\n";
    out << "WHERE " << where << "\n";
    out << "DESC " << tmpl.description_format() << "\n";
    out << "END\n";
  }
  return out.str();
}

StatusOr<TemplateCatalog> TemplateCatalog::Deserialize(
    const Database& db, const std::string& text) {
  TemplateCatalog catalog;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;

  std::string name, from, where, desc;
  bool in_template = false;
  int line_number = 0;
  auto parse_error = [&](const std::string& message) {
    return Status::InvalidArgument("catalog line " +
                                   std::to_string(line_number) + ": " +
                                   message);
  };

  while (std::getline(in, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      if (StartsWith(trimmed, kHeader)) saw_header = true;
      continue;
    }
    if (StartsWith(trimmed, "TEMPLATE ")) {
      if (in_template) return parse_error("nested TEMPLATE");
      in_template = true;
      name = Trim(trimmed.substr(9));
      from.clear();
      where.clear();
      desc.clear();
      continue;
    }
    if (!in_template) return parse_error("content outside TEMPLATE block");
    if (StartsWith(trimmed, "FROM ")) {
      from = Trim(trimmed.substr(5));
    } else if (StartsWith(trimmed, "WHERE ")) {
      where = Trim(trimmed.substr(6));
    } else if (StartsWith(trimmed, "DESC ")) {
      desc = Trim(trimmed.substr(5));
    } else if (trimmed == "END") {
      if (name.empty() || from.empty()) {
        return parse_error("TEMPLATE block missing name or FROM");
      }
      EBA_ASSIGN_OR_RETURN(
          ExplanationTemplate tmpl,
          ExplanationTemplate::Parse(db, name, from, where, desc));
      EBA_RETURN_IF_ERROR(catalog.Add(tmpl));
      in_template = false;
    } else {
      return parse_error("unrecognized directive: " + trimmed);
    }
  }
  if (in_template) {
    return Status::InvalidArgument("catalog ends inside a TEMPLATE block");
  }
  if (!saw_header) {
    return Status::InvalidArgument("missing catalog header line '" +
                                   std::string(kHeader) + "'");
  }
  return catalog;
}

Status TemplateCatalog::SaveToFile(const Database& db,
                                   const std::string& path) const {
  EBA_ASSIGN_OR_RETURN(std::string text, Serialize(db));
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for write: " + path);
  out << text;
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<TemplateCatalog> TemplateCatalog::LoadFromFile(
    const Database& db, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(db, buffer.str());
}

}  // namespace eba
