#include "core/auditor.h"

#include "common/logging.h"
#include "core/catalog.h"
#include "graph/user_graph.h"

namespace eba {

Auditor::Auditor(Database* db, AuditorOptions options,
                 ExplanationEngine engine)
    : db_(db),
      options_(std::move(options)),
      engine_(std::make_unique<ExplanationEngine>(std::move(engine))) {}

StatusOr<Auditor> Auditor::Create(Database* db, AuditorOptions options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  EBA_ASSIGN_OR_RETURN(ExplanationEngine engine,
                       ExplanationEngine::Create(db, options.log_table));
  return Auditor(db, std::move(options), std::move(engine));
}

Status Auditor::BuildCollaborativeGroups(
    const std::vector<size_t>& training_rows) {
  EBA_ASSIGN_OR_RETURN(const Table* log_table,
                       db_->GetTable(options_.log_table));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(log_table));

  StatusOr<UserGraph> graph =
      training_rows.empty() ? UserGraph::Build(log)
                            : UserGraph::BuildFromRows(log, training_rows);
  EBA_RETURN_IF_ERROR(graph.status());

  EBA_ASSIGN_OR_RETURN(GroupHierarchy hierarchy,
                       GroupHierarchy::Build(*graph, options_.hierarchy));
  EBA_ASSIGN_OR_RETURN(Table groups,
                       hierarchy.ToGroupsTable(options_.groups_table));
  if (db_->HasTable(options_.groups_table)) {
    EBA_RETURN_IF_ERROR(db_->DropTable(options_.groups_table));
  }
  EBA_RETURN_IF_ERROR(db_->AddTable(std::move(groups)));
  EBA_RETURN_IF_ERROR(
      db_->AllowSelfJoin(AttrId{options_.groups_table, "Group_id"}));
  hierarchy_ = std::move(hierarchy);
  return Status::OK();
}

StatusOr<size_t> Auditor::ExtendCollaborativeGroups() {
  if (!hierarchy_.has_value()) {
    return Status::FailedPrecondition(
        "no hierarchy: call BuildCollaborativeGroups first");
  }
  EBA_ASSIGN_OR_RETURN(const Table* log_table,
                       db_->GetTable(options_.log_table));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(log_table));
  // Weights over the full log: a new user's ties are whatever the log shows
  // by now, which is exactly what a from-scratch rebuild would see.
  EBA_ASSIGN_OR_RETURN(UserGraph graph, UserGraph::Build(log));

  // user_ids() is in first-appearance log order, so assignment order — and
  // with it every tie-break and the appended row order — is deterministic.
  std::vector<GroupAssignment> assignments =
      hierarchy_->AssignNewUsers(graph, graph.user_ids());
  if (assignments.empty()) return size_t{0};

  EBA_ASSIGN_OR_RETURN(Table* groups, db_->GetTable(options_.groups_table));
  groups->Reserve(groups->num_rows() + assignments.size());
  for (const GroupAssignment& a : assignments) {
    EBA_RETURN_IF_ERROR(groups->AppendRow({Value::Int64(a.depth),
                                           Value::Int64(a.group_id),
                                           Value::Int64(a.user)}));
  }
  return assignments.size();
}

Status Auditor::AddTemplate(const std::string& name,
                            const std::string& from_clause,
                            const std::string& where_clause,
                            const std::string& description) {
  EBA_ASSIGN_OR_RETURN(
      ExplanationTemplate tmpl,
      ExplanationTemplate::Parse(*db_, name, from_clause, where_clause,
                                 description));
  return engine_->AddTemplate(tmpl);
}

Status Auditor::AddTemplate(const ExplanationTemplate& tmpl) {
  return engine_->AddTemplate(tmpl);
}

StatusOr<MiningResult> Auditor::MineAndRegister(MinerOptions options) {
  TemplateMiner miner(db_, std::move(options));
  EBA_ASSIGN_OR_RETURN(MiningResult result, miner.MineOneWay());
  for (const auto& mined : result.templates) {
    EBA_RETURN_IF_ERROR(engine_->AddTemplate(mined.tmpl));
  }
  return result;
}

StatusOr<std::vector<ExplanationInstance>> Auditor::ExplainAccess(
    int64_t lid) const {
  return engine_->Explain(lid);
}

StatusOr<std::vector<PatientAuditEntry>> Auditor::AuditPatient(
    int64_t patient) const {
  EBA_ASSIGN_OR_RETURN(const Table* log_table,
                       db_->GetTable(options_.log_table));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(log_table));

  // One snapshot for the whole audit: the patient's row list and every
  // per-access explain see the same watermark.
  const Database::Snapshot snapshot = db_->CreateSnapshot();
  const HashIndex& index =
      log_table->GetOrBuildIndex(static_cast<size_t>(log.patient_col()));
  // Spans are ascending, so clamping to the snapshot keeps timeline order.
  const RowIdSpan rows =
      index.LookupInt64(patient).ClampTo(snapshot.BoundOf(log_table));

  std::vector<PatientAuditEntry> entries;
  entries.reserve(rows.size());
  for (uint32_t r : rows) {
    PatientAuditEntry entry;
    entry.access = log.Get(r);
    EBA_ASSIGN_OR_RETURN(std::vector<ExplanationInstance> instances,
                         engine_->Explain(entry.access.lid, snapshot));
    entry.explanations.reserve(instances.size());
    for (const auto& inst : instances) {
      entry.explanations.push_back(inst.ToNaturalLanguage(*db_));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

StatusOr<ExplanationReport> Auditor::FindUnexplained() const {
  return engine_->ExplainAll();
}

Status Auditor::SaveTemplates(const std::string& path) const {
  TemplateCatalog catalog;
  for (const auto& tmpl : engine_->templates()) {
    EBA_RETURN_IF_ERROR(catalog.Add(tmpl));
  }
  return catalog.SaveToFile(*db_, path);
}

Status Auditor::LoadTemplates(const std::string& path) {
  EBA_ASSIGN_OR_RETURN(TemplateCatalog catalog,
                       TemplateCatalog::LoadFromFile(*db_, path));
  for (const auto& tmpl : catalog.templates()) {
    EBA_RETURN_IF_ERROR(engine_->AddTemplate(tmpl));
  }
  return Status::OK();
}

}  // namespace eba
