#include "core/miner.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "query/plan_cache.h"

namespace eba {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - start)
      .count();
}

/// Builds a readable auto-name for a mined template from its path tables.
std::string AutoName(const MiningPath& path, int index) {
  std::vector<std::string> tables;
  for (const auto& e : path.edges()) {
    if (tables.empty() || tables.back() != e.to.table) {
      tables.push_back(e.to.table);
    }
  }
  if (!tables.empty()) tables.pop_back();  // last hop returns to the log
  std::string joined = tables.empty() ? "direct" : Join(tables, "_");
  return StrFormat("mined_%s_len%d_%d", joined.c_str(), path.length(), index);
}

/// Builds a description format with placeholders for the path's attributes.
std::string AutoDescription(const Database& db, const PathQuery& q) {
  std::string out =
      "[L.User] accessed [L.Patient]'s record; connected via ";
  std::vector<std::string> hops;
  for (size_t i = 1; i < q.vars.size(); ++i) {
    const TupleVar& v = q.vars[i];
    auto table = db.GetTable(v.table);
    if (!table.ok()) continue;
    // Show the values of the attributes the path touches on this variable.
    std::vector<std::string> cols;
    for (const auto& c : q.join_chain) {
      for (const QAttr& a : {c.lhs, c.rhs}) {
        if (a.var == static_cast<int>(i)) {
          const std::string& col_name =
              table.value()->schema().column(static_cast<size_t>(a.col)).name;
          std::string rendered =
              col_name + "=[" + v.alias + "." + col_name + "]";
          if (std::find(cols.begin(), cols.end(), rendered) == cols.end()) {
            cols.push_back(rendered);
          }
        }
      }
    }
    hops.push_back(v.table + "(" + Join(cols, ", ") + ")");
  }
  out += hops.empty() ? "the log itself" : Join(hops, " and ");
  return out;
}

}  // namespace

struct TemplateMiner::Context {
  SchemaGraph graph;
  PathRules rules;
  QAttr lid_attr;
  bool lid_fast_path = false;  // DistinctLids usable for support counting
  int64_t log_size = 0;
  double threshold = 0.0;  // S
  // Heap-allocated (and declared before executor): the executor's options
  // may point at it, and the pointer must survive Context being moved out
  // of MakeContext.
  std::shared_ptr<PlanCache> plan_cache = std::make_shared<PlanCache>();
  Executor executor;
  CardinalityEstimator estimator;

  // canonical key -> exact support
  std::unordered_map<std::string, int64_t> support_cache;
  // canonical key -> mined explanation (deduplicated)
  std::map<std::string, MinedTemplate> explanations;

  MiningStats stats;
  Clock::time_point start_time;

  Context(const Database* db, const MinerOptions& options)
      : executor(db, PatchedExecutorOptions(options, plan_cache.get())),
        estimator(db) {
    // Baseline for FinishStats: an external cache shared across mining runs
    // arrives with lifetime counters; this run reports only its delta.
    if (const PlanCache* cache = executor.options().plan_cache) {
      plan_cache_baseline = cache->stats();
    }
  }

  /// Routes support queries through the context-owned plan cache when the
  /// caller enabled plan caching without supplying an external cache.
  static ExecutorOptions PatchedExecutorOptions(const MinerOptions& options,
                                                PlanCache* owned) {
    ExecutorOptions exec = options.executor;
    if (options.cache_plans && exec.plan_cache == nullptr) {
      exec.plan_cache = owned;
    }
    return exec;
  }

  /// Folds this run's plan-cache counter deltas into the mining stats.
  void FinishStats() {
    if (const PlanCache* cache = executor.options().plan_cache) {
      const PlanCache::Stats cache_stats = cache->stats();
      stats.plan_cache_hits = cache_stats.hits - plan_cache_baseline.hits;
      stats.plan_cache_invalidations =
          cache_stats.invalidations - plan_cache_baseline.invalidations;
    }
  }

  PlanCache::Stats plan_cache_baseline;
};

TemplateMiner::TemplateMiner(const Database* db, MinerOptions options)
    : db_(db), options_(std::move(options)) {
  EBA_CHECK(db != nullptr);
}

StatusOr<TemplateMiner::Context> TemplateMiner::MakeContext() const {
  Context ctx(db_, options_);
  EBA_ASSIGN_OR_RETURN(const Table* log_table,
                       db_->GetTable(options_.log_table));
  int lid_col = log_table->schema().ColumnIndex(options_.lid_column);
  if (lid_col < 0) {
    return Status::InvalidArgument("log table has no column '" +
                                   options_.lid_column + "'");
  }
  if (!log_table->schema().HasColumn(options_.start_column) ||
      !log_table->schema().HasColumn(options_.end_column)) {
    return Status::InvalidArgument("log table lacks start/end columns");
  }
  EBA_ASSIGN_OR_RETURN(
      ctx.graph, SchemaGraph::Build(*db_, options_.excluded_tables));
  ctx.rules.start = AttrId{options_.log_table, options_.start_column};
  ctx.rules.end = AttrId{options_.log_table, options_.end_column};
  ctx.rules.max_length = options_.max_length;
  ctx.rules.max_tables = options_.max_tables;
  ctx.lid_attr = QAttr{0, lid_col};
  // The DistinctLids semi-join fast path returns non-NULL integer lids;
  // it is only an exact substitute for CountDistinct when the lid column
  // is integer-like with no NULL cells (always true for the standard log
  // schema). Otherwise every strategy routes through CountDistinct.
  const Column& lid_column = log_table->column(static_cast<size_t>(lid_col));
  ctx.lid_fast_path = lid_column.IsIntLike() && lid_column.NullCount() == 0;
  ctx.log_size = static_cast<int64_t>(log_table->num_rows());
  ctx.threshold =
      options_.support_fraction * static_cast<double>(ctx.log_size);
  ctx.start_time = Clock::now();
  return ctx;
}

StatusOr<int64_t> TemplateMiner::PathSupport(Context* ctx,
                                             const MiningPath& path,
                                             bool is_explanation) const {
  const std::string key = path.CanonicalKey();
  if (options_.cache_support) {
    auto it = ctx->support_cache.find(key);
    if (it != ctx->support_cache.end()) {
      ctx->stats.support_cache_hits++;
      return it->second;
    }
  }

  EBA_ASSIGN_OR_RETURN(PathQuery q, PathToQuery(*db_, ctx->rules, path));

  if (options_.skip_nonselective && !is_explanation) {
    EBA_ASSIGN_OR_RETURN(double est,
                         ctx->estimator.EstimateDistinctLogIds(q, ctx->lid_attr));
    if (est > ctx->threshold * options_.skip_constant_c) {
      ctx->stats.skipped_paths++;
      return -1;  // presumed supported; re-examined next iteration
    }
  }

  int64_t support = 0;
  if (ctx->lid_fast_path &&
      options_.support_strategy == Executor::SupportStrategy::kDedupFrontier) {
    // The semi-join fast path: distinct log ids without ever boxing a row.
    EBA_ASSIGN_OR_RETURN(std::vector<int64_t> lids,
                         ctx->executor.DistinctLids(q, ctx->lid_attr));
    support = static_cast<int64_t>(lids.size());
  } else {
    EBA_ASSIGN_OR_RETURN(support,
                         ctx->executor.CountDistinct(
                             q, ctx->lid_attr, options_.support_strategy));
  }
  ctx->stats.support_queries++;
  if (options_.cache_support) ctx->support_cache.emplace(key, support);
  return support;
}

Status TemplateMiner::RecordExplanation(Context* ctx,
                                        const MiningPath& path) const {
  // Support is evaluated before the duplicate check: equivalent paths found
  // through different traversal orders (e.g. the forward and backward
  // discoveries of the two-way algorithm) then resolve through the support
  // cache instead of re-querying — the §3.2.1 caching optimization.
  const std::string key = path.CanonicalKey();
  EBA_ASSIGN_OR_RETURN(int64_t support, PathSupport(ctx, path, true));
  if (ctx->explanations.count(key)) return Status::OK();
  EBA_CHECK(support >= 0);  // explanations are never skipped
  if (static_cast<double>(support) < ctx->threshold) return Status::OK();

  EBA_ASSIGN_OR_RETURN(PathQuery q, PathToQuery(*db_, ctx->rules, path));
  std::string name =
      AutoName(path, static_cast<int>(ctx->explanations.size()));
  std::string description = AutoDescription(*db_, q);
  MinedTemplate mined{
      ExplanationTemplate(name, std::move(q), ctx->lid_attr, description),
      path, support,
      ctx->log_size > 0
          ? static_cast<double>(support) / static_cast<double>(ctx->log_size)
          : 0.0};
  ctx->explanations.emplace(key, std::move(mined));
  return Status::OK();
}

StatusOr<std::vector<MiningPath>> TemplateMiner::SeedFrontier(
    Context* ctx, bool forward) const {
  std::vector<JoinEdge> seeds = forward ? ctx->graph.EdgesFrom(ctx->rules.start)
                                        : ctx->graph.EdgesTo(ctx->rules.end);
  std::vector<MiningPath> frontier;
  for (const auto& e : seeds) {
    MiningPath path({e});
    ctx->stats.candidates_considered++;
    if (!IsRestrictedSimplePath(*db_, ctx->rules, path, forward)) continue;
    if (IsExplanationPath(*db_, ctx->rules, path)) {
      EBA_RETURN_IF_ERROR(RecordExplanation(ctx, path));
      continue;
    }
    EBA_ASSIGN_OR_RETURN(int64_t support, PathSupport(ctx, path, false));
    if (support < 0 || static_cast<double>(support) >= ctx->threshold) {
      frontier.push_back(std::move(path));
    } else {
      ctx->stats.pruned_paths++;
    }
  }
  return frontier;
}

StatusOr<std::vector<MiningPath>> TemplateMiner::GrowFrontier(
    Context* ctx, const std::vector<MiningPath>& frontier,
    bool forward) const {
  std::vector<MiningPath> next;
  for (const auto& path : frontier) {
    const std::string& open_table =
        forward ? path.LastAttr().table : path.FirstAttr().table;
    for (const auto& edge : ctx->graph.edges()) {
      // Connectivity: the new edge must leave (forward) / enter (backward)
      // the table at the open end of the path.
      if (forward && edge.from.table != open_table) continue;
      if (!forward && edge.to.table != open_table) continue;
      MiningPath candidate =
          forward ? path.Extend(edge) : path.ExtendFront(edge);
      ctx->stats.candidates_considered++;
      if (!IsRestrictedSimplePath(*db_, ctx->rules, candidate, forward)) {
        continue;
      }
      if (IsExplanationPath(*db_, ctx->rules, candidate)) {
        EBA_RETURN_IF_ERROR(RecordExplanation(ctx, candidate));
        continue;  // closed paths have no valid extensions
      }
      EBA_ASSIGN_OR_RETURN(int64_t support,
                           PathSupport(ctx, candidate, false));
      if (support < 0 || static_cast<double>(support) >= ctx->threshold) {
        next.push_back(std::move(candidate));
        if (next.size() > options_.max_frontier_paths) {
          return Status::Internal("mining frontier exceeded safety bound");
        }
      } else {
        ctx->stats.pruned_paths++;
      }
    }
  }
  return next;
}

StatusOr<MiningResult> TemplateMiner::MineOneWay() const {
  EBA_ASSIGN_OR_RETURN(Context ctx, MakeContext());

  EBA_ASSIGN_OR_RETURN(std::vector<MiningPath> frontier,
                       SeedFrontier(&ctx, /*forward=*/true));
  ctx.stats.timings.push_back(LengthTiming{1, SecondsSince(ctx.start_time),
                                           frontier.size(),
                                           ctx.explanations.size()});

  for (int length = 2; length <= options_.max_length; ++length) {
    EBA_ASSIGN_OR_RETURN(frontier,
                         GrowFrontier(&ctx, frontier, /*forward=*/true));
    ctx.stats.timings.push_back(LengthTiming{length,
                                             SecondsSince(ctx.start_time),
                                             frontier.size(),
                                             ctx.explanations.size()});
  }

  MiningResult result;
  result.log_size = ctx.log_size;
  result.support_threshold = ctx.threshold;
  for (auto& [key, mined] : ctx.explanations) {
    result.templates.push_back(std::move(mined));
  }
  ctx.FinishStats();
  result.stats = std::move(ctx.stats);
  return result;
}

StatusOr<MiningResult> TemplateMiner::MineTwoWay() const {
  EBA_ASSIGN_OR_RETURN(Context ctx, MakeContext());

  EBA_ASSIGN_OR_RETURN(std::vector<MiningPath> fwd,
                       SeedFrontier(&ctx, /*forward=*/true));
  EBA_ASSIGN_OR_RETURN(std::vector<MiningPath> bwd,
                       SeedFrontier(&ctx, /*forward=*/false));
  ctx.stats.timings.push_back(LengthTiming{1, SecondsSince(ctx.start_time),
                                           fwd.size() + bwd.size(),
                                           ctx.explanations.size()});

  for (int length = 2; length <= options_.max_length; ++length) {
    EBA_ASSIGN_OR_RETURN(fwd, GrowFrontier(&ctx, fwd, /*forward=*/true));
    EBA_ASSIGN_OR_RETURN(bwd, GrowFrontier(&ctx, bwd, /*forward=*/false));
    ctx.stats.timings.push_back(LengthTiming{length,
                                             SecondsSince(ctx.start_time),
                                             fwd.size() + bwd.size(),
                                             ctx.explanations.size()});
  }

  MiningResult result;
  result.log_size = ctx.log_size;
  result.support_threshold = ctx.threshold;
  for (auto& [key, mined] : ctx.explanations) {
    result.templates.push_back(std::move(mined));
  }
  ctx.FinishStats();
  result.stats = std::move(ctx.stats);
  return result;
}

StatusOr<MiningResult> TemplateMiner::MineBridged(int bridge_length) const {
  if (bridge_length < 2) {
    return Status::InvalidArgument("bridge length must be >= 2");
  }
  EBA_ASSIGN_OR_RETURN(Context ctx, MakeContext());
  const int ell = std::min(bridge_length, options_.max_length);

  // Phase 1: two-way frontier growth to length ell with support pruning.
  std::vector<std::vector<MiningPath>> fwd_by_len(
      static_cast<size_t>(ell) + 1);
  std::vector<std::vector<MiningPath>> bwd_by_len(
      static_cast<size_t>(ell) + 1);
  EBA_ASSIGN_OR_RETURN(fwd_by_len[1], SeedFrontier(&ctx, /*forward=*/true));
  EBA_ASSIGN_OR_RETURN(bwd_by_len[1], SeedFrontier(&ctx, /*forward=*/false));
  ctx.stats.timings.push_back(
      LengthTiming{1, SecondsSince(ctx.start_time),
                   fwd_by_len[1].size() + bwd_by_len[1].size(),
                   ctx.explanations.size()});
  for (int length = 2; length <= ell; ++length) {
    EBA_ASSIGN_OR_RETURN(
        fwd_by_len[static_cast<size_t>(length)],
        GrowFrontier(&ctx, fwd_by_len[static_cast<size_t>(length) - 1],
                     /*forward=*/true));
    EBA_ASSIGN_OR_RETURN(
        bwd_by_len[static_cast<size_t>(length)],
        GrowFrontier(&ctx, bwd_by_len[static_cast<size_t>(length) - 1],
                     /*forward=*/false));
    ctx.stats.timings.push_back(
        LengthTiming{length, SecondsSince(ctx.start_time),
                     fwd_by_len[static_cast<size_t>(length)].size() +
                         bwd_by_len[static_cast<size_t>(length)].size(),
                     ctx.explanations.size()});
  }

  // Phase 2: assemble candidates of length n > ell from the two frontiers.
  auto try_candidate = [&](const MiningPath& candidate) -> Status {
    ctx.stats.candidates_considered++;
    if (!IsExplanationPath(*db_, ctx.rules, candidate)) return Status::OK();
    return RecordExplanation(&ctx, candidate);
  };

  for (int n = ell + 1; n <= options_.max_length; ++n) {
    if (n <= 2 * ell - 1) {
      // Bridge on a shared edge: forward length ell + backward length
      // n - ell + 1, overlapping in one edge (Figure 4).
      const int b = n - ell + 1;
      for (const auto& f : fwd_by_len[static_cast<size_t>(ell)]) {
        for (const auto& bp : bwd_by_len[static_cast<size_t>(b)]) {
          if (!(f.edges().back() == bp.edges().front())) continue;
          std::vector<JoinEdge> edges = f.edges();
          edges.insert(edges.end(), bp.edges().begin() + 1, bp.edges().end());
          EBA_RETURN_IF_ERROR(try_candidate(MiningPath(std::move(edges))));
        }
      }
    } else if (n == 2 * ell) {
      // Direct adjacency: the forward path's last table equals the backward
      // path's first table (implicit intra-tuple-variable hop).
      for (const auto& f : fwd_by_len[static_cast<size_t>(ell)]) {
        for (const auto& bp : bwd_by_len[static_cast<size_t>(ell)]) {
          if (f.LastAttr().table != bp.FirstAttr().table) continue;
          std::vector<JoinEdge> edges = f.edges();
          edges.insert(edges.end(), bp.edges().begin(), bp.edges().end());
          EBA_RETURN_IF_ERROR(try_candidate(MiningPath(std::move(edges))));
        }
      }
    } else {
      // Enumerate free middle edges (no support pruning possible): extend
      // the forward frontier by (n - 2*ell) unpruned hops, then attach the
      // backward frontier by adjacency.
      const int middles = n - 2 * ell;
      std::vector<MiningPath> extended = fwd_by_len[static_cast<size_t>(ell)];
      for (int step = 0; step < middles; ++step) {
        std::vector<MiningPath> grown;
        for (const auto& path : extended) {
          for (const auto& edge : ctx.graph.edges()) {
            if (edge.from.table != path.LastAttr().table) continue;
            MiningPath candidate = path.Extend(edge);
            ctx.stats.candidates_considered++;
            if (IsRestrictedSimplePath(*db_, ctx.rules, candidate, true)) {
              grown.push_back(std::move(candidate));
            }
          }
        }
        extended = std::move(grown);
      }
      for (const auto& f : extended) {
        for (const auto& bp : bwd_by_len[static_cast<size_t>(ell)]) {
          if (f.LastAttr().table != bp.FirstAttr().table) continue;
          std::vector<JoinEdge> edges = f.edges();
          edges.insert(edges.end(), bp.edges().begin(), bp.edges().end());
          EBA_RETURN_IF_ERROR(try_candidate(MiningPath(std::move(edges))));
        }
      }
    }
    ctx.stats.timings.push_back(LengthTiming{n, SecondsSince(ctx.start_time),
                                             0, ctx.explanations.size()});
  }

  MiningResult result;
  result.log_size = ctx.log_size;
  result.support_threshold = ctx.threshold;
  for (auto& [key, mined] : ctx.explanations) {
    result.templates.push_back(std::move(mined));
  }
  ctx.FinishStats();
  result.stats = std::move(ctx.stats);
  return result;
}

}  // namespace eba
