// TemplateCatalog: persistence for explanation templates.
//
// The paper's workflow keeps the administrator in the loop: the miner
// *suggests* templates, the administrator reviews and approves them, and the
// approved set is applied going forward (§3). That requires templates to be
// durable artifacts. The catalog serializes templates to a human-editable
// text format (so review can happen in a code review, ticket, or editor)
// and loads them back:
//
//   # eba template catalog v1
//   TEMPLATE appt_with_doctor
//   FROM Log L, Appointments A
//   WHERE L.Patient = A.Patient AND A.Doctor = L.User
//   DESC [L.Patient] had an appointment with [L.User] on [A.Date]
//   END
//
// Loading validates every template against the database schema.

#ifndef EBA_CORE_CATALOG_H_
#define EBA_CORE_CATALOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/template.h"
#include "storage/database.h"

namespace eba {

class TemplateCatalog {
 public:
  TemplateCatalog() = default;

  /// Adds a template (last write wins on name collision at Save time;
  /// duplicates by name are rejected here).
  Status Add(const ExplanationTemplate& tmpl);

  const std::vector<ExplanationTemplate>& templates() const {
    return templates_;
  }
  size_t size() const { return templates_.size(); }

  /// Template by name, or nullptr.
  const ExplanationTemplate* Find(const std::string& name) const;

  /// Serializes the catalog to the text format above.
  StatusOr<std::string> Serialize(const Database& db) const;

  /// Parses catalog text; every template is validated against `db`.
  static StatusOr<TemplateCatalog> Deserialize(const Database& db,
                                               const std::string& text);

  /// File convenience wrappers.
  Status SaveToFile(const Database& db, const std::string& path) const;
  static StatusOr<TemplateCatalog> LoadFromFile(const Database& db,
                                                const std::string& path);

 private:
  std::vector<ExplanationTemplate> templates_;
};

}  // namespace eba

#endif  // EBA_CORE_CATALOG_H_
