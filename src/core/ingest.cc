#include "core/ingest.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "log/access_log.h"

namespace eba {

StreamingAuditor::StreamingAuditor(Database* db, ExplanationEngine engine)
    : db_(db), engine_(std::move(engine)) {}

StatusOr<StreamingAuditor> StreamingAuditor::Create(
    Database* db, const std::string& log_table) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  EBA_ASSIGN_OR_RETURN(const Table* table, db->GetTable(log_table));
  // Wrap validates the full standard log schema up front (Create of the
  // engine only checks Lid), so ExplainNew's scan cannot fail later.
  EBA_RETURN_IF_ERROR(AccessLog::Wrap(table).status());
  EBA_ASSIGN_OR_RETURN(ExplanationEngine engine,
                       ExplanationEngine::Create(db, log_table));
  StreamingAuditor auditor(db, std::move(engine));
  auditor.SnapshotDatabaseState();
  return auditor;
}

Status StreamingAuditor::AddTemplate(const ExplanationTemplate& tmpl) {
  return engine_.AddTemplate(tmpl);
}

Status StreamingAuditor::AppendAccessBatch(const std::vector<Row>& rows) {
  EBA_ASSIGN_OR_RETURN(Table* table, db_->GetTable(engine_.log_table()));
  table->Reserve(table->num_rows() + rows.size());
  for (const Row& row : rows) {
    EBA_RETURN_IF_ERROR(table->AppendRow(row));
  }
  rows_appended_ += rows.size();
  ++batches_appended_;
  return Status::OK();
}

void StreamingAuditor::ResetAudit() {
  explained_.clear();
  audited_rows_ = 0;
}

bool StreamingAuditor::DriftedSinceLastAudit() const {
  if (db_->catalog_generation() != catalog_generation_) return true;
  for (const auto& [name, state] : table_state_) {
    auto table_or = db_->GetTable(name);
    if (!table_or.ok()) return true;  // unreachable within one generation
    const Table* table = *table_or;
    if (table->structural_epoch() != state.first) return true;
    if (name == engine_.log_table()) continue;  // log appends are the workload
    if (table->append_watermark() != state.second) return true;
  }
  return false;
}

void StreamingAuditor::SnapshotDatabaseState() {
  catalog_generation_ = db_->catalog_generation();
  table_state_.clear();
  for (const std::string& name : db_->TableNames()) {
    const Table* table = db_->GetTable(name).value();
    table_state_[name] = {table->structural_epoch(),
                          table->append_watermark()};
  }
}

StatusOr<StreamingReport> StreamingAuditor::ExplainNew(
    const StreamingOptions& options) {
  EBA_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(engine_.log_table()));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(table));

  StreamingReport report;
  if (DriftedSinceLastAudit()) {
    // A non-append change can newly explain an already-audited access; the
    // incremental invariant is gone, so re-audit everything.
    ResetAudit();
    report.full_reaudit = true;
  }
  const size_t from = audited_rows_;
  const size_t to = table->num_rows();
  report.audited_from = from;
  report.audited_to = to;

  const size_t threads = std::max<size_t>(1, options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);

  ExecutorOptions exec = options.executor;
  if (exec.plan_cache == nullptr && options.use_engine_plan_cache) {
    exec.plan_cache = engine_.plan_cache();
  }
  if (exec.pool == nullptr && pool != nullptr) {
    exec.pool = pool.get();
    if (exec.num_threads <= 1) exec.num_threads = threads;
  }

  if (from == to) {
    // Nothing new; still snapshot (a drift-triggered reset with an empty
    // log suffix must not re-trigger forever).
    report.per_template_counts.assign(engine_.num_templates(), 0);
    SnapshotDatabaseState();
    return report;
  }

  // --- New lids, in row order (sharded scan, shard-ordered merge). ---
  std::vector<ShardRange> shards =
      SplitShards(to - from, threads, options.min_rows_per_shard);
  std::vector<std::vector<int64_t>> shard_lids(shards.size());
  ParallelFor(pool.get(), shards.size(), [&](size_t s) {
    shard_lids[s].reserve(shards[s].end - shards[s].begin);
    for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
      shard_lids[s].push_back(log.Get(from + r).lid);
    }
  });
  std::vector<int64_t> new_lids;
  new_lids.reserve(to - from);
  std::unordered_set<int64_t> seen;
  seen.reserve(2 * (to - from));
  for (const auto& lids : shard_lids) {
    for (int64_t lid : lids) {
      if (seen.insert(lid).second) new_lids.push_back(lid);
    }
  }
  std::vector<Value> lid_values;
  lid_values.reserve(new_lids.size());
  for (int64_t lid : new_lids) lid_values.push_back(Value::Int64(lid));

  // --- Evaluate every template restricted to the new lids. ---
  const auto& templates = engine_.templates();
  std::vector<StatusOr<std::vector<int64_t>>> per_template(
      templates.size(),
      StatusOr<std::vector<int64_t>>(Status::Internal("not evaluated")));
  ParallelFor(pool.get(), templates.size(), [&](size_t i) {
    Executor executor(db_, exec);
    per_template[i] = executor.DistinctLidsFor(
        templates[i].query(), templates[i].lid_attr(), lid_values);
  });

  std::unordered_set<int64_t> newly_explained;
  for (auto& lids_or : per_template) {
    if (!lids_or.ok()) return lids_or.status();
    report.per_template_counts.push_back(lids_or->size());
    newly_explained.insert(lids_or->begin(), lids_or->end());
  }

  for (int64_t lid : new_lids) {
    if (newly_explained.count(lid)) {
      report.explained_lids.push_back(lid);
    } else {
      report.unexplained_lids.push_back(lid);
    }
  }
  std::sort(report.explained_lids.begin(), report.explained_lids.end());
  std::sort(report.unexplained_lids.begin(), report.unexplained_lids.end());

  explained_.insert(report.explained_lids.begin(),
                    report.explained_lids.end());
  audited_rows_ = to;
  SnapshotDatabaseState();
  return report;
}

}  // namespace eba
