#include "core/ingest.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "log/access_log.h"
#include "storage/chunk.h"

namespace eba {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

StreamingAuditor::StreamingAuditor(Database* db, ExplanationEngine engine)
    : db_(db),
      engine_(std::move(engine)),
      audit_mu_(std::make_unique<Mutex>()),
      writer_mu_(std::make_unique<Mutex>()),
      snapshot_(db->CreateSnapshot()) {
  // The stored baseline is for drift comparison only; holding its pin
  // would block tail reclamation between audits.
  snapshot_.ReleasePin();
}

StatusOr<StreamingAuditor> StreamingAuditor::Create(
    Database* db, const std::string& log_table) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  EBA_ASSIGN_OR_RETURN(const Table* table, db->GetTable(log_table));
  // Wrap validates the full standard log schema up front (Create of the
  // engine only checks Lid), so ExplainNew's scan cannot fail later.
  EBA_RETURN_IF_ERROR(AccessLog::Wrap(table).status());
  EBA_ASSIGN_OR_RETURN(ExplanationEngine engine,
                       ExplanationEngine::Create(db, log_table));
  return StreamingAuditor(db, std::move(engine));
}

Status StreamingAuditor::AddTemplate(const ExplanationTemplate& tmpl) {
  return engine_.AddTemplate(tmpl);
}

namespace {

/// Row-atomic append shared by the log and foreign paths: on a validation
/// error, rows before the offender are already appended.
Status AppendToTable(Table* table, const std::vector<Row>& rows) {
  table->Reserve(table->num_rows() + rows.size());
  for (const Row& row : rows) {
    EBA_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return Status::OK();
}

}  // namespace

Status StreamingAuditor::AppendTableLocked(const std::string& table_name,
                                           Table* table,
                                           const std::vector<Row>& rows) {
  if (durable_ == nullptr) return AppendToTable(table, rows);
  // Durable appends are batch-atomic: validate everything up front so the
  // WAL never commits a row the apply step could reject, then write-ahead,
  // then apply (which cannot fail post-validation).
  for (const Row& row : rows) {
    EBA_RETURN_IF_ERROR(table->ValidateRow(row));
  }
  EBA_RETURN_IF_ERROR(durable_->wal->AppendRecord(
      kWalAppendBatch, EncodeAppendPayload(table_name, rows)));
  EBA_RETURN_IF_ERROR(durable_->wal->Commit());
  table->Reserve(table->num_rows() + rows.size());
  for (const Row& row : rows) {
    table->AppendValidatedRow(row);  // pre-validated above
  }
  return Status::OK();
}

Status StreamingAuditor::AppendAccessBatch(const std::vector<Row>& rows) {
  MutexLock lock(*writer_mu_);
  return AppendAccessBatchLocked(rows);
}

Status StreamingAuditor::AppendAccessBatchLocked(const std::vector<Row>& rows) {
  EBA_ASSIGN_OR_RETURN(Table* table, db_->GetTable(engine_.log_table()));
  EBA_RETURN_IF_ERROR(AppendTableLocked(engine_.log_table(), table, rows));
  rows_appended_.Add(rows.size());
  batches_appended_.Increment();
  return Status::OK();
}

Status StreamingAuditor::AppendRows(const std::string& table_name,
                                    const std::vector<Row>& rows) {
  MutexLock lock(*writer_mu_);
  if (table_name == engine_.log_table()) return AppendAccessBatchLocked(rows);
  EBA_ASSIGN_OR_RETURN(Table* table, db_->GetTable(table_name));
  EBA_RETURN_IF_ERROR(AppendTableLocked(table_name, table, rows));
  foreign_rows_appended_.Add(rows.size());
  return Status::OK();
}

void StreamingAuditor::ResetAudit() {
  MutexLock lock(*audit_mu_);
  ResetAuditLocked();
}

void StreamingAuditor::ResetAuditLocked() {
  explained_.clear();
  audited_rows_ = 0;
}

Status StreamingAuditor::EnableDurability(const DurabilityOptions& options) {
  MutexLock audit_lock(*audit_mu_);
  MutexLock writer_lock(*writer_mu_);
  if (durable_ != nullptr) {
    return Status::FailedPrecondition("durability already enabled");
  }
  auto d = std::make_unique<DurableState>();
  d->options = options;
  d->env = options.env != nullptr ? options.env : RealEnv();
  d->store = std::make_unique<CheckpointStore>(d->env, options.dir);
  EBA_RETURN_IF_ERROR(d->store->Init());
  durable_ = std::move(d);
  // Seed the store with a full image of the current database + audit state;
  // this also opens the first WAL.
  Status s = CheckpointLocked(/*full=*/true);
  if (!s.ok()) durable_.reset();  // don't leave a half-enabled layer behind
  return s;
}

Status StreamingAuditor::Checkpoint(bool full) {
  MutexLock audit_lock(*audit_mu_);
  MutexLock writer_lock(*writer_mu_);
  return CheckpointLocked(full);
}

Status StreamingAuditor::CheckpointLocked(bool full) {
  if (durable_ == nullptr) {
    return Status::FailedPrecondition("durability not enabled");
  }
  DurableState& d = *durable_;
  if (!full) {
    const uint32_t interval = d.options.full_checkpoint_interval;
    if (interval > 0 && d.checkpoints_since_full + 1 >= interval) full = true;
    // Structural/catalog drift invalidates the base image's rows-only
    // delta; segments would silently resurrect overwritten cells.
    if (d.wal != nullptr && db_->CreateSnapshot()
                                .DriftSince(d.last_ckpt_snapshot)
                                .RequiresRebuild()) {
      full = true;
    }
  }

  AuditState audit;
  audit.audited_rows = audited_rows_;
  audit.explained_lids.assign(explained_.begin(), explained_.end());
  std::sort(audit.explained_lids.begin(), audit.explained_lids.end());
  // Watermarks as of the last completed audit (snapshot_), NOT current row
  // counts: rows appended since the last audit must re-surface as drift
  // after recovery or the delta pass would silently skip them.
  for (const auto& tv : snapshot_.tables()) {
    audit.audit_watermarks[tv.name] = tv.watermark;
  }

  // Floor the sequence at the live WAL's successor: after a recovery the
  // open WAL (seq = highest replayed + 1) can outrank CURRENT, and reusing
  // any sequence <= it would pair this checkpoint with an existing log file
  // whose stale records the next recovery would replay on top of the image.
  EBA_ASSIGN_OR_RETURN(
      const uint64_t seq,
      d.store->Prepare(*db_, audit, full, /*min_seq=*/d.wal_seq + 1));
  // The paired WAL must exist before the checkpoint becomes CURRENT:
  // recovery replays wal-<seq> and may legitimately find it empty, but not
  // missing work that only lived in the previous WAL after GC.
  EBA_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(d.env, d.store->WalPath(seq), d.options.sync));
  EBA_RETURN_IF_ERROR(d.store->Publish(seq));
  if (d.wal != nullptr) EBA_RETURN_IF_ERROR(d.wal->Close());
  d.wal = std::move(wal);
  d.wal_seq = seq;
  d.checkpoints_since_full = full ? 0 : d.checkpoints_since_full + 1;
  d.last_ckpt_snapshot = db_->CreateSnapshot();
  d.last_ckpt_snapshot.ReleasePin();  // drift baseline only
  return Status::OK();
}

Status StreamingAuditor::AdoptRecoveredState(const CheckpointContents& ckpt,
                                             Env* env,
                                             const DurabilityOptions& options,
                                             uint64_t new_wal_seq) {
  MutexLock audit_lock(*audit_mu_);
  MutexLock writer_lock(*writer_mu_);
  explained_.reserve(ckpt.audit.explained_lids.size());
  explained_.insert(ckpt.audit.explained_lids.begin(),
                    ckpt.audit.explained_lids.end());
  audited_rows_ = static_cast<size_t>(ckpt.audit.audited_rows);
  // Current generation/epochs (the recovered tables are this auditor's
  // reality now) but the *checkpointed* audit watermarks, so appends that
  // happened after the last audit — checkpointed rows and replayed WAL rows
  // alike — classify as drift for the converging ExplainNew.
  Database::Snapshot snap = db_->CreateSnapshot();
  snap.ReleasePin();  // drift baseline only
  for (const auto& tv : snap.tables()) {
    const auto it = ckpt.audit.audit_watermarks.find(tv.name);
    snap.SetWatermark(
        tv.name,
        it != ckpt.audit.audit_watermarks.end() ? it->second : 0);
  }
  snapshot_ = std::move(snap);

  auto d = std::make_unique<DurableState>();
  d->options = options;
  d->env = env;
  d->store = std::make_unique<CheckpointStore>(env, options.dir);
  EBA_ASSIGN_OR_RETURN(
      d->wal, WalWriter::Open(env, d->store->WalPath(new_wal_seq),
                              options.sync));
  d->wal_seq = new_wal_seq;
  // chain_length counts the full root plus each incremental link.
  d->checkpoints_since_full =
      static_cast<uint32_t>(ckpt.chain_length > 0 ? ckpt.chain_length - 1 : 0);
  d->last_ckpt_snapshot = db_->CreateSnapshot();
  d->last_ckpt_snapshot.ReleasePin();
  durable_ = std::move(d);
  return Status::OK();
}

StatusOr<StreamingAuditor> StreamingAuditor::RecoverFrom(
    Database* db, const std::string& log_table,
    const DurabilityOptions& options, RecoveryStats* stats) {
  RecoveryStats local_stats;
  RecoveryStats& out = stats != nullptr ? *stats : local_stats;
  out = RecoveryStats{};
  Env* env = options.env != nullptr ? options.env : RealEnv();

  CheckpointStore store(env, options.dir);
  {
    StatusOr<uint64_t> current = store.CurrentSeq();
    if (!current.ok()) {
      if (!current.status().IsNotFound()) return current.status();
      // Nothing durable yet: a fresh start over the caller's database.
      EBA_ASSIGN_OR_RETURN(StreamingAuditor auditor, Create(db, log_table));
      EBA_RETURN_IF_ERROR(auditor.EnableDurability(options));
      return auditor;
    }
  }

  const auto ckpt_start = std::chrono::steady_clock::now();
  EBA_ASSIGN_OR_RETURN(CheckpointContents ckpt, store.LoadNewest());
  out.recovered = true;
  out.checkpoint_seq = ckpt.seq;
  out.checkpoint_load_seconds = SecondsSince(ckpt_start);
  out.db_load_seconds = ckpt.db_load_seconds;
  *db = std::move(ckpt.db);

  // Replay the WAL suffix (every log with seq >= the checkpoint's WALSEQ,
  // in sequence order). A torn/corrupt tail is legal only in the final log
  // — it is truncated away, never applied; damage mid-chain means a record
  // that was once durably committed is gone, which recovery must not paper
  // over.
  const auto replay_start = std::chrono::steady_clock::now();
  EBA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       env->ListDir(options.dir));
  std::vector<std::pair<uint64_t, std::string>> wals;
  for (const std::string& name : names) {
    if (!StartsWith(name, "wal-") || !EndsWith(name, ".log")) continue;
    errno = 0;
    char* end = nullptr;
    const unsigned long long seq =
        std::strtoull(name.c_str() + 4, &end, 10);
    if (end == name.c_str() + 4 || std::string(end) != ".log" ||
        errno == ERANGE) {
      continue;
    }
    if (seq >= ckpt.wal_seq) wals.emplace_back(seq, name);
  }
  std::sort(wals.begin(), wals.end());

  // The suffix must be an unbroken chain starting at the checkpoint's
  // WALSEQ: wal-<WALSEQ> is created before its checkpoint becomes CURRENT
  // and GC never removes it, so a hole means a log whose records were once
  // durably committed is gone — recovery must fail, not paper over it.
  if (wals.empty() || wals[0].first != ckpt.wal_seq) {
    return Status::Internal(
        "WAL chain broken: wal-" + std::to_string(ckpt.wal_seq) +
        ".log (the checkpoint's WALSEQ) is missing from " + options.dir);
  }
  for (size_t i = 1; i < wals.size(); ++i) {
    if (wals[i].first != wals[0].first + i) {
      return Status::Internal(
          "WAL chain broken: wal-" + std::to_string(wals[i - 1].first + 1) +
          ".log is missing from " + options.dir + " (found wal-" +
          std::to_string(wals[i].first) + ".log after wal-" +
          std::to_string(wals[i - 1].first) + ".log)");
    }
  }

  // Seed from the checkpoint's WALSEQ watermark, not its own sequence
  // number: the fresh WAL below must land at or above WALSEQ or the
  // `seq >= ckpt.wal_seq` filter would skip it on the next recovery.
  uint64_t max_wal_seq = ckpt.wal_seq;
  for (size_t i = 0; i < wals.size(); ++i) {
    max_wal_seq = std::max(max_wal_seq, wals[i].first);
    const std::string path = options.dir + "/" + wals[i].second;
    EBA_ASSIGN_OR_RETURN(WalReadResult wal, ReadWalFile(env, path));
    if (wal.dropped_bytes > 0) {
      if (i + 1 < wals.size()) {
        return Status::Internal("corrupt WAL record mid-chain in " + path);
      }
      EBA_RETURN_IF_ERROR(env->TruncateFile(path, wal.valid_bytes));
      out.wal_bytes_truncated += wal.dropped_bytes;
    }
    ++out.wal_files_replayed;
    for (const WalRecord& record : wal.records) {
      if (record.type != kWalAppendBatch) {
        return Status::Internal("unknown WAL record type " +
                                std::to_string(record.type) + " in " + path);
      }
      EBA_ASSIGN_OR_RETURN(WalAppendBatch batch,
                           DecodeAppendPayload(record.payload));
      EBA_ASSIGN_OR_RETURN(Table * table, db->GetTable(batch.table_name));
      // Mirror the logging path's validate-once discipline: the batch was
      // validated before it was WAL-committed, so decode-time validation
      // here is the one explicit re-check — a failure means the schema no
      // longer matches a record that passed its CRC, which is damage, not a
      // bad client row.
      for (const Row& row : batch.rows) {
        const Status valid = table->ValidateRow(row);
        if (!valid.ok()) {
          return Status::Internal("WAL record in " + path +
                                  " no longer validates against table " +
                                  batch.table_name + ": " + valid.message());
        }
      }
      table->Reserve(table->num_rows() + batch.rows.size());
      for (const Row& row : batch.rows) {
        table->AppendValidatedRow(row);  // pre-validated above
      }
      ++out.wal_records_replayed;
      out.wal_rows_replayed += batch.rows.size();
    }
  }
  out.wal_replay_seconds = SecondsSince(replay_start);

  EBA_ASSIGN_OR_RETURN(StreamingAuditor auditor, Create(db, log_table));
  EBA_RETURN_IF_ERROR(
      auditor.AdoptRecoveredState(ckpt, env, options, max_wal_seq + 1));
  return auditor;
}

StatusOr<StreamingReport> StreamingAuditor::ExplainNew(
    const StreamingOptions& options) {
  // The audit lock serializes audits and state accessors only — appends
  // proceed concurrently on writer_mu_. The whole audit evaluates against
  // one snapshot pinned here: every scan, probe, and executor below is
  // clamped to its watermarks, so rows the writer lands mid-audit are
  // invisible now and re-surface as drift on the next call.
  MutexLock lock(*audit_mu_);
  EBA_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(engine_.log_table()));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(table));

  const Database::Snapshot snapshot = db_->CreateSnapshot();
  StreamingReport report;
  const CatalogDrift drift = snapshot.DriftSince(snapshot_);
  if (drift.RequiresRebuild()) {
    // A structural mutation or catalog change can rewrite or remove the
    // evidence behind an already-granted explanation; the monotone-append
    // invariant is gone, so re-audit everything.
    ResetAuditLocked();
    report.full_reaudit = true;
  }
  const size_t from = audited_rows_;
  const size_t to = snapshot.BoundOf(table);
  report.audited_from = from;
  report.audited_to = to;

  const size_t threads = std::max<size_t>(1, options.num_threads);
  // Reuse the auditor's pool across audits (the serving loop calls
  // ExplainNew per batch; re-spawning threads - 1 workers each time would
  // rival the audit itself on small batches). Resized only when the
  // requested width changes; the calling thread participates in every
  // ParallelFor, so the pool holds threads - 1 workers.
  if (threads <= 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->num_threads() != threads - 1) {
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  ThreadPool* pool = pool_.get();

  ExecutorOptions exec = options.executor;
  if (exec.plan_cache == nullptr && options.use_engine_plan_cache) {
    exec.plan_cache = engine_.plan_cache();
  }
  if (exec.pool == nullptr && pool != nullptr) {
    exec.pool = pool;
    if (exec.num_threads <= 1) exec.num_threads = threads;
  }

  const auto& templates = engine_.templates();
  report.per_template_counts.assign(templates.size(), 0);
  report.per_template_delta_counts.assign(templates.size(), 0);

  // --- New lids, in row order (sharded scan, shard-ordered merge). ---
  // Shards hold absolute row ids aligned to column-chunk boundaries (the
  // append watermark `from` is rarely chunk-aligned; the first shard
  // absorbs the unaligned head).
  std::vector<ShardRange> shards = SplitShardsAlignedRange(
      from, to, threads, options.min_rows_per_shard, kColumnChunkRows);
  std::vector<std::vector<int64_t>> shard_lids(shards.size());
  ParallelFor(pool, shards.size(), [&](size_t s) {
    shard_lids[s].reserve(shards[s].end - shards[s].begin);
    for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
      shard_lids[s].push_back(log.Get(r).lid);
    }
  });
  std::vector<int64_t> new_lids;
  new_lids.reserve(to - from);
  std::unordered_set<int64_t> new_lid_set;
  new_lid_set.reserve(2 * (to - from));
  for (const auto& lids : shard_lids) {
    for (int64_t lid : lids) {
      if (new_lid_set.insert(lid).second) new_lids.push_back(lid);
    }
  }

  // --- Reverse semi-join delta pass: every appended table (non-log tables
  // --- in full; the log at self-join positions only — its variable-0 rows
  // --- are the new-lid pass below). Candidates are the lids the appended
  // --- rows can newly explain; cost scales with each delta. Skipped when
  // --- nothing was audited yet (the new-lid pass covers every row).
  std::vector<std::vector<int64_t>> per_template_delta(templates.size());
  if (from > 0) {
    // Flatten every (appended table, affected template) pair into one task
    // list so one ParallelFor wave covers mixed-table append batches.
    // Templates that never reference an appended table cannot change and
    // are skipped without touching the executor.
    struct DeltaTask {
      size_t template_index;
      const CatalogDrift::Append* appended;
      bool is_log;
    };
    std::vector<DeltaTask> tasks;
    for (const CatalogDrift::Append& appended : drift.appends) {
      const bool is_log = appended.table == engine_.log_table();
      if (!is_log) ++report.delta_tables;
      for (size_t i = 0; i < templates.size(); ++i) {
        const auto& vars = templates[i].query().vars;
        for (size_t v = is_log ? 1 : 0; v < vars.size(); ++v) {
          if (vars[v].table == appended.table) {
            tasks.push_back(DeltaTask{i, &appended, is_log});
            break;
          }
        }
      }
    }
    report.delta_queries = tasks.size();

    std::vector<StatusOr<std::vector<int64_t>>> results(
        tasks.size(),
        StatusOr<std::vector<int64_t>>(Status::Internal("not evaluated")));
    ParallelFor(pool, tasks.size(), [&](size_t k) {
      const DeltaTask& task = tasks[k];
      Executor executor(snapshot, exec);
      Executor::JoinedToOptions jopts;
      jopts.include_var0 = !task.is_log;
      results[k] = executor.DistinctLidsJoinedTo(
          templates[task.template_index].query(),
          templates[task.template_index].lid_attr(), task.appended->table,
          RowRange{static_cast<size_t>(task.appended->from_watermark),
                   static_cast<size_t>(task.appended->to_watermark)},
          jopts);
    });
    for (size_t k = 0; k < tasks.size(); ++k) {
      if (!results[k].ok()) return results[k].status();
      std::vector<int64_t>& sink = per_template_delta[tasks[k].template_index];
      sink.insert(sink.end(), results[k]->begin(), results[k]->end());
    }
  }

  // --- Evaluate every template restricted to the new lids, sharded by lid
  // --- range. A template count with only templates.size() tasks leaves the
  // --- pool idle whenever one template dominates (or there are fewer
  // --- templates than threads); fanning each template out over contiguous
  // --- lid ranges gives the pool templates x shards tasks. The ranges
  // --- partition the (distinct) new lids, so per-shard results are
  // --- disjoint: per-template counts are the sum of shard result sizes and
  // --- the explained set is their union — byte-identical to the unsharded
  // --- evaluation at any thread count.
  std::unordered_set<int64_t> newly_explained;
  if (!new_lids.empty()) {
    std::vector<Value> lid_values;
    lid_values.reserve(new_lids.size());
    for (int64_t lid : new_lids) lid_values.push_back(Value::Int64(lid));
    const std::vector<ShardRange> lid_shards = SplitShards(
        lid_values.size(), threads, options.min_rows_per_shard);
    const size_t num_shards = std::max<size_t>(1, lid_shards.size());
    std::vector<StatusOr<std::vector<int64_t>>> results(
        templates.size() * num_shards,
        StatusOr<std::vector<int64_t>>(Status::Internal("not evaluated")));
    ParallelFor(pool, results.size(), [&](size_t k) {
      const size_t i = k / num_shards;
      const size_t s = k % num_shards;
      const size_t begin = lid_shards.empty() ? 0 : lid_shards[s].begin;
      const size_t end = lid_shards.empty() ? lid_values.size()
                                            : lid_shards[s].end;
      const std::vector<Value> shard_values(
          lid_values.begin() + static_cast<long>(begin),
          lid_values.begin() + static_cast<long>(end));
      Executor executor(snapshot, exec);
      results[k] = executor.DistinctLidsFor(
          templates[i].query(), templates[i].lid_attr(), shard_values);
    });
    for (size_t i = 0; i < templates.size(); ++i) {
      size_t count = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        StatusOr<std::vector<int64_t>>& result = results[i * num_shards + s];
        if (!result.ok()) return result.status();
        count += result->size();
        newly_explained.insert(result->begin(), result->end());
      }
      report.per_template_counts[i] = count;
    }
  }

  for (int64_t lid : new_lids) {
    if (newly_explained.count(lid)) {
      report.explained_lids.push_back(lid);
    } else {
      report.unexplained_lids.push_back(lid);
    }
  }
  std::sort(report.explained_lids.begin(), report.explained_lids.end());
  std::sort(report.unexplained_lids.begin(), report.unexplained_lids.end());

  // Fold the delta candidates in: only lids that were audited before and
  // unexplained until now count (already-explained lids must not be
  // double-counted, and new-suffix lids belong to the new-lid pass above).
  std::unordered_set<int64_t> delta_set;
  for (size_t i = 0; i < templates.size(); ++i) {
    // One template can surface the same lid from several appended tables.
    std::sort(per_template_delta[i].begin(), per_template_delta[i].end());
    per_template_delta[i].erase(
        std::unique(per_template_delta[i].begin(), per_template_delta[i].end()),
        per_template_delta[i].end());
    size_t count = 0;
    for (int64_t lid : per_template_delta[i]) {
      if (explained_.count(lid) > 0 || new_lid_set.count(lid) > 0) continue;
      ++count;
      delta_set.insert(lid);
    }
    report.per_template_delta_counts[i] = count;
  }
  report.delta_explained_lids.assign(delta_set.begin(), delta_set.end());
  std::sort(report.delta_explained_lids.begin(),
            report.delta_explained_lids.end());

  explained_.insert(report.explained_lids.begin(),
                    report.explained_lids.end());
  explained_.insert(report.delta_explained_lids.begin(),
                    report.delta_explained_lids.end());
  audited_rows_ = to;
  // The next audit's drift baseline is what THIS audit actually saw — the
  // pinned snapshot, not live state. Rows appended while this audit ran sit
  // past these watermarks and will classify as drift next time.
  snapshot_ = snapshot;
  snapshot_.ReleasePin();
  {
    // Auto-checkpoint once enough WAL has accumulated: audit end is the
    // cheapest moment (the audit state is freshly consistent, and recovery
    // from here needs no converging re-audit of these rows). Checkpointing
    // needs the writer lock (stable WAL/image cut); audit_mu_ -> writer_mu_
    // is the auditor's fixed lock order.
    MutexLock writer_lock(*writer_mu_);
    if (durable_ != nullptr && durable_->wal != nullptr &&
        durable_->options.checkpoint_after_wal_bytes > 0 &&
        durable_->wal->bytes_logged() >=
            durable_->options.checkpoint_after_wal_bytes) {
      EBA_RETURN_IF_ERROR(CheckpointLocked(/*full=*/false));
    }
  }
  if (exec.plan_cache != nullptr) {
    const PlanCache::Stats cache_stats = exec.plan_cache->stats();
    report.plan_cache_hits = cache_stats.hits;
    report.plan_cache_misses = cache_stats.misses;
    report.plan_rebinds = cache_stats.rebinds;
  }
  return report;
}

}  // namespace eba
