#include "core/ingest.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "log/access_log.h"

namespace eba {

StreamingAuditor::StreamingAuditor(Database* db, ExplanationEngine engine)
    : db_(db),
      engine_(std::move(engine)),
      mu_(std::make_unique<Mutex>()),
      snapshot_(db->Snapshot()) {}

StatusOr<StreamingAuditor> StreamingAuditor::Create(
    Database* db, const std::string& log_table) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  EBA_ASSIGN_OR_RETURN(const Table* table, db->GetTable(log_table));
  // Wrap validates the full standard log schema up front (Create of the
  // engine only checks Lid), so ExplainNew's scan cannot fail later.
  EBA_RETURN_IF_ERROR(AccessLog::Wrap(table).status());
  EBA_ASSIGN_OR_RETURN(ExplanationEngine engine,
                       ExplanationEngine::Create(db, log_table));
  return StreamingAuditor(db, std::move(engine));
}

Status StreamingAuditor::AddTemplate(const ExplanationTemplate& tmpl) {
  return engine_.AddTemplate(tmpl);
}

namespace {

/// Row-atomic append shared by the log and foreign paths: on a validation
/// error, rows before the offender are already appended.
Status AppendToTable(Table* table, const std::vector<Row>& rows) {
  table->Reserve(table->num_rows() + rows.size());
  for (const Row& row : rows) {
    EBA_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return Status::OK();
}

}  // namespace

Status StreamingAuditor::AppendAccessBatch(const std::vector<Row>& rows) {
  MutexLock lock(*mu_);
  return AppendAccessBatchLocked(rows);
}

Status StreamingAuditor::AppendAccessBatchLocked(const std::vector<Row>& rows) {
  EBA_ASSIGN_OR_RETURN(Table* table, db_->GetTable(engine_.log_table()));
  EBA_RETURN_IF_ERROR(AppendToTable(table, rows));
  rows_appended_.Add(rows.size());
  batches_appended_.Increment();
  return Status::OK();
}

Status StreamingAuditor::AppendRows(const std::string& table_name,
                                    const std::vector<Row>& rows) {
  MutexLock lock(*mu_);
  if (table_name == engine_.log_table()) return AppendAccessBatchLocked(rows);
  EBA_ASSIGN_OR_RETURN(Table* table, db_->GetTable(table_name));
  EBA_RETURN_IF_ERROR(AppendToTable(table, rows));
  foreign_rows_appended_.Add(rows.size());
  return Status::OK();
}

void StreamingAuditor::ResetAudit() {
  MutexLock lock(*mu_);
  ResetAuditLocked();
}

void StreamingAuditor::ResetAuditLocked() {
  explained_.clear();
  audited_rows_ = 0;
}

StatusOr<StreamingReport> StreamingAuditor::ExplainNew(
    const StreamingOptions& options) {
  // One coarse lock across the whole audit: serializes against appends and
  // state accessors (the internal ParallelFor workers below only touch
  // per-task slots, never the guarded members).
  MutexLock lock(*mu_);
  EBA_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(engine_.log_table()));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(table));

  StreamingReport report;
  const CatalogDrift drift = db_->DriftSince(snapshot_);
  if (drift.RequiresRebuild()) {
    // A structural mutation or catalog change can rewrite or remove the
    // evidence behind an already-granted explanation; the monotone-append
    // invariant is gone, so re-audit everything.
    ResetAuditLocked();
    report.full_reaudit = true;
  }
  const size_t from = audited_rows_;
  const size_t to = table->num_rows();
  report.audited_from = from;
  report.audited_to = to;

  const size_t threads = std::max<size_t>(1, options.num_threads);
  // Reuse the auditor's pool across audits (the serving loop calls
  // ExplainNew per batch; re-spawning threads - 1 workers each time would
  // rival the audit itself on small batches). Resized only when the
  // requested width changes; the calling thread participates in every
  // ParallelFor, so the pool holds threads - 1 workers.
  if (threads <= 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->num_threads() != threads - 1) {
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  ThreadPool* pool = pool_.get();

  ExecutorOptions exec = options.executor;
  if (exec.plan_cache == nullptr && options.use_engine_plan_cache) {
    exec.plan_cache = engine_.plan_cache();
  }
  if (exec.pool == nullptr && pool != nullptr) {
    exec.pool = pool;
    if (exec.num_threads <= 1) exec.num_threads = threads;
  }

  const auto& templates = engine_.templates();
  report.per_template_counts.assign(templates.size(), 0);
  report.per_template_delta_counts.assign(templates.size(), 0);

  // --- New lids, in row order (sharded scan, shard-ordered merge). ---
  std::vector<ShardRange> shards =
      SplitShards(to - from, threads, options.min_rows_per_shard);
  std::vector<std::vector<int64_t>> shard_lids(shards.size());
  ParallelFor(pool, shards.size(), [&](size_t s) {
    shard_lids[s].reserve(shards[s].end - shards[s].begin);
    for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
      shard_lids[s].push_back(log.Get(from + r).lid);
    }
  });
  std::vector<int64_t> new_lids;
  new_lids.reserve(to - from);
  std::unordered_set<int64_t> new_lid_set;
  new_lid_set.reserve(2 * (to - from));
  for (const auto& lids : shard_lids) {
    for (int64_t lid : lids) {
      if (new_lid_set.insert(lid).second) new_lids.push_back(lid);
    }
  }

  // --- Reverse semi-join delta pass: every appended table (non-log tables
  // --- in full; the log at self-join positions only — its variable-0 rows
  // --- are the new-lid pass below). Candidates are the lids the appended
  // --- rows can newly explain; cost scales with each delta. Skipped when
  // --- nothing was audited yet (the new-lid pass covers every row).
  std::vector<std::vector<int64_t>> per_template_delta(templates.size());
  if (from > 0) {
    // Flatten every (appended table, affected template) pair into one task
    // list so one ParallelFor wave covers mixed-table append batches.
    // Templates that never reference an appended table cannot change and
    // are skipped without touching the executor.
    struct DeltaTask {
      size_t template_index;
      const CatalogDrift::Append* appended;
      bool is_log;
    };
    std::vector<DeltaTask> tasks;
    for (const CatalogDrift::Append& appended : drift.appends) {
      const bool is_log = appended.table == engine_.log_table();
      if (!is_log) ++report.delta_tables;
      for (size_t i = 0; i < templates.size(); ++i) {
        const auto& vars = templates[i].query().vars;
        for (size_t v = is_log ? 1 : 0; v < vars.size(); ++v) {
          if (vars[v].table == appended.table) {
            tasks.push_back(DeltaTask{i, &appended, is_log});
            break;
          }
        }
      }
    }
    report.delta_queries = tasks.size();

    std::vector<StatusOr<std::vector<int64_t>>> results(
        tasks.size(),
        StatusOr<std::vector<int64_t>>(Status::Internal("not evaluated")));
    ParallelFor(pool, tasks.size(), [&](size_t k) {
      const DeltaTask& task = tasks[k];
      Executor executor(db_, exec);
      Executor::JoinedToOptions jopts;
      jopts.include_var0 = !task.is_log;
      results[k] = executor.DistinctLidsJoinedTo(
          templates[task.template_index].query(),
          templates[task.template_index].lid_attr(), task.appended->table,
          RowRange{static_cast<size_t>(task.appended->from_watermark),
                   static_cast<size_t>(task.appended->to_watermark)},
          jopts);
    });
    for (size_t k = 0; k < tasks.size(); ++k) {
      if (!results[k].ok()) return results[k].status();
      std::vector<int64_t>& sink = per_template_delta[tasks[k].template_index];
      sink.insert(sink.end(), results[k]->begin(), results[k]->end());
    }
  }

  // --- Evaluate every template restricted to the new lids. ---
  std::unordered_set<int64_t> newly_explained;
  if (!new_lids.empty()) {
    std::vector<Value> lid_values;
    lid_values.reserve(new_lids.size());
    for (int64_t lid : new_lids) lid_values.push_back(Value::Int64(lid));
    std::vector<StatusOr<std::vector<int64_t>>> per_template(
        templates.size(),
        StatusOr<std::vector<int64_t>>(Status::Internal("not evaluated")));
    ParallelFor(pool, templates.size(), [&](size_t i) {
      Executor executor(db_, exec);
      per_template[i] = executor.DistinctLidsFor(
          templates[i].query(), templates[i].lid_attr(), lid_values);
    });
    for (size_t i = 0; i < templates.size(); ++i) {
      if (!per_template[i].ok()) return per_template[i].status();
      report.per_template_counts[i] = per_template[i]->size();
      newly_explained.insert(per_template[i]->begin(), per_template[i]->end());
    }
  }

  for (int64_t lid : new_lids) {
    if (newly_explained.count(lid)) {
      report.explained_lids.push_back(lid);
    } else {
      report.unexplained_lids.push_back(lid);
    }
  }
  std::sort(report.explained_lids.begin(), report.explained_lids.end());
  std::sort(report.unexplained_lids.begin(), report.unexplained_lids.end());

  // Fold the delta candidates in: only lids that were audited before and
  // unexplained until now count (already-explained lids must not be
  // double-counted, and new-suffix lids belong to the new-lid pass above).
  std::unordered_set<int64_t> delta_set;
  for (size_t i = 0; i < templates.size(); ++i) {
    // One template can surface the same lid from several appended tables.
    std::sort(per_template_delta[i].begin(), per_template_delta[i].end());
    per_template_delta[i].erase(
        std::unique(per_template_delta[i].begin(), per_template_delta[i].end()),
        per_template_delta[i].end());
    size_t count = 0;
    for (int64_t lid : per_template_delta[i]) {
      if (explained_.count(lid) > 0 || new_lid_set.count(lid) > 0) continue;
      ++count;
      delta_set.insert(lid);
    }
    report.per_template_delta_counts[i] = count;
  }
  report.delta_explained_lids.assign(delta_set.begin(), delta_set.end());
  std::sort(report.delta_explained_lids.begin(),
            report.delta_explained_lids.end());

  explained_.insert(report.explained_lids.begin(),
                    report.explained_lids.end());
  explained_.insert(report.delta_explained_lids.begin(),
                    report.delta_explained_lids.end());
  audited_rows_ = to;
  snapshot_ = db_->Snapshot();
  if (exec.plan_cache != nullptr) {
    const PlanCache::Stats cache_stats = exec.plan_cache->stats();
    report.plan_cache_hits = cache_stats.hits;
    report.plan_cache_misses = cache_stats.misses;
    report.plan_rebinds = cache_stats.rebinds;
  }
  return report;
}

}  // namespace eba
