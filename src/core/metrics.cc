#include "core/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "query/executor.h"

namespace eba {

MetricsEvaluator::MetricsEvaluator(const Database* db,
                                   std::string combined_log_table)
    : db_(db), log_table_(std::move(combined_log_table)) {
  EBA_CHECK(db != nullptr);
}

StatusOr<std::unordered_set<int64_t>> MetricsEvaluator::ExplainedSet(
    const std::vector<ExplanationTemplate>& templates) const {
  Executor executor(db_);
  std::unordered_set<int64_t> explained;
  for (const auto& tmpl : templates) {
    ExplanationTemplate bound = tmpl.WithLogTable(log_table_);
    EBA_ASSIGN_OR_RETURN(
        std::vector<Value> values,
        executor.DistinctValues(bound.query(), bound.lid_attr(),
                                Executor::SupportStrategy::kDedupFrontier));
    for (const auto& v : values) explained.insert(v.AsInt64());
  }
  return explained;
}

StatusOr<PrecisionRecall> MetricsEvaluator::Evaluate(
    const std::vector<ExplanationTemplate>& templates,
    const std::vector<int64_t>& real_lids,
    const std::vector<int64_t>& fake_lids,
    const std::vector<int64_t>& real_lids_with_events) const {
  EBA_ASSIGN_OR_RETURN(std::unordered_set<int64_t> explained,
                       ExplainedSet(templates));
  PrecisionRecall pr;
  pr.real_total = real_lids.size();
  pr.fake_total = fake_lids.size();
  pr.real_with_events = real_lids_with_events.size();
  for (int64_t lid : real_lids) {
    if (explained.count(lid)) pr.real_explained++;
  }
  for (int64_t lid : fake_lids) {
    if (explained.count(lid)) pr.fake_explained++;
  }
  return pr;
}

StatusOr<std::vector<int64_t>> MetricsEvaluator::LidsWithEvent(
    const std::string& event_table, const std::string& patient_column) const {
  // Path query: Log.Patient = Event.<patient_column>; support-style distinct
  // lid collection.
  PathQuery q;
  q.vars.push_back(TupleVar{log_table_, "L"});
  q.vars.push_back(TupleVar{event_table, "E"});
  EBA_ASSIGN_OR_RETURN(QAttr log_patient, q.Resolve(*db_, "L", "Patient"));
  EBA_ASSIGN_OR_RETURN(QAttr event_patient,
                       q.Resolve(*db_, "E", patient_column));
  q.join_chain.push_back(VarCondition{log_patient, CmpOp::kEq, event_patient});
  EBA_ASSIGN_OR_RETURN(QAttr lid, q.Resolve(*db_, "L", "Lid"));

  Executor executor(db_);
  EBA_ASSIGN_OR_RETURN(
      std::vector<Value> values,
      executor.DistinctValues(q, lid,
                              Executor::SupportStrategy::kDedupFrontier));
  std::vector<int64_t> lids;
  lids.reserve(values.size());
  for (const auto& v : values) lids.push_back(v.AsInt64());
  std::sort(lids.begin(), lids.end());
  return lids;
}

StatusOr<std::vector<int64_t>> MetricsEvaluator::LidsWithAnyEvent(
    const std::vector<std::pair<std::string, std::string>>&
        event_tables_and_patient_columns) const {
  std::unordered_set<int64_t> any;
  for (const auto& [table, column] : event_tables_and_patient_columns) {
    EBA_ASSIGN_OR_RETURN(std::vector<int64_t> lids,
                         LidsWithEvent(table, column));
    any.insert(lids.begin(), lids.end());
  }
  std::vector<int64_t> out(any.begin(), any.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace eba
