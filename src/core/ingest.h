// Streaming audit ingest: the serving-loop side of explanation-based
// auditing. The paper's hospital log grows continuously while compliance
// officers audit it; StreamingAuditor turns the batch reproducer into that
// loop by pairing an append path (AppendAccessBatch — watermark-only Table
// appends, so compiled plans re-bind instead of re-planning) with an
// incremental explanation pass (ExplainNew — explains only the accesses
// past the last audited watermark, maintaining a persistent explained-lid
// set).
//
// Incremental correctness: explanations are monotone under appends —
// appending rows (to the log or to any other table) can only add witnesses,
// never remove one — so the explained-lid set is a stable accumulator and
// every append is auditable as a delta. Drift since the last audit is
// classified per table (Database::Snapshot::DriftSince):
//   - log appends: the new rows are audited via the lid-filter semi-join
//     (Executor::DistinctLidsFor), plus a reverse pass for self-join
//     templates that reference the log at a non-zero tuple variable;
//   - appends to any other table: the reverse semi-join delta pass —
//     each template is evaluated restricted to the log lids joinable to the
//     appended rows (Executor::DistinctLidsJoinedTo seeds the join frontier
//     from the appended row range), and previously-unexplained lids the
//     delta newly explains are unioned into the persistent set
//     (StreamingReport::delta_explained_lids). Cost scales with the delta,
//     not the log;
//   - structural mutations / catalog changes (which can rewrite or remove
//     evidence): the monotonicity argument is gone — full re-audit from
//     row 0 (StreamingReport::full_reaudit).

#ifndef EBA_CORE_INGEST_H_
#define EBA_CORE_INGEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "storage/checkpoint.h"
#include "storage/database.h"
#include "storage/io.h"
#include "storage/wal.h"

namespace eba {

/// Tuning knobs for ExplainNew, mirroring ExplainAllOptions.
struct StreamingOptions {
  /// Worker threads: templates are evaluated concurrently and the new-row
  /// scan is sharded. <= 1 runs everything on the calling thread. The
  /// report is byte-identical regardless of the thread count.
  size_t num_threads = 1;
  /// Lower bound on new rows per scan shard.
  size_t min_rows_per_shard = 1024;
  /// Executor knobs for template evaluation (engine/join order/probe
  /// morsels). ExplainNew threads its own pool into `executor.pool` /
  /// `executor.num_threads` when they are unset.
  ExecutorOptions executor;
  /// When true (default) and `executor.plan_cache` is null, template
  /// evaluation shares the engine's persistent plan cache — under a pure
  /// append workload every ExplainNew after the first replays re-bound
  /// plans (hit + rebind), which is what keeps the serving loop cheap.
  bool use_engine_plan_cache = true;
};

/// Configuration of the durable-state layer (EnableDurability/RecoverFrom).
struct DurabilityOptions {
  /// Store directory: CURRENT, ckpt-<seq>/ checkpoints, wal-<seq>.log logs.
  std::string dir;
  /// fsync policy for WAL commits. kNone survives process kill (the fault
  /// model the tests exercise), kBatch/kAlways additionally survive power
  /// loss at increasing cost.
  WalSync sync = WalSync::kBatch;
  /// ExplainNew checkpoints automatically once the live WAL exceeds this
  /// many bytes; 0 = checkpoint only on explicit Checkpoint() calls.
  uint64_t checkpoint_after_wal_bytes = uint64_t{1} << 20;
  /// Every Nth checkpoint is a full database image; the ones between are
  /// incremental (appended-row segments chained to the last full image).
  /// 1 makes every checkpoint full; 0 disables forced fulls.
  uint32_t full_checkpoint_interval = 4;
  /// I/O seam; nullptr = the real filesystem. Tests inject
  /// FaultInjectingEnv here.
  Env* env = nullptr;
};

/// What RecoverFrom did, for observability and the recovery benchmarks.
struct RecoveryStats {
  /// False when no checkpoint existed (fresh start, nothing to recover).
  bool recovered = false;
  uint64_t checkpoint_seq = 0;
  size_t wal_files_replayed = 0;
  size_t wal_records_replayed = 0;
  size_t wal_rows_replayed = 0;
  /// Torn/corrupt tail bytes truncated from the final WAL file.
  uint64_t wal_bytes_truncated = 0;
  /// Total checkpoint load time, and the portion spent loading column data
  /// (paid by any restart regardless of audit durability).
  double checkpoint_load_seconds = 0.0;
  double db_load_seconds = 0.0;
  double wal_replay_seconds = 0.0;
};

/// Result of one ExplainNew call, covering the accesses in rows
/// [audited_from, audited_to) of the log plus any previously-audited lids
/// re-classified by the foreign-append delta pass.
struct StreamingReport {
  size_t audited_from = 0;
  size_t audited_to = 0;
  /// True when a structural/catalog change forced a re-audit from row 0
  /// (the persistent explained set was discarded first). Appends — to the
  /// log or any other table — never set this.
  bool full_reaudit = false;

  /// Per registered template: number of the new lids it explains.
  std::vector<size_t> per_template_counts;
  /// New lids explained by at least one template (ascending).
  std::vector<int64_t> explained_lids;
  /// New lids explained by no template (ascending; the incremental
  /// compliance-review queue).
  std::vector<int64_t> unexplained_lids;

  // --- Reverse semi-join delta pass (appends to non-log tables, plus
  // --- log self-join positions). ---
  /// Previously-audited, previously-unexplained lids newly explained by
  /// rows appended since the last audit (ascending; disjoint from
  /// explained_lids/unexplained_lids). These leave the compliance-review
  /// queue retroactively.
  std::vector<int64_t> delta_explained_lids;
  /// Per registered template: how many of the previously-unexplained lids
  /// the delta pass newly explained for it.
  std::vector<size_t> per_template_delta_counts;
  /// Non-log tables whose appends were classified as append-only drift and
  /// handled incrementally this audit (instead of forcing a full re-audit)
  /// — with reverse semi-joins where a template references the table, at
  /// zero cost otherwise (an unreferenced table cannot change any
  /// explanation; see delta_queries for the evaluations actually run).
  size_t delta_tables = 0;
  /// Reverse semi-join evaluations actually run (template × appended-table
  /// pairs where the template references the table).
  size_t delta_queries = 0;

  /// Cumulative engine plan-cache totals snapshotted after this audit
  /// (library-visible mirror of the bench counters; all zero when the
  /// audit ran without a plan cache).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_rebinds = 0;

  size_t new_rows() const { return audited_to - audited_from; }
  double Coverage() const {
    const size_t total = explained_lids.size() + unexplained_lids.size();
    return total == 0 ? 0.0
                      : static_cast<double>(explained_lids.size()) /
                            static_cast<double>(total);
  }
};

/// Owns the streaming serving loop over one log table: appends batches,
/// audits incrementally, and accumulates the explained-lid set. The
/// database must outlive the auditor.
///
/// Thread safety — single writer, concurrent audits. Two internal mutexes
/// split the old coarse auditor lock (discipline compiler-checked via
/// EBA_GUARDED_BY):
///
///   * `writer_mu_` serializes the append path (WAL commit + table apply)
///     and guards the durability layer. AppendAccessBatch/AppendRows take
///     only this lock.
///   * `audit_mu_` guards the audit accumulator (explained-lid set, audited
///     watermark, drift baseline, worker pool). ExplainNew and the state
///     accessors take only this lock.
///
/// ExplainNew pins one Database::Snapshot at entry and evaluates the whole
/// audit against that read view, so appends proceed concurrently: rows that
/// land after the pin are simply past the snapshot's watermarks and
/// re-surface as drift on the next audit. Checkpoints take both locks
/// (audit state AND a stable WAL/image cut). Lock order is always
/// audit_mu_ -> writer_mu_; nothing acquires them in the other order.
/// Structural database mutations (drop/add table, in-place rewrites) remain
/// outside the contract — they still require external serialization against
/// every concurrent append and audit.
class StreamingAuditor {
 public:
  /// `db` must contain `log_table` with the standard log schema.
  static StatusOr<StreamingAuditor> Create(Database* db,
                                           const std::string& log_table);

  /// Restores a crashed auditor from its durability directory: loads the
  /// newest published checkpoint into `*db` (replacing its contents),
  /// replays the WAL suffix (truncating a torn/corrupt tail of the final
  /// log file — mid-chain corruption is an error), and returns an auditor
  /// with the checkpointed explained-lid set, audited watermark, and audit
  /// snapshot, durability already enabled on a fresh WAL. When the
  /// directory holds no checkpoint this is a fresh start: `*db` is left
  /// as-is and EnableDurability runs on it. Callers re-register their
  /// templates and run one ExplainNew to converge (it re-audits everything
  /// past the last checkpointed audit; monotonicity makes the result
  /// identical to an uninterrupted run).
  static StatusOr<StreamingAuditor> RecoverFrom(Database* db,
                                                const std::string& log_table,
                                                const DurabilityOptions& options,
                                                RecoveryStats* stats = nullptr);

  /// Registers a template with the underlying engine (variable 0 is rebound
  /// to this auditor's log table automatically).
  Status AddTemplate(const ExplanationTemplate& tmpl);

  /// The underlying engine (per-access Explain, full ExplainAll, the
  /// persistent plan cache).
  ExplanationEngine& engine() { return engine_; }
  const ExplanationEngine& engine() const { return engine_; }

  /// Enables write-ahead logging + checkpointing: writes an initial full
  /// checkpoint of the database and audit state into `options.dir`, then
  /// opens a WAL that every subsequent append commits to *before* applying.
  /// Fails if durability is already enabled.
  Status EnableDurability(const DurabilityOptions& options)
      EBA_EXCLUDES(*audit_mu_, *writer_mu_);

  /// True once EnableDurability/RecoverFrom succeeded.
  bool durable() const EBA_EXCLUDES(*writer_mu_) {
    MutexLock lock(*writer_mu_);
    return durable_ != nullptr;
  }

  /// Writes and publishes a checkpoint now (requires durability). `full`
  /// forces a complete database image; otherwise the store may write an
  /// incremental segment checkpoint per DurabilityOptions. On success the
  /// WAL is rotated: recovery needs only the new checkpoint + new WAL.
  /// Takes both auditor locks: a checkpoint is the one operation that needs
  /// the audit state and the append stream cut at the same point.
  Status Checkpoint(bool full = false)
      EBA_EXCLUDES(*audit_mu_, *writer_mu_);

  /// Appends access rows to the log table. Without durability: row-atomic,
  /// not batch-atomic — on a validation error, rows before the offender are
  /// already appended. With durability: batch-atomic — the whole batch is
  /// validated, then committed to the WAL, then applied, so the log on disk
  /// never contains a row the database rejected. Appends advance the
  /// table's watermark only, so cached plans re-bind on the next audit
  /// instead of re-planning. Holds only the writer lock, so it runs
  /// concurrently with snapshot-pinned audits (ExplainNew) and audit-state
  /// accessors.
  Status AppendAccessBatch(const std::vector<Row>& rows)
      EBA_EXCLUDES(*writer_mu_);

  /// Appends rows to any table of the database. The log table delegates to
  /// AppendAccessBatch; for any other table the grown row range is absorbed
  /// by the next ExplainNew's reverse semi-join delta pass instead of
  /// forcing a full re-audit. Appending directly via Table::AppendRow is
  /// equivalent — the audit classifies drift from the watermark snapshot,
  /// not from this call — but routing through the auditor keeps the
  /// row-atomic validation and the ingestion counters.
  Status AppendRows(const std::string& table, const std::vector<Row>& rows)
      EBA_EXCLUDES(*writer_mu_);

  /// Explains what the appends since the last audit can change: evaluates
  /// every template restricted to the new lids (Executor::DistinctLidsFor)
  /// and, for appends to non-log tables, restricted to the lids joinable to
  /// the appended foreign rows (Executor::DistinctLidsJoinedTo — the
  /// reverse semi-join), updating the persistent explained set and
  /// advancing the audited watermark. Cost scales with the deltas, not the
  /// log. Falls back to a full re-audit only on structural/catalog drift
  /// (see file comment).
  ///
  /// Pins one Database::Snapshot at entry and audits exactly the rows below
  /// its watermarks; appends landing during the audit are not lost — they
  /// are past the snapshot and re-surface as drift on the next call.
  StatusOr<StreamingReport> ExplainNew(const StreamingOptions& options = {})
      EBA_EXCLUDES(*audit_mu_, *writer_mu_);

  /// Log rows audited so far (the audited watermark).
  size_t audited_rows() const EBA_EXCLUDES(*audit_mu_) {
    MutexLock lock(*audit_mu_);
    return audited_rows_;
  }
  /// Lids explained by at least one template across all audits (a snapshot
  /// copy: the live set stays under the auditor's lock). O(n) copy under
  /// the audit lock — serving loops that only need the size or a set
  /// comparison should use explained_count() / ExplainedSetEquals().
  std::unordered_set<int64_t> explained_lids() const EBA_EXCLUDES(*audit_mu_) {
    MutexLock lock(*audit_mu_);
    return explained_;
  }
  /// Size of the explained-lid set without copying it (the bench/report
  /// accessor: O(1) under the audit lock).
  size_t explained_count() const EBA_EXCLUDES(*audit_mu_) {
    MutexLock lock(*audit_mu_);
    return explained_.size();
  }
  /// Compares the live explained set against `other` without copying it
  /// (differential-oracle checks).
  bool ExplainedSetEquals(const std::unordered_set<int64_t>& other) const
      EBA_EXCLUDES(*audit_mu_) {
    MutexLock lock(*audit_mu_);
    return explained_ == other;
  }
  bool IsExplained(int64_t lid) const EBA_EXCLUDES(*audit_mu_) {
    MutexLock lock(*audit_mu_);
    return explained_.count(lid) > 0;
  }

  // Monotonic ingestion counters; relaxed atomics so bench/report loops can
  // read them while an append or audit holds the auditor lock.
  uint64_t rows_appended() const { return rows_appended_.Load(); }
  uint64_t batches_appended() const { return batches_appended_.Load(); }
  /// Rows appended to non-log tables through AppendRows.
  uint64_t foreign_rows_appended() const {
    return foreign_rows_appended_.Load();
  }

  /// Discards the audit state: the next ExplainNew audits from row 0.
  void ResetAudit() EBA_EXCLUDES(*audit_mu_);

 private:
  /// Durable-state bundle, present only after EnableDurability/RecoverFrom.
  struct DurableState {
    DurabilityOptions options;
    Env* env = nullptr;
    std::unique_ptr<CheckpointStore> store;
    std::unique_ptr<WalWriter> wal;
    uint64_t wal_seq = 0;
    /// Incremental checkpoints published since the last full one.
    uint32_t checkpoints_since_full = 0;
    /// Snapshot at the last checkpoint (unpinned — drift baseline only):
    /// structural/catalog drift since then demotes the next incremental
    /// checkpoint to a full image.
    Database::Snapshot last_ckpt_snapshot;
  };

  StreamingAuditor(Database* db, ExplanationEngine engine);

  Status AppendAccessBatchLocked(const std::vector<Row>& rows)
      EBA_REQUIRES(*writer_mu_);
  void ResetAuditLocked() EBA_REQUIRES(*audit_mu_);

  /// Shared append path: WAL-first when durable, plain otherwise.
  Status AppendTableLocked(const std::string& table_name, Table* table,
                           const std::vector<Row>& rows)
      EBA_REQUIRES(*writer_mu_);
  Status CheckpointLocked(bool full)
      EBA_REQUIRES(*audit_mu_, *writer_mu_);
  /// Installs checkpointed audit state + a fresh WAL on a just-created
  /// auditor (the recovery tail of RecoverFrom).
  Status AdoptRecoveredState(const CheckpointContents& ckpt, Env* env,
                             const DurabilityOptions& options,
                             uint64_t new_wal_seq)
      EBA_EXCLUDES(*audit_mu_, *writer_mu_);

  Database* db_;
  ExplanationEngine engine_;

  // The lock split (see class comment). Lock order: audit_mu_ before
  // writer_mu_. Boxed so the auditor stays movable; moved-from auditors
  // must not be used.
  mutable std::unique_ptr<Mutex> audit_mu_;
  mutable std::unique_ptr<Mutex> writer_mu_;

  std::unordered_set<int64_t> explained_ EBA_GUARDED_BY(*audit_mu_);
  size_t audited_rows_ EBA_GUARDED_BY(*audit_mu_) = 0;
  AtomicCounter rows_appended_;
  AtomicCounter batches_appended_;
  AtomicCounter foreign_rows_appended_;

  // Lazily created worker pool reused across ExplainNew calls (sized to the
  // last options.num_threads - 1), so the per-batch serving loop does not
  // pay thread create/join on every audit.
  std::unique_ptr<ThreadPool> pool_ EBA_GUARDED_BY(*audit_mu_);

  // Drift baseline: the (unpinned) snapshot the last audit ran against; the
  // next ExplainNew classifies what changed by pinning a fresh snapshot and
  // comparing (Snapshot::DriftSince).
  Database::Snapshot snapshot_ EBA_GUARDED_BY(*audit_mu_);

  // Durability layer (WAL + checkpoints); null until EnableDurability.
  // Writer-owned: every WAL commit happens on the append path.
  std::unique_ptr<DurableState> durable_ EBA_GUARDED_BY(*writer_mu_);
};

}  // namespace eba

#endif  // EBA_CORE_INGEST_H_
