// Streaming audit ingest: the serving-loop side of explanation-based
// auditing. The paper's hospital log grows continuously while compliance
// officers audit it; StreamingAuditor turns the batch reproducer into that
// loop by pairing an append path (AppendAccessBatch — watermark-only Table
// appends, so compiled plans re-bind instead of re-planning) with an
// incremental explanation pass (ExplainNew — explains only the accesses
// past the last audited watermark, maintaining a persistent explained-lid
// set).
//
// Incremental correctness: classifying an access looks only at the access's
// own log rows joined against the rest of the database, so once a lid is
// explained, later *log* appends can never un-explain it — the explained
// set is a stable accumulator under the streaming workload's only mutation.
// Any other change (catalog mutations, structural table mutations, appends
// to non-log tables — all of which can newly explain an OLD access) is
// detected against a snapshot taken at the last audit and triggers a full
// re-audit from row 0 (StreamingReport::full_reaudit).

#ifndef EBA_CORE_INGEST_H_
#define EBA_CORE_INGEST_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "storage/database.h"

namespace eba {

/// Tuning knobs for ExplainNew, mirroring ExplainAllOptions.
struct StreamingOptions {
  /// Worker threads: templates are evaluated concurrently and the new-row
  /// scan is sharded. <= 1 runs everything on the calling thread. The
  /// report is byte-identical regardless of the thread count.
  size_t num_threads = 1;
  /// Lower bound on new rows per scan shard.
  size_t min_rows_per_shard = 1024;
  /// Executor knobs for template evaluation (engine/join order/probe
  /// morsels). ExplainNew threads its own pool into `executor.pool` /
  /// `executor.num_threads` when they are unset.
  ExecutorOptions executor;
  /// When true (default) and `executor.plan_cache` is null, template
  /// evaluation shares the engine's persistent plan cache — under a pure
  /// append workload every ExplainNew after the first replays re-bound
  /// plans (hit + rebind), which is what keeps the serving loop cheap.
  bool use_engine_plan_cache = true;
};

/// Result of one ExplainNew call, covering only the accesses in rows
/// [audited_from, audited_to) of the log.
struct StreamingReport {
  size_t audited_from = 0;
  size_t audited_to = 0;
  /// True when a non-append change forced a re-audit from row 0 (the
  /// persistent explained set was discarded first).
  bool full_reaudit = false;

  /// Per registered template: number of the new lids it explains.
  std::vector<size_t> per_template_counts;
  /// New lids explained by at least one template (ascending).
  std::vector<int64_t> explained_lids;
  /// New lids explained by no template (ascending; the incremental
  /// compliance-review queue).
  std::vector<int64_t> unexplained_lids;

  size_t new_rows() const { return audited_to - audited_from; }
  double Coverage() const {
    const size_t total = explained_lids.size() + unexplained_lids.size();
    return total == 0 ? 0.0
                      : static_cast<double>(explained_lids.size()) /
                            static_cast<double>(total);
  }
};

/// Owns the streaming serving loop over one log table: appends batches,
/// audits incrementally, and accumulates the explained-lid set. The
/// database must outlive the auditor; appends and audits must be externally
/// serialized against each other (ExplainNew itself fans out internally).
class StreamingAuditor {
 public:
  /// `db` must contain `log_table` with the standard log schema.
  static StatusOr<StreamingAuditor> Create(Database* db,
                                           const std::string& log_table);

  /// Registers a template with the underlying engine (variable 0 is rebound
  /// to this auditor's log table automatically).
  Status AddTemplate(const ExplanationTemplate& tmpl);

  /// The underlying engine (per-access Explain, full ExplainAll, the
  /// persistent plan cache).
  ExplanationEngine& engine() { return engine_; }
  const ExplanationEngine& engine() const { return engine_; }

  /// Appends access rows to the log table. Row-atomic, not batch-atomic: on
  /// a validation error, rows before the offender are already appended.
  /// Appends advance the table's watermark only, so cached plans re-bind on
  /// the next audit instead of re-planning.
  Status AppendAccessBatch(const std::vector<Row>& rows);

  /// Explains the accesses appended since the last audit: evaluates every
  /// template restricted to the new lids (Executor::DistinctLidsFor — cost
  /// scales with the batch, not the log), updates the persistent explained
  /// set, and advances the audited watermark. Falls back to a full re-audit
  /// when a non-append change is detected (see file comment).
  StatusOr<StreamingReport> ExplainNew(const StreamingOptions& options = {});

  /// Log rows audited so far (the audited watermark).
  size_t audited_rows() const { return audited_rows_; }
  /// Lids explained by at least one template across all audits.
  const std::unordered_set<int64_t>& explained_lids() const {
    return explained_;
  }
  bool IsExplained(int64_t lid) const { return explained_.count(lid) > 0; }

  uint64_t rows_appended() const { return rows_appended_; }
  uint64_t batches_appended() const { return batches_appended_; }

  /// Discards the audit state: the next ExplainNew audits from row 0.
  void ResetAudit();

 private:
  StreamingAuditor(Database* db, ExplanationEngine engine);

  /// True when anything other than log appends changed since the last
  /// audit snapshot.
  bool DriftedSinceLastAudit() const;
  void SnapshotDatabaseState();

  Database* db_;
  ExplanationEngine engine_;

  std::unordered_set<int64_t> explained_;
  size_t audited_rows_ = 0;
  uint64_t rows_appended_ = 0;
  uint64_t batches_appended_ = 0;

  // Drift snapshot: catalog generation plus per-table
  // (structural epoch, watermark); the log's watermark is allowed to grow.
  uint64_t catalog_generation_ = 0;
  std::map<std::string, std::pair<uint64_t, uint64_t>> table_state_;
};

}  // namespace eba

#endif  // EBA_CORE_INGEST_H_
