// Streaming audit ingest: the serving-loop side of explanation-based
// auditing. The paper's hospital log grows continuously while compliance
// officers audit it; StreamingAuditor turns the batch reproducer into that
// loop by pairing an append path (AppendAccessBatch — watermark-only Table
// appends, so compiled plans re-bind instead of re-planning) with an
// incremental explanation pass (ExplainNew — explains only the accesses
// past the last audited watermark, maintaining a persistent explained-lid
// set).
//
// Incremental correctness: explanations are monotone under appends —
// appending rows (to the log or to any other table) can only add witnesses,
// never remove one — so the explained-lid set is a stable accumulator and
// every append is auditable as a delta. Drift since the last audit is
// classified per table (Database::DriftSince):
//   - log appends: the new rows are audited via the lid-filter semi-join
//     (Executor::DistinctLidsFor), plus a reverse pass for self-join
//     templates that reference the log at a non-zero tuple variable;
//   - appends to any other table: the reverse semi-join delta pass —
//     each template is evaluated restricted to the log lids joinable to the
//     appended rows (Executor::DistinctLidsJoinedTo seeds the join frontier
//     from the appended row range), and previously-unexplained lids the
//     delta newly explains are unioned into the persistent set
//     (StreamingReport::delta_explained_lids). Cost scales with the delta,
//     not the log;
//   - structural mutations / catalog changes (which can rewrite or remove
//     evidence): the monotonicity argument is gone — full re-audit from
//     row 0 (StreamingReport::full_reaudit).

#ifndef EBA_CORE_INGEST_H_
#define EBA_CORE_INGEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "storage/database.h"

namespace eba {

/// Tuning knobs for ExplainNew, mirroring ExplainAllOptions.
struct StreamingOptions {
  /// Worker threads: templates are evaluated concurrently and the new-row
  /// scan is sharded. <= 1 runs everything on the calling thread. The
  /// report is byte-identical regardless of the thread count.
  size_t num_threads = 1;
  /// Lower bound on new rows per scan shard.
  size_t min_rows_per_shard = 1024;
  /// Executor knobs for template evaluation (engine/join order/probe
  /// morsels). ExplainNew threads its own pool into `executor.pool` /
  /// `executor.num_threads` when they are unset.
  ExecutorOptions executor;
  /// When true (default) and `executor.plan_cache` is null, template
  /// evaluation shares the engine's persistent plan cache — under a pure
  /// append workload every ExplainNew after the first replays re-bound
  /// plans (hit + rebind), which is what keeps the serving loop cheap.
  bool use_engine_plan_cache = true;
};

/// Result of one ExplainNew call, covering the accesses in rows
/// [audited_from, audited_to) of the log plus any previously-audited lids
/// re-classified by the foreign-append delta pass.
struct StreamingReport {
  size_t audited_from = 0;
  size_t audited_to = 0;
  /// True when a structural/catalog change forced a re-audit from row 0
  /// (the persistent explained set was discarded first). Appends — to the
  /// log or any other table — never set this.
  bool full_reaudit = false;

  /// Per registered template: number of the new lids it explains.
  std::vector<size_t> per_template_counts;
  /// New lids explained by at least one template (ascending).
  std::vector<int64_t> explained_lids;
  /// New lids explained by no template (ascending; the incremental
  /// compliance-review queue).
  std::vector<int64_t> unexplained_lids;

  // --- Reverse semi-join delta pass (appends to non-log tables, plus
  // --- log self-join positions). ---
  /// Previously-audited, previously-unexplained lids newly explained by
  /// rows appended since the last audit (ascending; disjoint from
  /// explained_lids/unexplained_lids). These leave the compliance-review
  /// queue retroactively.
  std::vector<int64_t> delta_explained_lids;
  /// Per registered template: how many of the previously-unexplained lids
  /// the delta pass newly explained for it.
  std::vector<size_t> per_template_delta_counts;
  /// Non-log tables whose appends were classified as append-only drift and
  /// handled incrementally this audit (instead of forcing a full re-audit)
  /// — with reverse semi-joins where a template references the table, at
  /// zero cost otherwise (an unreferenced table cannot change any
  /// explanation; see delta_queries for the evaluations actually run).
  size_t delta_tables = 0;
  /// Reverse semi-join evaluations actually run (template × appended-table
  /// pairs where the template references the table).
  size_t delta_queries = 0;

  /// Cumulative engine plan-cache totals snapshotted after this audit
  /// (library-visible mirror of the bench counters; all zero when the
  /// audit ran without a plan cache).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_rebinds = 0;

  size_t new_rows() const { return audited_to - audited_from; }
  double Coverage() const {
    const size_t total = explained_lids.size() + unexplained_lids.size();
    return total == 0 ? 0.0
                      : static_cast<double>(explained_lids.size()) /
                            static_cast<double>(total);
  }
};

/// Owns the streaming serving loop over one log table: appends batches,
/// audits incrementally, and accumulates the explained-lid set. The
/// database must outlive the auditor.
///
/// Thread safety: the auditor's mutable state (explained-lid set, audited
/// watermark, drift snapshot, worker pool) is guarded by an internal mutex
/// that every append/audit/accessor entry point takes, and the discipline
/// is compiler-checked via EBA_GUARDED_BY — appends and audits serialize
/// against each other inside the auditor instead of by caller convention
/// (ExplainNew still fans out internally under the lock). This coarse
/// single-writer lock is the enabling step for the planned snapshot-column
/// layer, which will let audits read a consistent Database::Snapshot while
/// batches land. Callers that reach around the auditor — appending straight
/// to a Table or auditing via engine() — still require external
/// serialization against concurrent appends, as before.
class StreamingAuditor {
 public:
  /// `db` must contain `log_table` with the standard log schema.
  static StatusOr<StreamingAuditor> Create(Database* db,
                                           const std::string& log_table);

  /// Registers a template with the underlying engine (variable 0 is rebound
  /// to this auditor's log table automatically).
  Status AddTemplate(const ExplanationTemplate& tmpl);

  /// The underlying engine (per-access Explain, full ExplainAll, the
  /// persistent plan cache).
  ExplanationEngine& engine() { return engine_; }
  const ExplanationEngine& engine() const { return engine_; }

  /// Appends access rows to the log table. Row-atomic, not batch-atomic: on
  /// a validation error, rows before the offender are already appended.
  /// Appends advance the table's watermark only, so cached plans re-bind on
  /// the next audit instead of re-planning.
  Status AppendAccessBatch(const std::vector<Row>& rows) EBA_EXCLUDES(*mu_);

  /// Appends rows to any table of the database. The log table delegates to
  /// AppendAccessBatch; for any other table the grown row range is absorbed
  /// by the next ExplainNew's reverse semi-join delta pass instead of
  /// forcing a full re-audit. Appending directly via Table::AppendRow is
  /// equivalent — the audit classifies drift from the watermark snapshot,
  /// not from this call — but routing through the auditor keeps the
  /// row-atomic validation and the ingestion counters.
  Status AppendRows(const std::string& table, const std::vector<Row>& rows)
      EBA_EXCLUDES(*mu_);

  /// Explains what the appends since the last audit can change: evaluates
  /// every template restricted to the new lids (Executor::DistinctLidsFor)
  /// and, for appends to non-log tables, restricted to the lids joinable to
  /// the appended foreign rows (Executor::DistinctLidsJoinedTo — the
  /// reverse semi-join), updating the persistent explained set and
  /// advancing the audited watermark. Cost scales with the deltas, not the
  /// log. Falls back to a full re-audit only on structural/catalog drift
  /// (see file comment).
  StatusOr<StreamingReport> ExplainNew(const StreamingOptions& options = {})
      EBA_EXCLUDES(*mu_);

  /// Log rows audited so far (the audited watermark).
  size_t audited_rows() const EBA_EXCLUDES(*mu_) {
    MutexLock lock(*mu_);
    return audited_rows_;
  }
  /// Lids explained by at least one template across all audits (a snapshot
  /// copy: the live set stays under the auditor's lock).
  std::unordered_set<int64_t> explained_lids() const EBA_EXCLUDES(*mu_) {
    MutexLock lock(*mu_);
    return explained_;
  }
  bool IsExplained(int64_t lid) const EBA_EXCLUDES(*mu_) {
    MutexLock lock(*mu_);
    return explained_.count(lid) > 0;
  }

  // Monotonic ingestion counters; relaxed atomics so bench/report loops can
  // read them while an append or audit holds the auditor lock.
  uint64_t rows_appended() const { return rows_appended_.Load(); }
  uint64_t batches_appended() const { return batches_appended_.Load(); }
  /// Rows appended to non-log tables through AppendRows.
  uint64_t foreign_rows_appended() const {
    return foreign_rows_appended_.Load();
  }

  /// Discards the audit state: the next ExplainNew audits from row 0.
  void ResetAudit() EBA_EXCLUDES(*mu_);

 private:
  StreamingAuditor(Database* db, ExplanationEngine engine);

  Status AppendAccessBatchLocked(const std::vector<Row>& rows)
      EBA_REQUIRES(*mu_);
  void ResetAuditLocked() EBA_REQUIRES(*mu_);

  Database* db_;
  ExplanationEngine engine_;

  // Serializes appends, audits and state accessors (see class comment).
  // Boxed so the auditor stays movable; moved-from auditors must not be
  // used.
  mutable std::unique_ptr<Mutex> mu_;
  std::unordered_set<int64_t> explained_ EBA_GUARDED_BY(*mu_);
  size_t audited_rows_ EBA_GUARDED_BY(*mu_) = 0;
  AtomicCounter rows_appended_;
  AtomicCounter batches_appended_;
  AtomicCounter foreign_rows_appended_;

  // Lazily created worker pool reused across ExplainNew calls (sized to the
  // last options.num_threads - 1), so the per-batch serving loop does not
  // pay thread create/join on every audit.
  std::unique_ptr<ThreadPool> pool_ EBA_GUARDED_BY(*mu_);

  // Per-table drift snapshot taken at the end of every audit; the next
  // ExplainNew classifies what changed against it (Database::DriftSince).
  CatalogSnapshot snapshot_ EBA_GUARDED_BY(*mu_);
};

}  // namespace eba

#endif  // EBA_CORE_INGEST_H_
