#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "log/access_log.h"

namespace eba {

ExplanationEngine::ExplanationEngine(const Database* db, std::string log_table,
                                     QAttr lid_attr)
    : db_(db), log_table_(std::move(log_table)), lid_attr_(lid_attr) {}

StatusOr<ExplanationEngine> ExplanationEngine::Create(
    const Database* db, const std::string& log_table) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  EBA_ASSIGN_OR_RETURN(const Table* table, db->GetTable(log_table));
  int lid_col = table->schema().ColumnIndex("Lid");
  if (lid_col < 0) {
    return Status::InvalidArgument("log table '" + log_table +
                                   "' has no Lid column");
  }
  return ExplanationEngine(db, log_table, QAttr{0, lid_col});
}

Status ExplanationEngine::AddTemplate(const ExplanationTemplate& tmpl) {
  ExplanationTemplate bound = tmpl.WithLogTable(log_table_);
  EBA_RETURN_IF_ERROR(bound.query().Validate(*db_));
  if (bound.lid_attr() != lid_attr_) {
    return Status::InvalidArgument(
        "template lid attribute does not match engine log table");
  }
  templates_.push_back(std::move(bound));
  return Status::OK();
}

StatusOr<std::vector<ExplanationInstance>> ExplanationEngine::Explain(
    int64_t lid) const {
  Executor executor(db_);
  std::vector<ExplanationInstance> instances;
  std::vector<Value> lids = {Value::Int64(lid)};
  for (const auto& tmpl : templates_) {
    EBA_ASSIGN_OR_RETURN(
        Relation rel,
        executor.MaterializeForLogIds(tmpl.query(), tmpl.lid_attr(), lids));
    for (auto& row : rel.rows) {
      instances.emplace_back(&tmpl, rel.attrs, std::move(row));
    }
  }
  std::stable_sort(instances.begin(), instances.end(),
                   ExplanationInstance::RankLess);
  return instances;
}

StatusOr<std::vector<int64_t>> ExplanationEngine::ExplainedLids(
    size_t index) const {
  if (index >= templates_.size()) {
    return Status::OutOfRange("template index out of range");
  }
  Executor executor(db_);
  const auto& tmpl = templates_[index];
  EBA_ASSIGN_OR_RETURN(
      std::vector<Value> values,
      executor.DistinctValues(tmpl.query(), tmpl.lid_attr(),
                              Executor::SupportStrategy::kDedupFrontier));
  std::vector<int64_t> lids;
  lids.reserve(values.size());
  for (const auto& v : values) lids.push_back(v.AsInt64());
  std::sort(lids.begin(), lids.end());
  return lids;
}

StatusOr<ExplanationReport> ExplanationEngine::ExplainAll() const {
  EBA_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(log_table_));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(table));

  ExplanationReport report;
  report.log_size = log.size();

  std::unordered_set<int64_t> explained;
  for (size_t i = 0; i < templates_.size(); ++i) {
    EBA_ASSIGN_OR_RETURN(std::vector<int64_t> lids, ExplainedLids(i));
    report.per_template_counts.push_back(lids.size());
    explained.insert(lids.begin(), lids.end());
  }

  for (size_t r = 0; r < log.size(); ++r) {
    int64_t lid = log.Get(r).lid;
    if (explained.count(lid)) {
      report.explained_lids.push_back(lid);
    } else {
      report.unexplained_lids.push_back(lid);
    }
  }
  std::sort(report.explained_lids.begin(), report.explained_lids.end());
  std::sort(report.unexplained_lids.begin(), report.unexplained_lids.end());
  return report;
}

}  // namespace eba
