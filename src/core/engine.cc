#include "core/engine.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "log/access_log.h"
#include "storage/chunk.h"

namespace eba {

ExplanationEngine::ExplanationEngine(const Database* db, std::string log_table,
                                     QAttr lid_attr)
    : db_(db), log_table_(std::move(log_table)), lid_attr_(lid_attr) {}

StatusOr<ExplanationEngine> ExplanationEngine::Create(
    const Database* db, const std::string& log_table) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  EBA_ASSIGN_OR_RETURN(const Table* table, db->GetTable(log_table));
  int lid_col = table->schema().ColumnIndex("Lid");
  if (lid_col < 0) {
    return Status::InvalidArgument("log table '" + log_table +
                                   "' has no Lid column");
  }
  return ExplanationEngine(db, log_table, QAttr{0, lid_col});
}

Status ExplanationEngine::AddTemplate(const ExplanationTemplate& tmpl) {
  ExplanationTemplate bound = tmpl.WithLogTable(log_table_);
  EBA_RETURN_IF_ERROR(bound.query().Validate(*db_));
  if (bound.lid_attr() != lid_attr_) {
    return Status::InvalidArgument(
        "template lid attribute does not match engine log table");
  }
  templates_.push_back(std::move(bound));
  return Status::OK();
}

StatusOr<std::vector<ExplanationInstance>> ExplanationEngine::Explain(
    int64_t lid) const {
  return Explain(lid, db_->CreateSnapshot());
}

StatusOr<std::vector<ExplanationInstance>> ExplanationEngine::Explain(
    int64_t lid, const Database::Snapshot& snapshot) const {
  // Per-access explains are planning-bound (tiny frames): share the
  // engine's persistent plan cache so the serving loop replays compiled
  // plans instead of re-planning per request.
  ExecutorOptions options;
  options.plan_cache = plan_cache_.get();
  Executor executor(snapshot, options);
  std::vector<ExplanationInstance> instances;
  std::vector<Value> lids = {Value::Int64(lid)};
  for (const auto& tmpl : templates_) {
    EBA_ASSIGN_OR_RETURN(
        Relation rel,
        executor.MaterializeForLogIds(tmpl.query(), tmpl.lid_attr(), lids));
    for (auto& row : rel.rows) {
      instances.emplace_back(&tmpl, rel.attrs, std::move(row));
    }
  }
  std::stable_sort(instances.begin(), instances.end(),
                   ExplanationInstance::RankLess);
  return instances;
}

StatusOr<std::vector<int64_t>> ExplanationEngine::ExplainedLids(
    size_t index) const {
  return ExplainedLids(index, ExecutorOptions{});
}

StatusOr<std::vector<int64_t>> ExplanationEngine::ExplainedLids(
    size_t index, const ExecutorOptions& executor_options) const {
  return ExplainedLids(index, executor_options, db_->CreateSnapshot());
}

StatusOr<std::vector<int64_t>> ExplanationEngine::ExplainedLids(
    size_t index, const ExecutorOptions& executor_options,
    const Database::Snapshot& snapshot) const {
  if (index >= templates_.size()) {
    return Status::OutOfRange("template index out of range");
  }
  Executor executor(snapshot, executor_options);
  const auto& tmpl = templates_[index];
  // DistinctLids is the semi-join fast path: row ids flow through the whole
  // pipeline and the sorted lid vector is materialized straight from the
  // log's Lid column.
  return executor.DistinctLids(tmpl.query(), tmpl.lid_attr());
}

StatusOr<ExplanationReport> ExplanationEngine::ExplainAll() const {
  return ExplainAll(ExplainAllOptions{});
}

StatusOr<ExplanationReport> ExplanationEngine::ExplainAll(
    const ExplainAllOptions& options) const {
  return ExplainAll(options, db_->CreateSnapshot());
}

StatusOr<ExplanationReport> ExplanationEngine::ExplainAll(
    const ExplainAllOptions& options,
    const Database::Snapshot& snapshot) const {
  EBA_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(log_table_));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(table));

  ExplanationReport report;
  // Everything below — template evaluation AND the classification scan —
  // sees exactly the rows under the snapshot's log watermark, so a report
  // computed while the writer keeps appending equals the report over a
  // quiesced database stopped at the same watermark.
  const size_t log_rows = snapshot.BoundOf(table);
  report.log_size = log_rows;

  const size_t threads = std::max<size_t>(1, options.num_threads);

  // One pool serves both phases (spawn/join threads once per call); null
  // when serial, which ParallelFor runs inline. The calling thread
  // participates in every ParallelFor round, so the pool only needs
  // threads - 1 workers.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);

  // Template evaluation shares the engine's persistent plan cache (unless
  // the caller wired their own), so a repeated ExplainAll skips planning,
  // and the same pool drives probe-phase morsels inside each executor —
  // ParallelFor is nesting-safe, so template fan-out and probe fan-out
  // coexist on the same workers.
  ExecutorOptions exec = options.executor;
  if (exec.plan_cache == nullptr && options.use_engine_plan_cache) {
    exec.plan_cache = plan_cache_.get();
  }
  if (exec.pool == nullptr && pool != nullptr) {
    exec.pool = pool.get();
    if (exec.num_threads <= 1) exec.num_threads = threads;
  }

  // Phase 1: evaluate templates concurrently. Each slot is written by
  // exactly one worker; ExplainedLids constructs a private Executor, and the
  // shared read-only tables serialize lazy index construction internally.
  std::vector<StatusOr<std::vector<int64_t>>> per_template(
      templates_.size(),
      StatusOr<std::vector<int64_t>>(Status::Internal("not evaluated")));
  ParallelFor(pool.get(), templates_.size(), [&](size_t i) {
    per_template[i] = ExplainedLids(i, exec, snapshot);
  });

  std::unordered_set<int64_t> explained;
  for (auto& lids_or : per_template) {
    if (!lids_or.ok()) return lids_or.status();
    report.per_template_counts.push_back(lids_or->size());
    explained.insert(lids_or->begin(), lids_or->end());
  }

  // Phase 2: classify log rows against the merged lid set in contiguous
  // shards, then concatenate per-shard results in shard order. Shard
  // boundaries never reorder rows, so the merged vectors match the serial
  // scan before the final sort — the report is thread-count invariant.
  // Shards align to column-chunk boundaries: a worker's scan stays within
  // the chunks it owns instead of sharing its edge chunks with neighbors.
  std::vector<ShardRange> shards = SplitShardsAligned(
      log_rows, threads, options.min_rows_per_shard, kColumnChunkRows);
  std::vector<std::vector<int64_t>> shard_explained(shards.size());
  std::vector<std::vector<int64_t>> shard_unexplained(shards.size());
  ParallelFor(pool.get(), shards.size(), [&](size_t s) {
    for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
      int64_t lid = log.Get(r).lid;
      if (explained.count(lid)) {
        shard_explained[s].push_back(lid);
      } else {
        shard_unexplained[s].push_back(lid);
      }
    }
  });
  for (size_t s = 0; s < shards.size(); ++s) {
    report.explained_lids.insert(report.explained_lids.end(),
                                 shard_explained[s].begin(),
                                 shard_explained[s].end());
    report.unexplained_lids.insert(report.unexplained_lids.end(),
                                   shard_unexplained[s].begin(),
                                   shard_unexplained[s].end());
  }
  std::sort(report.explained_lids.begin(), report.explained_lids.end());
  std::sort(report.unexplained_lids.begin(), report.unexplained_lids.end());
  return report;
}

}  // namespace eba
