// Auditor: high-level facade tying the whole system together — the
// programmatic equivalent of the paper's deployment story:
//   1. infer collaborative groups from the log and add them to the database
//      (§4), 2. mine and/or hand-register explanation templates (§3),
//   3. answer patient-portal audits and produce misuse reports (§1).

#ifndef EBA_CORE_AUDITOR_H_
#define EBA_CORE_AUDITOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/miner.h"
#include "graph/hierarchy.h"
#include "log/access_log.h"
#include "storage/database.h"

namespace eba {

struct AuditorOptions {
  std::string log_table = "Log";
  std::string groups_table = "Groups";
  HierarchyOptions hierarchy;
};

/// One patient-portal row: an access plus its ranked explanations.
struct PatientAuditEntry {
  AccessLog::Entry access;
  /// Natural-language explanations, ranked by ascending path length; empty
  /// means the access is unexplained.
  std::vector<std::string> explanations;
};

class Auditor {
 public:
  /// The database must outlive the auditor and contain `options.log_table`.
  static StatusOr<Auditor> Create(Database* db, AuditorOptions options = {});

  /// Builds the collaborative-group hierarchy from the log rows given (all
  /// rows when empty), materializes the Groups table, and allows the
  /// Groups.Group_id self-join so mining/explaining can use it.
  Status BuildCollaborativeGroups(const std::vector<size_t>& training_rows = {});

  /// The hierarchy built by BuildCollaborativeGroups (nullopt before).
  const std::optional<GroupHierarchy>& hierarchy() const { return hierarchy_; }

  /// Incremental group maintenance: folds users that appeared in the log
  /// after BuildCollaborativeGroups into the existing hierarchy
  /// (GroupHierarchy::AssignNewUsers) and APPENDS their membership rows to
  /// the existing Groups table instead of dropping and rebuilding it. The
  /// Groups table only grows, so downstream incremental audits classify the
  /// change as append-only drift — absorbed by the reverse semi-join delta
  /// pass — rather than a catalog change forcing a full re-audit. Returns
  /// the number of membership rows appended (0 when no new users showed
  /// up). Rebuild periodically (BuildCollaborativeGroups) to re-cluster
  /// from scratch; assignment quality degrades as extensions accumulate.
  StatusOr<size_t> ExtendCollaborativeGroups();

  /// Registers a hand-crafted template from FROM/WHERE text.
  Status AddTemplate(const std::string& name, const std::string& from_clause,
                     const std::string& where_clause,
                     const std::string& description);

  /// Registers an existing template (e.g. a mined one).
  Status AddTemplate(const ExplanationTemplate& tmpl);

  /// Mines templates with this auditor's database and registers them.
  /// Returns the mining result for inspection (admin review loop).
  StatusOr<MiningResult> MineAndRegister(MinerOptions options);

  /// All explanation instances for one access, ranked.
  StatusOr<std::vector<ExplanationInstance>> ExplainAccess(int64_t lid) const;

  /// The patient-portal operation: every access to `patient`'s record with
  /// natural-language explanations.
  StatusOr<std::vector<PatientAuditEntry>> AuditPatient(int64_t patient) const;

  /// The misuse-detection operation: full-log coverage and the unexplained
  /// remainder.
  StatusOr<ExplanationReport> FindUnexplained() const;

  /// Persists the registered templates to a catalog file (admin review
  /// artifact; see core/catalog.h).
  Status SaveTemplates(const std::string& path) const;

  /// Loads and registers every template from a catalog file.
  Status LoadTemplates(const std::string& path);

  const ExplanationEngine& engine() const { return *engine_; }
  Database* database() { return db_; }

 private:
  Auditor(Database* db, AuditorOptions options, ExplanationEngine engine);

  Database* db_;
  AuditorOptions options_;
  std::unique_ptr<ExplanationEngine> engine_;
  std::optional<GroupHierarchy> hierarchy_;
};

}  // namespace eba

#endif  // EBA_CORE_AUDITOR_H_
