#include "core/refine.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace eba {

namespace {

/// Distinct depths present in the Groups table, ascending.
StatusOr<std::vector<int>> GroupDepths(const Database& db,
                                       const RefineOptions& options) {
  EBA_ASSIGN_OR_RETURN(const Table* groups, db.GetTable(options.groups_table));
  int depth_col = groups->schema().ColumnIndex(options.depth_column);
  if (depth_col < 0) {
    return Status::InvalidArgument("groups table has no column '" +
                                   options.depth_column + "'");
  }
  std::set<int> depths;
  const Column& column = groups->column(static_cast<size_t>(depth_col));
  for (size_t r = 0; r < column.size(); ++r) {
    if (!column.IsNull(r)) depths.insert(static_cast<int>(column.Int64At(r)));
  }
  return std::vector<int>(depths.begin(), depths.end());
}

/// Clones `tmpl` with "G.Group_Depth = depth" added for every Groups tuple
/// variable the template mentions (decorating one instance suffices because
/// group ids are unique per depth, but decorating all is tighter and keeps
/// the executor from scanning cross-depth rows).
StatusOr<ExplanationTemplate> DecorateWithDepth(const Database& db,
                                                const ExplanationTemplate& tmpl,
                                                const RefineOptions& options,
                                                int depth) {
  ExplanationTemplate decorated = tmpl;
  PathQuery* q = decorated.mutable_query();
  EBA_ASSIGN_OR_RETURN(const Table* groups, db.GetTable(options.groups_table));
  int depth_col = groups->schema().ColumnIndex(options.depth_column);
  if (depth_col < 0) {
    return Status::InvalidArgument("groups table has no column '" +
                                   options.depth_column + "'");
  }
  bool any = false;
  for (size_t var = 0; var < q->vars.size(); ++var) {
    if (q->vars[var].table != options.groups_table) continue;
    q->const_conditions.push_back(
        ConstCondition{QAttr{static_cast<int>(var), depth_col}, CmpOp::kEq,
                       Value::Int64(depth)});
    any = true;
  }
  if (!any) {
    return Status::InvalidArgument("template does not reference '" +
                                   options.groups_table + "'");
  }
  decorated.set_name(tmpl.name() + StrFormat("_depth%d", depth));
  return decorated;
}

StatusOr<PrecisionRecall> Validate(const Database& db,
                                   const ExplanationTemplate& tmpl,
                                   const RefineOptions& options) {
  MetricsEvaluator evaluator(&db, options.validation_log_table);
  return evaluator.Evaluate({tmpl}, options.real_lids, options.fake_lids,
                            options.real_lids);
}

}  // namespace

bool UsesGroups(const ExplanationTemplate& tmpl,
                const std::string& groups_table) {
  for (const auto& var : tmpl.query().vars) {
    if (var.table == groups_table) return true;
  }
  return false;
}

StatusOr<RefinedTemplate> RefineGroupDepth(const Database& db,
                                           const ExplanationTemplate& tmpl,
                                           const RefineOptions& options) {
  if (options.validation_log_table.empty()) {
    return Status::InvalidArgument("validation_log_table is required");
  }

  RefinedTemplate result{tmpl, std::nullopt, PrecisionRecall{}, false};
  EBA_ASSIGN_OR_RETURN(result.validation, Validate(db, tmpl, options));

  if (!UsesGroups(tmpl, options.groups_table)) {
    result.meets_target =
        result.validation.Precision() >= options.precision_target;
    return result;
  }

  // Undecorated template already precise enough: keep it (maximal recall).
  if (result.validation.Precision() >= options.precision_target) {
    result.meets_target = true;
    return result;
  }

  EBA_ASSIGN_OR_RETURN(std::vector<int> depths, GroupDepths(db, options));

  // Shallow depths have coarser groups (higher recall, lower precision);
  // walk from shallow to deep and keep the first depth meeting the target —
  // i.e. the highest-recall decoration that satisfies the constraint. Track
  // the best-precision variant as a fallback report.
  std::optional<RefinedTemplate> best_precision;
  for (int depth : depths) {
    EBA_ASSIGN_OR_RETURN(ExplanationTemplate decorated,
                         DecorateWithDepth(db, tmpl, options, depth));
    EBA_ASSIGN_OR_RETURN(PrecisionRecall pr, Validate(db, decorated, options));
    if (pr.Precision() >= options.precision_target) {
      return RefinedTemplate{std::move(decorated), depth, pr, true};
    }
    if (!best_precision ||
        pr.Precision() > best_precision->validation.Precision()) {
      best_precision =
          RefinedTemplate{std::move(decorated), depth, pr, false};
    }
  }
  if (best_precision) return *best_precision;
  return result;
}

StatusOr<std::vector<RefinedTemplate>> RefineTemplateSet(
    const Database& db, const std::vector<ExplanationTemplate>& templates,
    const RefineOptions& options) {
  std::vector<RefinedTemplate> out;
  out.reserve(templates.size());
  for (const auto& tmpl : templates) {
    EBA_ASSIGN_OR_RETURN(RefinedTemplate refined,
                         RefineGroupDepth(db, tmpl, options));
    out.push_back(std::move(refined));
  }
  return out;
}

}  // namespace eba
