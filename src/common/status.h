// Status / StatusOr: lightweight error-handling primitives in the style of
// RocksDB's Status and Abseil's StatusOr. Library code returns Status (or
// StatusOr<T>) instead of throwing; exceptions are reserved for programming
// errors surfaced via EBA_CHECK.

#ifndef EBA_COMMON_STATUS_H_
#define EBA_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace eba {

/// Canonical error codes, loosely following absl::StatusCode.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// Returns a human-readable name for a status code (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation). Use the factory functions
/// (Status::OK(), Status::InvalidArgument(...)) rather than the constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-error result. Access the value only after checking ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value)                                        // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace eba

/// Propagates a non-OK Status to the caller (early return).
#define EBA_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::eba::Status _eba_status = (expr);      \
    if (!_eba_status.ok()) return _eba_status; \
  } while (0)

#define EBA_MACRO_CONCAT_INNER(a, b) a##b
#define EBA_MACRO_CONCAT(a, b) EBA_MACRO_CONCAT_INNER(a, b)

/// Assigns the value of a StatusOr expression or early-returns its error.
#define EBA_ASSIGN_OR_RETURN(lhs, expr) \
  EBA_ASSIGN_OR_RETURN_IMPL(EBA_MACRO_CONCAT(_eba_statusor_, __LINE__), lhs, expr)

#define EBA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#endif  // EBA_COMMON_STATUS_H_
