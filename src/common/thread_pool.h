// ThreadPool: a fixed-size worker pool with one shared FIFO queue (no work
// stealing). Intended for coarse-grained, read-mostly parallelism such as
// evaluating independent explanation templates or classifying disjoint log
// shards; tasks should be large enough to amortize one mutex hop each.
//
// ParallelFor is the main entry point for callers: it fans a shard function
// out over an ephemeral pool and blocks until every shard finished, running
// inline when parallelism would not help (one thread or one shard).

#ifndef EBA_COMMON_THREAD_POOL_H_
#define EBA_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eba {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Blocks until all submitted tasks finished, then joins the workers.
  ~ThreadPool() EBA_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw; wrap fallible work so failures
  /// are reported through captured state (e.g. a StatusOr slot per task).
  void Submit(std::function<void()> task) EBA_EXCLUDES(mu_);

  /// Blocks until every task submitted so far has finished executing.
  void Wait() EBA_EXCLUDES(mu_);

 private:
  void WorkerLoop() EBA_EXCLUDES(mu_);

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ EBA_GUARDED_BY(mu_);
  size_t in_flight_ EBA_GUARDED_BY(mu_) = 0;  // queued + currently running
  bool shutting_down_ EBA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(shard) for every shard in [0, num_shards), using up to
/// `num_threads` workers (the calling thread counts as one), and blocks
/// until all shards finished. Runs inline on the calling thread when
/// num_threads <= 1 or num_shards <= 1. If any shard throws, the first
/// exception (in shard order) is rethrown on the calling thread after all
/// shards finished.
void ParallelFor(size_t num_threads, size_t num_shards,
                 const std::function<void(size_t)>& fn);

/// Same contract, but reuses an existing pool (spawning threads once and
/// fanning several ParallelFor rounds over them). `pool == nullptr` runs
/// inline. Completion is tracked per call, not pool-wide, and the calling
/// thread participates in running shards, so the call is safe to nest: an
/// inner ParallelFor issued from inside a shard of an outer one always makes
/// progress on the caller's own thread even when every pool worker is busy.
void ParallelFor(ThreadPool* pool, size_t num_shards,
                 const std::function<void(size_t)>& fn);

/// A contiguous half-open range of rows assigned to one shard.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
};

/// Splits [0, n) into at most `max_shards` contiguous ranges of at least
/// `min_per_shard` elements each; when the division is uneven, the leading
/// shards each take one extra element (shard sizes never differ by more
/// than one). Returns an empty vector when n == 0.
std::vector<ShardRange> SplitShards(size_t n, size_t max_shards,
                                    size_t min_per_shard);

/// Like SplitShards, but every interior shard boundary lies on a multiple
/// of `alignment`, so a shard of table rows never straddles a column-chunk
/// boundary (the final shard's end is n, which may be mid-chunk). The
/// remainder of the block division is spread one block at a time across the
/// leading shards — never accumulated onto the last shard — so shard sizes
/// differ by at most `alignment`. Alignment never reduces parallelism:
/// when [0, n) spans fewer aligned blocks than the even split would make
/// shards, the even (unaligned) split is returned instead. alignment <= 1
/// degrades to SplitShards exactly.
std::vector<ShardRange> SplitShardsAligned(size_t n, size_t max_shards,
                                           size_t min_per_shard,
                                           size_t alignment);

/// SplitShardsAligned over an arbitrary half-open row range [begin, end):
/// interior boundaries lie on absolute multiples of `alignment` (the first
/// and last shard absorb the unaligned head and tail). Used where a scan
/// starts at an append watermark that is rarely chunk-aligned.
std::vector<ShardRange> SplitShardsAlignedRange(size_t begin, size_t end,
                                                size_t max_shards,
                                                size_t min_per_shard,
                                                size_t alignment);

/// std::thread::hardware_concurrency with a floor of 1.
size_t HardwareThreads();

}  // namespace eba

#endif  // EBA_COMMON_THREAD_POOL_H_
