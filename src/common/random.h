// Deterministic pseudo-random number generation for the synthetic data
// generator and the fake-log experiment. xoshiro256** seeded via SplitMix64;
// every experiment in this repository is reproducible from a single seed.

#ifndef EBA_COMMON_RANDOM_H_
#define EBA_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace eba {

/// Deterministic RNG (xoshiro256**). Not thread-safe; use one per thread.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Used for skewed patient/user popularity in the synthetic workload.
  uint64_t Zipf(uint64_t n, double s);

  /// Poisson-distributed count with mean `lambda` (Knuth's algorithm for
  /// small lambda, normal approximation above 64).
  uint64_t Poisson(double lambda);

  /// Samples an index according to non-negative weights (at least one > 0).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks a uniformly random element; CHECK-fails on empty input.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    EBA_CHECK(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Creates an independent child generator (for parallel streams).
  Random Fork();

 private:
  uint64_t state_[4];
};

}  // namespace eba

#endif  // EBA_COMMON_RANDOM_H_
