// Hash helpers shared by Value, indexes, and the mining support cache.

#ifndef EBA_COMMON_HASH_H_
#define EBA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace eba {

/// SplitMix64 finalizer: a strong 64-bit bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Boost-style hash combiner.
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace eba

#endif  // EBA_COMMON_HASH_H_
