// Annotated synchronization primitives: thin wrappers over the standard
// library types that carry the clang thread-safety capability attributes
// from common/thread_annotations.h, so -Wthread-safety can prove the
// locking discipline of every EBA_GUARDED_BY member at compile time.
//
// Use Mutex + MutexLock where std::mutex + std::lock_guard would go, and
// CondVar (a std::condition_variable_any that waits on the Mutex itself)
// where a condition variable is needed — restructure predicate waits as
//
//   while (!condition) cv.Wait(mu);
//
// inside the locked scope, so the predicate reads of guarded members are
// visible to the analysis (a predicate lambda would be analyzed as an
// unannotated function and flagged).
//
// SharedMutex + WriterMutexLock/SharedMutexLock cover read-mostly state:
// shared holders may read EBA_GUARDED_BY members but not write them.

#ifndef EBA_COMMON_MUTEX_H_
#define EBA_COMMON_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace eba {

/// An exclusive mutex (std::mutex) declared as a thread-safety capability.
/// The lowercase BasicLockable surface (lock/unlock) exists so CondVar can
/// wait on the Mutex directly; prefer MutexLock at call sites.
class EBA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EBA_ACQUIRE() { mu_.lock(); }
  void Unlock() EBA_RELEASE() { mu_.unlock(); }
  bool TryLock() EBA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable, for std::condition_variable_any::wait.
  void lock() EBA_ACQUIRE() { mu_.lock(); }
  void unlock() EBA_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// A reader/writer mutex (std::shared_mutex) declared as a capability.
class EBA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() EBA_ACQUIRE() { mu_.lock(); }
  void Unlock() EBA_RELEASE() { mu_.unlock(); }
  void LockShared() EBA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() EBA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (std::lock_guard equivalent).
class EBA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EBA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() EBA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class EBA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) EBA_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() EBA_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex: the holder may read
/// EBA_GUARDED_BY members, and the analysis rejects writes.
class EBA_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) EBA_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~SharedMutexLock() EBA_RELEASE() { mu_.UnlockShared(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// A condition variable that waits on a Mutex directly
/// (std::condition_variable_any unlocks/relocks the Mutex internally; from
/// the analysis's perspective the capability is held across the wait, which
/// matches the invariant at every predicate evaluation).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires `mu` before
  /// returning. Spurious wakeups are allowed: always wait in a
  /// `while (!condition)` loop inside the locked scope.
  void Wait(Mutex& mu) EBA_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A release-published size watermark that stays movable (std::atomic is
/// not). The single writer fills the slots below a new value, then calls
/// Publish(n) — the release store — so any reader whose acquire Load()
/// observes n also observes every slot below n fully written. This is the
/// publication primitive behind every append-only structure a snapshot
/// reader may scan concurrently with the writer (column payloads, null
/// bitmaps, dictionaries, table row counts). Moves are not atomic: they
/// require the same external serialization as moving the owning aggregate.
class PublishedSize {
 public:
  PublishedSize() = default;
  explicit PublishedSize(size_t value) : value_(value) {}

  PublishedSize(PublishedSize&& other) noexcept
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  PublishedSize& operator=(PublishedSize&& other) noexcept {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }
  PublishedSize(const PublishedSize&) = delete;
  PublishedSize& operator=(const PublishedSize&) = delete;

  /// Writer side: publish `n` after every slot below `n` is written.
  void Publish(size_t n) { value_.store(n, std::memory_order_release); }
  /// Reader side: everything below the returned value is safely readable.
  size_t Load() const { return value_.load(std::memory_order_acquire); }
  /// Writer side: no ordering (the writer already wrote the slots itself).
  size_t LoadRelaxed() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> value_{0};
};

/// A relaxed atomic counter that stays movable (std::atomic is not), so
/// aggregates exposing monotonic counters to concurrent readers — bench
/// loops, report snapshots — keep their defaulted move operations. Moves
/// are not atomic: they require the same external serialization as moving
/// the owning aggregate itself.
class AtomicCounter {
 public:
  AtomicCounter() = default;
  explicit AtomicCounter(uint64_t value) : value_(value) {}

  AtomicCounter(AtomicCounter&& other) noexcept
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  AtomicCounter& operator=(AtomicCounter&& other) noexcept {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter(const AtomicCounter&) = delete;
  AtomicCounter& operator=(const AtomicCounter&) = delete;

  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace eba

#endif  // EBA_COMMON_MUTEX_H_
