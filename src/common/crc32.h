// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320): the checksum behind
// every WAL record and checkpoint manifest. Torn writes and bit flips in a
// log tail must be *detected* — a record whose checksum does not match is
// truncated away during recovery, never applied.

#ifndef EBA_COMMON_CRC32_H_
#define EBA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace eba {

/// Reflected CRC-32 with init/final XOR 0xFFFFFFFF. Incremental use: pass
/// the previous result as `seed` (`crc = Crc32(more, n, crc)`). Operates on
/// bytes, so the result is byte-order independent.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace eba

#endif  // EBA_COMMON_CRC32_H_
