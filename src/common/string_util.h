// Small string helpers used across the library (no locale dependence).

#ifndef EBA_COMMON_STRING_UTIL_H_
#define EBA_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace eba {

/// Joins elements with a separator; elements are streamed via operator<<.
template <typename Container>
std::string Join(const Container& parts, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out << sep;
    out << p;
    first = false;
  }
  return out.str();
}

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& text);

/// ASCII lowercase.
std::string ToLower(const std::string& text);

/// ASCII uppercase.
std::string ToUpper(const std::string& text);

/// True if `text` starts with / ends with the given affix.
bool StartsWith(const std::string& text, const std::string& prefix);
bool EndsWith(const std::string& text, const std::string& suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string text, const std::string& from,
                       const std::string& to);

/// Renders a count with thousands separators ("4,512,345").
std::string FormatCount(int64_t n);

}  // namespace eba

#endif  // EBA_COMMON_STRING_UTIL_H_
