// Date: civil date/time arithmetic over seconds-since-epoch timestamps.
//
// The access log and event tables store timestamps as int64 seconds (UTC).
// This header supplies the conversions the paper's experiments need: day
// slicing (days 1-6 vs day 7), human-readable rendering matching the
// CareWeb-style "Mon Jan 03 10:16:57 2010" format, and simple parsing.
// Implemented from scratch (Howard Hinnant's civil-days algorithm) so the
// library has no locale/tz dependencies.

#ifndef EBA_COMMON_DATE_H_
#define EBA_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace eba {

/// A broken-down UTC date-time plus conversions to/from epoch seconds.
class Date {
 public:
  Date() = default;

  /// Builds a Date from civil fields; months 1-12, days 1-31.
  static Date FromCivil(int year, int month, int day, int hour = 0,
                        int minute = 0, int second = 0);

  /// Builds a Date from epoch seconds.
  static Date FromSeconds(int64_t seconds);

  /// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS".
  static StatusOr<Date> Parse(const std::string& text);

  int year() const { return year_; }
  int month() const { return month_; }
  int day() const { return day_; }
  int hour() const { return hour_; }
  int minute() const { return minute_; }
  int second() const { return second_; }

  /// Seconds since the Unix epoch.
  int64_t ToSeconds() const;

  /// Days since the Unix epoch (floor). Used for day-of-log slicing.
  int64_t ToEpochDays() const { return EpochDaysFromCivil(year_, month_, day_); }

  /// Day of week, 0 = Sunday ... 6 = Saturday.
  int DayOfWeek() const;

  /// "YYYY-MM-DD HH:MM:SS".
  std::string ToString() const;

  /// CareWeb-style rendering, e.g. "Mon Jan 03 10:16:57 2010".
  std::string ToLogString() const;

  /// Returns this date shifted by a whole number of days (time preserved).
  Date AddDays(int64_t days) const;
  /// Returns this date shifted by seconds.
  Date AddSeconds(int64_t seconds) const;

  bool operator==(const Date& o) const { return ToSeconds() == o.ToSeconds(); }
  bool operator!=(const Date& o) const { return !(*this == o); }
  bool operator<(const Date& o) const { return ToSeconds() < o.ToSeconds(); }
  bool operator<=(const Date& o) const { return ToSeconds() <= o.ToSeconds(); }
  bool operator>(const Date& o) const { return o < *this; }
  bool operator>=(const Date& o) const { return o <= *this; }

  /// Days since epoch for a civil date (Hinnant's days_from_civil).
  static int64_t EpochDaysFromCivil(int year, int month, int day);
  /// Inverse of EpochDaysFromCivil.
  static void CivilFromEpochDays(int64_t days, int* year, int* month,
                                 int* day);

 private:
  int year_ = 1970;
  int month_ = 1;
  int day_ = 1;
  int hour_ = 0;
  int minute_ = 0;
  int second_ = 0;
};

}  // namespace eba

#endif  // EBA_COMMON_DATE_H_
