#include "common/random.h"

#include <cmath>
#include <unordered_set>

#include "common/hash.h"

namespace eba {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  // SplitMix64 seeding as recommended by the xoshiro authors.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  EBA_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  EBA_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

uint64_t Random::Zipf(uint64_t n, double s) {
  EBA_CHECK(n > 0);
  if (s <= 0) return Uniform(n);
  // Inverse-CDF via the harmonic approximation; accurate enough for skewed
  // popularity sampling and O(1) per draw.
  double u = NextDouble();
  if (s == 1.0) {
    double hn = std::log(static_cast<double>(n) + 1.0);
    double x = std::exp(u * hn) - 1.0;
    uint64_t k = static_cast<uint64_t>(x);
    return k >= n ? n - 1 : k;
  }
  double one_minus_s = 1.0 - s;
  double hn = (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0) /
              one_minus_s;
  double x = std::pow(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s) - 1.0;
  uint64_t k = static_cast<uint64_t>(x);
  return k >= n ? n - 1 : k;
}

uint64_t Random::Poisson(double lambda) {
  EBA_CHECK(lambda >= 0);
  if (lambda == 0) return 0;
  if (lambda > 64) {
    // Normal approximation with continuity correction.
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double x = lambda + std::sqrt(lambda) * z + 0.5;
    return x <= 0 ? 0 : static_cast<uint64_t>(x);
  }
  double limit = std::exp(-lambda);
  double prod = NextDouble();
  uint64_t k = 0;
  while (prod > limit) {
    prod *= NextDouble();
    ++k;
  }
  return k;
}

size_t Random::WeightedIndex(const std::vector<double>& weights) {
  EBA_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    EBA_CHECK(w >= 0);
    total += w;
  }
  EBA_CHECK(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Random::SampleWithoutReplacement(size_t n, size_t k) {
  EBA_CHECK(k <= n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    Shuffle(&idx);
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection sample into a set.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = static_cast<size_t>(Uniform(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

Random Random::Fork() { return Random(Next()); }

}  // namespace eba
