// Value: a typed scalar cell used throughout the storage and query layers.
//
// Supported types mirror the needs of the CareWeb-style schema: 64-bit ids,
// doubles, dictionary-encodable strings, timestamps (seconds since epoch),
// booleans, and NULL.

#ifndef EBA_COMMON_VALUE_H_
#define EBA_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace eba {

/// Scalar data types understood by the engine.
enum class DataType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kTimestamp = 5,  // seconds since Unix epoch, stored as int64
};

/// Returns the lowercase SQL-ish name of a type ("int64", "string", ...).
const char* DataTypeToString(DataType type);

/// A single typed scalar. Small, copyable, hashable, totally ordered within
/// a type (cross-type comparisons order by type tag, NULL first).
class Value {
 public:
  /// NULL value.
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(DataType::kBool, v ? 1 : 0); }
  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Timestamp(int64_t seconds) {
    return Value(DataType::kTimestamp, seconds);
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  /// Typed accessors; EBA_CHECK-fail on type mismatch.
  bool AsBool() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  int64_t AsTimestamp() const;

  /// For kBool/kInt64/kTimestamp returns the underlying int64 payload
  /// (used by the dictionary-free fast join paths). CHECK-fails otherwise.
  int64_t RawInt64() const;

  /// Human-readable rendering (timestamps as "YYYY-MM-DD HH:MM:SS").
  std::string ToString() const;

  /// Equality: same type and payload. NULL == NULL is true here (this is
  /// identity equality for hashing/grouping, not SQL ternary logic; the
  /// query layer treats NULL join keys as non-matching).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: by type tag, then payload. Enables use in ordered sets.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Stable 64-bit hash of (type, payload).
  size_t Hash() const;

 private:
  Value(DataType t, int64_t v) : type_(t), scalar_(v) {}
  explicit Value(double v) : type_(DataType::kDouble), scalar_(v) {}
  explicit Value(std::string v)
      : type_(DataType::kString), scalar_(std::move(v)) {}

  DataType type_;
  std::variant<int64_t, double, std::string> scalar_ = int64_t{0};
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace eba

namespace std {
template <>
struct hash<eba::Value> {
  size_t operator()(const eba::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // EBA_COMMON_VALUE_H_
