// Minimal RFC-4180-ish CSV reader/writer used to export tables and
// experiment results. Quoting: fields containing the separator, a quote, or
// a newline are double-quoted with embedded quotes doubled.

#ifndef EBA_COMMON_CSV_H_
#define EBA_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace eba {

/// Serializes one row (adds no trailing newline).
std::string CsvEncodeRow(const std::vector<std::string>& fields,
                         char sep = ',');

/// Parses one physical CSV record (no embedded newlines supported here;
/// table I/O writes one record per line).
StatusOr<std::vector<std::string>> CsvDecodeRow(const std::string& line,
                                                char sep = ',');

/// Writes rows (first row typically a header) to a file.
Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char sep = ',');

/// Reads all records from a file.
StatusOr<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path, char sep = ',');

/// Parses all records from in-memory CSV text (one record per line, as
/// written by CsvWriteFile). Blank lines are skipped.
StatusOr<std::vector<std::vector<std::string>>> CsvParseString(
    const std::string& text, char sep = ',');

}  // namespace eba

#endif  // EBA_COMMON_CSV_H_
