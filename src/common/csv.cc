#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace eba {

namespace {
bool NeedsQuoting(const std::string& field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}
}  // namespace

std::string CsvEncodeRow(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out.push_back(sep);
    const std::string& f = fields[i];
    if (NeedsQuoting(f, sep)) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += f;
    }
  }
  return out;
}

StatusOr<std::vector<std::string>> CsvDecodeRow(const std::string& line,
                                                char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument("unexpected quote mid-field: " + line);
      }
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF endings.
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char sep) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for write: " + path);
  for (const auto& row : rows) {
    out << CsvEncodeRow(row, sep) << '\n';
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path, char sep) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EBA_ASSIGN_OR_RETURN(auto fields, CsvDecodeRow(line, sep));
    rows.push_back(std::move(fields));
  }
  return rows;
}

StatusOr<std::vector<std::vector<std::string>>> CsvParseString(
    const std::string& text, char sep) {
  std::istringstream in(text);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EBA_ASSIGN_OR_RETURN(auto fields, CsvDecodeRow(line, sep));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace eba
