// Minimal leveled logging to stderr plus EBA_CHECK assertions.
//
// The library is quiet by default (level kWarning); benchmarks and examples
// raise the level to kInfo for progress reporting.

#ifndef EBA_COMMON_LOGGING_H_
#define EBA_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace eba {

enum class LogLevel : uint8_t { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Thrown by EBA_CHECK failures; indicates a programming error.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

}  // namespace eba

#define EBA_LOG(level)                                              \
  ::eba::internal::LogMessage(::eba::LogLevel::level, __FILE__, __LINE__)

#define EBA_LOG_DEBUG EBA_LOG(kDebug)
#define EBA_LOG_INFO EBA_LOG(kInfo)
#define EBA_LOG_WARNING EBA_LOG(kWarning)
#define EBA_LOG_ERROR EBA_LOG(kError)

/// Internal invariant check. Unlike Status, a failed check indicates a bug in
/// the library (or its caller) rather than a recoverable condition.
#define EBA_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::eba::CheckFailure(std::string("EBA_CHECK failed: ") + #cond + \
                                " at " + __FILE__ + ":" +                 \
                                std::to_string(__LINE__));                \
    }                                                                     \
  } while (0)

#define EBA_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::eba::CheckFailure(std::string("EBA_CHECK failed: ") + #cond + \
                                " (" + (msg) + ") at " + __FILE__ + ":" + \
                                std::to_string(__LINE__));                \
    }                                                                     \
  } while (0)

#endif  // EBA_COMMON_LOGGING_H_
