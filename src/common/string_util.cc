#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace eba {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string ReplaceAll(std::string text, const std::string& from,
                       const std::string& to) {
  if (from.empty()) return text;
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string FormatCount(int64_t n) {
  bool negative = n < 0;
  std::string digits = std::to_string(negative ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace eba
