#include "common/value.h"

#include "common/date.h"
#include "common/hash.h"
#include "common/logging.h"

namespace eba {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

bool Value::AsBool() const {
  EBA_CHECK(type_ == DataType::kBool);
  return std::get<int64_t>(scalar_) != 0;
}

int64_t Value::AsInt64() const {
  EBA_CHECK(type_ == DataType::kInt64);
  return std::get<int64_t>(scalar_);
}

double Value::AsDouble() const {
  EBA_CHECK(type_ == DataType::kDouble);
  return std::get<double>(scalar_);
}

const std::string& Value::AsString() const {
  EBA_CHECK(type_ == DataType::kString);
  return std::get<std::string>(scalar_);
}

int64_t Value::AsTimestamp() const {
  EBA_CHECK(type_ == DataType::kTimestamp);
  return std::get<int64_t>(scalar_);
}

int64_t Value::RawInt64() const {
  EBA_CHECK(type_ == DataType::kBool || type_ == DataType::kInt64 ||
            type_ == DataType::kTimestamp);
  return std::get<int64_t>(scalar_);
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return std::get<int64_t>(scalar_) ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(std::get<int64_t>(scalar_));
    case DataType::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%.6g", std::get<double>(scalar_));
      return buf;
    }
    case DataType::kString:
      return std::get<std::string>(scalar_);
    case DataType::kTimestamp:
      return Date::FromSeconds(std::get<int64_t>(scalar_)).ToString();
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case DataType::kNull:
      return true;
    case DataType::kDouble:
      return std::get<double>(scalar_) == std::get<double>(other.scalar_);
    case DataType::kString:
      return std::get<std::string>(scalar_) ==
             std::get<std::string>(other.scalar_);
    default:
      return std::get<int64_t>(scalar_) == std::get<int64_t>(other.scalar_);
  }
}

bool Value::operator<(const Value& other) const {
  if (type_ != other.type_) {
    return static_cast<uint8_t>(type_) < static_cast<uint8_t>(other.type_);
  }
  switch (type_) {
    case DataType::kNull:
      return false;
    case DataType::kDouble:
      return std::get<double>(scalar_) < std::get<double>(other.scalar_);
    case DataType::kString:
      return std::get<std::string>(scalar_) <
             std::get<std::string>(other.scalar_);
    default:
      return std::get<int64_t>(scalar_) < std::get<int64_t>(other.scalar_);
  }
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(type_);
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kDouble:
      h = HashCombine(h, std::hash<double>{}(std::get<double>(scalar_)));
      break;
    case DataType::kString:
      h = HashCombine(h,
                      std::hash<std::string>{}(std::get<std::string>(scalar_)));
      break;
    default:
      h = HashCombine(h, Mix64(static_cast<uint64_t>(
                             std::get<int64_t>(scalar_))));
      break;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace eba
