#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace eba {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (level_ < g_log_level.load()) return;
  std::fprintf(stderr, "[eba %s] %s\n", LevelName(level_),
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace eba
