#include "common/date.h"

#include <cstdio>

#include "common/logging.h"

namespace eba {

namespace {
const char* kMonthNames[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                             "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
const char* kDayNames[] = {"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"};
}  // namespace

int64_t Date::EpochDaysFromCivil(int y, int m, int d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void Date::CivilFromEpochDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Date Date::FromCivil(int year, int month, int day, int hour, int minute,
                     int second) {
  EBA_CHECK(month >= 1 && month <= 12);
  EBA_CHECK(day >= 1 && day <= 31);
  EBA_CHECK(hour >= 0 && hour < 24);
  EBA_CHECK(minute >= 0 && minute < 60);
  EBA_CHECK(second >= 0 && second < 60);
  Date dt;
  dt.year_ = year;
  dt.month_ = month;
  dt.day_ = day;
  dt.hour_ = hour;
  dt.minute_ = minute;
  dt.second_ = second;
  return dt;
}

Date Date::FromSeconds(int64_t seconds) {
  int64_t days = seconds / 86400;
  int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  Date dt;
  CivilFromEpochDays(days, &dt.year_, &dt.month_, &dt.day_);
  dt.hour_ = static_cast<int>(rem / 3600);
  dt.minute_ = static_cast<int>((rem % 3600) / 60);
  dt.second_ = static_cast<int>(rem % 60);
  return dt;
}

StatusOr<Date> Date::Parse(const std::string& text) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  int n = sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &y, &mo, &d, &h, &mi, &s);
  if (n != 3 && n != 6) {
    return Status::InvalidArgument("cannot parse date: '" + text + "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || s < 0 || s > 59) {
    return Status::InvalidArgument("date field out of range: '" + text + "'");
  }
  return FromCivil(y, mo, d, h, mi, s);
}

int64_t Date::ToSeconds() const {
  return EpochDaysFromCivil(year_, month_, day_) * 86400 + hour_ * 3600 +
         minute_ * 60 + second_;
}

int Date::DayOfWeek() const {
  // 1970-01-01 was a Thursday (4).
  int64_t days = ToEpochDays();
  int64_t dow = (days + 4) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

std::string Date::ToString() const {
  char buf[32];
  snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", year_, month_,
           day_, hour_, minute_, second_);
  return buf;
}

std::string Date::ToLogString() const {
  char buf[40];
  snprintf(buf, sizeof(buf), "%s %s %02d %02d:%02d:%02d %04d",
           kDayNames[DayOfWeek()], kMonthNames[month_ - 1], day_, hour_,
           minute_, second_, year_);
  return buf;
}

Date Date::AddDays(int64_t days) const { return AddSeconds(days * 86400); }

Date Date::AddSeconds(int64_t seconds) const {
  return FromSeconds(ToSeconds() + seconds);
}

}  // namespace eba
