// Clang thread-safety capability annotations, compiled to nothing on other
// compilers. Annotating a member with EBA_GUARDED_BY(mu_) (or a function
// with EBA_REQUIRES(mu_)) turns the repo's locking discipline from a
// comment into a compile-time proof: clang's -Wthread-safety analysis
// rejects, on *every* path, any access that does not hold the named
// capability — unlike TSAN, which only sees the interleavings a test
// happens to execute. The clang CI jobs build with -Wthread-safety -Werror
// (CMake option EBA_THREAD_SAFETY, default ON).
//
// The annotated Mutex/MutexLock/SharedMutexLock wrappers these macros are
// designed around live in common/mutex.h. Naming and semantics follow the
// official clang Thread Safety Analysis documentation; EBA_ prefixes keep
// the macros out of the global namespace's way.

#ifndef EBA_COMMON_THREAD_ANNOTATIONS_H_
#define EBA_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define EBA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define EBA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Declares a class to be a capability (e.g. a mutex). The string names the
/// capability kind in diagnostics.
#define EBA_CAPABILITY(x) EBA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock and friends).
#define EBA_SCOPED_CAPABILITY EBA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define EBA_GUARDED_BY(x) EBA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The *pointee* of the annotated pointer member is guarded by `x` (the
/// pointer itself is not).
#define EBA_PT_GUARDED_BY(x) EBA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The annotated function may only be called while holding the listed
/// capabilities exclusively; it does not acquire or release them.
#define EBA_REQUIRES(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of EBA_REQUIRES.
#define EBA_REQUIRES_SHARED(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities exclusively and
/// holds them on return.
#define EBA_ACQUIRE(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Shared (reader) variant of EBA_ACQUIRE.
#define EBA_ACQUIRE_SHARED(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities (exclusive or
/// shared; an argument-free EBA_RELEASE on a scoped-capability destructor
/// releases whatever the constructor acquired).
#define EBA_RELEASE(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Shared variant of EBA_RELEASE.
#define EBA_RELEASE_SHARED(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability and returns
/// `result` (true/false) on success.
#define EBA_TRY_ACQUIRE(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The annotated function must be called *without* holding the listed
/// capabilities (it acquires them internally; calling with them held would
/// self-deadlock).
#define EBA_EXCLUDES(...) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume it from here on.
#define EBA_ASSERT_CAPABILITY(x) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The annotated function returns a reference to the named capability
/// (accessor for a boxed mutex).
#define EBA_RETURN_CAPABILITY(x) \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Opts a function out of the analysis entirely. Every use must carry a
/// one-line justification comment; prefer restructuring the code so the
/// analysis can see the discipline instead.
#define EBA_NO_THREAD_SAFETY_ANALYSIS \
  EBA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // EBA_COMMON_THREAD_ANNOTATIONS_H_
