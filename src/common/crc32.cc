#include "common/crc32.h"

#include <array>

namespace eba {

namespace {

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, so eight table lookups
// retire eight input bytes per iteration instead of one. The byte-serial
// loop is latency-bound on the table load (~7 cycles/byte), which made the
// checksum the single largest cost in the WAL append path.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Crc32Tables BuildTables() {
  Crc32Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (size_t s = 1; s < 8; ++s) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[s - 1][i];
      tables.t[s][i] = (prev >> 8) ^ tables.t[0][prev & 0xFFu];
    }
  }
  return tables;
}

// Reads a little-endian u32 from unaligned bytes; compiles to a plain load
// on little-endian targets and stays correct (byte-order independent) on
// big-endian ones.
inline uint32_t LoadLE32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Tables kTables = BuildTables();
  const auto& t = kTables.t;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (n >= 8) {
    const uint32_t lo = LoadLE32(p) ^ c;
    const uint32_t hi = LoadLE32(p + 4);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace eba
