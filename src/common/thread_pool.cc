#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/logging.h"

namespace eba {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  EBA_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    EBA_CHECK_MSG(!shutting_down_, "Submit after ThreadPool destruction began");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t num_threads, size_t num_shards,
                 const std::function<void(size_t)>& fn) {
  if (num_threads <= 1 || num_shards <= 1) {
    ParallelFor(nullptr, num_shards, fn);
    return;
  }
  ThreadPool pool(std::min(num_threads, num_shards));
  ParallelFor(&pool, num_shards, fn);
}

void ParallelFor(ThreadPool* pool, size_t num_shards,
                 const std::function<void(size_t)>& fn) {
  if (num_shards == 0) return;
  std::vector<std::exception_ptr> errors(num_shards);
  if (pool == nullptr || num_shards == 1) {
    // Same contract as the pooled path: every shard runs, then the first
    // error (in shard order) is rethrown.
    for (size_t s = 0; s < num_shards; ++s) {
      try {
        fn(s);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      pool->Submit([&fn, &errors, s] {
        try {
          fn(s);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    }
    pool->Wait();
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<ShardRange> SplitShards(size_t n, size_t max_shards,
                                    size_t min_per_shard) {
  std::vector<ShardRange> shards;
  if (n == 0) return shards;
  size_t per = std::max<size_t>(1, min_per_shard);
  size_t count = std::max<size_t>(1, std::min(max_shards, n / per));
  size_t base = n / count;
  size_t extra = n % count;  // first `extra` shards get one more row
  size_t begin = 0;
  for (size_t s = 0; s < count; ++s) {
    size_t len = base + (s < extra ? 1 : 0);
    shards.push_back(ShardRange{begin, begin + len});
    begin += len;
  }
  return shards;
}

size_t HardwareThreads() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace eba
