#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace eba {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  EBA_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    EBA_CHECK_MSG(!shutting_down_, "Submit after ThreadPool destruction began");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  // Predicate waits are spelled as explicit loops so the guarded reads stay
  // inside the annotated locked scope (a predicate lambda would be analyzed
  // as an unannotated function).
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(size_t num_threads, size_t num_shards,
                 const std::function<void(size_t)>& fn) {
  if (num_threads <= 1 || num_shards <= 1) {
    ParallelFor(nullptr, num_shards, fn);
    return;
  }
  // The pooled overload runs shards on the calling thread too, so spawn one
  // fewer worker to keep total concurrency at num_threads.
  ThreadPool pool(std::min(num_threads - 1, num_shards - 1));
  ParallelFor(&pool, num_shards, fn);
}

namespace {

/// Per-call completion state for the pooled ParallelFor. Shards are handed
/// out through an atomic counter so the caller and any number of pool
/// helpers can pull work concurrently; `errors` is written at distinct
/// indices only and read after every shard completed.
struct ParallelForState {
  std::atomic<size_t> next_shard{0};
  std::atomic<size_t> completed{0};
  // mu/done only sequence the caller's sleep against the last completion
  // notification; the shared progress counters are the atomics above and
  // `errors` is written at distinct indices only, so nothing is guarded.
  Mutex mu;
  CondVar done;
  std::vector<std::exception_ptr> errors;
};

/// Pulls shards until the dispatch counter runs dry. `fn` is guaranteed
/// alive whenever a shard is claimed: the caller blocks until every claimed
/// shard reported completion.
void RunShards(const std::shared_ptr<ParallelForState>& state,
               const std::function<void(size_t)>* fn, size_t num_shards) {
  for (;;) {
    const size_t s = state->next_shard.fetch_add(1);
    if (s >= num_shards) return;
    try {
      (*fn)(s);
    } catch (...) {
      state->errors[s] = std::current_exception();
    }
    if (state->completed.fetch_add(1) + 1 == num_shards) {
      MutexLock lock(state->mu);
      state->done.NotifyAll();
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t num_shards,
                 const std::function<void(size_t)>& fn) {
  if (num_shards == 0) return;
  if (pool == nullptr || num_shards == 1) {
    // Same contract as the pooled path: every shard runs, then the first
    // error (in shard order) is rethrown.
    std::vector<std::exception_ptr> errors(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      try {
        fn(s);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    }
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->errors.resize(num_shards);
  // The caller is one worker; enlist at most num_shards - 1 helpers. A
  // helper that wakes up after the shards ran out exits touching only its
  // shared_ptr copy of the state.
  const size_t helpers = std::min(pool->num_threads(), num_shards - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, fn_ptr = &fn, num_shards] {
      RunShards(state, fn_ptr, num_shards);
    });
  }
  RunShards(state, &fn, num_shards);
  {
    MutexLock lock(state->mu);
    while (state->completed.load() != num_shards) state->done.Wait(state->mu);
  }
  for (auto& e : state->errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<ShardRange> SplitShards(size_t n, size_t max_shards,
                                    size_t min_per_shard) {
  std::vector<ShardRange> shards;
  if (n == 0) return shards;
  size_t per = std::max<size_t>(1, min_per_shard);
  size_t count = std::max<size_t>(1, std::min(max_shards, n / per));
  size_t base = n / count;
  size_t extra = n % count;  // first `extra` shards get one more row
  size_t begin = 0;
  for (size_t s = 0; s < count; ++s) {
    size_t len = base + (s < extra ? 1 : 0);
    shards.push_back(ShardRange{begin, begin + len});
    begin += len;
  }
  return shards;
}

std::vector<ShardRange> SplitShardsAligned(size_t n, size_t max_shards,
                                           size_t min_per_shard,
                                           size_t alignment) {
  return SplitShardsAlignedRange(0, n, max_shards, min_per_shard, alignment);
}

std::vector<ShardRange> SplitShardsAlignedRange(size_t range_begin,
                                                size_t range_end,
                                                size_t max_shards,
                                                size_t min_per_shard,
                                                size_t alignment) {
  std::vector<ShardRange> shards;
  if (range_end <= range_begin) return shards;
  const size_t n = range_end - range_begin;
  const size_t per = std::max<size_t>(1, min_per_shard);
  const size_t count = std::max<size_t>(1, std::min(max_shards, n / per));
  const size_t first_block = alignment > 1 ? range_begin / alignment : 0;
  const size_t last_block = alignment > 1 ? (range_end - 1) / alignment : 0;
  const size_t blocks = last_block - first_block + 1;
  // Alignment is an optimization, never a parallelism cap: when the range
  // spans fewer chunks than the even split would make shards (small and
  // mid-size workloads often fit in one chunk), fall back to the even
  // element split rather than collapsing the shard count.
  if (alignment <= 1 || blocks < count) {
    shards = SplitShards(n, max_shards, min_per_shard);
    for (ShardRange& shard : shards) {
      shard.begin += range_begin;
      shard.end += range_begin;
    }
    return shards;
  }
  // Work in whole alignment blocks: block k covers absolute rows
  // [k*alignment, (k+1)*alignment) clipped to the range. Spreading the
  // remainder of the block division one block at a time keeps shard sizes
  // within one block of each other — a naive "dump the remainder on the
  // last shard" split leaves it up to ~2x the rest, and the slowest shard
  // sets the wall-clock of every ParallelFor. The extra blocks go to the
  // *trailing* shards: the last shard owns the partial tail block (and the
  // first a possibly ragged head), so handing it an extra block keeps the
  // max-min spread at one block; extras on the leading shards would stack
  // a full extra block on top of a full-block shard while the tail shard
  // holds only the partial block, widening the spread to almost two.
  const size_t base = blocks / count;
  const size_t extra = blocks % count;  // trailing shards take one extra block
  size_t block = first_block;
  for (size_t s = 0; s < count; ++s) {
    const size_t begin = std::max(range_begin, block * alignment);
    block += base + (s + extra >= count ? 1 : 0);
    shards.push_back(ShardRange{begin, std::min(range_end, block * alignment)});
  }
  return shards;
}

size_t HardwareThreads() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace eba
