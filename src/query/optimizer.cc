#include "query/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eba {

namespace {
constexpr double kComparisonSelectivity = 1.0 / 3.0;
}  // namespace

CardinalityEstimator::CardinalityEstimator(const Database* db) : db_(db) {
  EBA_CHECK(db != nullptr);
}

StatusOr<double> CardinalityEstimator::EstimateRows(const PathQuery& q) const {
  EBA_RETURN_IF_ERROR(q.Validate(*db_));

  std::vector<const Table*> tables(q.vars.size());
  for (size_t i = 0; i < q.vars.size(); ++i) {
    EBA_ASSIGN_OR_RETURN(tables[i], db_->GetTable(q.vars[i].table));
  }
  auto ndv = [&](const QAttr& a) -> double {
    const ColumnStats& stats =
        tables[static_cast<size_t>(a.var)]->GetOrComputeStats(
            static_cast<size_t>(a.col));
    return std::max<double>(1.0, static_cast<double>(stats.num_distinct));
  };

  std::vector<bool> bound(q.vars.size(), false);
  bound[0] = true;
  double est = static_cast<double>(tables[0]->num_rows());

  // Mirror the executor's greedy application order.
  std::vector<VarCondition> joins = q.join_chain;
  std::vector<bool> applied(joins.size(), false);
  size_t remaining = joins.size();
  while (remaining > 0) {
    int pick = -1;
    bool is_filter = false;
    for (size_t i = 0; i < joins.size(); ++i) {
      if (applied[i]) continue;
      bool lb = bound[joins[i].lhs.var];
      bool rb = bound[joins[i].rhs.var];
      if (lb && rb) {
        pick = static_cast<int>(i);
        is_filter = true;
        break;
      }
      if ((lb || rb) && pick < 0) pick = static_cast<int>(i);
    }
    if (pick < 0) {
      return Status::InvalidArgument("disconnected query in estimator");
    }
    const VarCondition& c = joins[static_cast<size_t>(pick)];
    applied[static_cast<size_t>(pick)] = true;
    --remaining;

    if (is_filter) {
      est *= (c.op == CmpOp::kEq)
                 ? 1.0 / std::max(ndv(c.lhs), ndv(c.rhs))
                 : kComparisonSelectivity;
    } else {
      const bool lhs_bound = bound[c.lhs.var];
      const QAttr probe = lhs_bound ? c.lhs : c.rhs;
      const QAttr build = lhs_bound ? c.rhs : c.lhs;
      const Table* t = tables[static_cast<size_t>(build.var)];
      est = est * static_cast<double>(t->num_rows()) /
            std::max(ndv(probe), ndv(build));
      bound[static_cast<size_t>(build.var)] = true;
    }
  }

  for (const auto& c : q.extra_conditions) {
    est *= (c.op == CmpOp::kEq) ? 1.0 / std::max(ndv(c.lhs), ndv(c.rhs))
                                : kComparisonSelectivity;
  }
  for (const auto& c : q.const_conditions) {
    est *= (c.op == CmpOp::kEq) ? 1.0 / ndv(c.lhs) : kComparisonSelectivity;
  }
  return std::max(est, 0.0);
}

StatusOr<double> CardinalityEstimator::EstimateJoinStep(const PathQuery& q,
                                                        double current_rows,
                                                        QAttr probe,
                                                        QAttr build) const {
  EBA_ASSIGN_OR_RETURN(
      const Table* probe_table,
      db_->GetTable(q.vars[static_cast<size_t>(probe.var)].table));
  EBA_ASSIGN_OR_RETURN(
      const Table* build_table,
      db_->GetTable(q.vars[static_cast<size_t>(build.var)].table));
  return EstimateJoinStep(probe_table, probe, build_table, build,
                          current_rows);
}

double CardinalityEstimator::EstimateJoinStep(const Table* probe_table,
                                              QAttr probe,
                                              const Table* build_table,
                                              QAttr build,
                                              double current_rows) const {
  auto ndv = [](const Table* t, int col) {
    const ColumnStats& stats = t->GetOrComputeStats(static_cast<size_t>(col));
    return std::max<double>(1.0, static_cast<double>(stats.num_distinct));
  };
  return current_rows * static_cast<double>(build_table->num_rows()) /
         std::max(ndv(probe_table, probe.col), ndv(build_table, build.col));
}

StatusOr<double> CardinalityEstimator::EstimateDistinctLogIds(
    const PathQuery& q, QAttr lid_attr) const {
  if (lid_attr.var != 0) {
    return Status::InvalidArgument("lid attribute must belong to variable 0");
  }
  EBA_ASSIGN_OR_RETURN(double rows, EstimateRows(q));
  EBA_ASSIGN_OR_RETURN(const Table* log_table, db_->GetTable(q.vars[0].table));
  double n = static_cast<double>(log_table->num_rows());
  if (n <= 0) return 0.0;
  // Balls-into-bins: expected number of distinct lids hit by `rows` result
  // tuples assuming lids are uniformly represented.
  return n * (1.0 - std::exp(-rows / n));
}

}  // namespace eba
