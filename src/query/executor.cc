#include "query/executor.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace eba {

namespace {

struct RowHasher {
  size_t operator()(const Row& row) const {
    size_t h = 0x51ed270b;
    for (const auto& v : row) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return a == b; }
};

/// Projects `rel` onto `attrs` (all of which must be present), optionally
/// deduplicating rows.
Relation Project(const Relation& rel, const std::vector<QAttr>& attrs,
                 bool dedup) {
  // Fast path: identical header, no dedup.
  if (!dedup && attrs == rel.attrs) return rel;
  std::vector<int> positions;
  positions.reserve(attrs.size());
  for (const auto& a : attrs) {
    int idx = rel.AttrIndex(a);
    EBA_CHECK_MSG(idx >= 0, "projection attribute missing from relation");
    positions.push_back(idx);
  }
  Relation out;
  out.attrs = attrs;
  out.rows.reserve(rel.rows.size());
  std::unordered_set<Row, RowHasher, RowEq> seen;
  for (const auto& row : rel.rows) {
    Row projected;
    projected.reserve(positions.size());
    for (int p : positions) projected.push_back(row[static_cast<size_t>(p)]);
    if (dedup) {
      if (!seen.insert(projected).second) continue;
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

}  // namespace

Executor::Executor(const Database* db) : db_(db) { EBA_CHECK(db != nullptr); }

StatusOr<Relation> Executor::Materialize(const PathQuery& q) const {
  std::vector<QAttr> output = q.projection;
  if (output.empty()) output = q.ReferencedAttrs();
  return Execute(q, output, /*dedup_intermediate=*/false,
                 /*lid_filter=*/nullptr, QAttr{});
}

StatusOr<Relation> Executor::MaterializeForLogIds(
    const PathQuery& q, QAttr lid_attr, const std::vector<Value>& lids) const {
  if (lid_attr.var != 0) {
    return Status::InvalidArgument("lid attribute must belong to variable 0");
  }
  std::vector<QAttr> output = q.projection;
  if (output.empty()) output = q.ReferencedAttrs();
  // Ensure the lid is part of the output so callers can group instances.
  if (std::find(output.begin(), output.end(), lid_attr) == output.end()) {
    output.insert(output.begin(), lid_attr);
  }
  return Execute(q, output, /*dedup_intermediate=*/false, &lids, lid_attr);
}

StatusOr<int64_t> Executor::CountDistinct(const PathQuery& q, QAttr lid_attr,
                                          SupportStrategy strategy) const {
  EBA_ASSIGN_OR_RETURN(auto values, DistinctValues(q, lid_attr, strategy));
  return static_cast<int64_t>(values.size());
}

StatusOr<std::vector<Value>> Executor::DistinctValues(
    const PathQuery& q, QAttr lid_attr, SupportStrategy strategy) const {
  if (lid_attr.var != 0) {
    return Status::InvalidArgument("lid attribute must belong to variable 0");
  }
  std::vector<QAttr> output = {lid_attr};
  EBA_ASSIGN_OR_RETURN(
      Relation rel,
      Execute(q, output,
              strategy == SupportStrategy::kDedupFrontier,
              /*lid_filter=*/nullptr, lid_attr));
  std::unordered_set<Value> distinct;
  distinct.reserve(rel.rows.size());
  for (const auto& row : rel.rows) distinct.insert(row[0]);
  return std::vector<Value>(distinct.begin(), distinct.end());
}

StatusOr<Relation> Executor::Execute(const PathQuery& q,
                                     const std::vector<QAttr>& output_attrs,
                                     bool dedup_intermediate,
                                     const std::vector<Value>* lid_filter,
                                     QAttr lid_attr) const {
  EBA_RETURN_IF_ERROR(q.Validate(*db_));
  stats_ = ExecStats{};

  // Resolve tuple variables to tables.
  std::vector<const Table*> tables(q.vars.size());
  for (size_t i = 0; i < q.vars.size(); ++i) {
    EBA_ASSIGN_OR_RETURN(tables[i], db_->GetTable(q.vars[i].table));
  }

  // Condition bookkeeping.
  std::vector<VarCondition> joins = q.join_chain;
  std::vector<bool> join_applied(joins.size(), false);
  std::vector<VarCondition> extras = q.extra_conditions;
  std::vector<bool> extra_applied(extras.size(), false);
  std::vector<ConstCondition> consts = q.const_conditions;
  std::vector<bool> const_applied(consts.size(), false);

  std::vector<bool> bound(q.vars.size(), false);
  bound[0] = true;

  // The set of attributes a tuple variable must contribute when it is bound:
  // every attribute of that variable referenced by any condition or output.
  auto needed_for_var = [&](int var) {
    std::set<QAttr> needed;
    for (const auto& c : joins) {
      if (c.lhs.var == var) needed.insert(c.lhs);
      if (c.rhs.var == var) needed.insert(c.rhs);
    }
    for (const auto& c : extras) {
      if (c.lhs.var == var) needed.insert(c.lhs);
      if (c.rhs.var == var) needed.insert(c.rhs);
    }
    for (const auto& c : consts) {
      if (c.lhs.var == var) needed.insert(c.lhs);
    }
    for (const auto& a : output_attrs) {
      if (a.var == var) needed.insert(a);
    }
    return std::vector<QAttr>(needed.begin(), needed.end());
  };

  // Attributes still needed downstream of the current point: outputs plus
  // attributes of unapplied conditions.
  auto downstream_attrs = [&](const Relation& rel) {
    std::set<QAttr> needed(output_attrs.begin(), output_attrs.end());
    for (size_t i = 0; i < joins.size(); ++i) {
      if (join_applied[i]) continue;
      needed.insert(joins[i].lhs);
      needed.insert(joins[i].rhs);
    }
    for (size_t i = 0; i < extras.size(); ++i) {
      if (extra_applied[i]) continue;
      needed.insert(extras[i].lhs);
      needed.insert(extras[i].rhs);
    }
    for (size_t i = 0; i < consts.size(); ++i) {
      if (const_applied[i]) continue;
      needed.insert(consts[i].lhs);
    }
    std::vector<QAttr> present;
    for (const auto& a : needed) {
      if (rel.AttrIndex(a) >= 0) present.push_back(a);
    }
    return present;
  };

  // Applies every filter condition whose variables are all bound and whose
  // attributes are materialized in `rel`.
  auto apply_filters = [&](Relation* rel) {
    auto run_filter = [&](auto get_lhs, auto pass) {
      std::vector<Row> kept;
      kept.reserve(rel->rows.size());
      for (auto& row : rel->rows) {
        if (pass(row)) kept.push_back(std::move(row));
      }
      rel->rows = std::move(kept);
      (void)get_lhs;
    };
    for (size_t i = 0; i < extras.size(); ++i) {
      if (extra_applied[i]) continue;
      const auto& c = extras[i];
      if (!bound[c.lhs.var] || !bound[c.rhs.var]) continue;
      int li = rel->AttrIndex(c.lhs);
      int ri = rel->AttrIndex(c.rhs);
      EBA_CHECK(li >= 0 && ri >= 0);
      extra_applied[i] = true;
      run_filter(nullptr, [&](const Row& row) {
        return EvalCmp(row[static_cast<size_t>(li)], c.op,
                       row[static_cast<size_t>(ri)]);
      });
    }
    for (size_t i = 0; i < consts.size(); ++i) {
      if (const_applied[i]) continue;
      const auto& c = consts[i];
      if (!bound[c.lhs.var]) continue;
      int li = rel->AttrIndex(c.lhs);
      EBA_CHECK(li >= 0);
      const_applied[i] = true;
      run_filter(nullptr, [&](const Row& row) {
        return EvalCmp(row[static_cast<size_t>(li)], c.op, c.rhs);
      });
    }
  };

  // --- Initial relation: variable 0 (the log). ---
  Relation rel;
  rel.attrs = needed_for_var(0);
  const Table* log_table = tables[0];
  auto emit_log_row = [&](size_t r) {
    Row row;
    row.reserve(rel.attrs.size());
    for (const auto& a : rel.attrs) {
      row.push_back(log_table->Get(r, static_cast<size_t>(a.col)));
    }
    rel.rows.push_back(std::move(row));
  };
  if (lid_filter != nullptr) {
    const HashIndex& idx =
        log_table->GetOrBuildIndex(static_cast<size_t>(lid_attr.col));
    std::unordered_set<size_t> rows_seen;
    for (const auto& lid : *lid_filter) {
      for (uint32_t r : idx.Lookup(lid)) {
        if (rows_seen.insert(r).second) emit_log_row(r);
      }
    }
  } else {
    rel.rows.reserve(log_table->num_rows());
    for (size_t r = 0; r < log_table->num_rows(); ++r) emit_log_row(r);
  }
  stats_.peak_intermediate = std::max(stats_.peak_intermediate, rel.rows.size());
  apply_filters(&rel);
  if (dedup_intermediate) {
    rel = Project(rel, downstream_attrs(rel), /*dedup=*/true);
  }

  // --- Join loop: greedily apply chain conditions. ---
  size_t remaining = joins.size();
  while (remaining > 0) {
    // Prefer a filter (both sides bound), otherwise the first join that
    // binds a new variable.
    int pick = -1;
    bool pick_is_filter = false;
    for (size_t i = 0; i < joins.size(); ++i) {
      if (join_applied[i]) continue;
      bool lb = bound[joins[i].lhs.var];
      bool rb = bound[joins[i].rhs.var];
      if (lb && rb) {
        pick = static_cast<int>(i);
        pick_is_filter = true;
        break;
      }
      if ((lb || rb) && pick < 0) pick = static_cast<int>(i);
    }
    if (pick < 0) {
      return Status::InvalidArgument(
          "query is disconnected: no join condition touches a bound variable");
    }
    const VarCondition& c = joins[static_cast<size_t>(pick)];
    join_applied[static_cast<size_t>(pick)] = true;
    --remaining;

    if (pick_is_filter) {
      int li = rel.AttrIndex(c.lhs);
      int ri = rel.AttrIndex(c.rhs);
      EBA_CHECK(li >= 0 && ri >= 0);
      std::vector<Row> kept;
      kept.reserve(rel.rows.size());
      for (auto& row : rel.rows) {
        if (EvalCmp(row[static_cast<size_t>(li)], c.op,
                    row[static_cast<size_t>(ri)])) {
          kept.push_back(std::move(row));
        }
      }
      rel.rows = std::move(kept);
    } else {
      if (c.op != CmpOp::kEq) {
        return Status::Unimplemented(
            "non-equality join in chain; put theta conditions in "
            "extra_conditions");
      }
      const bool lhs_bound = bound[c.lhs.var];
      const QAttr bound_attr = lhs_bound ? c.lhs : c.rhs;
      const QAttr new_attr = lhs_bound ? c.rhs : c.lhs;
      const int new_var = new_attr.var;
      const Table* new_table = tables[static_cast<size_t>(new_var)];
      const HashIndex& idx =
          new_table->GetOrBuildIndex(static_cast<size_t>(new_attr.col));

      const std::vector<QAttr> new_cols = needed_for_var(new_var);
      const int probe_idx = rel.AttrIndex(bound_attr);
      EBA_CHECK(probe_idx >= 0);

      Relation next;
      next.attrs = rel.attrs;
      next.attrs.insert(next.attrs.end(), new_cols.begin(), new_cols.end());
      for (const auto& row : rel.rows) {
        const Value& key = row[static_cast<size_t>(probe_idx)];
        if (key.is_null()) continue;
        for (uint32_t match : idx.Lookup(key)) {
          Row combined = row;
          combined.reserve(next.attrs.size());
          for (const auto& a : new_cols) {
            combined.push_back(
                new_table->Get(match, static_cast<size_t>(a.col)));
          }
          next.rows.push_back(std::move(combined));
        }
      }
      bound[static_cast<size_t>(new_var)] = true;
      stats_.joins_executed++;
      stats_.rows_emitted += next.rows.size();
      stats_.peak_intermediate =
          std::max(stats_.peak_intermediate, next.rows.size());
      rel = std::move(next);
    }

    apply_filters(&rel);
    if (dedup_intermediate) {
      rel = Project(rel, downstream_attrs(rel), /*dedup=*/true);
    }
  }

  // Every variable must have been bound (otherwise the query was not a
  // connected path) and every decoration applied.
  for (size_t i = 0; i < q.vars.size(); ++i) {
    if (!bound[i]) {
      return Status::InvalidArgument("tuple variable '" + q.vars[i].alias +
                                     "' is not connected to the query path");
    }
  }
  for (size_t i = 0; i < extras.size(); ++i) {
    if (!extra_applied[i]) {
      return Status::Internal("decoration condition left unapplied");
    }
  }
  for (size_t i = 0; i < consts.size(); ++i) {
    if (!const_applied[i]) {
      return Status::Internal("literal condition left unapplied");
    }
  }

  return Project(rel, output_attrs, /*dedup=*/dedup_intermediate);
}

}  // namespace eba
