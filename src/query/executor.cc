#include "query/executor.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "query/optimizer.h"
#include "query/plan_cache.h"
#include "storage/chunk.h"

namespace eba {

namespace {

// ===========================================================================
// Shared helpers.
// ===========================================================================

/// Raw typed comparison, mirroring Value's same-type ordering.
template <typename T>
bool RawCmp(const T& a, CmpOp op, const T& b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kGt:
      return a > b;
  }
  return false;
}

/// Matches of `lid` below the snapshot bound in the index over `col`, using
/// the raw int64 probe when both sides are integer-like (the standard Lid
/// column) instead of routing a boxed Value through HashIndex::Lookup.
std::vector<uint32_t> LidMatches(const HashIndex& idx, const Column& col,
                                 const Value& lid, size_t bound) {
  if (col.IsIntLike() &&
      (lid.type() == DataType::kBool || lid.type() == DataType::kInt64 ||
       lid.type() == DataType::kTimestamp)) {
    const RowIdSpan span = idx.LookupInt64(lid.RawInt64()).ClampTo(bound);
    return std::vector<uint32_t>(span.begin(), span.end());
  }
  return idx.Lookup(lid, bound);
}

// ===========================================================================
// Boxed reference engine helpers.
// ===========================================================================

struct RowHasher {
  size_t operator()(const Row& row) const {
    size_t h = 0x51ed270b;
    for (const auto& v : row) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return a == b; }
};

/// Projects `rel` onto `attrs` (all of which must be present), optionally
/// deduplicating rows. Takes the relation by value so callers can move it in
/// and the no-op fast path moves it back out instead of deep-copying.
Relation Project(Relation rel, const std::vector<QAttr>& attrs, bool dedup) {
  // Fast path: identical header, no dedup.
  if (!dedup && attrs == rel.attrs) return rel;
  std::vector<int> positions;
  positions.reserve(attrs.size());
  for (const auto& a : attrs) {
    int idx = rel.AttrIndex(a);
    EBA_CHECK_MSG(idx >= 0, "projection attribute missing from relation");
    positions.push_back(idx);
  }
  Relation out;
  out.attrs = attrs;
  out.rows.reserve(rel.rows.size());
  std::optional<std::unordered_set<Row, RowHasher, RowEq>> seen;
  if (dedup) seen.emplace();
  for (const auto& row : rel.rows) {
    Row projected;
    projected.reserve(positions.size());
    for (int p : positions) projected.push_back(row[static_cast<size_t>(p)]);
    if (seen) {
      if (!seen->insert(projected).second) continue;
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

// ===========================================================================
// Late-materialization engine: the row-id frame.
// ===========================================================================

/// A struct-of-arrays intermediate: one row-id column per bound tuple
/// variable. Tuple i of the frame is (ids[0][i], ids[1][i], ...) — row ids
/// into the tables of vars[0], vars[1], ... No boxed Value exists here.
struct Frame {
  std::vector<int> vars;                   // slot -> tuple variable
  std::vector<std::vector<uint32_t>> ids;  // slot -> row ids (equal lengths)

  size_t size() const { return ids.empty() ? 0 : ids[0].size(); }

  int SlotOf(int var) const {
    for (size_t s = 0; s < vars.size(); ++s) {
      if (vars[s] == var) return static_cast<int>(s);
    }
    return -1;
  }
};

std::vector<uint32_t> GatherU32(const std::vector<uint32_t>& src,
                                const std::vector<uint32_t>& sel) {
  std::vector<uint32_t> out(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) out[i] = src[sel[i]];
  return out;
}

/// Morsel fan-out context for one execution: how probe and filter scans are
/// partitioned over the thread pool. Morsels() returns an empty vector as
/// the "run serial" sentinel (no pool, one thread, or too few rows).
struct ParCtx {
  ThreadPool* pool = nullptr;
  size_t threads = 1;
  size_t min_rows = 4096;
  ExecStats* stats = nullptr;

  std::vector<ShardRange> Morsels(size_t n) const {
    if (pool == nullptr || threads <= 1) return {};
    // Chunk-aligned when it costs no shards: for the variable-0 scan (frame
    // positions == table rows) a probe morsel then never straddles a column
    // chunk; for gathered frames the aligned split is just another legal
    // contiguous partition (merges are shard-ordered either way).
    std::vector<ShardRange> shards = SplitShardsAligned(
        n, threads, std::max<size_t>(1, min_rows), kColumnChunkRows);
    if (shards.size() <= 1) return {};
    if (stats != nullptr) {
      stats->max_probe_shards = std::max(stats->max_probe_shards, shards.size());
    }
    return shards;
  }
};

ParCtx MakePar(ThreadPool* pool, const ExecutorOptions& options,
               ExecStats* stats) {
  ParCtx par;
  par.pool = pool;
  par.threads = pool == nullptr ? 1 : options.num_threads;
  par.min_rows = std::max<size_t>(1, options.min_rows_per_morsel);
  par.stats = stats;
  return par;
}

/// Sorts `v` ascending with the same contiguous sharding as the probe
/// phase: morsels are sorted independently on the pool, then merged
/// pairwise (the merges of one round also run concurrently). Sorting is
/// order-insensitive, so the result is identical to std::sort at any
/// thread count.
void ParallelSortInt64(std::vector<int64_t>* v, const ParCtx& par) {
  std::vector<ShardRange> runs = par.Morsels(v->size());
  if (runs.empty()) {
    std::sort(v->begin(), v->end());
    return;
  }
  ParallelFor(par.pool, runs.size(), [&](size_t s) {
    std::sort(v->begin() + static_cast<long>(runs[s].begin),
              v->begin() + static_cast<long>(runs[s].end));
  });
  while (runs.size() > 1) {
    const size_t pairs = runs.size() / 2;
    std::vector<ShardRange> next((runs.size() + 1) / 2);
    ParallelFor(par.pool, pairs, [&](size_t p) {
      const ShardRange& a = runs[2 * p];
      const ShardRange& b = runs[2 * p + 1];
      std::inplace_merge(v->begin() + static_cast<long>(a.begin),
                         v->begin() + static_cast<long>(b.begin),
                         v->begin() + static_cast<long>(b.end));
      next[p] = ShardRange{a.begin, b.end};
    });
    if (runs.size() % 2 != 0) next[pairs] = runs.back();
    runs = std::move(next);
  }
}

/// Keeps exactly the tuples for which `pred(i)` holds, compacting every
/// row-id column. The predicate runs before any column moves. With morsels,
/// per-shard keep lists are built independently and concatenated in shard
/// order — byte-identical to the serial scan at any thread count.
template <typename Pred>
void FilterFrame(Frame* f, const ParCtx& par, Pred pred) {
  const size_t n = f->size();
  if (n == 0) return;
  const std::vector<ShardRange> shards = par.Morsels(n);
  if (shards.empty()) {
    std::vector<uint32_t> keep;
    keep.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (pred(i)) keep.push_back(i);
    }
    if (keep.size() == n) return;
    for (auto& col : f->ids) col = GatherU32(col, keep);
    return;
  }
  std::vector<std::vector<uint32_t>> keeps(shards.size());
  ParallelFor(par.pool, shards.size(), [&](size_t s) {
    std::vector<uint32_t>& k = keeps[s];
    k.reserve(shards[s].end - shards[s].begin);
    for (size_t i = shards[s].begin; i < shards[s].end; ++i) {
      if (pred(static_cast<uint32_t>(i))) k.push_back(static_cast<uint32_t>(i));
    }
  });
  size_t total = 0;
  std::vector<size_t> offsets(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    offsets[s] = total;
    total += keeps[s].size();
  }
  if (total == n) return;
  std::vector<std::vector<uint32_t>> compacted(f->ids.size(),
                                               std::vector<uint32_t>(total));
  ParallelFor(par.pool, shards.size(), [&](size_t s) {
    for (size_t c = 0; c < f->ids.size(); ++c) {
      const std::vector<uint32_t>& src = f->ids[c];
      std::vector<uint32_t>& dst = compacted[c];
      size_t o = offsets[s];
      for (uint32_t i : keeps[s]) dst[o++] = src[i];
    }
  });
  f->ids = std::move(compacted);
}

void ClearFrame(Frame* f) {
  for (auto& col : f->ids) col.clear();
}

struct U32VecHasher {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 0x7a3c19d5;
    for (uint32_t x : v) h = HashCombine(h, std::hash<uint32_t>{}(x));
    return h;
  }
};

/// Removes duplicate row-id tuples. Specialized for the 1- and 2-slot
/// frames the distinct-lid semi-join produces (a packed integer key)
/// before falling back to a generic tuple set. First-occurrence order is
/// semantic, so this stays serial.
void DedupFrame(Frame* f) {
  const size_t n = f->size();
  if (n == 0 || f->ids.empty()) return;
  std::vector<uint32_t> keep;
  keep.reserve(n);
  if (f->ids.size() == 1) {
    const auto& c0 = f->ids[0];
    std::unordered_set<uint32_t> seen;
    seen.reserve(2 * n);
    for (uint32_t i = 0; i < n; ++i) {
      if (seen.insert(c0[i]).second) keep.push_back(i);
    }
  } else if (f->ids.size() == 2) {
    const auto& c0 = f->ids[0];
    const auto& c1 = f->ids[1];
    std::unordered_set<uint64_t> seen;
    seen.reserve(2 * n);
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t key = (static_cast<uint64_t>(c0[i]) << 32) | c1[i];
      if (seen.insert(key).second) keep.push_back(i);
    }
  } else {
    std::unordered_set<std::vector<uint32_t>, U32VecHasher> seen;
    seen.reserve(2 * n);
    std::vector<uint32_t> tuple(f->ids.size());
    for (uint32_t i = 0; i < n; ++i) {
      for (size_t s = 0; s < f->ids.size(); ++s) tuple[s] = f->ids[s][i];
      if (seen.insert(tuple).second) keep.push_back(i);
    }
  }
  if (keep.size() == n) return;
  for (auto& col : f->ids) col = GatherU32(col, keep);
}

// ===========================================================================
// Compiled-plan step application. Each function interprets one frozen
// PlanStep against the frame; record and replay share these, so a replayed
// plan is executed by exactly the code that executed it at record time.
// ===========================================================================

/// Applies a bound-bound condition directly against raw column payloads
/// (kJoinFilter / kVarVarFilter steps). Same-type integer-like columns
/// compare int64 payloads, strings compare dictionary codes (same column)
/// or dictionary strings, doubles compare raw doubles; any cross-type pair
/// falls back to boxed EvalCmp so the result is bit-identical to the
/// reference engine.
void ApplyVarVarStep(Frame* f, const PlanStep& st, const ParCtx& par) {
  const std::vector<uint32_t>& lids = f->ids[static_cast<size_t>(st.lhs_slot)];
  const std::vector<uint32_t>& rids = f->ids[static_cast<size_t>(st.rhs_slot)];
  const Column* lc = st.lhs_col;
  const Column* rc = st.rhs_col;
  const CmpOp op = st.op;
  if (lc->type() == rc->type() && lc->IsIntLike()) {
    FilterFrame(f, par, [&](uint32_t i) {
      const uint32_t lr = lids[i], rr = rids[i];
      if (lc->IsNull(lr) || rc->IsNull(rr)) return false;
      return RawCmp(lc->Int64At(lr), op, rc->Int64At(rr));
    });
  } else if (lc->type() == rc->type() && lc->IsString()) {
    if (op == CmpOp::kEq && lc == rc) {
      FilterFrame(f, par, [&](uint32_t i) {
        const uint32_t lr = lids[i], rr = rids[i];
        if (lc->IsNull(lr) || rc->IsNull(rr)) return false;
        return lc->StringCodeAt(lr) == rc->StringCodeAt(rr);
      });
    } else {
      FilterFrame(f, par, [&](uint32_t i) {
        const uint32_t lr = lids[i], rr = rids[i];
        if (lc->IsNull(lr) || rc->IsNull(rr)) return false;
        return RawCmp(lc->StringAt(lr), op, rc->StringAt(rr));
      });
    }
  } else if (lc->type() == rc->type() && lc->type() == DataType::kDouble) {
    FilterFrame(f, par, [&](uint32_t i) {
      const uint32_t lr = lids[i], rr = rids[i];
      if (lc->IsNull(lr) || rc->IsNull(rr)) return false;
      return RawCmp(lc->DoubleAt(lr), op, rc->DoubleAt(rr));
    });
  } else {
    FilterFrame(f, par, [&](uint32_t i) {
      return EvalCmp(lc->Get(lids[i]), op, rc->Get(rids[i]));
    });
  }
}

/// Compiles an attribute-literal condition: the literal is resolved once at
/// plan time (raw int64 / dictionary code / string / double) instead of per
/// row per execution. Cross-type pairs fall back to boxed EvalCmp.
PlanStep CompileConstFilter(int slot, const Column* c, CmpOp op,
                            const Value& rhs) {
  PlanStep st;
  st.kind = PlanStep::Kind::kConstFilter;
  st.lhs_slot = slot;
  st.lhs_col = c;
  st.op = op;
  if (rhs.is_null()) {
    st.lit_kind = PlanStep::LitKind::kNeverMatches;  // EvalCmp is false
  } else if (c->IsIntLike() && rhs.type() == c->type()) {
    st.lit_kind = PlanStep::LitKind::kInt64;
    st.lit_int = rhs.RawInt64();
  } else if (c->IsString() && rhs.type() == DataType::kString) {
    if (op == CmpOp::kEq) {
      auto code = c->FindStringCode(rhs.AsString());
      if (code) {
        st.lit_kind = PlanStep::LitKind::kStringCode;
        st.lit_int = *code;
      } else {
        // Literal not in the dictionary: no row can match — but appends may
        // mint the code later, so keep the literal for append-rebinds.
        st.lit_kind = PlanStep::LitKind::kNeverMatches;
        st.lit_string = rhs.AsString();
        st.lit_rebindable = true;
      }
    } else {
      st.lit_kind = PlanStep::LitKind::kString;
      st.lit_string = rhs.AsString();
    }
  } else if (c->type() == DataType::kDouble &&
             rhs.type() == DataType::kDouble) {
    st.lit_kind = PlanStep::LitKind::kDouble;
    st.lit_double = rhs.AsDouble();
  } else {
    st.lit_kind = PlanStep::LitKind::kBoxed;
    st.lit_value = rhs;
  }
  return st;
}

void ApplyConstStep(Frame* f, const PlanStep& st, const ParCtx& par) {
  const std::vector<uint32_t>& sids = f->ids[static_cast<size_t>(st.lhs_slot)];
  const Column* c = st.lhs_col;
  const CmpOp op = st.op;
  switch (st.lit_kind) {
    case PlanStep::LitKind::kNeverMatches:
      ClearFrame(f);
      return;
    case PlanStep::LitKind::kInt64: {
      const int64_t key = st.lit_int;
      FilterFrame(f, par, [&](uint32_t i) {
        const uint32_t r = sids[i];
        if (c->IsNull(r)) return false;
        return RawCmp(c->Int64At(r), op, key);
      });
      return;
    }
    case PlanStep::LitKind::kStringCode: {
      const int64_t key = st.lit_int;
      FilterFrame(f, par, [&](uint32_t i) {
        const uint32_t r = sids[i];
        if (c->IsNull(r)) return false;
        return c->StringCodeAt(r) == key;
      });
      return;
    }
    case PlanStep::LitKind::kString: {
      const std::string& key = st.lit_string;
      FilterFrame(f, par, [&](uint32_t i) {
        const uint32_t r = sids[i];
        if (c->IsNull(r)) return false;
        return RawCmp(c->StringAt(r), op, key);
      });
      return;
    }
    case PlanStep::LitKind::kDouble: {
      const double key = st.lit_double;
      FilterFrame(f, par, [&](uint32_t i) {
        const uint32_t r = sids[i];
        if (c->IsNull(r)) return false;
        return RawCmp(c->DoubleAt(r), op, key);
      });
      return;
    }
    case PlanStep::LitKind::kBoxed:
      FilterFrame(f, par, [&](uint32_t i) {
        return EvalCmp(c->Get(sids[i]), op, st.lit_value);
      });
      return;
  }
}

/// Applies a semi-join drop step: rebuilds the frame from the surviving
/// slots, then deduplicates the remaining row-id tuples.
void ApplyDropStep(Frame* f, const PlanStep& st) {
  if (st.drop_keep_slots.size() != f->ids.size()) {
    Frame next;
    next.vars.reserve(st.drop_keep_slots.size());
    next.ids.reserve(st.drop_keep_slots.size());
    for (uint32_t s : st.drop_keep_slots) {
      next.vars.push_back(f->vars[s]);
      next.ids.push_back(std::move(f->ids[s]));
    }
    *f = std::move(next);
  }
  if (st.dedup) DedupFrame(f);
}

/// One hash-join step: probes the build side's index with raw payloads (or
/// pre-translated dictionary codes) and appends row ids — the accumulated
/// tuple is never copied as boxed values, only its uint32 columns are
/// gathered through the selection vector. With morsels, the probe column is
/// partitioned into contiguous shards; per-shard selection vectors are
/// built independently and concatenated in shard order, so the output frame
/// is byte-identical to the serial probe at any thread count.
void ExecuteJoinStep(Frame* f, const PlanStep& st, const ParCtx& par,
                     ExecStats* stats, size_t build_bound) {
  const std::vector<uint32_t>& pids = f->ids[static_cast<size_t>(st.probe_slot)];
  const size_t n = f->size();
  const Column& probe_col = *st.probe_col;
  const HashIndex& idx = *st.index;

  auto probe_range = [&](size_t begin, size_t end, std::vector<uint32_t>* sel,
                         std::vector<uint32_t>* new_ids) {
    // Every probe clamps its match list to the build table's snapshot
    // bound: bucket row lists are ascending, so the clamp is a binary
    // search, and rows the concurrent writer appended past the pinned
    // watermark never join.
    auto emit = [&](size_t i, RowIdSpan matches) {
      for (uint32_t m : matches) {
        sel->push_back(static_cast<uint32_t>(i));
        new_ids->push_back(m);
      }
    };
    switch (st.probe_kind) {
      case PlanStep::ProbeKind::kInt64:
        for (size_t i = begin; i < end; ++i) {
          const uint32_t r = pids[i];
          if (probe_col.IsNull(r)) continue;
          emit(i, idx.LookupInt64(probe_col.Int64At(r)).ClampTo(build_bound));
        }
        break;
      case PlanStep::ProbeKind::kStringSameColumn:
        for (size_t i = begin; i < end; ++i) {
          const uint32_t r = pids[i];
          if (probe_col.IsNull(r)) continue;
          emit(i,
               idx.LookupCode(probe_col.StringCodeAt(r)).ClampTo(build_bound));
        }
        break;
      case PlanStep::ProbeKind::kStringTranslated:
        for (size_t i = begin; i < end; ++i) {
          const uint32_t r = pids[i];
          if (probe_col.IsNull(r)) continue;
          const int64_t code =
              st.translated_codes[static_cast<size_t>(probe_col.StringCodeAt(r))];
          if (code < 0) continue;
          emit(i, idx.LookupCode(code).ClampTo(build_bound));
        }
        break;
      case PlanStep::ProbeKind::kBoxed:
        // Doubles and mismatched column kinds: boxed probes, identical to
        // the reference engine's Lookup semantics (NULLs and cross-kind
        // probes match nothing).
        for (size_t i = begin; i < end; ++i) {
          const std::vector<uint32_t> matches =
              idx.Lookup(probe_col.Get(pids[i]), build_bound);
          emit(i, RowIdSpan{matches.data(), matches.size()});
        }
        break;
    }
  };

  Frame next;
  next.vars.reserve(st.keep_slots.size() + 1);
  next.ids.resize(st.keep_slots.size() + (st.keep_new ? 1 : 0));
  for (uint32_t s : st.keep_slots) next.vars.push_back(f->vars[s]);
  if (st.keep_new) next.vars.push_back(st.new_var);

  const std::vector<ShardRange> shards = par.Morsels(n);
  if (shards.empty()) {
    std::vector<uint32_t> sel;
    std::vector<uint32_t> new_ids;
    probe_range(0, n, &sel, &new_ids);
    size_t out = 0;
    for (uint32_t s : st.keep_slots) {
      next.ids[out++] = GatherU32(f->ids[s], sel);
    }
    if (st.keep_new) next.ids[out] = std::move(new_ids);
  } else {
    std::vector<std::vector<uint32_t>> sels(shards.size());
    std::vector<std::vector<uint32_t>> nids(shards.size());
    ParallelFor(par.pool, shards.size(), [&](size_t s) {
      probe_range(shards[s].begin, shards[s].end, &sels[s], &nids[s]);
    });
    size_t total = 0;
    std::vector<size_t> offsets(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
      offsets[s] = total;
      total += sels[s].size();
    }
    for (auto& col : next.ids) col.resize(total);
    ParallelFor(par.pool, shards.size(), [&](size_t s) {
      size_t out = 0;
      for (uint32_t slot : st.keep_slots) {
        const std::vector<uint32_t>& src = f->ids[slot];
        std::vector<uint32_t>& dst = next.ids[out++];
        size_t o = offsets[s];
        for (uint32_t i : sels[s]) dst[o++] = src[i];
      }
      if (st.keep_new) {
        std::vector<uint32_t>& dst = next.ids[out];
        std::copy(nids[s].begin(), nids[s].end(),
                  dst.begin() + static_cast<long>(offsets[s]));
      }
    });
  }

  stats->joins_executed++;
  stats->rows_emitted += next.size();
  stats->peak_intermediate = std::max(stats->peak_intermediate, next.size());
  *f = std::move(next);
}

/// Interprets one frozen step against the frame. `pivot_range` is the
/// runtime row range of the pivot steps (kSeedRange / kRowRangeFilter);
/// null for plans without one. `var_bounds` holds the snapshot watermark of
/// each tuple variable's table — the other runtime input: the same frozen
/// plan replays correctly for any snapshot because every probe clamps to
/// these bounds.
void ApplyStep(Frame* f, const PlanStep& st, const ParCtx& par,
               ExecStats* stats, const RowRange* pivot_range,
               const std::vector<size_t>& var_bounds) {
  switch (st.kind) {
    case PlanStep::Kind::kJoin:
      ExecuteJoinStep(f, st, par, stats,
                      var_bounds[static_cast<size_t>(st.new_var)]);
      break;
    case PlanStep::Kind::kJoinFilter:
    case PlanStep::Kind::kVarVarFilter:
      ApplyVarVarStep(f, st, par);
      break;
    case PlanStep::Kind::kConstFilter:
      ApplyConstStep(f, st, par);
      break;
    case PlanStep::Kind::kDrop:
      ApplyDropStep(f, st);
      break;
    case PlanStep::Kind::kSeedRange: {
      // Reverse pivot: the (empty) frame becomes the appended rows of the
      // pivot variable's table — the join frontier grows outward from the
      // delta instead of from the log.
      EBA_CHECK_MSG(pivot_range != nullptr && f->vars.empty(),
                    "kSeedRange needs a runtime range and an empty frame");
      f->vars.push_back(st.new_var);
      f->ids.emplace_back();
      std::vector<uint32_t>& ids = f->ids[0];
      ids.reserve(pivot_range->size());
      for (size_t r = pivot_range->begin; r < pivot_range->end; ++r) {
        ids.push_back(static_cast<uint32_t>(r));
      }
      stats->peak_intermediate = std::max(stats->peak_intermediate, f->size());
      break;
    }
    case PlanStep::Kind::kRowRangeFilter: {
      // Forward pivot: once the restricted variable is bound, keep only the
      // tuples whose row id for it lies in the appended range.
      EBA_CHECK_MSG(pivot_range != nullptr, "kRowRangeFilter needs a range");
      const std::vector<uint32_t>& sids =
          f->ids[static_cast<size_t>(st.lhs_slot)];
      const size_t begin = pivot_range->begin;
      const size_t end = pivot_range->end;
      FilterFrame(f, par, [&](uint32_t i) {
        return sids[i] >= begin && sids[i] < end;
      });
      break;
    }
  }
}

/// Builds the initial variable-0 scan: the log up to the snapshot bound, or
/// the distinct row ids matching `lid_filter` (first-occurrence order
/// preserved, clamped to the bound).
void InitialScan(const Table* log_table, size_t bound,
                 const std::vector<Value>* lid_filter, QAttr lid_attr,
                 std::vector<uint32_t>* scan) {
  if (lid_filter != nullptr) {
    const HashIndex& idx =
        log_table->GetOrBuildIndex(static_cast<size_t>(lid_attr.col));
    const Column& lid_col =
        log_table->column(static_cast<size_t>(lid_attr.col));
    std::unordered_set<uint32_t> rows_seen;
    rows_seen.reserve(2 * lid_filter->size());
    for (const auto& lid : *lid_filter) {
      for (uint32_t r : LidMatches(idx, lid_col, lid, bound)) {
        if (rows_seen.insert(r).second) scan->push_back(r);
      }
    }
  } else {
    scan->resize(bound);
    for (uint32_t r = 0; r < scan->size(); ++r) (*scan)[r] = r;
  }
}

// ===========================================================================
// Planning executor: runs a PathQuery over the row-id frame while recording
// the fully-compiled plan — chosen join order, resolved condition closures,
// pre-translated dictionary codes, index bindings, and the semi-join drop
// schedule. One instance per Execute call.
// ===========================================================================

class PlanningExecutor {
 public:
  PlanningExecutor(const Database::Snapshot& snapshot,
                   const ExecutorOptions& options, ExecStats* stats,
                   const ParCtx& par)
      : snapshot_(snapshot),
        db_(snapshot.database()),
        options_(options),
        stats_(stats),
        par_(par) {}

  /// Executes the query pipeline, records it into `plan`, and returns the
  /// final frame. The frame holds a slot for every tuple variable referenced
  /// by `output_attrs` (plus, without `dedup_frontier`, every bound
  /// variable). `pivot_var` >= 0 restricts that variable to `pivot_range`:
  /// seeded there when `pivot_seeded` (reverse pivot — variable 0 starts
  /// unbound and is joined back to), filtered after binding otherwise.
  StatusOr<Frame> Run(const PathQuery& q,
                      const std::vector<QAttr>& output_attrs,
                      bool dedup_frontier, const std::vector<Value>* lid_filter,
                      QAttr lid_attr, int pivot_var, bool pivot_seeded,
                      const RowRange* pivot_range, CompiledPlan* plan) {
    EBA_RETURN_IF_ERROR(q.Validate(*db_));
    plan_ = plan;
    output_attrs_ = &output_attrs;
    dedup_frontier_ = dedup_frontier;
    join_dropped_ = false;
    pivot_var_ = pivot_var;
    pivot_range_ = pivot_range;
    pivot_filter_pending_ = pivot_var >= 0 && !pivot_seeded;
    plan_->pivot_var = pivot_var;
    plan_->pivot_seeded = pivot_seeded;

    plan_->db = db_;
    plan_->catalog_generation = snapshot_.generation();
    plan_->tables.resize(q.vars.size());
    for (size_t i = 0; i < q.vars.size(); ++i) {
      EBA_ASSIGN_OR_RETURN(plan_->tables[i], db_->GetTable(q.vars[i].table));
    }
    plan_->table_structural_epochs.reserve(q.vars.size());
    plan_->table_watermarks.reserve(q.vars.size());
    for (const Table* t : plan_->tables) {
      plan_->table_structural_epochs.push_back(t->structural_epoch());
      // The recorded watermark is the LIVE one, read here — before any
      // dictionary size is read while compiling joins below. Any row below
      // this watermark published its dictionary codes first, so the
      // translation tables computed later cover every code a snapshot at or
      // below this watermark can reach; the plan is then valid (kFresh) for
      // all such snapshots, with probes clamped at replay time.
      plan_->table_watermarks.push_back(t->append_watermark());
    }
    var_bounds_.clear();
    var_bounds_.reserve(q.vars.size());
    for (const Table* t : plan_->tables) {
      var_bounds_.push_back(snapshot_.BoundOf(t));
    }

    joins_ = q.join_chain;
    join_applied_.assign(joins_.size(), false);
    extras_ = q.extra_conditions;
    extra_applied_.assign(extras_.size(), false);
    consts_ = q.const_conditions;
    const_applied_.assign(consts_.size(), false);
    bound_.assign(q.vars.size(), false);
    bound_[static_cast<size_t>(pivot_seeded ? pivot_var : 0)] = true;

    std::optional<CardinalityEstimator> estimator;
    if (options_.join_order == ExecutorOptions::JoinOrder::kCostBased) {
      estimator.emplace(db_);
      stats_->used_cost_based_order = true;
      plan_->used_cost_based_order = true;
    }

    // --- Initial frame: variable 0 (the log), or the reverse-pivot seed. ---
    Frame frame;
    if (pivot_seeded) {
      PlanStep seed;
      seed.kind = PlanStep::Kind::kSeedRange;
      seed.new_var = pivot_var;
      Record(&frame, std::move(seed));
    } else {
      frame.vars.push_back(0);
      frame.ids.emplace_back();
      InitialScan(plan_->tables[0], var_bounds_[0], lid_filter, lid_attr,
                  &frame.ids[0]);
      stats_->peak_intermediate =
          std::max(stats_->peak_intermediate, frame.size());
    }
    ApplyFilters(&frame);
    DropAndDedup(&frame);

    // --- Join loop: apply chain conditions. ---
    size_t remaining = joins_.size();
    while (remaining > 0) {
      // Fully-bound conditions always apply first (they only shrink the
      // frame); among binding joins the policy picks declaration order or
      // the smallest predicted intermediate.
      int pick = -1;
      bool pick_is_filter = false;
      double pick_est = -1.0;
      for (size_t i = 0; i < joins_.size(); ++i) {
        if (join_applied_[i]) continue;
        const bool lb = bound_[static_cast<size_t>(joins_[i].lhs.var)];
        const bool rb = bound_[static_cast<size_t>(joins_[i].rhs.var)];
        if (lb && rb) {
          pick = static_cast<int>(i);
          pick_is_filter = true;
          pick_est = -1.0;
          break;
        }
        if (!lb && !rb) continue;
        if (!estimator) {
          if (pick < 0) pick = static_cast<int>(i);
          continue;
        }
        const QAttr probe = lb ? joins_[i].lhs : joins_[i].rhs;
        const QAttr build = lb ? joins_[i].rhs : joins_[i].lhs;
        const double est = estimator->EstimateJoinStep(
            plan_->tables[static_cast<size_t>(probe.var)], probe,
            plan_->tables[static_cast<size_t>(build.var)], build,
            static_cast<double>(frame.size()));
        if (pick < 0 || est < pick_est) {
          pick = static_cast<int>(i);
          pick_est = est;
        }
      }
      if (pick < 0) {
        return Status::InvalidArgument(
            "query is disconnected: no join condition touches a bound "
            "variable");
      }
      const VarCondition& c = joins_[static_cast<size_t>(pick)];
      join_applied_[static_cast<size_t>(pick)] = true;
      --remaining;

      if (pick_is_filter) {
        const int ls = frame.SlotOf(c.lhs.var);
        const int rs = frame.SlotOf(c.rhs.var);
        EBA_CHECK(ls >= 0 && rs >= 0);
        PlanStep st;
        st.kind = PlanStep::Kind::kJoinFilter;
        st.condition_index = pick;
        st.lhs_slot = ls;
        st.rhs_slot = rs;
        st.lhs_col = ColumnOf(c.lhs);
        st.rhs_col = ColumnOf(c.rhs);
        st.op = c.op;
        Record(&frame, std::move(st));
      } else {
        if (c.op != CmpOp::kEq) {
          return Status::Unimplemented(
              "non-equality join in chain; put theta conditions in "
              "extra_conditions");
        }
        EBA_RETURN_IF_ERROR(CompileAndExecuteJoin(&frame, c, pick, pick_est));
      }

      ApplyFilters(&frame);
      DropAndDedup(&frame);
      CompiledPlan::StatsPoint sp;
      sp.after_step = plan_->steps.size() - 1;
      sp.condition_index = pick;
      sp.is_filter = pick_is_filter;
      sp.estimated_rows = pick_est;
      plan_->stats_points.push_back(sp);
      ExecStats::JoinStep step;
      step.condition_index = pick;
      step.is_filter = pick_is_filter;
      step.rows_after = frame.size();
      step.estimated_rows = pick_est;
      stats_->join_order.push_back(step);
    }

    // Every variable must have been bound (otherwise the query was not a
    // connected path) and every decoration applied.
    for (size_t i = 0; i < q.vars.size(); ++i) {
      if (!bound_[i]) {
        return Status::InvalidArgument("tuple variable '" + q.vars[i].alias +
                                       "' is not connected to the query path");
      }
    }
    for (size_t i = 0; i < extras_.size(); ++i) {
      if (!extra_applied_[i]) {
        return Status::Internal("decoration condition left unapplied");
      }
    }
    for (size_t i = 0; i < consts_.size(); ++i) {
      if (!const_applied_[i]) {
        return Status::Internal("literal condition left unapplied");
      }
    }
    stats_->used_semi_join = dedup_frontier_;
    plan_->used_semi_join = dedup_frontier_;
    plan_->final_vars = frame.vars;
    return frame;
  }

 private:
  const Column* ColumnOf(const QAttr& a) const {
    return &plan_->tables[static_cast<size_t>(a.var)]->column(
        static_cast<size_t>(a.col));
  }

  /// Executes `st` against the frame and appends it to the plan.
  void Record(Frame* frame, PlanStep st) {
    ApplyStep(frame, st, par_, stats_, pivot_range_, var_bounds_);
    plan_->steps.push_back(std::move(st));
  }

  /// Applies every decoration whose variables are all bound.
  void ApplyFilters(Frame* frame) {
    // The forward-pivot range restriction applies the moment the pivot
    // variable binds, before any decoration — it can only shrink the frame.
    if (pivot_filter_pending_ &&
        bound_[static_cast<size_t>(pivot_var_)]) {
      const int slot = frame->SlotOf(pivot_var_);
      EBA_CHECK(slot >= 0);
      pivot_filter_pending_ = false;
      PlanStep st;
      st.kind = PlanStep::Kind::kRowRangeFilter;
      st.lhs_slot = slot;
      Record(frame, std::move(st));
    }
    for (size_t i = 0; i < extras_.size(); ++i) {
      if (extra_applied_[i]) continue;
      const VarCondition& c = extras_[i];
      if (!bound_[static_cast<size_t>(c.lhs.var)] ||
          !bound_[static_cast<size_t>(c.rhs.var)]) {
        continue;
      }
      const int ls = frame->SlotOf(c.lhs.var);
      const int rs = frame->SlotOf(c.rhs.var);
      EBA_CHECK(ls >= 0 && rs >= 0);
      extra_applied_[i] = true;
      PlanStep st;
      st.kind = PlanStep::Kind::kVarVarFilter;
      st.lhs_slot = ls;
      st.rhs_slot = rs;
      st.lhs_col = ColumnOf(c.lhs);
      st.rhs_col = ColumnOf(c.rhs);
      st.op = c.op;
      Record(frame, std::move(st));
    }
    for (size_t i = 0; i < consts_.size(); ++i) {
      if (const_applied_[i]) continue;
      const ConstCondition& c = consts_[i];
      if (!bound_[static_cast<size_t>(c.lhs.var)]) continue;
      const int slot = frame->SlotOf(c.lhs.var);
      EBA_CHECK(slot >= 0);
      const_applied_[i] = true;
      Record(frame, CompileConstFilter(slot, ColumnOf(c.lhs), c.op, c.rhs));
    }
  }

  /// Variables still needed downstream: referenced by an unapplied
  /// condition or by an output attribute.
  std::vector<bool> NeededVars() const {
    std::vector<bool> needed(bound_.size(), false);
    for (const auto& a : *output_attrs_) {
      needed[static_cast<size_t>(a.var)] = true;
    }
    // The pivot variable stays live until its range filter has applied.
    if (pivot_filter_pending_) needed[static_cast<size_t>(pivot_var_)] = true;
    for (size_t i = 0; i < joins_.size(); ++i) {
      if (join_applied_[i]) continue;
      needed[static_cast<size_t>(joins_[i].lhs.var)] = true;
      needed[static_cast<size_t>(joins_[i].rhs.var)] = true;
    }
    for (size_t i = 0; i < extras_.size(); ++i) {
      if (extra_applied_[i]) continue;
      needed[static_cast<size_t>(extras_[i].lhs.var)] = true;
      needed[static_cast<size_t>(extras_[i].rhs.var)] = true;
    }
    for (size_t i = 0; i < consts_.size(); ++i) {
      if (const_applied_[i]) continue;
      needed[static_cast<size_t>(consts_[i].lhs.var)] = true;
    }
    return needed;
  }

  /// The semi-join step: drops every frame column whose tuple variable is
  /// no longer needed (see NeededVars), then deduplicates the surviving
  /// row-id tuples. Join and filter steps keep tuples unique, so dedup is
  /// only needed when a column was dropped — here or inside the preceding
  /// join (join_dropped_).
  void DropAndDedup(Frame* frame) {
    if (!dedup_frontier_) return;
    const std::vector<bool> needed = NeededVars();
    bool dropped = join_dropped_;
    join_dropped_ = false;
    std::vector<uint32_t> keep;
    keep.reserve(frame->vars.size());
    for (size_t s = 0; s < frame->vars.size(); ++s) {
      if (needed[static_cast<size_t>(frame->vars[s])]) {
        keep.push_back(static_cast<uint32_t>(s));
      } else {
        dropped = true;
      }
    }
    if (!dropped) return;
    PlanStep st;
    st.kind = PlanStep::Kind::kDrop;
    st.drop_keep_slots = std::move(keep);
    st.dedup = true;
    Record(frame, std::move(st));
  }

  /// Compiles one binding hash-join: resolves the probe dispatch, the index
  /// binding, the dictionary-code translation, and the semi-join keep mask,
  /// then executes the recorded step.
  Status CompileAndExecuteJoin(Frame* frame, const VarCondition& c, int pick,
                               double pick_est) {
    const bool lhs_bound = bound_[static_cast<size_t>(c.lhs.var)];
    const QAttr bound_attr = lhs_bound ? c.lhs : c.rhs;
    const QAttr new_attr = lhs_bound ? c.rhs : c.lhs;
    const int new_var = new_attr.var;
    const Table* new_table = plan_->tables[static_cast<size_t>(new_var)];
    const HashIndex& idx =
        new_table->GetOrBuildIndex(static_cast<size_t>(new_attr.col));
    const Column& build_col =
        new_table->column(static_cast<size_t>(new_attr.col));
    const Column& probe_col = *ColumnOf(bound_attr);

    PlanStep st;
    st.kind = PlanStep::Kind::kJoin;
    st.condition_index = pick;
    st.estimated_rows = pick_est;
    st.probe_slot = frame->SlotOf(bound_attr.var);
    EBA_CHECK(st.probe_slot >= 0);
    st.probe_col = &probe_col;
    st.index = &idx;
    st.new_var = new_var;
    st.index_col = new_attr.col;
    if (probe_col.IsIntLike() && build_col.IsIntLike()) {
      st.probe_kind = PlanStep::ProbeKind::kInt64;
    } else if (probe_col.IsString() && build_col.IsString()) {
      if (&probe_col == &build_col) {
        st.probe_kind = PlanStep::ProbeKind::kStringSameColumn;
      } else {
        st.probe_kind = PlanStep::ProbeKind::kStringTranslated;
        st.translated_codes = idx.TranslateCodesFrom(probe_col);
        st.build_dict_size = build_col.DictionarySize();
      }
    } else {
      st.probe_kind = PlanStep::ProbeKind::kBoxed;
    }

    // In semi-join mode, columns whose variable is already doomed (the
    // just-applied join was marked applied before this call, so NeededVars
    // reflects the post-join state) are never gathered: they would be
    // dropped by DropAndDedup right after the decorations run.
    st.keep_slots.reserve(frame->ids.size());
    st.keep_new = true;
    if (dedup_frontier_) {
      const std::vector<bool> needed = NeededVars();
      for (size_t s = 0; s < frame->vars.size(); ++s) {
        if (needed[static_cast<size_t>(frame->vars[s])]) {
          st.keep_slots.push_back(static_cast<uint32_t>(s));
        } else {
          join_dropped_ = true;
        }
      }
      st.keep_new = needed[static_cast<size_t>(new_var)];
      if (!st.keep_new) join_dropped_ = true;
    } else {
      for (size_t s = 0; s < frame->vars.size(); ++s) {
        st.keep_slots.push_back(static_cast<uint32_t>(s));
      }
    }
    bound_[static_cast<size_t>(new_var)] = true;
    Record(frame, std::move(st));
    return Status::OK();
  }

  const Database::Snapshot& snapshot_;
  const Database* db_;
  ExecutorOptions options_;
  ExecStats* stats_;
  ParCtx par_;
  CompiledPlan* plan_ = nullptr;
  std::vector<size_t> var_bounds_;  // per tuple var: snapshot watermark

  const std::vector<QAttr>* output_attrs_ = nullptr;
  bool dedup_frontier_ = false;
  bool join_dropped_ = false;  // a join skipped a doomed column; dedup due
  int pivot_var_ = -1;
  const RowRange* pivot_range_ = nullptr;
  bool pivot_filter_pending_ = false;  // forward pivot: filter not yet placed
  std::vector<VarCondition> joins_;
  std::vector<bool> join_applied_;
  std::vector<VarCondition> extras_;
  std::vector<bool> extra_applied_;
  std::vector<ConstCondition> consts_;
  std::vector<bool> const_applied_;
  std::vector<bool> bound_;
};

/// Replays a cached compiled plan: the initial scan is rebuilt from the
/// runtime inputs (full log or lid filter), then every frozen step is
/// interpreted in order. No validation, table resolution, cardinality
/// estimation, or closure compilation happens here.
Frame ReplayPlan(const CompiledPlan& plan, const std::vector<Value>* lid_filter,
                 QAttr lid_attr, const RowRange* pivot_range,
                 const std::vector<size_t>& var_bounds, const ParCtx& par,
                 ExecStats* stats) {
  stats->plan_cache_hit = true;
  stats->used_cost_based_order = plan.used_cost_based_order;
  Frame frame;
  if (!plan.pivot_seeded) {
    frame.vars.push_back(0);
    frame.ids.emplace_back();
    InitialScan(plan.tables[0], var_bounds[0], lid_filter, lid_attr,
                &frame.ids[0]);
    stats->peak_intermediate = std::max(stats->peak_intermediate, frame.size());
  }
  size_t sp = 0;
  for (size_t k = 0; k < plan.steps.size(); ++k) {
    ApplyStep(&frame, plan.steps[k], par, stats, pivot_range, var_bounds);
    for (; sp < plan.stats_points.size() &&
           plan.stats_points[sp].after_step == k;
         ++sp) {
      ExecStats::JoinStep step;
      step.condition_index = plan.stats_points[sp].condition_index;
      step.is_filter = plan.stats_points[sp].is_filter;
      step.rows_after = frame.size();
      step.estimated_rows = plan.stats_points[sp].estimated_rows;
      stats->join_order.push_back(step);
    }
  }
  stats->used_semi_join = plan.used_semi_join;
  // Replay invariant: interpreting the frozen steps must land on exactly
  // the slot layout the recording execution ended with.
  EBA_CHECK(frame.vars == plan.final_vars);
  return frame;
}

/// Structural cache key for a compiled plan: every input that shapes the
/// recorded pipeline — tables, conditions, resolved literals, projection,
/// semi-join mode, lid-filter mode, and the join-order policy. Two queries
/// with equal keys compile to interchangeable plans (aliases do not affect
/// execution, so they are deliberately excluded).
std::string PlanKey(const PathQuery& q, const std::vector<QAttr>& output_attrs,
                    bool dedup_frontier, bool has_lid_filter, QAttr lid_attr,
                    const ExecutorOptions& options, int pivot_var,
                    bool pivot_seeded) {
  std::string key;
  key.reserve(64 + 16 * (q.vars.size() + q.join_chain.size() +
                         q.extra_conditions.size() +
                         q.const_conditions.size() + output_attrs.size()));
  auto attr = [&key](const QAttr& a) {
    key += std::to_string(a.var);
    key += '.';
    key += std::to_string(a.col);
  };
  // Length-prefixed, so free-form text (table names, string literals)
  // cannot forge the key's separators.
  auto text = [&key](const std::string& s) {
    key += std::to_string(s.size());
    key += '#';
    key += s;
  };
  auto literal = [&](const Value& v) {
    key += DataTypeToString(v.type());
    key += ':';
    if (v.is_null()) {
      key += "null";
    } else if (v.type() == DataType::kDouble) {
      // Bit-exact: ToString's %g rendering would collide nearby doubles
      // onto one key and replay the wrong resolved literal.
      const double d = v.AsDouble();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      key += std::to_string(bits);
    } else {
      text(v.ToString());
    }
  };
  key += options.join_order == ExecutorOptions::JoinOrder::kCostBased ? 'C'
                                                                      : 'D';
  key += dedup_frontier ? 'F' : 'f';
  if (has_lid_filter) {
    key += 'L';
    attr(lid_attr);
  }
  // The pivot variable and mode shape the recorded pipeline; the row range
  // itself is a runtime input and deliberately excluded.
  if (pivot_var >= 0) {
    key += pivot_seeded ? 'R' : 'W';
    key += std::to_string(pivot_var);
  }
  key += '|';
  for (const auto& v : q.vars) {
    text(v.table);
    key += ',';
  }
  key += '|';
  for (const auto& c : q.join_chain) {
    attr(c.lhs);
    key += CmpOpToString(c.op);
    attr(c.rhs);
    key += '&';
  }
  key += '|';
  for (const auto& c : q.extra_conditions) {
    attr(c.lhs);
    key += CmpOpToString(c.op);
    attr(c.rhs);
    key += '&';
  }
  key += '|';
  for (const auto& c : q.const_conditions) {
    attr(c.lhs);
    key += CmpOpToString(c.op);
    literal(c.rhs);
    key += '&';
  }
  key += '|';
  for (const auto& a : output_attrs) {
    attr(a);
    key += ',';
  }
  return key;
}

/// Materializes the frame onto `output_attrs`: one gather per output column
/// — the only place boxed Values are created. The gathers and the final row
/// assembly partition into the same contiguous morsels as the probe phase
/// (in-place writes into disjoint ranges), so the parallel result is
/// byte-identical to the serial one.
Relation MaterializeFrame(const Frame& frame,
                          const std::vector<const Table*>& tables,
                          const std::vector<QAttr>& output_attrs,
                          const ParCtx& par) {
  Relation out;
  out.attrs = output_attrs;
  const size_t n = frame.size();
  std::vector<std::vector<Value>> cols(output_attrs.size());
  std::vector<const Column*> src(output_attrs.size());
  std::vector<const std::vector<uint32_t>*> ids(output_attrs.size());
  for (size_t j = 0; j < output_attrs.size(); ++j) {
    const QAttr& a = output_attrs[j];
    const int slot = frame.SlotOf(a.var);
    EBA_CHECK_MSG(slot >= 0, "projection variable missing from frame");
    src[j] = &tables[static_cast<size_t>(a.var)]->column(
        static_cast<size_t>(a.col));
    ids[j] = &frame.ids[static_cast<size_t>(slot)];
  }
  const std::vector<ShardRange> shards = par.Morsels(n);
  if (shards.empty()) {
    for (size_t j = 0; j < cols.size(); ++j) {
      src[j]->MaterializeInto(*ids[j], &cols[j]);
    }
    out.rows.resize(n);
    for (size_t i = 0; i < n; ++i) {
      Row& row = out.rows[i];
      row.reserve(cols.size());
      for (size_t j = 0; j < cols.size(); ++j) {
        row.push_back(std::move(cols[j][i]));
      }
    }
    return out;
  }
  for (auto& col : cols) col.resize(n);
  ParallelFor(par.pool, shards.size(), [&](size_t s) {
    for (size_t j = 0; j < cols.size(); ++j) {
      src[j]->MaterializeRange(*ids[j], shards[s].begin, shards[s].end,
                               cols[j].data());
    }
  });
  out.rows.resize(n);
  ParallelFor(par.pool, shards.size(), [&](size_t s) {
    for (size_t i = shards[s].begin; i < shards[s].end; ++i) {
      Row& row = out.rows[i];
      row.reserve(cols.size());
      for (size_t j = 0; j < cols.size(); ++j) {
        row.push_back(std::move(cols[j][i]));
      }
    }
  });
  return out;
}

}  // namespace

// ===========================================================================
// Executor: public entry points.
// ===========================================================================

struct Executor::FrameRun {
  Frame frame;
  std::vector<const Table*> tables;  // per tuple variable
};

Executor::Executor(const Database* db) : Executor(db, ExecutorOptions{}) {}

Executor::Executor(const Database* db, ExecutorOptions options)
    : db_(db), options_(options) {
  EBA_CHECK(db != nullptr);
}

Executor::Executor(const Database::Snapshot& snapshot)
    : Executor(snapshot, ExecutorOptions{}) {}

Executor::Executor(const Database::Snapshot& snapshot, ExecutorOptions options)
    : db_(snapshot.database()),
      fixed_snapshot_(snapshot),
      has_fixed_snapshot_(true),
      options_(options) {
  EBA_CHECK_MSG(db_ != nullptr, "snapshot is empty (no database)");
}

Database::Snapshot Executor::QuerySnapshot() const {
  return has_fixed_snapshot_ ? fixed_snapshot_ : db_->CreateSnapshot();
}

ThreadPool* Executor::ProbePool() const {
  // num_threads governs: <= 1 is serial regardless of an attached pool.
  if (options_.num_threads <= 1) return nullptr;
  if (options_.pool != nullptr) return options_.pool;
  if (owned_pool_ == nullptr) {
    // The calling thread participates in every ParallelFor, so the owned
    // pool only needs num_threads - 1 workers.
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
  }
  return owned_pool_.get();
}

StatusOr<Executor::FrameRun> Executor::RunFrame(
    const PathQuery& q, const std::vector<QAttr>& output_attrs,
    bool dedup_frontier, const std::vector<Value>* lid_filter,
    QAttr lid_attr, const PivotRun* pivot) const {
  EBA_CHECK_MSG(lid_filter == nullptr || pivot == nullptr,
                "lid filter and pivot range are mutually exclusive");
  stats_ = ExecStats{};
  const ParCtx par = MakePar(ProbePool(), options_, &stats_);
  const int pivot_var = pivot != nullptr ? pivot->var : -1;
  const bool pivot_seeded = pivot != nullptr && pivot->reverse;
  const RowRange* pivot_range = pivot != nullptr ? &pivot->range : nullptr;

  // One pinned read view for the whole run: plan lookup, scan, every probe,
  // and literal resolution all observe the same watermark vector.
  const Database::Snapshot snapshot = QuerySnapshot();

  PlanCache* cache = options_.plan_cache;
  auto snapshot_cache_stats = [&] {
    const PlanCache::Stats cs = cache->stats();
    stats_.plan_cache_hits = cs.hits;
    stats_.plan_cache_misses = cs.misses;
    stats_.plan_cache_invalidations = cs.invalidations;
    stats_.plan_rebinds = cs.rebinds;
    stats_.plan_cache_evictions = cs.evictions;
  };
  std::string key;
  if (cache != nullptr) {
    key = PlanKey(q, output_attrs, dedup_frontier, lid_filter != nullptr,
                  lid_attr, options_, pivot_var, pivot_seeded);
    std::shared_ptr<const CompiledPlan> plan = cache->Lookup(key, snapshot);
    if (plan != nullptr) {
      std::vector<size_t> var_bounds;
      var_bounds.reserve(plan->tables.size());
      for (const Table* t : plan->tables) {
        var_bounds.push_back(snapshot.BoundOf(t));
      }
      FrameRun run;
      run.frame = ReplayPlan(*plan, lid_filter, lid_attr, pivot_range,
                             var_bounds, par, &stats_);
      run.tables = plan->tables;
      snapshot_cache_stats();
      return run;
    }
  }

  auto plan = std::make_shared<CompiledPlan>();
  PlanningExecutor exec(snapshot, options_, &stats_, par);
  EBA_ASSIGN_OR_RETURN(
      Frame frame, exec.Run(q, output_attrs, dedup_frontier, lid_filter,
                            lid_attr, pivot_var, pivot_seeded, pivot_range,
                            plan.get()));
  FrameRun run;
  run.frame = std::move(frame);
  run.tables = plan->tables;
  if (cache != nullptr) {
    cache->Insert(key, std::move(plan));
    snapshot_cache_stats();
  }
  return run;
}

StatusOr<Relation> Executor::Materialize(const PathQuery& q) const {
  std::vector<QAttr> output = q.projection;
  if (output.empty()) output = q.ReferencedAttrs();
  if (options_.engine == ExecutorOptions::Engine::kBoxedReference) {
    return ExecuteBoxed(q, output, /*dedup_intermediate=*/false,
                        /*lid_filter=*/nullptr, QAttr{});
  }
  EBA_ASSIGN_OR_RETURN(FrameRun run,
                       RunFrame(q, output, /*dedup_frontier=*/false,
                                /*lid_filter=*/nullptr, QAttr{}));
  return MaterializeFrame(run.frame, run.tables, output,
                          MakePar(ProbePool(), options_, &stats_));
}

StatusOr<Relation> Executor::MaterializeForLogIds(
    const PathQuery& q, QAttr lid_attr, const std::vector<Value>& lids) const {
  if (lid_attr.var != 0) {
    return Status::InvalidArgument("lid attribute must belong to variable 0");
  }
  std::vector<QAttr> output = q.projection;
  if (output.empty()) output = q.ReferencedAttrs();
  // Ensure the lid is part of the output so callers can group instances.
  if (std::find(output.begin(), output.end(), lid_attr) == output.end()) {
    output.insert(output.begin(), lid_attr);
  }
  if (options_.engine == ExecutorOptions::Engine::kBoxedReference) {
    return ExecuteBoxed(q, output, /*dedup_intermediate=*/false, &lids,
                        lid_attr);
  }
  EBA_ASSIGN_OR_RETURN(
      FrameRun run,
      RunFrame(q, output, /*dedup_frontier=*/false, &lids, lid_attr));
  return MaterializeFrame(run.frame, run.tables, output,
                          MakePar(ProbePool(), options_, &stats_));
}

StatusOr<int64_t> Executor::CountDistinct(const PathQuery& q, QAttr lid_attr,
                                          SupportStrategy strategy) const {
  EBA_ASSIGN_OR_RETURN(auto values, DistinctValues(q, lid_attr, strategy));
  return static_cast<int64_t>(values.size());
}

StatusOr<std::vector<Value>> Executor::DistinctValues(
    const PathQuery& q, QAttr lid_attr, SupportStrategy strategy) const {
  if (lid_attr.var != 0) {
    return Status::InvalidArgument("lid attribute must belong to variable 0");
  }
  std::vector<QAttr> output = {lid_attr};
  if (options_.engine == ExecutorOptions::Engine::kBoxedReference) {
    EBA_ASSIGN_OR_RETURN(
        Relation rel,
        ExecuteBoxed(q, output, strategy == SupportStrategy::kDedupFrontier,
                     /*lid_filter=*/nullptr, lid_attr));
    std::set<Value> distinct;
    for (const auto& row : rel.rows) distinct.insert(row[0]);
    return std::vector<Value>(distinct.begin(), distinct.end());
  }

  EBA_ASSIGN_OR_RETURN(
      FrameRun run,
      RunFrame(q, output, strategy == SupportStrategy::kDedupFrontier,
               /*lid_filter=*/nullptr, lid_attr));
  const int slot = run.frame.SlotOf(lid_attr.var);
  EBA_CHECK(slot >= 0);
  const std::vector<uint32_t>& ids = run.frame.ids[static_cast<size_t>(slot)];
  const Column& col = run.tables[0]->column(static_cast<size_t>(lid_attr.col));

  if (col.IsIntLike()) {
    // Distinct raw payloads, boxed once at the very end; NULL (if any)
    // sorts first, matching Value ordering.
    bool has_null = false;
    std::vector<int64_t> raw;
    raw.reserve(ids.size());
    for (uint32_t r : ids) {
      if (col.IsNull(r)) {
        has_null = true;
      } else {
        raw.push_back(col.Int64At(r));
      }
    }
    ParallelSortInt64(&raw, MakePar(ProbePool(), options_, &stats_));
    raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
    std::vector<Value> values;
    values.reserve(raw.size() + (has_null ? 1 : 0));
    if (has_null) values.push_back(Value::Null());
    for (int64_t v : raw) {
      switch (col.type()) {
        case DataType::kBool:
          values.push_back(Value::Bool(v != 0));
          break;
        case DataType::kTimestamp:
          values.push_back(Value::Timestamp(v));
          break;
        default:
          values.push_back(Value::Int64(v));
          break;
      }
    }
    return values;
  }
  std::set<Value> distinct;
  for (uint32_t r : ids) distinct.insert(col.Get(r));
  return std::vector<Value>(distinct.begin(), distinct.end());
}

StatusOr<std::vector<int64_t>> Executor::DistinctLids(const PathQuery& q,
                                                      QAttr lid_attr) const {
  return DistinctLidsImpl(q, lid_attr, /*lid_filter=*/nullptr);
}

StatusOr<std::vector<int64_t>> Executor::DistinctLidsFor(
    const PathQuery& q, QAttr lid_attr, const std::vector<Value>& lids) const {
  return DistinctLidsImpl(q, lid_attr, &lids);
}

StatusOr<std::vector<int64_t>> Executor::DistinctLidsImpl(
    const PathQuery& q, QAttr lid_attr,
    const std::vector<Value>* lid_filter) const {
  if (lid_attr.var != 0) {
    return Status::InvalidArgument("lid attribute must belong to variable 0");
  }
  if (q.vars.empty()) {
    return Status::InvalidArgument("query has no tuple variables");
  }
  EBA_ASSIGN_OR_RETURN(const Table* log_table, db_->GetTable(q.vars[0].table));
  if (lid_attr.col < 0 ||
      static_cast<size_t>(lid_attr.col) >= log_table->num_columns()) {
    return Status::InvalidArgument("lid attribute column out of range");
  }
  const Column& col = log_table->column(static_cast<size_t>(lid_attr.col));
  if (!col.IsIntLike()) {
    return Status::InvalidArgument(
        "DistinctLids requires an integer-like lid column");
  }

  if (options_.engine == ExecutorOptions::Engine::kBoxedReference) {
    EBA_ASSIGN_OR_RETURN(
        Relation rel,
        ExecuteBoxed(q, {lid_attr}, /*dedup_intermediate=*/true, lid_filter,
                     lid_attr));
    std::vector<int64_t> lids;
    lids.reserve(rel.rows.size());
    for (const auto& row : rel.rows) {
      if (!row[0].is_null()) lids.push_back(row[0].RawInt64());
    }
    std::sort(lids.begin(), lids.end());
    lids.erase(std::unique(lids.begin(), lids.end()), lids.end());
    return lids;
  }

  std::vector<QAttr> output = {lid_attr};
  EBA_ASSIGN_OR_RETURN(FrameRun run, RunFrame(q, output,
                                              /*dedup_frontier=*/true,
                                              lid_filter, lid_attr));
  const int slot = run.frame.SlotOf(lid_attr.var);
  EBA_CHECK(slot >= 0);
  std::vector<int64_t> lids;
  lids.reserve(run.frame.size());
  for (uint32_t r : run.frame.ids[static_cast<size_t>(slot)]) {
    if (!col.IsNull(r)) lids.push_back(col.Int64At(r));
  }
  ParallelSortInt64(&lids, MakePar(ProbePool(), options_, &stats_));
  lids.erase(std::unique(lids.begin(), lids.end()), lids.end());
  return lids;
}

StatusOr<std::vector<int64_t>> Executor::DistinctLidsJoinedTo(
    const PathQuery& q, QAttr lid_attr, const std::string& table,
    RowRange appended) const {
  return DistinctLidsJoinedTo(q, lid_attr, table, appended, JoinedToOptions{});
}

StatusOr<std::vector<int64_t>> Executor::DistinctLidsJoinedTo(
    const PathQuery& q, QAttr lid_attr, const std::string& table,
    RowRange appended, const JoinedToOptions& jopts) const {
  if (lid_attr.var != 0) {
    return Status::InvalidArgument("lid attribute must belong to variable 0");
  }
  if (q.vars.empty()) {
    return Status::InvalidArgument("query has no tuple variables");
  }
  if (options_.engine == ExecutorOptions::Engine::kBoxedReference) {
    return Status::Unimplemented(
        "DistinctLidsJoinedTo requires the late-materialization engine");
  }
  EBA_ASSIGN_OR_RETURN(const Table* log_table, db_->GetTable(q.vars[0].table));
  if (lid_attr.col < 0 ||
      static_cast<size_t>(lid_attr.col) >= log_table->num_columns()) {
    return Status::InvalidArgument("lid attribute column out of range");
  }
  const Column& lid_col = log_table->column(static_cast<size_t>(lid_attr.col));
  if (!lid_col.IsIntLike()) {
    return Status::InvalidArgument(
        "DistinctLidsJoinedTo requires an integer-like lid column");
  }
  EBA_ASSIGN_OR_RETURN(const Table* appended_table, db_->GetTable(table));
  // Clamp the runtime range to the snapshot watermark, not the live row
  // count: rows the writer appends during this call are the next delta's
  // business.
  const Database::Snapshot snapshot = QuerySnapshot();
  appended.end = std::min(appended.end, snapshot.BoundOf(appended_table));
  appended.begin = std::min(appended.begin, appended.end);

  // One pivot run per tuple variable bound to the appended table; a lid is
  // in the result iff *some* occurrence takes an appended row, so the runs
  // union. An unreferenced table (or an empty range) cannot add witnesses.
  std::vector<int64_t> lids;
  for (size_t v = 0; v < q.vars.size(); ++v) {
    if (q.vars[v].table != table) continue;
    if (v == 0 && !jopts.include_var0) continue;
    if (appended.empty()) continue;
    PivotRun pivot;
    pivot.var = static_cast<int>(v);
    pivot.range = appended;
    switch (jopts.pivot) {
      case PivotChoice::kReverseSeed:
        pivot.reverse = true;
        break;
      case PivotChoice::kForwardFilter:
        // Restricting variable 0 is always cheapest as a seed (the filter
        // would scan the full log first just to drop most of it).
        pivot.reverse = v == 0;
        break;
      case PivotChoice::kAuto:
        // Cost-based pivot choice: compare the two seed-scan cardinalities
        // — joining outward from the appended rows costs ~|delta| up front,
        // the forward pipeline costs ~|log|. Deterministic, so the plan
        // cache sees a stable key per (query, pivot, mode).
        pivot.reverse =
            v == 0 || appended.size() <= snapshot.BoundOf(log_table);
        break;
    }
    EBA_ASSIGN_OR_RETURN(
        FrameRun run, RunFrame(q, {lid_attr}, /*dedup_frontier=*/true,
                               /*lid_filter=*/nullptr, lid_attr, &pivot));
    const int slot = run.frame.SlotOf(lid_attr.var);
    EBA_CHECK(slot >= 0);
    lids.reserve(lids.size() + run.frame.size());
    for (uint32_t r : run.frame.ids[static_cast<size_t>(slot)]) {
      if (!lid_col.IsNull(r)) lids.push_back(lid_col.Int64At(r));
    }
  }
  ParallelSortInt64(&lids, MakePar(ProbePool(), options_, &stats_));
  lids.erase(std::unique(lids.begin(), lids.end()), lids.end());
  return lids;
}

StatusOr<Relation> Executor::ExecuteBoxed(
    const PathQuery& q, const std::vector<QAttr>& output_attrs,
    bool dedup_intermediate, const std::vector<Value>* lid_filter,
    QAttr lid_attr) const {
  EBA_RETURN_IF_ERROR(q.Validate(*db_));
  stats_ = ExecStats{};

  // Resolve tuple variables to tables, and pin the read view every scan and
  // probe below clamps to — the boxed oracle observes exactly the same
  // watermark semantics as the late-materialization engine.
  const Database::Snapshot snapshot = QuerySnapshot();
  std::vector<const Table*> tables(q.vars.size());
  std::vector<size_t> bounds(q.vars.size());
  for (size_t i = 0; i < q.vars.size(); ++i) {
    EBA_ASSIGN_OR_RETURN(tables[i], db_->GetTable(q.vars[i].table));
    bounds[i] = snapshot.BoundOf(tables[i]);
  }

  // Condition bookkeeping.
  std::vector<VarCondition> joins = q.join_chain;
  std::vector<bool> join_applied(joins.size(), false);
  std::vector<VarCondition> extras = q.extra_conditions;
  std::vector<bool> extra_applied(extras.size(), false);
  std::vector<ConstCondition> consts = q.const_conditions;
  std::vector<bool> const_applied(consts.size(), false);

  std::vector<bool> bound(q.vars.size(), false);
  bound[0] = true;

  // The set of attributes a tuple variable must contribute when it is bound:
  // every attribute of that variable referenced by any condition or output.
  auto needed_for_var = [&](int var) {
    std::set<QAttr> needed;
    for (const auto& c : joins) {
      if (c.lhs.var == var) needed.insert(c.lhs);
      if (c.rhs.var == var) needed.insert(c.rhs);
    }
    for (const auto& c : extras) {
      if (c.lhs.var == var) needed.insert(c.lhs);
      if (c.rhs.var == var) needed.insert(c.rhs);
    }
    for (const auto& c : consts) {
      if (c.lhs.var == var) needed.insert(c.lhs);
    }
    for (const auto& a : output_attrs) {
      if (a.var == var) needed.insert(a);
    }
    return std::vector<QAttr>(needed.begin(), needed.end());
  };

  // Attributes still needed downstream of the current point: outputs plus
  // attributes of unapplied conditions.
  auto downstream_attrs = [&](const Relation& rel) {
    std::set<QAttr> needed(output_attrs.begin(), output_attrs.end());
    for (size_t i = 0; i < joins.size(); ++i) {
      if (join_applied[i]) continue;
      needed.insert(joins[i].lhs);
      needed.insert(joins[i].rhs);
    }
    for (size_t i = 0; i < extras.size(); ++i) {
      if (extra_applied[i]) continue;
      needed.insert(extras[i].lhs);
      needed.insert(extras[i].rhs);
    }
    for (size_t i = 0; i < consts.size(); ++i) {
      if (const_applied[i]) continue;
      needed.insert(consts[i].lhs);
    }
    std::vector<QAttr> present;
    for (const auto& a : needed) {
      if (rel.AttrIndex(a) >= 0) present.push_back(a);
    }
    return present;
  };

  // Applies every filter condition whose variables are all bound and whose
  // attributes are materialized in `rel`.
  auto apply_filters = [&](Relation* rel) {
    auto run_filter = [&](auto pass) {
      std::vector<Row> kept;
      kept.reserve(rel->rows.size());
      for (auto& row : rel->rows) {
        if (pass(row)) kept.push_back(std::move(row));
      }
      rel->rows = std::move(kept);
    };
    for (size_t i = 0; i < extras.size(); ++i) {
      if (extra_applied[i]) continue;
      const auto& c = extras[i];
      if (!bound[c.lhs.var] || !bound[c.rhs.var]) continue;
      int li = rel->AttrIndex(c.lhs);
      int ri = rel->AttrIndex(c.rhs);
      EBA_CHECK(li >= 0 && ri >= 0);
      extra_applied[i] = true;
      run_filter([&](const Row& row) {
        return EvalCmp(row[static_cast<size_t>(li)], c.op,
                       row[static_cast<size_t>(ri)]);
      });
    }
    for (size_t i = 0; i < consts.size(); ++i) {
      if (const_applied[i]) continue;
      const auto& c = consts[i];
      if (!bound[c.lhs.var]) continue;
      int li = rel->AttrIndex(c.lhs);
      EBA_CHECK(li >= 0);
      const_applied[i] = true;
      run_filter([&](const Row& row) {
        return EvalCmp(row[static_cast<size_t>(li)], c.op, c.rhs);
      });
    }
  };

  // --- Initial relation: variable 0 (the log). ---
  Relation rel;
  rel.attrs = needed_for_var(0);
  const Table* log_table = tables[0];
  auto emit_log_row = [&](size_t r) {
    Row row;
    row.reserve(rel.attrs.size());
    for (const auto& a : rel.attrs) {
      row.push_back(log_table->Get(r, static_cast<size_t>(a.col)));
    }
    rel.rows.push_back(std::move(row));
  };
  if (lid_filter != nullptr) {
    const HashIndex& idx =
        log_table->GetOrBuildIndex(static_cast<size_t>(lid_attr.col));
    const Column& lid_col =
        log_table->column(static_cast<size_t>(lid_attr.col));
    std::unordered_set<size_t> rows_seen;
    rows_seen.reserve(2 * lid_filter->size());
    for (const auto& lid : *lid_filter) {
      for (uint32_t r : LidMatches(idx, lid_col, lid, bounds[0])) {
        if (rows_seen.insert(r).second) emit_log_row(r);
      }
    }
  } else {
    rel.rows.reserve(bounds[0]);
    for (size_t r = 0; r < bounds[0]; ++r) emit_log_row(r);
  }
  stats_.peak_intermediate = std::max(stats_.peak_intermediate, rel.rows.size());
  apply_filters(&rel);
  if (dedup_intermediate) {
    std::vector<QAttr> frontier = downstream_attrs(rel);
    rel = Project(std::move(rel), frontier, /*dedup=*/true);
  }

  // --- Join loop: greedily apply chain conditions. ---
  size_t remaining = joins.size();
  while (remaining > 0) {
    // Prefer a filter (both sides bound), otherwise the first join that
    // binds a new variable.
    int pick = -1;
    bool pick_is_filter = false;
    for (size_t i = 0; i < joins.size(); ++i) {
      if (join_applied[i]) continue;
      bool lb = bound[joins[i].lhs.var];
      bool rb = bound[joins[i].rhs.var];
      if (lb && rb) {
        pick = static_cast<int>(i);
        pick_is_filter = true;
        break;
      }
      if ((lb || rb) && pick < 0) pick = static_cast<int>(i);
    }
    if (pick < 0) {
      return Status::InvalidArgument(
          "query is disconnected: no join condition touches a bound variable");
    }
    const VarCondition& c = joins[static_cast<size_t>(pick)];
    join_applied[static_cast<size_t>(pick)] = true;
    --remaining;

    if (pick_is_filter) {
      int li = rel.AttrIndex(c.lhs);
      int ri = rel.AttrIndex(c.rhs);
      EBA_CHECK(li >= 0 && ri >= 0);
      std::vector<Row> kept;
      kept.reserve(rel.rows.size());
      for (auto& row : rel.rows) {
        if (EvalCmp(row[static_cast<size_t>(li)], c.op,
                    row[static_cast<size_t>(ri)])) {
          kept.push_back(std::move(row));
        }
      }
      rel.rows = std::move(kept);
    } else {
      if (c.op != CmpOp::kEq) {
        return Status::Unimplemented(
            "non-equality join in chain; put theta conditions in "
            "extra_conditions");
      }
      const bool lhs_bound = bound[c.lhs.var];
      const QAttr bound_attr = lhs_bound ? c.lhs : c.rhs;
      const QAttr new_attr = lhs_bound ? c.rhs : c.lhs;
      const int new_var = new_attr.var;
      const Table* new_table = tables[static_cast<size_t>(new_var)];
      const HashIndex& idx =
          new_table->GetOrBuildIndex(static_cast<size_t>(new_attr.col));

      const std::vector<QAttr> new_cols = needed_for_var(new_var);
      const int probe_idx = rel.AttrIndex(bound_attr);
      EBA_CHECK(probe_idx >= 0);

      Relation next;
      next.attrs = rel.attrs;
      next.attrs.insert(next.attrs.end(), new_cols.begin(), new_cols.end());
      for (const auto& row : rel.rows) {
        const Value& key = row[static_cast<size_t>(probe_idx)];
        if (key.is_null()) continue;
        for (uint32_t match :
             idx.Lookup(key, bounds[static_cast<size_t>(new_var)])) {
          Row combined = row;
          combined.reserve(next.attrs.size());
          for (const auto& a : new_cols) {
            combined.push_back(
                new_table->Get(match, static_cast<size_t>(a.col)));
          }
          next.rows.push_back(std::move(combined));
        }
      }
      bound[static_cast<size_t>(new_var)] = true;
      stats_.joins_executed++;
      stats_.rows_emitted += next.rows.size();
      stats_.peak_intermediate =
          std::max(stats_.peak_intermediate, next.rows.size());
      rel = std::move(next);
    }

    apply_filters(&rel);
    if (dedup_intermediate) {
      std::vector<QAttr> frontier = downstream_attrs(rel);
      rel = Project(std::move(rel), frontier, /*dedup=*/true);
    }
    ExecStats::JoinStep step;
    step.condition_index = pick;
    step.is_filter = pick_is_filter;
    step.rows_after = rel.rows.size();
    stats_.join_order.push_back(step);
  }

  // Every variable must have been bound (otherwise the query was not a
  // connected path) and every decoration applied.
  for (size_t i = 0; i < q.vars.size(); ++i) {
    if (!bound[i]) {
      return Status::InvalidArgument("tuple variable '" + q.vars[i].alias +
                                     "' is not connected to the query path");
    }
  }
  for (size_t i = 0; i < extras.size(); ++i) {
    if (!extra_applied[i]) {
      return Status::Internal("decoration condition left unapplied");
    }
  }
  for (size_t i = 0; i < consts.size(); ++i) {
    if (!const_applied[i]) {
      return Status::Internal("literal condition left unapplied");
    }
  }

  return Project(std::move(rel), output_attrs, /*dedup=*/dedup_intermediate);
}

}  // namespace eba
