// PathQuery: the stylized query form of Definition 1.
//
//   SELECT Log.Lid, A_1, ..., A_m
//   FROM Log, T_1, ..., T_n
//   WHERE C_1 AND ... AND C_j
//
// Tuple variable 0 is always the audited log. `join_chain` holds the path's
// selection-condition edges in traversal order: each condition either binds
// a new tuple variable (equi-join) or — for the final edge back to
// Log.User — filters already-bound variables. `extra_conditions` and
// `const_conditions` carry decorations (Definition 3).

#ifndef EBA_QUERY_PATH_QUERY_H_
#define EBA_QUERY_PATH_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/expr.h"
#include "storage/database.h"

namespace eba {

/// One tuple variable: a table plus its alias in the query.
struct TupleVar {
  std::string table;
  std::string alias;
};

class PathQuery {
 public:
  PathQuery() = default;

  /// Tuple variables; index 0 is the log.
  std::vector<TupleVar> vars;

  /// Path conditions in traversal order.
  std::vector<VarCondition> join_chain;

  /// Decorations: additional attribute-attribute conditions.
  std::vector<VarCondition> extra_conditions;

  /// Decorations: attribute-literal conditions.
  std::vector<ConstCondition> const_conditions;

  /// Output attributes for instance materialization. If empty, the executor
  /// projects every attribute mentioned in the conditions plus Log.Lid.
  std::vector<QAttr> projection;

  /// Resolves `alias.Column` to a QAttr (alias lookup is case-sensitive).
  StatusOr<QAttr> Resolve(const Database& db, const std::string& alias,
                          const std::string& column) const;

  /// Index of the tuple variable with the given alias, or -1.
  int VarIndexByAlias(const std::string& alias) const;

  /// Name of the attribute as "alias.Column".
  StatusOr<std::string> AttrName(const Database& db, const QAttr& attr) const;

  /// Column index bounds, alias uniqueness, var-0-is-log sanity, and that
  /// every condition references valid (var, col) pairs.
  Status Validate(const Database& db) const;

  /// All attributes mentioned anywhere in the query (deduplicated).
  std::vector<QAttr> ReferencedAttrs() const;

  /// Number of distinct tables referenced, counting multiple instances of a
  /// table (self-joins) once and skipping mapping tables (paper §5.3.3).
  int CountedTables(const Database& db) const;

  /// Path length: number of join-chain conditions.
  int RawLength() const { return static_cast<int>(join_chain.size()); }

  /// Reported length: join-chain conditions minus one per mapping-table
  /// instance traversed (each mapping hop replaces one direct edge with
  /// two conditions; see DESIGN.md).
  int ReportedLength(const Database& db) const;
};

}  // namespace eba

#endif  // EBA_QUERY_PATH_QUERY_H_
