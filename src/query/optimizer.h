// CardinalityEstimator: plays the role of the DBMS optimizer in the paper's
// "skipping non-selective paths" optimization (§3.2.1) — the miner asks for
// the expected number of distinct log ids in a path query's result and skips
// computing exact support when the estimate exceeds S * c.
//
// Standard textbook estimation: equi-join size |R join S| =
// |R| * |S| / max(ndv(R.a), ndv(S.b)); comparison filters use 1/3
// selectivity; the final distinct-lid count applies a balls-into-bins
// correction so the estimate is bounded by |Log|.

#ifndef EBA_QUERY_OPTIMIZER_H_
#define EBA_QUERY_OPTIMIZER_H_

#include "common/status.h"
#include "query/path_query.h"
#include "storage/database.h"

namespace eba {

class CardinalityEstimator {
 public:
  /// The database must outlive the estimator.
  explicit CardinalityEstimator(const Database* db);

  /// Expected number of rows in the query result.
  StatusOr<double> EstimateRows(const PathQuery& q) const;

  /// Expected COUNT(DISTINCT lid_attr); lid_attr must belong to variable 0.
  StatusOr<double> EstimateDistinctLogIds(const PathQuery& q,
                                          QAttr lid_attr) const;

  /// Expected intermediate size after equi-joining a `current_rows`-row
  /// intermediate whose join key is `probe` against the full table bound by
  /// `build` (both attrs resolved through `q`): the textbook
  /// |R| * |S| / max(ndv(R.a), ndv(S.b)) formula. The executor's cost-based
  /// join ordering asks this for every applicable chain condition and picks
  /// the smallest predicted intermediate.
  StatusOr<double> EstimateJoinStep(const PathQuery& q, double current_rows,
                                    QAttr probe, QAttr build) const;

  /// Same estimate with the endpoint tables already resolved — the plan
  /// recorder resolves every tuple-variable table once per query, so its
  /// O(joins^2) ordering probes skip the per-call name lookups.
  double EstimateJoinStep(const Table* probe_table, QAttr probe,
                          const Table* build_table, QAttr build,
                          double current_rows) const;

 private:
  const Database* db_;
};

}  // namespace eba

#endif  // EBA_QUERY_OPTIMIZER_H_
