// PlanCache: a persistent, bounded cache of fully-compiled physical plans
// for the late-materialization executor.
//
// A CompiledPlan freezes everything the executor decides or resolves before
// the first row moves: the chosen join order (including every cost-based
// ordering decision), per-step condition "closures" with literals resolved
// to raw payloads / dictionary codes, pre-computed dictionary-code
// translation tables for cross-column string joins, hash-index bindings,
// and the semi-join column-drop schedule. Replaying a plan skips query
// validation, table resolution, cardinality estimation and closure
// compilation entirely — exactly the per-query planning cost the miner pays
// thousands of times for structurally identical support queries, and the
// per-access explain loop pays once per served request.
//
// Staleness is three-valued (CompiledPlan::Freshness) and judged against
// the querying snapshot (Database::Snapshot), matching the Table mutation
// split:
//  - kFresh: every referenced table is at its build-time structural epoch
//    and its recorded watermark covers the snapshot's — replay as-is. A
//    plan recorded PAST the snapshot's watermark is fresh too: appends are
//    monotone and every probe/scan clamps to the snapshot bound at replay
//    time, so a newer plan evaluates older snapshots exactly.
//  - kAppendedOnly: structural epochs match but the snapshot sees rows past
//    at least one recorded watermark. The plan is *re-bound*, not
//    discarded: index bindings are refreshed (which extends the indexes
//    past the watermark), dictionary-code translation tables are extended
//    for newly minted codes, and string literals that were absent from a
//    dictionary at compile time are re-resolved. Counted as a hit plus a
//    rebind; the frozen join order is kept (appends rarely change which
//    order is best, and keeping it is what makes the streaming serving
//    loop cheap).
//  - kStale: a structural epoch moved — drop the entry (an invalidation).
// Every plan also records the catalog generation, so a CreateTable/
// AddTable/DropTable invalidates it before any freed Table pointer could be
// dereferenced. Lookups are safe under the single concurrent appending
// writer (the rebind reads only published state); structural mutations
// still require external serialization against all readers.
//
// Eviction: with PlanCacheOptions::max_bytes > 0 the cache tracks an
// approximate per-entry byte footprint and evicts least-recently-used
// entries when an insert pushes the total over the cap (a lone oversized
// entry is kept — one resident plan beats none). 0 means unbounded, the
// right setting for template registries and single mining runs.
//
// Thread safety: Lookup/Insert take the cache's writer lock (even a lookup
// mutates the LRU list and the hit counters), the read-only stats/size
// accessors take the shared (reader) lock, and cached plans are immutable
// shared_ptrs, so concurrent executors (e.g. ExplainAll's template fan-out)
// can share one cache. The discipline is compiler-checked: every mutable
// member is EBA_GUARDED_BY(mu_) and clang's -Wthread-safety rejects any
// unlocked access path.

#ifndef EBA_QUERY_PLAN_CACHE_H_
#define EBA_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "query/expr.h"
#include "storage/database.h"
#include "storage/index.h"

namespace eba {

/// One frozen pipeline operation over the executor's row-id frame. Slot
/// numbers refer to the frame layout at the point the step applies; the
/// layout evolves deterministically from the initial [variable 0] frame, so
/// recorded slots stay valid on every replay.
struct PlanStep {
  enum class Kind : uint8_t {
    kJoin,          // hash-probe binding a new tuple variable
    kJoinFilter,    // chain condition whose sides were both already bound
    kVarVarFilter,  // decoration between two bound attributes
    kConstFilter,   // decoration against a pre-resolved literal
    kDrop,          // semi-join column drop (+ row-id tuple dedup)
    // Reverse semi-join delta steps (Executor::DistinctLidsJoinedTo). The
    // restricted row range is a *runtime* input like the lid filter — the
    // plan freezes which variable is range-restricted, not the range
    // itself, so one compiled plan serves every append batch.
    kSeedRange,      // seed the empty frame at `new_var` from the range
    kRowRangeFilter  // keep tuples whose `lhs_slot` row id is in the range
  };
  /// Probe dispatch resolved at compile time (kJoin).
  enum class ProbeKind : uint8_t {
    kInt64,             // integer-like payloads probe LookupInt64
    kStringSameColumn,  // shared dictionary: codes probe LookupCode directly
    kStringTranslated,  // codes route through translated_codes first
    kBoxed,             // doubles / mismatched kinds: boxed Lookup
  };
  /// Literal dispatch resolved at compile time (kConstFilter).
  enum class LitKind : uint8_t {
    kInt64,        // raw int64 comparison
    kStringCode,   // dictionary-code equality
    kString,       // dictionary-string ordering comparison
    kDouble,       // raw double comparison
    kBoxed,        // cross-type fallback through EvalCmp
    kNeverMatches  // NULL literal or string absent from the dictionary
  };

  Kind kind = Kind::kDrop;
  int condition_index = -1;      // join_chain index (kJoin / kJoinFilter)
  double estimated_rows = -1.0;  // cost-based prediction; -1 if not consulted

  // kJoin.
  int probe_slot = -1;
  const Column* probe_col = nullptr;
  const HashIndex* index = nullptr;
  int new_var = -1;
  /// Column index of `index` within table `new_var`, recorded so an
  /// append-rebind can re-request (and thereby extend) the index.
  int index_col = -1;
  ProbeKind probe_kind = ProbeKind::kBoxed;
  std::vector<int64_t> translated_codes;  // kStringTranslated only
  /// Build-side dictionary size when translated_codes was computed; growth
  /// means previously unresolvable probe codes may now translate.
  size_t build_dict_size = 0;
  std::vector<uint32_t> keep_slots;       // surviving pre-join slots, in order
  bool keep_new = true;                   // gather the newly bound column

  // kJoinFilter / kVarVarFilter (kConstFilter uses the lhs side + op).
  int lhs_slot = -1;
  int rhs_slot = -1;
  const Column* lhs_col = nullptr;
  const Column* rhs_col = nullptr;
  CmpOp op = CmpOp::kEq;

  // kConstFilter.
  LitKind lit_kind = LitKind::kBoxed;
  int64_t lit_int = 0;
  double lit_double = 0.0;
  std::string lit_string;
  Value lit_value;
  /// True for a string-equality literal that was absent from the dictionary
  /// at compile time (lit_kind == kNeverMatches with lit_string holding the
  /// literal): appends can mint the code, so a rebind re-resolves it.
  bool lit_rebindable = false;

  // kDrop.
  std::vector<uint32_t> drop_keep_slots;  // slots that survive, in order
  bool dedup = false;
};

/// A fully-compiled physical plan: the frozen step pipeline plus everything
/// needed to revalidate it. Immutable once built (replay never mutates; an
/// append-rebind produces a patched copy).
struct CompiledPlan {
  const Database* db = nullptr;
  /// Database::catalog_generation at build time. Table pointers are only
  /// dereferenced while the catalog is unchanged (map nodes are stable
  /// within a generation); any CreateTable/AddTable/DropTable invalidates
  /// the plan before CheckFreshness could touch a freed Table.
  uint64_t catalog_generation = 0;
  std::vector<const Table*> tables;  // per tuple variable
  /// Table::structural_epoch / Table::append_watermark at build (or last
  /// rebind) time.
  std::vector<uint64_t> table_structural_epochs;
  std::vector<uint64_t> table_watermarks;

  std::vector<PlanStep> steps;

  /// Where to record an ExecStats::JoinStep during replay: after applying
  /// steps[after_step] (i.e. once the join's trailing filters and drops have
  /// run), mirroring the recording execution's bookkeeping.
  struct StatsPoint {
    size_t after_step = 0;
    int condition_index = -1;
    bool is_filter = false;
    double estimated_rows = -1.0;
  };
  std::vector<StatsPoint> stats_points;

  std::vector<int> final_vars;  // final frame slot -> tuple variable
  bool used_cost_based_order = false;
  bool used_semi_join = false;

  /// Tuple variable restricted to the runtime row range (-1 = none). When
  /// `pivot_seeded` the plan starts from a kSeedRange step over that
  /// variable's table (reverse pivot: the join frontier grows *outward from
  /// the appended rows*); otherwise the restriction is a kRowRangeFilter
  /// applied once the variable binds (forward pivot).
  int pivot_var = -1;
  bool pivot_seeded = false;

  enum class Freshness {
    kFresh,         // replay as-is
    kAppendedOnly,  // watermark moved, structure intact: re-bind
    kStale          // structural epoch moved: rebuild
  };
  /// Compares every referenced table's structural epoch and watermark *as
  /// pinned by the querying snapshot* against the recorded values: the plan
  /// is fresh when its recorded state covers everything the snapshot can
  /// see, appended-only when the snapshot sees rows past a recorded
  /// watermark, stale on any structural-epoch mismatch or a table the
  /// snapshot does not contain.
  Freshness CheckFreshness(const Database::Snapshot& snapshot) const;

  /// Approximate resident footprint (steps, translation tables, slot lists,
  /// literals) for the cache's byte accounting.
  size_t ApproxBytes() const;
};

/// Re-binds `plan` after appends to its tables: refreshes index bindings
/// (extending each index past the watermark), extends dictionary-code
/// translation tables for newly minted probe codes (recomputing them when
/// the build-side dictionary grew), re-resolves rebindable string literals,
/// and stamps the current watermarks (read FIRST, before any dictionary
/// state — so the translation tables provably cover every code reachable
/// below the stamped watermarks even under a concurrent writer). The frozen
/// join order, slot layout and stats points are untouched, so a replay of
/// the rebound plan over the old prefix is byte-identical to the original.
/// Requires CheckFreshness(snapshot) == kAppendedOnly for the caller's
/// snapshot (same structural epochs).
std::shared_ptr<const CompiledPlan> RebindPlanForAppend(
    const CompiledPlan& plan);

struct PlanCacheOptions {
  /// Approximate byte cap on resident plans; 0 = unbounded. When an insert
  /// pushes the total over the cap, least-recently-used entries are evicted
  /// until it fits (the newest entry itself is never evicted).
  size_t max_bytes = 0;
};

class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  // stale entries dropped on lookup
    uint64_t rebinds = 0;        // append-only entries re-bound on lookup
    uint64_t evictions = 0;      // LRU entries dropped by the byte cap
  };

  PlanCache() = default;
  explicit PlanCache(const PlanCacheOptions& options) : options_(options) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` if it exists, was built against the
  /// snapshot's database at its catalog generation, and is fresh or
  /// append-only stale for that snapshot (the latter is re-bound in place
  /// and counted as a rebind); either way the lookup counts as a hit and
  /// marks the entry most-recently used. A structurally stale or
  /// foreign-catalog entry is evicted (counted as an invalidation) and the
  /// lookup counts as a miss.
  std::shared_ptr<const CompiledPlan> Lookup(const std::string& key,
                                             const Database::Snapshot& snapshot)
      EBA_EXCLUDES(mu_);

  /// Inserts (or replaces) the plan for `key` as the most-recently-used
  /// entry, then evicts LRU entries while the byte cap is exceeded.
  void Insert(const std::string& key, std::shared_ptr<const CompiledPlan> plan)
      EBA_EXCLUDES(mu_);

  Stats stats() const EBA_EXCLUDES(mu_);
  size_t size() const EBA_EXCLUDES(mu_);
  /// Approximate bytes across resident plans (per-entry ApproxBytes sums).
  size_t resident_bytes() const EBA_EXCLUDES(mu_);
  const PlanCacheOptions& options() const { return options_; }
  void Clear() EBA_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  /// Drops LRU entries until the cap fits; `keep` is never evicted.
  void EvictOverCapLocked(const std::string& keep) EBA_REQUIRES(mu_);

  mutable SharedMutex mu_;
  PlanCacheOptions options_;
  std::unordered_map<std::string, Entry> plans_ EBA_GUARDED_BY(mu_);
  std::list<std::string> lru_ EBA_GUARDED_BY(mu_);  // front = most recent
  size_t resident_bytes_ EBA_GUARDED_BY(mu_) = 0;
  Stats stats_ EBA_GUARDED_BY(mu_);
};

}  // namespace eba

#endif  // EBA_QUERY_PLAN_CACHE_H_
