// PlanCache: a persistent cache of fully-compiled physical plans for the
// late-materialization executor.
//
// A CompiledPlan freezes everything the executor decides or resolves before
// the first row moves: the chosen join order (including every cost-based
// ordering decision), per-step condition "closures" with literals resolved
// to raw payloads / dictionary codes, pre-computed dictionary-code
// translation tables for cross-column string joins, hash-index bindings,
// and the semi-join column-drop schedule. Replaying a plan skips query
// validation, table resolution, cardinality estimation and closure
// compilation entirely — exactly the per-query planning cost the miner pays
// thousands of times for structurally identical support queries.
//
// Staleness: plans hold pointers into tables and their derived state (hash
// indexes, dictionary codes) that mutations invalidate. Every plan records
// the database's catalog generation (so a CreateTable/AddTable/DropTable
// invalidates it before any freed Table pointer could be dereferenced) and
// the epoch (Table::epoch) of each referenced table at build time; Lookup
// revalidates both and drops the entry — counted as an invalidation — when
// anything mutated since. The cache is therefore safe to hold across
// mutations and catalog changes, but like all executor reads, lookups must
// be externally serialized against concurrent writers.
//
// Thread safety: Lookup/Insert/stats are mutex-guarded, and cached plans are
// immutable shared_ptrs, so concurrent executors (e.g. ExplainAll's template
// fan-out) can share one cache.

#ifndef EBA_QUERY_PLAN_CACHE_H_
#define EBA_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "query/expr.h"
#include "storage/database.h"
#include "storage/index.h"

namespace eba {

/// One frozen pipeline operation over the executor's row-id frame. Slot
/// numbers refer to the frame layout at the point the step applies; the
/// layout evolves deterministically from the initial [variable 0] frame, so
/// recorded slots stay valid on every replay.
struct PlanStep {
  enum class Kind : uint8_t {
    kJoin,          // hash-probe binding a new tuple variable
    kJoinFilter,    // chain condition whose sides were both already bound
    kVarVarFilter,  // decoration between two bound attributes
    kConstFilter,   // decoration against a pre-resolved literal
    kDrop,          // semi-join column drop (+ row-id tuple dedup)
  };
  /// Probe dispatch resolved at compile time (kJoin).
  enum class ProbeKind : uint8_t {
    kInt64,             // integer-like payloads probe LookupInt64
    kStringSameColumn,  // shared dictionary: codes probe LookupCode directly
    kStringTranslated,  // codes route through translated_codes first
    kBoxed,             // doubles / mismatched kinds: boxed Lookup
  };
  /// Literal dispatch resolved at compile time (kConstFilter).
  enum class LitKind : uint8_t {
    kInt64,        // raw int64 comparison
    kStringCode,   // dictionary-code equality
    kString,       // dictionary-string ordering comparison
    kDouble,       // raw double comparison
    kBoxed,        // cross-type fallback through EvalCmp
    kNeverMatches  // NULL literal or string absent from the dictionary
  };

  Kind kind = Kind::kDrop;
  int condition_index = -1;      // join_chain index (kJoin / kJoinFilter)
  double estimated_rows = -1.0;  // cost-based prediction; -1 if not consulted

  // kJoin.
  int probe_slot = -1;
  const Column* probe_col = nullptr;
  const HashIndex* index = nullptr;
  int new_var = -1;
  ProbeKind probe_kind = ProbeKind::kBoxed;
  std::vector<int64_t> translated_codes;  // kStringTranslated only
  std::vector<uint32_t> keep_slots;       // surviving pre-join slots, in order
  bool keep_new = true;                   // gather the newly bound column

  // kJoinFilter / kVarVarFilter (kConstFilter uses the lhs side + op).
  int lhs_slot = -1;
  int rhs_slot = -1;
  const Column* lhs_col = nullptr;
  const Column* rhs_col = nullptr;
  CmpOp op = CmpOp::kEq;

  // kConstFilter.
  LitKind lit_kind = LitKind::kBoxed;
  int64_t lit_int = 0;
  double lit_double = 0.0;
  std::string lit_string;
  Value lit_value;

  // kDrop.
  std::vector<uint32_t> drop_keep_slots;  // slots that survive, in order
  bool dedup = false;
};

/// A fully-compiled physical plan: the frozen step pipeline plus everything
/// needed to revalidate it. Immutable once built (replay never mutates).
struct CompiledPlan {
  const Database* db = nullptr;
  /// Database::catalog_generation at build time. Table pointers are only
  /// dereferenced while the catalog is unchanged (map nodes are stable
  /// within a generation); any CreateTable/AddTable/DropTable invalidates
  /// the plan before IsFresh could touch a freed Table.
  uint64_t catalog_generation = 0;
  std::vector<const Table*> tables;    // per tuple variable
  std::vector<uint64_t> table_epochs;  // Table::epoch at build time

  std::vector<PlanStep> steps;

  /// Where to record an ExecStats::JoinStep during replay: after applying
  /// steps[after_step] (i.e. once the join's trailing filters and drops have
  /// run), mirroring the recording execution's bookkeeping.
  struct StatsPoint {
    size_t after_step = 0;
    int condition_index = -1;
    bool is_filter = false;
    double estimated_rows = -1.0;
  };
  std::vector<StatsPoint> stats_points;

  std::vector<int> final_vars;  // final frame slot -> tuple variable
  bool used_cost_based_order = false;
  bool used_semi_join = false;

  /// True while every referenced table is still at its build-time epoch.
  bool IsFresh() const;
};

class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  // stale entries dropped on lookup
  };

  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` if it exists, was built against `db`,
  /// and is still fresh; counts a hit. A stale or foreign-database entry is
  /// evicted (counted as an invalidation) and the lookup counts as a miss.
  std::shared_ptr<const CompiledPlan> Lookup(const std::string& key,
                                             const Database* db);

  /// Inserts (or replaces) the plan for `key`.
  void Insert(const std::string& key, std::shared_ptr<const CompiledPlan> plan);

  Stats stats() const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledPlan>> plans_;
  Stats stats_;
};

}  // namespace eba

#endif  // EBA_QUERY_PLAN_CACHE_H_
