// SQL rendering of PathQueries, matching the stylized form the paper prints
// (§2.2, §3.2.1). Purely for display, logging, and admin review — queries
// execute through the Executor, not through SQL.

#ifndef EBA_QUERY_SQL_H_
#define EBA_QUERY_SQL_H_

#include <string>

#include "common/status.h"
#include "query/path_query.h"

namespace eba {

struct SqlRenderOptions {
  /// Render SELECT COUNT(DISTINCT <lid>) instead of the projection list
  /// (the support query of §3.2).
  bool count_distinct_lid = false;
  /// The lid attribute rendered in COUNT(DISTINCT ...).
  QAttr lid_attr;
  /// Wrap non-log tables in DISTINCT subqueries projecting only the needed
  /// attributes — the "reducing result multiplicity" rewrite of §3.2.1.
  bool dedup_subqueries = false;
};

/// Renders `q` as SQL text.
StatusOr<std::string> ToSql(const Database& db, const PathQuery& q,
                            const SqlRenderOptions& options = {});

/// Renders the FROM clause body ("Log L, Appointments A"). Round-trips
/// through ParsePathQuery.
StatusOr<std::string> RenderFromClause(const Database& db, const PathQuery& q);

/// Renders the WHERE clause body as a single line
/// ("L.Patient = A.Patient AND A.Doctor = L.User"). Round-trips through
/// ParsePathQuery (join chain first, then decorations).
StatusOr<std::string> RenderWhereClause(const Database& db,
                                        const PathQuery& q);

}  // namespace eba

#endif  // EBA_QUERY_SQL_H_
