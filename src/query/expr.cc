#include "query/expr.h"

namespace eba {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kGt:
      return ">";
  }
  return "?";
}

bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
  }
  return false;
}

}  // namespace eba
