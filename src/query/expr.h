// Expression primitives for the stylized explanation-template queries
// (Definition 1): attribute references into a query's tuple variables and
// comparison conditions A1 θ A2 with θ in {<, <=, =, >=, >}.

#ifndef EBA_QUERY_EXPR_H_
#define EBA_QUERY_EXPR_H_

#include <cstdint>
#include <string>

#include "common/value.h"

namespace eba {

/// Reference to column `col` of tuple variable `var` within a PathQuery.
struct QAttr {
  int var = -1;
  int col = -1;

  bool operator==(const QAttr& o) const { return var == o.var && col == o.col; }
  bool operator!=(const QAttr& o) const { return !(*this == o); }
  bool operator<(const QAttr& o) const {
    return var != o.var ? var < o.var : col < o.col;
  }
};

/// Comparison operator θ.
enum class CmpOp : uint8_t { kLt, kLe, kEq, kGe, kGt };

/// SQL spelling of the operator ("<", "<=", "=", ">=", ">").
const char* CmpOpToString(CmpOp op);

/// Evaluates `lhs θ rhs`. Any NULL operand yields false (SQL semantics).
bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs);

/// Condition between two attributes of the query (e.g. L.Patient = A.Patient
/// or the decorated L1.Date > L2.Date).
struct VarCondition {
  QAttr lhs;
  CmpOp op = CmpOp::kEq;
  QAttr rhs;

  bool operator==(const VarCondition& o) const {
    return lhs == o.lhs && op == o.op && rhs == o.rhs;
  }
};

/// Condition between an attribute and a literal (e.g. G1.Depth = 1).
struct ConstCondition {
  QAttr lhs;
  CmpOp op = CmpOp::kEq;
  Value rhs;

  bool operator==(const ConstCondition& o) const {
    return lhs == o.lhs && op == o.op && rhs == o.rhs;
  }
};

}  // namespace eba

#endif  // EBA_QUERY_EXPR_H_
