// Executor: evaluates PathQueries with pipelined hash joins.
//
// Two execution engines are provided (ExecutorOptions::engine):
//
//  - kLateMaterialization (default): intermediates are a struct-of-arrays
//    *frame* — one std::vector<uint32_t> of row ids per bound tuple variable.
//    A hash-join probe appends row ids instead of copying boxed rows,
//    filters evaluate compiled per-condition closures directly against
//    Column raw payloads / dictionary codes, and boxed Values are
//    materialized exactly once, at the final projection
//    (Column::MaterializeInto). Distinct-lid evaluation takes a semi-join
//    fast path: tuple-variable columns are dropped from the frame as soon as
//    no unapplied condition touches them, and the surviving row-id tuples
//    are deduplicated in place — the row-id analog of the paper's "reducing
//    result multiplicity" optimization (§3.2.1), without ever building a
//    boxed row.
//
//  - kBoxedReference: the original Row = std::vector<Value> implementation,
//    retained as the equivalence oracle for tests and as the baseline for
//    the A/B benchmarks (BM_ExecutorJoin / BM_DistinctLids).
//
// Join ordering (ExecutorOptions::join_order): conditions whose variables
// are already bound always apply first as filters; among chain conditions
// that bind a new tuple variable, kDeclared picks the first in declaration
// order (the historical greedy behavior) while kCostBased (default) asks
// the CardinalityEstimator for each candidate's predicted intermediate size
// and picks the smallest, breaking ties by declaration order so plans stay
// deterministic. The chosen order and per-step cardinalities are surfaced
// in ExecStats::join_order.
//
// Support-evaluation strategies (DESIGN.md decision 2): kNaive enumerates
// the full join then counts distinct log ids; kDedupFrontier deduplicates
// the intermediate after every step, carrying only what is still needed
// downstream — the intermediate stays bounded by |Log| x (frontier domain)
// instead of growing with event multiplicity.

#ifndef EBA_QUERY_EXECUTOR_H_
#define EBA_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "query/path_query.h"
#include "storage/database.h"

namespace eba {

class PlanCache;

/// A half-open row-id range [begin, end) of one table (e.g. the rows an
/// append batch added past the old watermark).
struct RowRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end > begin ? end - begin : 0; }
  bool empty() const { return end <= begin; }
};

/// An intermediate or final relation: a header of query attributes plus rows.
struct Relation {
  std::vector<QAttr> attrs;
  std::vector<Row> rows;

  /// Position of `attr` in `attrs`, or -1.
  int AttrIndex(const QAttr& attr) const {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == attr) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Execution knobs, threaded from ExplainAllOptions / MinerOptions so every
/// entry point (engine, miner, metrics, benches) can A/B the engines.
struct ExecutorOptions {
  enum class Engine {
    kBoxedReference,      // original boxed-Row executor (oracle/baseline)
    kLateMaterialization  // row-id frame executor
  };
  enum class JoinOrder {
    kDeclared,  // first applicable chain condition in declaration order
    kCostBased  // smallest predicted intermediate (CardinalityEstimator)
  };

  Engine engine = Engine::kLateMaterialization;
  /// Applies to kLateMaterialization only: the boxed reference engine is a
  /// fixed oracle and always runs the declared greedy order.
  /// kDeclared is retired from the benches and exists solely as the
  /// byte-identical-row-order oracle in tests/executor_equivalence_test.cc.
  JoinOrder join_order = JoinOrder::kCostBased;

  /// Morsel-parallel probe phase (kLateMaterialization only): each join
  /// step's probe column — and every filter scan — is partitioned into
  /// contiguous shards, per-shard selection vectors are built independently,
  /// and the shards are concatenated in shard order, so frames, DistinctLids
  /// results, and ExplainAll reports are byte-identical to serial execution
  /// at any thread count. <= 1 runs everything on the calling thread.
  size_t num_threads = 1;
  /// Optional external pool the morsels run on when num_threads > 1 (not
  /// owned; e.g. ExplainAll's pool — ParallelFor is nesting-safe, the
  /// calling thread always participates). Ignored while num_threads <= 1:
  /// num_threads alone governs the fan-out width. When null and
  /// num_threads > 1 the executor lazily creates its own pool.
  ThreadPool* pool = nullptr;
  /// Lower bound on probe/filter rows per morsel, so small frames are not
  /// split into shards smaller than the fan-out overhead.
  size_t min_rows_per_morsel = 4096;

  /// Optional shared compiled-plan cache (not owned; see
  /// query/plan_cache.h). When set, executions record their fully-compiled
  /// physical plan — chosen join order, compiled condition closures,
  /// pre-translated dictionary codes, index bindings — keyed on the query's
  /// canonical condition-set key, revalidated against the referenced
  /// tables' structural epochs + append watermarks (appends re-bind the
  /// plan instead of discarding it), and structurally identical queries
  /// replay it, skipping planning entirely.
  PlanCache* plan_cache = nullptr;
};

/// Counters describing the last execution (exposed for tests/benchmarks).
struct ExecStats {
  size_t joins_executed = 0;
  size_t rows_emitted = 0;       // total rows produced across all joins
  size_t peak_intermediate = 0;  // max intermediate row count

  /// One entry per applied chain condition, in application order.
  struct JoinStep {
    int condition_index = -1;     // index into PathQuery::join_chain
    bool is_filter = false;       // both sides were already bound
    size_t rows_after = 0;        // intermediate size after this step
    double estimated_rows = -1.0; // cost-based prediction; -1 if not consulted
  };
  std::vector<JoinStep> join_order;

  bool used_cost_based_order = false;
  /// True when the distinct-lid semi-join fast path ran (frame columns
  /// dropped + row-id dedup instead of boxed-row projection).
  bool used_semi_join = false;

  /// True when this execution replayed a cached compiled plan instead of
  /// planning from scratch.
  bool plan_cache_hit = false;
  /// Cumulative counters of the attached PlanCache, snapshotted after this
  /// execution (all zero when no cache is attached).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_invalidations = 0;
  /// Cumulative append-rebinds: cached plans whose tables only grew since
  /// recording and were re-bound (index/translation refresh) instead of
  /// re-planned. A rebind also counts as a hit.
  uint64_t plan_rebinds = 0;
  /// Cumulative LRU evictions forced by PlanCacheOptions::max_bytes.
  uint64_t plan_cache_evictions = 0;
  /// Largest morsel count any probe/filter scan was split into (1 = serial).
  size_t max_probe_shards = 1;
};

class Executor {
 public:
  enum class SupportStrategy { kNaive, kDedupFrontier };

  /// The database must outlive the executor. Each query entry point pins a
  /// fresh Database::Snapshot for its own duration, so every individual
  /// query is consistent under the single concurrent writer, but successive
  /// queries observe successive watermarks.
  explicit Executor(const Database* db);
  Executor(const Database* db, ExecutorOptions options);

  /// Evaluates every query against the given pinned read view: scans,
  /// probes, and literal resolution are clamped to the snapshot's
  /// watermarks, so results are identical to running against the database
  /// frozen at snapshot time — regardless of concurrent appends. The
  /// snapshot (and its database) must outlive the executor; this is the
  /// read-side handle of the single-writer/multi-reader contract.
  explicit Executor(const Database::Snapshot& snapshot);
  Executor(const Database::Snapshot& snapshot, ExecutorOptions options);

  const ExecutorOptions& options() const { return options_; }

  /// Materializes explanation instances: all qualifying bindings projected
  /// onto q.projection (or onto every referenced attribute if empty).
  StatusOr<Relation> Materialize(const PathQuery& q) const;

  /// Materializes instances for specific log records only (drives the
  /// per-access Explain operation). `lid_attr` must belong to variable 0.
  StatusOr<Relation> MaterializeForLogIds(const PathQuery& q, QAttr lid_attr,
                                          const std::vector<Value>& lids) const;

  /// Support: COUNT(DISTINCT <lid_attr>) over the query result (§3.2).
  StatusOr<int64_t> CountDistinct(const PathQuery& q, QAttr lid_attr,
                                  SupportStrategy strategy) const;

  /// The distinct values of `lid_attr` in the query result (the explained
  /// log ids), in ascending Value order. Used by the metrics module.
  StatusOr<std::vector<Value>> DistinctValues(const PathQuery& q,
                                              QAttr lid_attr,
                                              SupportStrategy strategy) const;

  /// The distinct log ids in the query result as a sorted int64 vector —
  /// the hot entry point for the miner's support counting and ExplainAll's
  /// per-template classification. `lid_attr` must belong to variable 0 and
  /// reference an integer-like column. Under kLateMaterialization this is
  /// the semi-join fast path end to end: no boxed row is ever built.
  StatusOr<std::vector<int64_t>> DistinctLids(const PathQuery& q,
                                              QAttr lid_attr) const;

  /// DistinctLids restricted to specific log records: the distinct members
  /// of `lids` the query explains, evaluated through the lid-filter initial
  /// scan so the cost scales with the batch, not the log. This is the
  /// incremental-audit entry point (core/ingest.h): a streaming ExplainNew
  /// re-evaluates only the accesses past its audited watermark.
  StatusOr<std::vector<int64_t>> DistinctLidsFor(
      const PathQuery& q, QAttr lid_attr,
      const std::vector<Value>& lids) const;

  /// How DistinctLidsJoinedTo restricts a tuple variable to the appended
  /// row range. kReverseSeed starts the join frontier *at the appended
  /// rows* and joins back toward the log (cost scales with the delta);
  /// kForwardFilter runs the normal log-seeded pipeline and filters the
  /// variable's row ids once it binds (cost scales with the log — the right
  /// side when the appended range is larger than the log, e.g. a bulk
  /// load). kAuto compares the two seed-scan cardinalities (range size vs
  /// log rows) and picks the smaller, deterministically.
  enum class PivotChoice { kAuto, kReverseSeed, kForwardFilter };

  struct JoinedToOptions {
    PivotChoice pivot = PivotChoice::kAuto;
    /// When false, occurrences of `table` at tuple variable 0 are skipped —
    /// core/ingest.h sets this for log-table appends, whose variable-0 rows
    /// are already covered by the DistinctLidsFor new-lid pass, leaving the
    /// self-join (variable > 0) occurrences to this entry point.
    bool include_var0 = true;
  };

  /// The reverse semi-join delta entry point: the distinct log ids of query
  /// results in which some tuple variable bound to `table` takes a row in
  /// `appended` (clamped to the table's current size), ascending. Appends
  /// are monotone — they only add witnesses — so for an appended suffix
  /// this is exactly the set of lids the append can newly explain:
  ///   DistinctLids(after) == DistinctLids(before) ∪ JoinedTo(suffix).
  /// Evaluates one pivot run per matching tuple variable; each run compiles
  /// to its own cached plan (keyed on the pivot, revalidated/re-bound like
  /// any other), with the row range as a runtime input. Returns empty when
  /// `table` is not referenced or the range is empty. `lid_attr` must
  /// belong to variable 0 and be integer-like; kLateMaterialization only.
  /// last_stats() afterwards describes the FINAL pivot run only (each run
  /// resets it); the cumulative plan-cache counters inside it still cover
  /// all runs, because they snapshot the attached cache's totals.
  StatusOr<std::vector<int64_t>> DistinctLidsJoinedTo(
      const PathQuery& q, QAttr lid_attr, const std::string& table,
      RowRange appended) const;
  StatusOr<std::vector<int64_t>> DistinctLidsJoinedTo(
      const PathQuery& q, QAttr lid_attr, const std::string& table,
      RowRange appended, const JoinedToOptions& jopts) const;

  const ExecStats& last_stats() const { return stats_; }

 private:
  /// Frame + resolved per-variable tables from one late-materialization run.
  struct FrameRun;

  /// One range-restricted ("pivot") execution of DistinctLidsJoinedTo:
  /// which tuple variable is restricted, whether the frame is seeded at it
  /// (reverse) or filtered after binding (forward), and the runtime range.
  struct PivotRun {
    int var = 0;
    bool reverse = true;
    RowRange range;
  };

  StatusOr<Relation> ExecuteBoxed(const PathQuery& q,
                                  const std::vector<QAttr>& output_attrs,
                                  bool dedup_intermediate,
                                  const std::vector<Value>* lid_filter,
                                  QAttr lid_attr) const;

  /// Shared body of DistinctLids / DistinctLidsFor (`lid_filter` null for
  /// the full log).
  StatusOr<std::vector<int64_t>> DistinctLidsImpl(
      const PathQuery& q, QAttr lid_attr,
      const std::vector<Value>* lid_filter) const;

  /// Late-materialization entry point: replays a cached compiled plan when
  /// options_.plan_cache holds a fresh one for this query shape, otherwise
  /// records the plan while executing (and caches it). At most one of
  /// `lid_filter` / `pivot` may be set.
  StatusOr<FrameRun> RunFrame(const PathQuery& q,
                              const std::vector<QAttr>& output_attrs,
                              bool dedup_frontier,
                              const std::vector<Value>* lid_filter,
                              QAttr lid_attr,
                              const PivotRun* pivot = nullptr) const;

  /// The pool probe morsels fan out over: the external options_.pool when
  /// set, else a lazily created owned pool (num_threads > 1), else null.
  ThreadPool* ProbePool() const;

  /// The read view this query runs against: the fixed snapshot when the
  /// executor was constructed from one (copies share the reclamation pin),
  /// else a freshly pinned snapshot of the live database.
  Database::Snapshot QuerySnapshot() const;

  const Database* db_;
  Database::Snapshot fixed_snapshot_;
  bool has_fixed_snapshot_ = false;
  ExecutorOptions options_;
  mutable ExecStats stats_;
  mutable std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace eba

#endif  // EBA_QUERY_EXECUTOR_H_
