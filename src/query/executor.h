// Executor: evaluates PathQueries with pipelined hash joins.
//
// Two support-evaluation strategies are provided (DESIGN.md decision 2):
//  - kNaive materializes the full join then counts distinct log ids;
//  - kDedupFrontier deduplicates the intermediate relation after every join,
//    carrying only the attributes still needed downstream. This generalizes
//    the paper's "reducing result multiplicity" optimization (§3.2.1): the
//    intermediate stays bounded by |Log| x (frontier domain) instead of
//    growing with event multiplicity.
//
// Join order: conditions are applied greedily starting from tuple variable 0
// (the log); each join step must be an equi-join that binds exactly one new
// tuple variable; conditions whose variables are already bound are applied
// as filters. Decorations (extra/const conditions) are applied as soon as
// their variables are bound.

#ifndef EBA_QUERY_EXECUTOR_H_
#define EBA_QUERY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "query/path_query.h"
#include "storage/database.h"

namespace eba {

/// An intermediate or final relation: a header of query attributes plus rows.
struct Relation {
  std::vector<QAttr> attrs;
  std::vector<Row> rows;

  /// Position of `attr` in `attrs`, or -1.
  int AttrIndex(const QAttr& attr) const {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == attr) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Counters describing the last execution (exposed for tests/benchmarks).
struct ExecStats {
  size_t joins_executed = 0;
  size_t rows_emitted = 0;       // total rows produced across all joins
  size_t peak_intermediate = 0;  // max intermediate row count
};

class Executor {
 public:
  enum class SupportStrategy { kNaive, kDedupFrontier };

  /// The database must outlive the executor.
  explicit Executor(const Database* db);

  /// Materializes explanation instances: all qualifying bindings projected
  /// onto q.projection (or onto every referenced attribute if empty).
  StatusOr<Relation> Materialize(const PathQuery& q) const;

  /// Materializes instances for specific log records only (drives the
  /// per-access Explain operation). `lid_attr` must belong to variable 0.
  StatusOr<Relation> MaterializeForLogIds(const PathQuery& q, QAttr lid_attr,
                                          const std::vector<Value>& lids) const;

  /// Support: COUNT(DISTINCT <lid_attr>) over the query result (§3.2).
  StatusOr<int64_t> CountDistinct(const PathQuery& q, QAttr lid_attr,
                                  SupportStrategy strategy) const;

  /// The distinct values of `lid_attr` in the query result (the explained
  /// log ids). Used by the metrics module.
  StatusOr<std::vector<Value>> DistinctValues(const PathQuery& q,
                                              QAttr lid_attr,
                                              SupportStrategy strategy) const;

  const ExecStats& last_stats() const { return stats_; }

 private:
  StatusOr<Relation> Execute(const PathQuery& q,
                             const std::vector<QAttr>& output_attrs,
                             bool dedup_intermediate,
                             const std::vector<Value>* lid_filter,
                             QAttr lid_attr) const;

  const Database* db_;
  mutable ExecStats stats_;
};

}  // namespace eba

#endif  // EBA_QUERY_EXECUTOR_H_
