#include "query/sql.h"

#include <set>

#include "common/string_util.h"

namespace eba {

namespace {

std::string LiteralToSql(const Value& v) {
  switch (v.type()) {
    case DataType::kString:
      return "'" + ReplaceAll(v.AsString(), "'", "''") + "'";
    case DataType::kTimestamp:
      return "'" + v.ToString() + "'";
    default:
      return v.ToString();
  }
}

std::vector<std::string> RenderPredicates(const Database& db,
                                          const PathQuery& q) {
  auto attr_name = [&](const QAttr& a) -> std::string {
    auto name = q.AttrName(db, a);
    return name.ok() ? *name : "?";
  };
  std::vector<std::string> preds;
  for (const auto& c : q.join_chain) {
    preds.push_back(attr_name(c.lhs) + " " + CmpOpToString(c.op) + " " +
                    attr_name(c.rhs));
  }
  for (const auto& c : q.extra_conditions) {
    preds.push_back(attr_name(c.lhs) + " " + CmpOpToString(c.op) + " " +
                    attr_name(c.rhs));
  }
  for (const auto& c : q.const_conditions) {
    preds.push_back(attr_name(c.lhs) + " " + CmpOpToString(c.op) + " " +
                    LiteralToSql(c.rhs));
  }
  return preds;
}

}  // namespace

StatusOr<std::string> RenderFromClause(const Database& db,
                                       const PathQuery& q) {
  EBA_RETURN_IF_ERROR(q.Validate(db));
  std::vector<std::string> items;
  items.reserve(q.vars.size());
  for (const auto& v : q.vars) items.push_back(v.table + " " + v.alias);
  return Join(items, ", ");
}

StatusOr<std::string> RenderWhereClause(const Database& db,
                                        const PathQuery& q) {
  EBA_RETURN_IF_ERROR(q.Validate(db));
  return Join(RenderPredicates(db, q), " AND ");
}

StatusOr<std::string> ToSql(const Database& db, const PathQuery& q,
                            const SqlRenderOptions& options) {
  EBA_RETURN_IF_ERROR(q.Validate(db));

  auto attr_name = [&](const QAttr& a) -> std::string {
    // Validate() guarantees resolvability.
    auto name = q.AttrName(db, a);
    return name.ok() ? *name : "?";
  };

  // SELECT clause.
  std::string sql = "SELECT ";
  if (options.count_distinct_lid) {
    sql += "COUNT(DISTINCT " + attr_name(options.lid_attr) + ")";
  } else {
    std::vector<QAttr> attrs = q.projection;
    if (attrs.empty()) attrs = q.ReferencedAttrs();
    std::vector<std::string> names;
    names.reserve(attrs.size());
    for (const auto& a : attrs) names.push_back(attr_name(a));
    sql += Join(names, ", ");
  }

  // FROM clause.
  sql += "\nFROM ";
  std::vector<std::string> from_items;
  for (size_t i = 0; i < q.vars.size(); ++i) {
    const TupleVar& v = q.vars[i];
    if (options.dedup_subqueries && i != 0) {
      // Project only the attributes the query touches on this variable.
      std::set<std::string> cols;
      EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(v.table));
      for (const auto& a : q.ReferencedAttrs()) {
        if (a.var == static_cast<int>(i)) {
          cols.insert(table->schema().column(static_cast<size_t>(a.col)).name);
        }
      }
      if (!cols.empty()) {
        from_items.push_back(
            "(SELECT DISTINCT " +
            Join(std::vector<std::string>(cols.begin(), cols.end()), ", ") +
            " FROM " + v.table + ") " + v.alias);
        continue;
      }
    }
    from_items.push_back(v.table + " " + v.alias);
  }
  sql += Join(from_items, ", ");

  // WHERE clause.
  std::vector<std::string> preds = RenderPredicates(db, q);
  if (!preds.empty()) {
    sql += "\nWHERE " + Join(preds, "\n  AND ");
  }
  return sql;
}

}  // namespace eba
