// A small parser for administrator-specified explanation templates.
//
// Grammar (whitespace-insensitive, AND is case-insensitive):
//
//   from_clause  := table alias ("," table alias)*
//   where_clause := condition ("AND" condition)*
//   condition    := attr op (attr | literal)
//   attr         := alias "." column
//   op           := "<" | "<=" | "=" | ">=" | ">"
//   literal      := integer | float | 'string' | 'YYYY-MM-DD[ HH:MM:SS]'
//
// The first tuple variable in the FROM clause is variable 0 and must be the
// audited log table. Equality attribute-attribute conditions become the
// join chain (in textual order); non-equality attribute conditions become
// decorations; attribute-literal conditions become literal decorations.

#ifndef EBA_QUERY_PARSER_H_
#define EBA_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/path_query.h"

namespace eba {

/// Parses FROM/WHERE clauses into a PathQuery (validated against `db`).
StatusOr<PathQuery> ParsePathQuery(const Database& db,
                                   const std::string& from_clause,
                                   const std::string& where_clause);

}  // namespace eba

#endif  // EBA_QUERY_PARSER_H_
