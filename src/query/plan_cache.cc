#include "query/plan_cache.h"

#include <utility>

namespace eba {

bool CompiledPlan::IsFresh() const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i]->epoch() != table_epochs[i]) return false;
  }
  return true;
}

std::shared_ptr<const CompiledPlan> PlanCache::Lookup(const std::string& key,
                                                      const Database* db) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    // The catalog-generation check runs first: it guarantees every Table*
    // in the plan is still alive before IsFresh dereferences them. IsFresh
    // takes each table's lazy mutex; those are leaf locks, so holding the
    // cache mutex across the check cannot deadlock.
    if (it->second->db == db &&
        it->second->catalog_generation == db->catalog_generation() &&
        it->second->IsFresh()) {
      ++stats_.hits;
      return it->second;
    }
    plans_.erase(it);
    ++stats_.invalidations;
  }
  ++stats_.misses;
  return nullptr;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CompiledPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[key] = std::move(plan);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
}

}  // namespace eba
