#include "query/plan_cache.h"

#include <utility>

#include "common/logging.h"

namespace eba {

CompiledPlan::Freshness CompiledPlan::CheckFreshness(
    const Database::Snapshot& snapshot) const {
  bool appended = false;
  for (size_t i = 0; i < tables.size(); ++i) {
    const Database::Snapshot::TableView* view = snapshot.ViewOf(tables[i]);
    if (view == nullptr ||
        view->structural_epoch != table_structural_epochs[i]) {
      return Freshness::kStale;
    }
    if (view->watermark > table_watermarks[i]) {
      // The snapshot pins rows past what the plan was bound against:
      // indexes and translation tables need extending. Tables are
      // append-only below the structural layer, so watermarks only move
      // forward within one structural epoch.
      appended = true;
    }
    // view->watermark <= recorded: the plan is at least as new as the
    // snapshot. Replay clamps every probe and scan to the snapshot bound,
    // so the newer bindings evaluate the older view exactly — kFresh.
  }
  return appended ? Freshness::kAppendedOnly : Freshness::kFresh;
}

size_t CompiledPlan::ApproxBytes() const {
  size_t bytes = sizeof(CompiledPlan);
  bytes += tables.capacity() * sizeof(const Table*);
  bytes += table_structural_epochs.capacity() * sizeof(uint64_t);
  bytes += table_watermarks.capacity() * sizeof(uint64_t);
  bytes += stats_points.capacity() * sizeof(StatsPoint);
  bytes += final_vars.capacity() * sizeof(int);
  bytes += steps.capacity() * sizeof(PlanStep);
  for (const PlanStep& st : steps) {
    bytes += st.translated_codes.capacity() * sizeof(int64_t);
    bytes += st.keep_slots.capacity() * sizeof(uint32_t);
    bytes += st.drop_keep_slots.capacity() * sizeof(uint32_t);
    bytes += st.lit_string.capacity();
  }
  return bytes;
}

std::shared_ptr<const CompiledPlan> RebindPlanForAppend(
    const CompiledPlan& plan) {
  auto rebound = std::make_shared<CompiledPlan>(plan);
  // Stamp the new watermarks FIRST, before any index or dictionary state is
  // read below. A row below a stamped watermark published its dictionary
  // codes before the watermark was readable, so the translation tables and
  // literal resolutions computed afterwards cover every code reachable by
  // any snapshot at or below these watermarks — even while the single
  // writer keeps appending during the rebind.
  for (size_t i = 0; i < rebound->tables.size(); ++i) {
    rebound->table_watermarks[i] = rebound->tables[i]->append_watermark();
  }
  for (PlanStep& st : rebound->steps) {
    switch (st.kind) {
      case PlanStep::Kind::kJoin: {
        const Table* table =
            rebound->tables[static_cast<size_t>(st.new_var)];
        // Re-request the index: extends it past the watermark. The HashIndex
        // object survives appends, so the pointer is unchanged in practice —
        // the call exists for its extension side effect.
        st.index = &table->GetOrBuildIndex(static_cast<size_t>(st.index_col));
        if (st.probe_kind == PlanStep::ProbeKind::kStringTranslated) {
          const Column& build_col =
              table->column(static_cast<size_t>(st.index_col));
          const size_t build_dict = build_col.DictionarySize();
          const size_t probe_dict = st.probe_col->DictionarySize();
          if (build_dict != st.build_dict_size) {
            // New build-side strings: probe codes that previously resolved
            // to -1 may now translate, so recompute the whole table.
            st.translated_codes = st.index->TranslateCodesFrom(*st.probe_col);
            st.build_dict_size = build_dict;
          } else if (probe_dict > st.translated_codes.size()) {
            // Only the probe side minted codes: translate just the suffix.
            st.translated_codes.reserve(probe_dict);
            for (size_t code = st.translated_codes.size(); code < probe_dict;
                 ++code) {
              auto own = build_col.FindStringCode(
                  st.probe_col->DictionaryEntry(static_cast<int64_t>(code)));
              st.translated_codes.push_back(own ? *own : -1);
            }
          }
        }
        break;
      }
      case PlanStep::Kind::kConstFilter:
        if (st.lit_rebindable) {
          // A string-equality literal absent from the dictionary at compile
          // time: appends may have minted its code.
          auto code = st.lhs_col->FindStringCode(st.lit_string);
          if (code) {
            st.lit_kind = PlanStep::LitKind::kStringCode;
            st.lit_int = *code;
            st.lit_rebindable = false;  // codes are stable once minted
          } else {
            st.lit_kind = PlanStep::LitKind::kNeverMatches;
          }
        }
        break;
      default:
        break;
    }
  }
  return rebound;
}

std::shared_ptr<const CompiledPlan> PlanCache::Lookup(
    const std::string& key, const Database::Snapshot& snapshot) {
  // Writer lock even on the read path: a hit mutates the LRU list and the
  // hit counters, and an append-only hit re-binds the entry in place.
  WriterMutexLock lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  // The catalog-generation check runs first: it guarantees every Table* in
  // the plan is still alive before CheckFreshness dereferences them. Both
  // the freshness check and a rebind take table-level leaf locks, so
  // holding the cache mutex across them cannot deadlock.
  if (it->second.plan->db != snapshot.database() ||
      it->second.plan->catalog_generation != snapshot.generation()) {
    resident_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    plans_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  switch (it->second.plan->CheckFreshness(snapshot)) {
    case CompiledPlan::Freshness::kFresh:
      break;
    case CompiledPlan::Freshness::kAppendedOnly: {
      // Re-bind in place: refresh index bindings and code translations for
      // the appended suffix instead of discarding the compiled plan.
      std::shared_ptr<const CompiledPlan> rebound =
          RebindPlanForAppend(*it->second.plan);
      resident_bytes_ -= it->second.bytes;
      it->second.plan = std::move(rebound);
      it->second.bytes = it->second.plan->ApproxBytes() + it->first.size();
      resident_bytes_ += it->second.bytes;
      ++stats_.rebinds;
      // Rebinds grow plans (extended translation tables): re-enforce the
      // byte cap here too, or a steady hit+rebind stream would never pass
      // through Insert and the cap would be dead in exactly that state.
      // Mark this entry most-recently used FIRST (the splice below is then
      // a no-op): in a round-robin rebind stream the looked-up key sits at
      // the LRU back, where EvictOverCapLocked's keep-guard would otherwise
      // stop the sweep before evicting anything.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      EvictOverCapLocked(key);
      break;
    }
    case CompiledPlan::Freshness::kStale:
      resident_bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      plans_.erase(it);
      ++stats_.invalidations;
      ++stats_.misses;
      return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // most-recently used
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CompiledPlan> plan) {
  WriterMutexLock lock(mu_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    resident_bytes_ -= it->second.bytes;
    it->second.plan = std::move(plan);
    it->second.bytes = it->second.plan->ApproxBytes() + key.size();
    resident_bytes_ += it->second.bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(key);
    Entry entry;
    entry.plan = std::move(plan);
    entry.bytes = entry.plan->ApproxBytes() + key.size();
    entry.lru_it = lru_.begin();
    resident_bytes_ += entry.bytes;
    plans_.emplace(key, std::move(entry));
  }
  EvictOverCapLocked(key);
}

void PlanCache::EvictOverCapLocked(const std::string& keep) {
  if (options_.max_bytes == 0) return;
  while (resident_bytes_ > options_.max_bytes && !lru_.empty() &&
         lru_.back() != keep) {
    auto it = plans_.find(lru_.back());
    EBA_CHECK(it != plans_.end());
    resident_bytes_ -= it->second.bytes;
    plans_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

PlanCache::Stats PlanCache::stats() const {
  SharedMutexLock lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  SharedMutexLock lock(mu_);
  return plans_.size();
}

size_t PlanCache::resident_bytes() const {
  SharedMutexLock lock(mu_);
  return resident_bytes_;
}

void PlanCache::Clear() {
  WriterMutexLock lock(mu_);
  plans_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace eba
