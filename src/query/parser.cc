#include "query/parser.h"

#include <algorithm>
#include <cctype>

#include "common/date.h"
#include "common/string_util.h"

namespace eba {

namespace {

/// Splits a WHERE clause on the keyword AND (case-insensitive, respecting
/// single-quoted literals).
std::vector<std::string> SplitConditions(const std::string& where) {
  std::vector<std::string> out;
  std::string current;
  bool in_quote = false;
  for (size_t i = 0; i < where.size(); ++i) {
    char c = where[i];
    if (c == '\'') in_quote = !in_quote;
    if (!in_quote && (c == 'A' || c == 'a') && i + 3 <= where.size()) {
      bool prev_space = (i == 0) || std::isspace(static_cast<unsigned char>(
                                        where[i - 1]));
      bool next_space =
          (i + 3 == where.size()) ||
          std::isspace(static_cast<unsigned char>(where[i + 3]));
      if (prev_space && next_space &&
          EqualsIgnoreCase(where.substr(i, 3), "AND")) {
        out.push_back(current);
        current.clear();
        i += 2;
        continue;
      }
    }
    current.push_back(c);
  }
  out.push_back(current);
  return out;
}

/// Finds the comparison operator; returns its position and length, longest
/// match first (so "<=" is not read as "<").
bool FindOperator(const std::string& cond, size_t* pos, CmpOp* op,
                  size_t* len) {
  bool in_quote = false;
  for (size_t i = 0; i < cond.size(); ++i) {
    char c = cond[i];
    if (c == '\'') in_quote = !in_quote;
    if (in_quote) continue;
    if (c == '<') {
      *pos = i;
      if (i + 1 < cond.size() && cond[i + 1] == '=') {
        *op = CmpOp::kLe;
        *len = 2;
      } else {
        *op = CmpOp::kLt;
        *len = 1;
      }
      return true;
    }
    if (c == '>') {
      *pos = i;
      if (i + 1 < cond.size() && cond[i + 1] == '=') {
        *op = CmpOp::kGe;
        *len = 2;
      } else {
        *op = CmpOp::kGt;
        *len = 1;
      }
      return true;
    }
    if (c == '=') {
      *pos = i;
      *op = CmpOp::kEq;
      *len = 1;
      return true;
    }
  }
  return false;
}

bool LooksLikeAttr(const std::string& token) {
  size_t dot = token.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= token.size()) {
    return false;
  }
  if (token.front() == '\'') return false;
  // Attr tokens contain exactly one dot and no digits-only lhs; a float like
  // "1.5" is not an attr.
  for (char c : token) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_')) {
      return false;
    }
  }
  std::string alias = token.substr(0, dot);
  return !std::all_of(alias.begin(), alias.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c));
  });
}

StatusOr<Value> ParseLiteral(const std::string& token, DataType want) {
  std::string t = Trim(token);
  if (t.empty()) return Status::InvalidArgument("empty literal");
  if (t.front() == '\'') {
    if (t.size() < 2 || t.back() != '\'') {
      return Status::InvalidArgument("unterminated string literal: " + t);
    }
    std::string body = ReplaceAll(t.substr(1, t.size() - 2), "''", "'");
    if (want == DataType::kTimestamp) {
      EBA_ASSIGN_OR_RETURN(Date d, Date::Parse(body));
      return Value::Timestamp(d.ToSeconds());
    }
    return Value::String(body);
  }
  try {
    switch (want) {
      case DataType::kInt64:
        return Value::Int64(std::stoll(t));
      case DataType::kDouble:
        return Value::Double(std::stod(t));
      case DataType::kBool:
        if (EqualsIgnoreCase(t, "true")) return Value::Bool(true);
        if (EqualsIgnoreCase(t, "false")) return Value::Bool(false);
        return Value::Bool(std::stoll(t) != 0);
      case DataType::kTimestamp:
        return Value::Timestamp(std::stoll(t));
      case DataType::kString:
        return Value::String(t);
      case DataType::kNull:
        break;
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("cannot parse literal '" + t + "' as " +
                                   DataTypeToString(want));
  }
  return Status::InvalidArgument("cannot type literal: " + t);
}

}  // namespace

StatusOr<PathQuery> ParsePathQuery(const Database& db,
                                   const std::string& from_clause,
                                   const std::string& where_clause) {
  PathQuery q;

  // FROM clause.
  for (const std::string& raw : Split(from_clause, ',')) {
    std::string item = Trim(raw);
    if (item.empty()) {
      return Status::InvalidArgument("empty FROM item in: " + from_clause);
    }
    std::vector<std::string> parts;
    for (const auto& p : Split(item, ' ')) {
      if (!Trim(p).empty()) parts.push_back(Trim(p));
    }
    if (parts.size() == 1) {
      q.vars.push_back(TupleVar{parts[0], parts[0]});
    } else if (parts.size() == 2) {
      q.vars.push_back(TupleVar{parts[0], parts[1]});
    } else {
      return Status::InvalidArgument("cannot parse FROM item: '" + item + "'");
    }
    if (!db.HasTable(q.vars.back().table)) {
      return Status::NotFound("no table '" + q.vars.back().table + "'");
    }
  }
  if (q.vars.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }

  // WHERE clause.
  std::string where = Trim(where_clause);
  if (!where.empty()) {
    for (const std::string& raw : SplitConditions(where)) {
      std::string cond = Trim(raw);
      if (cond.empty()) {
        return Status::InvalidArgument("empty condition in WHERE clause");
      }
      size_t pos = 0, len = 0;
      CmpOp op = CmpOp::kEq;
      if (!FindOperator(cond, &pos, &op, &len)) {
        return Status::InvalidArgument("no comparison operator in: '" + cond +
                                       "'");
      }
      std::string lhs_text = Trim(cond.substr(0, pos));
      std::string rhs_text = Trim(cond.substr(pos + len));
      if (!LooksLikeAttr(lhs_text)) {
        return Status::InvalidArgument("left side must be an attribute: '" +
                                       cond + "'");
      }
      size_t dot = lhs_text.find('.');
      EBA_ASSIGN_OR_RETURN(
          QAttr lhs, q.Resolve(db, lhs_text.substr(0, dot),
                               lhs_text.substr(dot + 1)));
      if (LooksLikeAttr(rhs_text)) {
        size_t rdot = rhs_text.find('.');
        EBA_ASSIGN_OR_RETURN(
            QAttr rhs, q.Resolve(db, rhs_text.substr(0, rdot),
                                 rhs_text.substr(rdot + 1)));
        if (op == CmpOp::kEq) {
          q.join_chain.push_back(VarCondition{lhs, op, rhs});
        } else {
          q.extra_conditions.push_back(VarCondition{lhs, op, rhs});
        }
      } else {
        EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(q.vars[lhs.var].table));
        DataType want =
            table->schema().column(static_cast<size_t>(lhs.col)).type;
        EBA_ASSIGN_OR_RETURN(Value lit, ParseLiteral(rhs_text, want));
        q.const_conditions.push_back(ConstCondition{lhs, op, lit});
      }
    }
  }

  EBA_RETURN_IF_ERROR(q.Validate(db));
  return q;
}

}  // namespace eba
