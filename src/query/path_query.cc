#include "query/path_query.h"

#include <set>
#include <unordered_set>

namespace eba {

StatusOr<QAttr> PathQuery::Resolve(const Database& db,
                                   const std::string& alias,
                                   const std::string& column) const {
  int var = VarIndexByAlias(alias);
  if (var < 0) return Status::NotFound("no tuple variable '" + alias + "'");
  EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(vars[var].table));
  int col = table->schema().ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in '" +
                            vars[var].table + "' (alias " + alias + ")");
  }
  return QAttr{var, col};
}

int PathQuery::VarIndexByAlias(const std::string& alias) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i].alias == alias) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<std::string> PathQuery::AttrName(const Database& db,
                                          const QAttr& attr) const {
  if (attr.var < 0 || attr.var >= static_cast<int>(vars.size())) {
    return Status::OutOfRange("bad var index");
  }
  EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(vars[attr.var].table));
  if (attr.col < 0 ||
      attr.col >= static_cast<int>(table->schema().num_columns())) {
    return Status::OutOfRange("bad col index");
  }
  return vars[attr.var].alias + "." +
         table->schema().column(static_cast<size_t>(attr.col)).name;
}

Status PathQuery::Validate(const Database& db) const {
  if (vars.empty()) return Status::InvalidArgument("no tuple variables");
  std::unordered_set<std::string> aliases;
  for (const auto& v : vars) {
    if (!db.HasTable(v.table)) {
      return Status::NotFound("no table '" + v.table + "'");
    }
    if (v.alias.empty()) return Status::InvalidArgument("empty alias");
    if (!aliases.insert(v.alias).second) {
      return Status::InvalidArgument("duplicate alias '" + v.alias + "'");
    }
  }
  auto check_attr = [&](const QAttr& a) -> Status {
    if (a.var < 0 || a.var >= static_cast<int>(vars.size())) {
      return Status::OutOfRange("condition references unknown tuple variable");
    }
    EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(vars[a.var].table));
    if (a.col < 0 ||
        a.col >= static_cast<int>(table->schema().num_columns())) {
      return Status::OutOfRange("condition references unknown column");
    }
    return Status::OK();
  };
  for (const auto& c : join_chain) {
    EBA_RETURN_IF_ERROR(check_attr(c.lhs));
    EBA_RETURN_IF_ERROR(check_attr(c.rhs));
  }
  for (const auto& c : extra_conditions) {
    EBA_RETURN_IF_ERROR(check_attr(c.lhs));
    EBA_RETURN_IF_ERROR(check_attr(c.rhs));
  }
  for (const auto& c : const_conditions) {
    EBA_RETURN_IF_ERROR(check_attr(c.lhs));
  }
  for (const auto& a : projection) {
    EBA_RETURN_IF_ERROR(check_attr(a));
  }
  return Status::OK();
}

std::vector<QAttr> PathQuery::ReferencedAttrs() const {
  std::set<QAttr> seen;
  for (const auto& c : join_chain) {
    seen.insert(c.lhs);
    seen.insert(c.rhs);
  }
  for (const auto& c : extra_conditions) {
    seen.insert(c.lhs);
    seen.insert(c.rhs);
  }
  for (const auto& c : const_conditions) seen.insert(c.lhs);
  for (const auto& a : projection) seen.insert(a);
  return {seen.begin(), seen.end()};
}

int PathQuery::CountedTables(const Database& db) const {
  std::set<std::string> names;
  for (const auto& v : vars) {
    if (!db.IsMappingTable(v.table)) names.insert(v.table);
  }
  return static_cast<int>(names.size());
}

int PathQuery::ReportedLength(const Database& db) const {
  int mapping_instances = 0;
  for (const auto& v : vars) {
    if (db.IsMappingTable(v.table)) ++mapping_instances;
  }
  return RawLength() - mapping_instances;
}

}  // namespace eba
