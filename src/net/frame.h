// Request/response framing for the auditing server, byte-compatible with
// the WAL's record discipline (storage/wal.h):
//
//   +----------------+----------------+------+-----------------+
//   | u32 payload_len| u32 crc32      | u8   | payload bytes   |
//   |                | (type+payload) | type | (payload_len)   |
//   +----------------+----------------+------+-----------------+
//
// All integers little-endian. The CRC covers the type byte and the payload,
// so a bit flip anywhere in a frame is detected before dispatch. Unlike the
// WAL reader (which treats a bad tail as a torn crash artifact to truncate),
// the connection reader treats any malformed frame as a protocol error: the
// peer is live and must either have sent the bytes it framed or be dropped.

#ifndef EBA_NET_FRAME_H_
#define EBA_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/socket.h"

namespace eba {

/// u32 len + u32 crc + u8 type.
inline constexpr size_t kFrameHeaderBytes = 9;

/// A decoded frame: the type byte plus the raw payload bytes.
struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Frames `payload` under `type` (the WAL record encoding verbatim).
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Blocking frame reader over one Connection.
///
/// Error contract (what the server's per-connection loop keys on):
///   - OK: one complete, CRC-verified frame.
///   - NotFound: the peer closed cleanly at a frame boundary.
///   - InvalidArgument: a malformed frame — truncated mid-header or
///     mid-payload, payload length above `max_payload`, or CRC mismatch.
///     The stream is unsynchronized from here on; the only safe move is to
///     drop the connection.
///   - anything else: transport failure from Connection::Read.
class FrameReader {
 public:
  FrameReader(Connection* conn, size_t max_payload)
      : conn_(conn), max_payload_(max_payload) {}

  StatusOr<Frame> Next();

 private:
  /// Reads exactly `n` bytes. `clean_eof_ok`: EOF before the first byte is
  /// a frame-boundary close (NotFound), EOF mid-read is a truncated frame.
  Status ReadExact(char* buf, size_t n, bool clean_eof_ok);

  Connection* conn_;
  size_t max_payload_;
};

}  // namespace eba

#endif  // EBA_NET_FRAME_H_
