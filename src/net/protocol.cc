#include "net/protocol.h"

#include <algorithm>

namespace eba {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

/// Cursor over an immutable byte range; Get* return false on underrun
/// (adversarial payloads must fail cleanly, never over-read).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (data_.size() < pos_ + 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (data_.size() < pos_ + 4) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = (uint64_t{hi} << 32) | lo;
    return true;
  }

  bool GetBytes(size_t n, std::string_view* out) {
    if (data_.size() < pos_ + n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void PutSizeVec(std::string* out, const std::vector<size_t>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (const size_t x : v) PutU64(out, static_cast<uint64_t>(x));
}

void PutLidVec(std::string* out, const std::vector<int64_t>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (const int64_t x : v) PutU64(out, static_cast<uint64_t>(x));
}

bool GetSizeVec(ByteReader* in, std::vector<size_t>* v) {
  uint32_t n = 0;
  if (!in->GetU32(&n)) return false;
  if (uint64_t{n} * 8 > in->remaining()) return false;  // bogus count
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    if (!in->GetU64(&x)) return false;
    (*v)[i] = static_cast<size_t>(x);
  }
  return true;
}

bool GetLidVec(ByteReader* in, std::vector<int64_t>* v) {
  uint32_t n = 0;
  if (!in->GetU32(&n)) return false;
  if (uint64_t{n} * 8 > in->remaining()) return false;
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    if (!in->GetU64(&x)) return false;
    (*v)[i] = static_cast<int64_t>(x);
  }
  return true;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

constexpr uint32_t kReportVersion = 1;

}  // namespace

std::string EncodeError(const ErrorBody& error) {
  std::string out;
  out.push_back(static_cast<char>(error.code));
  out.push_back(static_cast<char>(error.retryable ? 1 : 0));
  PutU32(&out, static_cast<uint32_t>(error.message.size()));
  out.append(error.message);
  return out;
}

StatusOr<ErrorBody> DecodeError(std::string_view payload) {
  ByteReader in(payload);
  ErrorBody error;
  uint8_t retryable = 0;
  uint32_t len = 0;
  std::string_view msg;
  if (!in.GetU8(&error.code) || !in.GetU8(&retryable) || !in.GetU32(&len) ||
      !in.GetBytes(len, &msg) || !in.AtEnd()) {
    return Malformed("error");
  }
  error.retryable = retryable != 0;
  error.message.assign(msg);
  return error;
}

std::string EncodeLid(int64_t lid) {
  std::string out;
  PutU64(&out, static_cast<uint64_t>(lid));
  return out;
}

StatusOr<int64_t> DecodeLid(std::string_view payload) {
  ByteReader in(payload);
  uint64_t v = 0;
  if (!in.GetU64(&v) || !in.AtEnd()) return Malformed("lid");
  return static_cast<int64_t>(v);
}

std::string EncodeStreamingReport(const StreamingReport& report) {
  std::string out;
  PutU32(&out, kReportVersion);
  PutU64(&out, report.audited_from);
  PutU64(&out, report.audited_to);
  out.push_back(static_cast<char>(report.full_reaudit ? 1 : 0));
  PutSizeVec(&out, report.per_template_counts);
  PutLidVec(&out, report.explained_lids);
  PutLidVec(&out, report.unexplained_lids);
  PutLidVec(&out, report.delta_explained_lids);
  PutSizeVec(&out, report.per_template_delta_counts);
  PutU64(&out, report.delta_tables);
  PutU64(&out, report.delta_queries);
  return out;
}

StatusOr<StreamingReport> DecodeStreamingReport(std::string_view payload) {
  ByteReader in(payload);
  uint32_t version = 0;
  if (!in.GetU32(&version)) return Malformed("report");
  if (version != kReportVersion) {
    return Status::InvalidArgument("unsupported report version " +
                                   std::to_string(version));
  }
  StreamingReport report;
  uint64_t from = 0;
  uint64_t to = 0;
  uint8_t full = 0;
  uint64_t delta_tables = 0;
  uint64_t delta_queries = 0;
  if (!in.GetU64(&from) || !in.GetU64(&to) || !in.GetU8(&full) ||
      !GetSizeVec(&in, &report.per_template_counts) ||
      !GetLidVec(&in, &report.explained_lids) ||
      !GetLidVec(&in, &report.unexplained_lids) ||
      !GetLidVec(&in, &report.delta_explained_lids) ||
      !GetSizeVec(&in, &report.per_template_delta_counts) ||
      !in.GetU64(&delta_tables) || !in.GetU64(&delta_queries) ||
      !in.AtEnd()) {
    return Malformed("report");
  }
  report.audited_from = static_cast<size_t>(from);
  report.audited_to = static_cast<size_t>(to);
  report.full_reaudit = full != 0;
  report.delta_tables = static_cast<size_t>(delta_tables);
  report.delta_queries = static_cast<size_t>(delta_queries);
  return report;
}

std::string EncodeExplainResult(const ExplainResult& result) {
  std::string out;
  out.push_back(static_cast<char>(result.explained ? 1 : 0));
  PutU32(&out, static_cast<uint32_t>(result.template_names.size()));
  for (const std::string& name : result.template_names) {
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  return out;
}

StatusOr<ExplainResult> DecodeExplainResult(std::string_view payload) {
  ByteReader in(payload);
  ExplainResult result;
  uint8_t explained = 0;
  uint32_t n = 0;
  if (!in.GetU8(&explained) || !in.GetU32(&n)) return Malformed("explain");
  result.explained = explained != 0;
  result.template_names.reserve(std::min<size_t>(n, 4096));
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t len = 0;
    std::string_view name;
    if (!in.GetU32(&len) || !in.GetBytes(len, &name)) {
      return Malformed("explain");
    }
    result.template_names.emplace_back(name);
  }
  if (!in.AtEnd()) return Malformed("explain");
  return result;
}

std::string EncodeServerReport(const ServerReport& report) {
  std::string out;
  const uint64_t fields[] = {
      report.rows_appended,      report.batches_appended,
      report.foreign_rows_appended, report.audited_rows,
      report.explained_count,    report.requests_served,
      report.appends_rejected_busy, report.connections_accepted,
  };
  PutU32(&out, static_cast<uint32_t>(sizeof(fields) / sizeof(fields[0])));
  for (const uint64_t v : fields) PutU64(&out, v);
  return out;
}

StatusOr<ServerReport> DecodeServerReport(std::string_view payload) {
  ByteReader in(payload);
  uint32_t n = 0;
  if (!in.GetU32(&n)) return Malformed("server report");
  ServerReport report;
  uint64_t* fields[] = {
      &report.rows_appended,      &report.batches_appended,
      &report.foreign_rows_appended, &report.audited_rows,
      &report.explained_count,    &report.requests_served,
      &report.appends_rejected_busy, &report.connections_accepted,
  };
  const size_t known = sizeof(fields) / sizeof(fields[0]);
  if (n < known) return Malformed("server report");
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    if (!in.GetU64(&v)) return Malformed("server report");
    // A newer server may append fields; decode the ones this build knows.
    if (i < known) *fields[i] = v;
  }
  if (!in.AtEnd()) return Malformed("server report");
  return report;
}

}  // namespace eba
