// Client for the auditing server: one connection, synchronous
// request/response. Used by bench_serving's load generator, the tests, and
// as the reference implementation of the wire protocol.

#ifndef EBA_NET_CLIENT_H_
#define EBA_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "storage/table.h"

namespace eba {

class AuditClient {
 public:
  /// Connects and, when `token` is non-empty, authenticates (the server's
  /// first-frame contract).
  static StatusOr<std::unique_ptr<AuditClient>> Connect(
      NetEnv* net, const std::string& host, int port,
      const std::string& token,
      uint32_t max_frame_payload_bytes = 64u << 20);

  /// Appends access rows to the server's log table. Acked only after the
  /// server's ingest thread ran the batch (WAL-committed when durable).
  Status AppendAccessBatch(const std::vector<Row>& rows);

  /// Appends rows to a named table (foreign-table drift).
  Status AppendRows(const std::string& table, const std::vector<Row>& rows);

  /// Runs a server-side audit delta; returns the raw report payload bytes
  /// (the byte-equivalence surface: compare against
  /// EncodeStreamingReport(in-process ExplainNew report)).
  StatusOr<std::string> ExplainNewRaw();

  /// Decoded form of ExplainNewRaw.
  StatusOr<StreamingReport> ExplainNew();

  /// Per-access explain.
  StatusOr<ExplainResult> Explain(int64_t lid);

  StatusOr<ServerReport> Report();

  /// True when `s` came back from a kErrBusy admission-control rejection:
  /// back off and retry the identical request.
  static bool IsRetryableBusy(const Status& s);

 private:
  AuditClient(std::unique_ptr<Connection> conn, uint32_t max_payload);

  /// Sends one frame and reads the response; kRespError becomes a non-OK
  /// Status (retryable rejections tagged for IsRetryableBusy).
  StatusOr<std::string> RoundTrip(uint8_t type, std::string_view payload);

  std::unique_ptr<Connection> conn_;
  FrameReader reader_;
};

}  // namespace eba

#endif  // EBA_NET_CLIENT_H_
