// lint:raw-net (this file IS the transport seam: every raw socket call in
// the serving stack lives here, like storage/io.cc for file descriptors)

#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eba {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// ---------------------------------------------------------------------------
// Real TCP transport

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override {
    ShutdownBoth();
    ::close(fd_);
  }

  StatusOr<size_t> Read(char* buf, size_t n) override {
    for (;;) {
      const ssize_t got = ::recv(fd_, buf, n, 0);
      if (got >= 0) return static_cast<size_t>(got);
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("recv"));
    }
  }

  Status WriteAll(std::string_view data) override {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t put =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(ErrnoMessage("send"));
      }
      off += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  void ShutdownBoth() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

class TcpListener : public Listener {
 public:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}
  ~TcpListener() override { Close(); }

  StatusOr<std::unique_ptr<Connection>> Accept() override {
    for (;;) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn >= 0) {
        const int one = 1;
        (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return std::unique_ptr<Connection>(new TcpConnection(conn));
      }
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(ErrnoMessage("accept"));
    }
  }

  int port() const override { return port_; }

  void Close() override {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    // shutdown unblocks a concurrent accept(); close alone may not.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
  }

 private:
  const int fd_;
  const int port_;
  Mutex mu_;
  bool closed_ EBA_GUARDED_BY(mu_) = false;
};

class TcpNetEnv : public NetEnv {
 public:
  StatusOr<std::unique_ptr<Listener>> Listen(const std::string& host,
                                             int port) override {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal(ErrnoMessage("socket"));
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("bad listen address: " + host);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status s = Status::Internal(ErrnoMessage("bind"));
      ::close(fd);
      return s;
    }
    if (::listen(fd, 64) != 0) {
      const Status s = Status::Internal(ErrnoMessage("listen"));
      ::close(fd);
      return s;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      const Status s = Status::Internal(ErrnoMessage("getsockname"));
      ::close(fd);
      return s;
    }
    return std::unique_ptr<Listener>(
        new TcpListener(fd, ntohs(addr.sin_port)));
  }

  StatusOr<std::unique_ptr<Connection>> Connect(const std::string& host,
                                                int port) override {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal(ErrnoMessage("socket"));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("bad connect address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status s = Status::Internal(ErrnoMessage("connect"));
      ::close(fd);
      return s;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::unique_ptr<Connection>(new TcpConnection(fd));
  }
};

// ---------------------------------------------------------------------------
// In-memory transport

/// One direction of an in-memory duplex connection: a byte buffer with a
/// closed flag. Writers append; readers drain or block.
struct Pipe {
  Mutex mu;
  CondVar cv;
  std::string buffer EBA_GUARDED_BY(mu);
  bool closed EBA_GUARDED_BY(mu) = false;

  void Close() {
    MutexLock lock(mu);
    closed = true;
    cv.NotifyAll();
  }
};

/// One end of a duplex pair: reads from `in`, writes to `out`. The two ends
/// share the pipes in opposite orientation.
class InMemoryConnection : public Connection {
 public:
  InMemoryConnection(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~InMemoryConnection() override { ShutdownBoth(); }

  StatusOr<size_t> Read(char* buf, size_t n) override {
    MutexLock lock(in_->mu);
    while (in_->buffer.empty() && !in_->closed) in_->cv.Wait(in_->mu);
    if (in_->buffer.empty()) return size_t{0};  // closed: clean EOF
    const size_t got = std::min(n, in_->buffer.size());
    std::memcpy(buf, in_->buffer.data(), got);
    in_->buffer.erase(0, got);
    return got;
  }

  Status WriteAll(std::string_view data) override {
    MutexLock lock(out_->mu);
    if (out_->closed) return Status::FailedPrecondition("connection closed");
    out_->buffer.append(data.data(), data.size());
    out_->cv.NotifyAll();
    return Status::OK();
  }

  void ShutdownBoth() override {
    in_->Close();
    out_->Close();
  }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
};

class InMemoryNetEnv;

class InMemoryListener : public Listener {
 public:
  InMemoryListener(InMemoryNetEnv* env, int port) : env_(env), port_(port) {}
  ~InMemoryListener() override { Close(); }

  StatusOr<std::unique_ptr<Connection>> Accept() override {
    MutexLock lock(mu_);
    while (pending_.empty() && !closed_) cv_.Wait(mu_);
    if (pending_.empty()) {
      return Status::FailedPrecondition("listener closed");
    }
    std::unique_ptr<Connection> conn = std::move(pending_.front());
    pending_.pop_front();
    return conn;
  }

  int port() const override { return port_; }

  void Close() override;

  /// Called by the env's Connect: hands the server-side end to Accept.
  bool Deliver(std::unique_ptr<Connection> conn) {
    MutexLock lock(mu_);
    if (closed_) return false;
    pending_.push_back(std::move(conn));
    cv_.NotifyOne();
    return true;
  }

 private:
  InMemoryNetEnv* const env_;
  const int port_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::unique_ptr<Connection>> pending_ EBA_GUARDED_BY(mu_);
  bool closed_ EBA_GUARDED_BY(mu_) = false;
};

class InMemoryNetEnv : public NetEnv {
 public:
  StatusOr<std::unique_ptr<Listener>> Listen(const std::string& host,
                                             int port) override {
    (void)host;  // every in-memory address is local
    MutexLock lock(mu_);
    if (port == 0) port = next_port_++;
    if (listeners_.count(port) > 0) {
      return Status::FailedPrecondition("port already bound: " +
                                        std::to_string(port));
    }
    auto listener = std::make_unique<InMemoryListener>(this, port);
    listeners_[port] = listener.get();
    return std::unique_ptr<Listener>(std::move(listener));
  }

  StatusOr<std::unique_ptr<Connection>> Connect(const std::string& host,
                                                int port) override {
    (void)host;
    InMemoryListener* listener = nullptr;
    {
      MutexLock lock(mu_);
      const auto it = listeners_.find(port);
      if (it == listeners_.end()) {
        return Status::NotFound("nothing listening on port " +
                                std::to_string(port));
      }
      listener = it->second;
    }
    auto a = std::make_shared<Pipe>();  // client -> server bytes
    auto b = std::make_shared<Pipe>();  // server -> client bytes
    auto server_end = std::make_unique<InMemoryConnection>(a, b);
    auto client_end = std::make_unique<InMemoryConnection>(b, a);
    if (!listener->Deliver(std::move(server_end))) {
      return Status::FailedPrecondition("listener closed");
    }
    return std::unique_ptr<Connection>(std::move(client_end));
  }

  void Unregister(int port) {
    MutexLock lock(mu_);
    listeners_.erase(port);
  }

 private:
  Mutex mu_;
  std::map<int, InMemoryListener*> listeners_ EBA_GUARDED_BY(mu_);
  int next_port_ EBA_GUARDED_BY(mu_) = 20000;
};

void InMemoryListener::Close() {
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    pending_.clear();
    cv_.NotifyAll();
  }
  env_->Unregister(port_);
}

}  // namespace

NetEnv* RealNetEnv() {
  static TcpNetEnv* env = new TcpNetEnv();
  return env;
}

std::unique_ptr<NetEnv> NewInMemoryNetEnv() {
  return std::make_unique<InMemoryNetEnv>();
}

}  // namespace eba
