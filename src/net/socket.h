// Transport seam for the auditing server: every byte the serving stack
// sends or receives flows through these interfaces, mirroring the Env seam
// that storage/io.h puts in front of durable file I/O. The real POSIX TCP
// implementation lives entirely inside socket.cc (the determinism lint's
// raw-net rule keeps raw socket calls out of everything else under
// src/net/); tests swap in the in-memory transport below to drive the
// server deterministically and to fault-inject — write torn or corrupt
// frame bytes straight through a Connection, or drop one mid-frame —
// without a kernel socket in the loop.

#ifndef EBA_NET_SOCKET_H_
#define EBA_NET_SOCKET_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"

namespace eba {

/// A bidirectional byte stream (one accepted or dialed connection).
/// Read/WriteAll may be called concurrently from different threads (one
/// reader, one writer); ShutdownBoth may be called from any thread to
/// unblock both.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocks until at least one byte is available, the peer closes (returns
  /// 0), or the connection fails. Reads at most `n` bytes into `buf`.
  virtual StatusOr<size_t> Read(char* buf, size_t n) = 0;

  /// Writes all of `data`, blocking as needed.
  virtual Status WriteAll(std::string_view data) = 0;

  /// Shuts down both directions: the peer sees EOF and any blocked Read or
  /// WriteAll on this end returns. Safe to call more than once and
  /// concurrently with Read/WriteAll — this is how the server unsticks
  /// handler threads on Stop.
  virtual void ShutdownBoth() = 0;
};

/// An accepting endpoint bound to a port.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks until a connection arrives or Close() is called (then
  /// FailedPrecondition).
  virtual StatusOr<std::unique_ptr<Connection>> Accept() = 0;

  /// The bound port (the actual port when 0 was requested).
  virtual int port() const = 0;

  /// Unblocks any Accept in progress; subsequent Accepts fail.
  virtual void Close() = 0;
};

/// Transport factory: the seam injected into AuditServer and AuditClient.
class NetEnv {
 public:
  virtual ~NetEnv() = default;

  /// Binds `host:port`; port 0 picks a free port (read it back via
  /// Listener::port()).
  virtual StatusOr<std::unique_ptr<Listener>> Listen(const std::string& host,
                                                     int port) = 0;

  virtual StatusOr<std::unique_ptr<Connection>> Connect(
      const std::string& host, int port) = 0;
};

/// The real TCP transport (loopback or otherwise). Singleton, never freed.
NetEnv* RealNetEnv();

/// A process-local transport over in-memory pipes: Listen registers a port
/// (0 assigns one), Connect pairs with a registered listener, and the two
/// Connection ends exchange bytes through mutex-guarded buffers. Fully
/// deterministic — no kernel, no real ports — so adversarial-frame and
/// concurrency tests run the identical server code byte-for-byte.
std::unique_ptr<NetEnv> NewInMemoryNetEnv();

}  // namespace eba

#endif  // EBA_NET_SOCKET_H_
