// Wire protocol of the auditing server: frame types, error codes, and the
// payload encodings for each command. Row transport reuses the WAL's
// kWalAppendBatch payload encoding (storage/wal.h) so the server's ingest
// path validates and applies exactly what it would have replayed from a
// log, and the streaming-report encoding is deterministic — two audits that
// produced equal reports encode to identical bytes, which is what the
// served-equals-in-process acceptance check compares.
//
// Command table (frame type -> request payload -> OK response payload):
//
//   kReqAuth         token bytes                   (empty)
//   kReqAppendBatch  append payload, table=""      u64 rows appended
//   kReqAppendRows   append payload                u64 rows appended
//   kReqExplainNew   (empty)                       EncodeStreamingReport
//   kReqExplain      i64 lid                       EncodeExplainResult
//   kReqReport       (empty)                       EncodeServerReport
//
// Every error response is kRespError carrying ErrorBody: a stable code, a
// retryable bit (true only for admission-control rejections — retry the
// identical request later), and a human-readable message.

#ifndef EBA_NET_PROTOCOL_H_
#define EBA_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/ingest.h"

namespace eba {

/// Frame types. Requests are < 0x40; responses have the high bits set.
enum NetFrameType : uint8_t {
  kReqAuth = 0x01,
  kReqAppendBatch = 0x02,
  kReqAppendRows = 0x03,
  kReqExplainNew = 0x04,
  kReqExplain = 0x05,
  kReqReport = 0x06,

  kRespOk = 0x40,
  kRespError = 0x41,
};

/// Stable error codes carried in ErrorBody.
enum NetError : uint8_t {
  kErrBadFrame = 1,
  kErrUnauthorized = 2,
  kErrQuotaExceeded = 3,
  kErrBusy = 4,  // bounded ingest queue full; the retryable rejection
  kErrBadRequest = 5,
  kErrUnknownCommand = 6,
  kErrInternal = 7,
};

/// Body of a kRespError frame.
struct ErrorBody {
  uint8_t code = kErrInternal;
  bool retryable = false;
  std::string message;
};

std::string EncodeError(const ErrorBody& error);
StatusOr<ErrorBody> DecodeError(std::string_view payload);

/// i64 payload of kReqExplain.
std::string EncodeLid(int64_t lid);
StatusOr<int64_t> DecodeLid(std::string_view payload);

/// kReqExplainNew OK response: the full StreamingReport minus the
/// plan-cache counters (cumulative process-local observability, excluded so
/// the encoding depends only on what this audit computed).
std::string EncodeStreamingReport(const StreamingReport& report);
StatusOr<StreamingReport> DecodeStreamingReport(std::string_view payload);

/// kReqExplain OK response: whether any template explains the access, plus
/// the explaining templates' names in the engine's deterministic ranked
/// order.
struct ExplainResult {
  bool explained = false;
  std::vector<std::string> template_names;
};

std::string EncodeExplainResult(const ExplainResult& result);
StatusOr<ExplainResult> DecodeExplainResult(std::string_view payload);

/// kReqReport OK response: the server's monotonic serving counters plus the
/// auditor's audit-state accessors at response time.
struct ServerReport {
  uint64_t rows_appended = 0;
  uint64_t batches_appended = 0;
  uint64_t foreign_rows_appended = 0;
  uint64_t audited_rows = 0;
  uint64_t explained_count = 0;
  uint64_t requests_served = 0;
  uint64_t appends_rejected_busy = 0;
  uint64_t connections_accepted = 0;
};

std::string EncodeServerReport(const ServerReport& report);
StatusOr<ServerReport> DecodeServerReport(std::string_view payload);

}  // namespace eba

#endif  // EBA_NET_PROTOCOL_H_
