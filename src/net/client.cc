#include "net/client.h"

#include <utility>

#include "storage/wal.h"

namespace eba {

namespace {

constexpr const char kRetryableTag[] = "[retryable] ";

}  // namespace

AuditClient::AuditClient(std::unique_ptr<Connection> conn,
                         uint32_t max_payload)
    : conn_(std::move(conn)), reader_(conn_.get(), max_payload) {}

StatusOr<std::unique_ptr<AuditClient>> AuditClient::Connect(
    NetEnv* net, const std::string& host, int port, const std::string& token,
    uint32_t max_frame_payload_bytes) {
  if (net == nullptr) net = RealNetEnv();
  EBA_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                       net->Connect(host, port));
  std::unique_ptr<AuditClient> client(
      new AuditClient(std::move(conn), max_frame_payload_bytes));
  if (!token.empty()) {
    EBA_RETURN_IF_ERROR(client->RoundTrip(kReqAuth, token).status());
  }
  return client;
}

StatusOr<std::string> AuditClient::RoundTrip(uint8_t type,
                                             std::string_view payload) {
  EBA_RETURN_IF_ERROR(conn_->WriteAll(EncodeFrame(type, payload)));
  EBA_ASSIGN_OR_RETURN(Frame response, reader_.Next());
  if (response.type == kRespOk) return std::move(response.payload);
  if (response.type != kRespError) {
    return Status::Internal("unexpected response frame type " +
                            std::to_string(response.type));
  }
  EBA_ASSIGN_OR_RETURN(const ErrorBody error, DecodeError(response.payload));
  std::string message = "server error " + std::to_string(error.code) + ": " +
                        error.message;
  if (error.retryable) message = kRetryableTag + message;
  return Status::FailedPrecondition(std::move(message));
}

bool AuditClient::IsRetryableBusy(const Status& s) {
  return !s.ok() && s.message().rfind(kRetryableTag, 0) == 0;
}

Status AuditClient::AppendAccessBatch(const std::vector<Row>& rows) {
  return RoundTrip(kReqAppendBatch, EncodeAppendPayload("", rows)).status();
}

Status AuditClient::AppendRows(const std::string& table,
                               const std::vector<Row>& rows) {
  if (table.empty()) return Status::InvalidArgument("empty table name");
  return RoundTrip(kReqAppendRows, EncodeAppendPayload(table, rows)).status();
}

StatusOr<std::string> AuditClient::ExplainNewRaw() {
  return RoundTrip(kReqExplainNew, "");
}

StatusOr<StreamingReport> AuditClient::ExplainNew() {
  EBA_ASSIGN_OR_RETURN(const std::string payload, ExplainNewRaw());
  return DecodeStreamingReport(payload);
}

StatusOr<ExplainResult> AuditClient::Explain(int64_t lid) {
  EBA_ASSIGN_OR_RETURN(const std::string payload,
                       RoundTrip(kReqExplain, EncodeLid(lid)));
  return DecodeExplainResult(payload);
}

StatusOr<ServerReport> AuditClient::Report() {
  EBA_ASSIGN_OR_RETURN(const std::string payload, RoundTrip(kReqReport, ""));
  return DecodeServerReport(payload);
}

}  // namespace eba
