#include "net/server.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "net/frame.h"
#include "storage/wal.h"

namespace eba {

AuditServer::AuditServer(StreamingAuditor* auditor,
                         const ServerOptions& options)
    : auditor_(auditor), options_(options) {}

StatusOr<std::unique_ptr<AuditServer>> AuditServer::Start(
    StreamingAuditor* auditor, const ServerOptions& options) {
  if (auditor == nullptr) return Status::InvalidArgument("null auditor");
  if (options.max_pending_appends == 0) {
    return Status::InvalidArgument("max_pending_appends must be >= 1");
  }
  std::unique_ptr<AuditServer> server(new AuditServer(auditor, options));
  NetEnv* net = options.net != nullptr ? options.net : RealNetEnv();
  EBA_ASSIGN_OR_RETURN(server->listener_,
                       net->Listen(options.host, options.port));
  server->port_ = server->listener_->port();
  server->ingest_thread_ = std::thread([s = server.get()] { s->IngestLoop(); });
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

AuditServer::~AuditServer() { Stop(); }

void AuditServer::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Stop ingest BEFORE joining handlers: a handler blocked on its append
  // promise only unblocks once the ingest thread runs or rejects the job
  // (the drain below fulfills every queued promise), so the other order
  // would deadlock — especially with the test pause engaged.
  {
    MutexLock lock(ingest_mu_);
    ingest_stop_ = true;
    ingest_paused_ = false;
    ingest_cv_.NotifyAll();
  }
  if (ingest_thread_.joinable()) ingest_thread_.join();

  // Unblock and join every handler; the handlers own their connections.
  std::vector<std::unique_ptr<ConnState>> conns;
  {
    MutexLock lock(mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    c->conn->ShutdownBoth();
    if (c->thread.joinable()) c->thread.join();
  }
}

void AuditServer::PauseIngestForTest() {
  MutexLock lock(ingest_mu_);
  ingest_paused_ = true;
}

void AuditServer::ResumeIngestForTest() {
  MutexLock lock(ingest_mu_);
  ingest_paused_ = false;
  ingest_cv_.NotifyAll();
}

ServerReport AuditServer::ReportNow() const {
  ServerReport report;
  report.rows_appended = auditor_->rows_appended();
  report.batches_appended = auditor_->batches_appended();
  report.foreign_rows_appended = auditor_->foreign_rows_appended();
  report.audited_rows = auditor_->audited_rows();
  report.explained_count = auditor_->explained_count();
  report.requests_served = requests_served_.Load();
  report.appends_rejected_busy = appends_rejected_busy_.Load();
  report.connections_accepted = connections_accepted_.Load();
  return report;
}

void AuditServer::AcceptLoop() {
  for (;;) {
    StatusOr<std::unique_ptr<Connection>> accepted = listener_->Accept();
    if (!accepted.ok()) return;  // listener closed: shutting down
    connections_accepted_.Increment();

    MutexLock lock(mu_);
    if (stopping_) return;  // Stop() owns the swap-out and joins
    // Reap finished handlers so long-lived servers don't accumulate one
    // thread object per connection ever accepted.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    if (conns_.size() >= options_.max_connections) {
      Connection* conn = accepted->get();
      (void)SendError(conn, kErrBusy, /*retryable=*/true,
                      "connection limit reached");
      continue;  // accepted connection closes as it goes out of scope
    }
    auto state = std::make_unique<ConnState>();
    state->conn = std::move(*accepted);
    ConnState* raw = state.get();
    state->thread = std::thread([this, raw] {
      HandleConnection(raw->conn.get());
      // Drop semantics: the peer must observe EOF as soon as the handler
      // exits, not when the ConnState is eventually reaped.
      raw->conn->ShutdownBoth();
      raw->done.store(true, std::memory_order_release);
    });
    conns_.push_back(std::move(state));
  }
}

void AuditServer::IngestLoop() {
  for (;;) {
    IngestJob job;
    {
      MutexLock lock(ingest_mu_);
      while ((ingest_queue_.empty() || ingest_paused_) && !ingest_stop_) {
        ingest_cv_.Wait(ingest_mu_);
      }
      if (ingest_queue_.empty() && ingest_stop_) return;
      if (ingest_stop_) {
        // Drain: reject every undelivered append so no client blocks on a
        // promise that will never be fulfilled.
        while (!ingest_queue_.empty()) {
          ingest_queue_.front().result.set_value(
              Status::FailedPrecondition("server stopped"));
          ingest_queue_.pop_front();
        }
        return;
      }
      job = std::move(ingest_queue_.front());
      ingest_queue_.pop_front();
      // Admission reopens the moment a slot frees up.
      ingest_cv_.NotifyAll();
    }
    // The single-writer contract: this thread is the only caller of the
    // auditor's append path (and so the only WAL committer) server-wide.
    const Status applied =
        job.table.empty()
            ? auditor_->AppendAccessBatch(job.rows)
            : auditor_->AppendRows(job.table, job.rows);
    job.result.set_value(applied);
  }
}

Status AuditServer::RunAppend(std::string table, std::vector<Row> rows) {
  std::future<Status> done;
  {
    MutexLock lock(ingest_mu_);
    if (ingest_stop_) return Status::FailedPrecondition("server stopped");
    if (ingest_queue_.size() >= options_.max_pending_appends) {
      appends_rejected_busy_.Increment();
      return Status::FailedPrecondition("ingest queue full");
    }
    IngestJob job;
    job.table = std::move(table);
    job.rows = std::move(rows);
    done = job.result.get_future();
    ingest_queue_.push_back(std::move(job));
    ingest_cv_.NotifyAll();
  }
  return done.get();
}

Status AuditServer::SendOk(Connection* conn, std::string_view payload) {
  return conn->WriteAll(EncodeFrame(kRespOk, payload));
}

Status AuditServer::SendError(Connection* conn, uint8_t code, bool retryable,
                              std::string message) {
  ErrorBody error;
  error.code = code;
  error.retryable = retryable;
  error.message = std::move(message);
  return conn->WriteAll(EncodeFrame(kRespError, EncodeError(error)));
}

void AuditServer::HandleConnection(Connection* conn) {
  FrameReader reader(conn, options_.max_frame_payload_bytes);

  // Token auth is the first frame when configured: anything else — another
  // command, a bad token, a malformed frame — is answered (best-effort) and
  // the connection dropped. A reconnect starts over from here; there is no
  // session resumption to replay auth into.
  if (!options_.auth_token.empty()) {
    StatusOr<Frame> first = reader.Next();
    if (!first.ok()) {
      if (first.status().IsInvalidArgument()) {
        (void)SendError(conn, kErrBadFrame, false,
                        first.status().message());
      }
      return;
    }
    if (first->type != kReqAuth || first->payload != options_.auth_token) {
      (void)SendError(conn, kErrUnauthorized, false, "authentication failed");
      return;
    }
    if (!SendOk(conn, "").ok()) return;
  }

  uint64_t served = 0;
  for (;;) {
    StatusOr<Frame> frame = reader.Next();
    if (!frame.ok()) {
      // Clean close (NotFound) ends the connection silently; a malformed
      // frame gets a best-effort error first — the stream is no longer
      // synchronized, so dropping is the only safe continuation.
      if (frame.status().IsInvalidArgument()) {
        (void)SendError(conn, kErrBadFrame, false, frame.status().message());
      }
      return;
    }
    if (options_.max_requests_per_connection > 0 &&
        served >= options_.max_requests_per_connection) {
      (void)SendError(conn, kErrQuotaExceeded, false,
                      "per-connection request quota exceeded");
      return;
    }
    ++served;
    requests_served_.Increment();
    if (!HandleRequest(conn, frame->type, frame->payload)) return;
  }
}

bool AuditServer::HandleRequest(Connection* conn, uint8_t type,
                                std::string& payload) {
  switch (type) {
    case kReqAuth: {
      // Re-auth on a live connection is validated like the first.
      if (!options_.auth_token.empty() && payload != options_.auth_token) {
        (void)SendError(conn, kErrUnauthorized, false,
                        "authentication failed");
        return false;
      }
      return SendOk(conn, "").ok();
    }
    case kReqAppendBatch:
    case kReqAppendRows: {
      StatusOr<WalAppendBatch> batch = DecodeAppendPayload(payload);
      if (!batch.ok()) {
        return SendError(conn, kErrBadRequest, false,
                         batch.status().message())
            .ok();
      }
      if (type == kReqAppendBatch && !batch->table_name.empty()) {
        return SendError(conn, kErrBadRequest, false,
                         "append-access-batch must not name a table")
            .ok();
      }
      if (type == kReqAppendRows && batch->table_name.empty()) {
        return SendError(conn, kErrBadRequest, false,
                         "append-rows requires a table name")
            .ok();
      }
      const uint64_t n = batch->rows.size();
      const Status applied =
          RunAppend(std::move(batch->table_name), std::move(batch->rows));
      if (!applied.ok()) {
        const bool busy = applied.message() == "ingest queue full";
        return SendError(conn, busy ? kErrBusy : kErrBadRequest, busy,
                         applied.message())
            .ok();
      }
      std::string ok;
      ok.reserve(8);
      for (int i = 0; i < 8; ++i) {
        ok.push_back(static_cast<char>((n >> (8 * i)) & 0xFF));
      }
      return SendOk(conn, ok).ok();
    }
    case kReqExplainNew: {
      StatusOr<StreamingReport> report = auditor_->ExplainNew(options_.audit);
      if (!report.ok()) {
        return SendError(conn, kErrInternal, false,
                         report.status().message())
            .ok();
      }
      return SendOk(conn, EncodeStreamingReport(*report)).ok();
    }
    case kReqExplain: {
      StatusOr<int64_t> lid = DecodeLid(payload);
      if (!lid.ok()) {
        return SendError(conn, kErrBadRequest, false, lid.status().message())
            .ok();
      }
      // Snapshot-pinned const read surface: safe on this handler thread
      // while the ingest thread appends.
      StatusOr<std::vector<ExplanationInstance>> instances =
          auditor_->engine().Explain(*lid);
      if (!instances.ok()) {
        return SendError(conn, kErrBadRequest, false,
                         instances.status().message())
            .ok();
      }
      ExplainResult result;
      result.explained = !instances->empty();
      result.template_names.reserve(instances->size());
      for (const ExplanationInstance& instance : *instances) {
        result.template_names.push_back(instance.tmpl().name());
      }
      return SendOk(conn, EncodeExplainResult(result)).ok();
    }
    case kReqReport: {
      return SendOk(conn, EncodeServerReport(ReportNow())).ok();
    }
    default:
      return SendError(conn, kErrUnknownCommand, false,
                       "unknown command type " + std::to_string(type))
          .ok();
  }
}

}  // namespace eba
