#include "net/frame.h"

#include "common/crc32.h"

namespace eba {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

}  // namespace

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32(&type, 1);
  crc = Crc32(payload.data(), payload.size(), crc);
  PutU32(&out, crc);
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

Status FrameReader::ReadExact(char* buf, size_t n, bool clean_eof_ok) {
  size_t off = 0;
  while (off < n) {
    EBA_ASSIGN_OR_RETURN(const size_t got, conn_->Read(buf + off, n - off));
    if (got == 0) {
      if (clean_eof_ok && off == 0) {
        return Status::NotFound("connection closed");
      }
      return Status::InvalidArgument("truncated frame: peer closed after " +
                                     std::to_string(off) + " of " +
                                     std::to_string(n) + " bytes");
    }
    off += got;
  }
  return Status::OK();
}

StatusOr<Frame> FrameReader::Next() {
  char header[kFrameHeaderBytes];
  EBA_RETURN_IF_ERROR(
      ReadExact(header, kFrameHeaderBytes, /*clean_eof_ok=*/true));
  const uint32_t payload_len = GetU32(header);
  const uint32_t want_crc = GetU32(header + 4);
  Frame frame;
  frame.type = static_cast<uint8_t>(header[8]);
  if (payload_len > max_payload_) {
    return Status::InvalidArgument(
        "oversized frame: " + std::to_string(payload_len) +
        " payload bytes exceeds the " + std::to_string(max_payload_) +
        "-byte limit");
  }
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    EBA_RETURN_IF_ERROR(
        ReadExact(frame.payload.data(), payload_len, /*clean_eof_ok=*/false));
  }
  uint32_t crc = Crc32(&frame.type, 1);
  crc = Crc32(frame.payload.data(), frame.payload.size(), crc);
  if (crc != want_crc) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  return frame;
}

}  // namespace eba
