// The auditing server: a framed network front-end over StreamingAuditor.
//
// Threading model — the single-writer / multi-reader split of the auditor's
// writer_mu_/audit_mu_ architecture, mapped onto connections:
//
//   * ONE ingest thread owns the append path. Every append request from
//     every connection is enqueued onto a bounded queue; the ingest thread
//     drains it in arrival order and is the only caller of
//     AppendAccessBatch/AppendRows (and therefore the only WAL committer).
//     A request is acknowledged only after its batch returns from the
//     auditor — i.e. after the WAL commit when durability is on — so a
//     server-acked append survives a crash exactly like an in-process one.
//   * Explain requests (per-access Explain, ExplainNew, Report) run
//     directly on the per-connection handler threads against the engine's
//     concurrency-safe snapshot-pinned read surface, fanning out across
//     connections while appends stream through the writer.
//
// Admission control: when the ingest queue is full the append is rejected
// immediately with kErrBusy (retryable=true) — the client backs off and
// retries; nothing is silently dropped or unboundedly buffered. Token auth
// is the first frame of every connection (when configured), and an optional
// per-connection request quota bounds what one client can issue.

#ifndef EBA_NET_SERVER_H_
#define EBA_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/ingest.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace eba {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick a free port; read it back via AuditServer::port().
  int port = 0;
  /// Required as the first frame of every connection when non-empty; empty
  /// disables auth (in-process tests, trusted loopback).
  std::string auth_token;
  /// Requests one connection may issue after auth; 0 = unlimited. The
  /// request hitting the quota is answered with kErrQuotaExceeded and the
  /// connection is dropped.
  uint64_t max_requests_per_connection = 0;
  /// Bound of the ingest queue (append admission control): a full queue
  /// rejects with kErrBusy, retryable.
  size_t max_pending_appends = 64;
  /// Concurrent connections; one past the bound is answered with kErrBusy
  /// (retryable) and closed.
  size_t max_connections = 64;
  /// Frames above this payload size are rejected and the connection
  /// dropped. Bounds per-connection memory against adversarial lengths.
  uint32_t max_frame_payload_bytes = 4u << 20;
  /// Options for server-run ExplainNew audits.
  StreamingOptions audit;
  /// Transport seam; nullptr = the real TCP stack.
  NetEnv* net = nullptr;
};

/// Serves one StreamingAuditor. The auditor (and its database) must outlive
/// the server; nothing else may append to the auditor while the server is
/// running (the single-writer contract) — concurrent reads of the engine's
/// const surface are fine.
class AuditServer {
 public:
  /// Binds, then starts the accept and ingest threads.
  static StatusOr<std::unique_ptr<AuditServer>> Start(
      StreamingAuditor* auditor, const ServerOptions& options);

  ~AuditServer();

  /// Stops accepting, unblocks and joins every connection handler, drains
  /// the ingest queue (rejecting undelivered appends), and joins the ingest
  /// thread. Idempotent.
  void Stop();

  /// The bound port.
  int port() const { return port_; }

  /// The serving counters + the auditor's audit-state accessors now.
  ServerReport ReportNow() const;

  /// Test hooks: hold the ingest thread so the queue fills deterministically
  /// (backpressure tests), then release it.
  void PauseIngestForTest();
  void ResumeIngestForTest();

 private:
  /// An append waiting for the ingest thread. `table` empty = the log.
  struct IngestJob {
    std::string table;
    std::vector<Row> rows;
    std::promise<Status> result;
  };

  /// One accepted connection: the handler thread plus the connection it
  /// owns (raw pointer retained so Stop can unblock the handler's read).
  struct ConnState {
    std::thread thread;
    std::unique_ptr<Connection> conn;
    std::atomic<bool> done{false};
  };

  AuditServer(StreamingAuditor* auditor, const ServerOptions& options);

  void AcceptLoop();
  void IngestLoop();
  void HandleConnection(Connection* conn);
  /// Dispatches one authenticated request frame; returns false when the
  /// connection must be dropped.
  bool HandleRequest(Connection* conn, uint8_t type, std::string& payload);

  /// Enqueues an append; immediate kErrBusy ErrorBody when the queue is
  /// full, otherwise blocks until the ingest thread ran the batch.
  Status RunAppend(std::string table, std::vector<Row> rows);

  Status SendOk(Connection* conn, std::string_view payload);
  Status SendError(Connection* conn, uint8_t code, bool retryable,
                   std::string message);

  StreamingAuditor* const auditor_;
  const ServerOptions options_;
  std::unique_ptr<Listener> listener_;
  int port_ = 0;

  std::thread accept_thread_;
  std::thread ingest_thread_;

  mutable Mutex mu_;
  bool stopping_ EBA_GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<ConnState>> conns_ EBA_GUARDED_BY(mu_);

  mutable Mutex ingest_mu_;
  CondVar ingest_cv_;
  std::deque<IngestJob> ingest_queue_ EBA_GUARDED_BY(ingest_mu_);
  bool ingest_stop_ EBA_GUARDED_BY(ingest_mu_) = false;
  bool ingest_paused_ EBA_GUARDED_BY(ingest_mu_) = false;

  AtomicCounter requests_served_;
  AtomicCounter appends_rejected_busy_;
  AtomicCounter connections_accepted_;
};

}  // namespace eba

#endif  // EBA_NET_SERVER_H_
