// SchemaGraph: the attribute graph of Definition 1, restricted per §3.1.
//
// Nodes are attributes (table, column). Join edges are generated from:
//   - shared key domains across different tables (key/FK relationships),
//   - explicitly declared foreign keys,
//   - administrator-provided relationships,
//   - administrator-allowed self-join attributes (edge from an attribute to
//     itself, joining two instances of the same table).
// Intra-tuple-variable edges are implicit (a path may enter a tuple variable
// on one attribute and leave on another).
//
// MiningPath captures a partially-built path: an ordered list of join edges
// starting at the log's start attribute. The path rules enforced here
// implement "restricted simple paths" (Definitions 2/4 plus §3.2):
//   - each tuple variable contributes at most two attribute nodes
//     (entry and exit must differ — pass-through on a single node would
//     make the template non-simple);
//   - a table appears at most once, or twice when joined to itself through
//     an allowed self-join attribute (mapping tables are exempt);
//   - no join edge is traversed twice;
//   - at most T counted tables (mapping tables are not counted);
//   - a path is an explanation when it terminates at the end attribute
//     (Log.User) of tuple variable 0.

#ifndef EBA_GRAPH_SCHEMA_GRAPH_H_
#define EBA_GRAPH_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/path_query.h"
#include "storage/database.h"

namespace eba {

/// A directed join edge between two attributes.
struct JoinEdge {
  AttrId from;
  AttrId to;

  bool operator==(const JoinEdge& o) const {
    return from == o.from && to == o.to;
  }
  bool IsSelfJoin() const { return from.table == to.table; }
  /// "A.x=B.y".
  std::string ToString() const {
    return from.ToString() + "=" + to.ToString();
  }
};

class SchemaGraph {
 public:
  /// Derives the edge set from the database's schemas and join metadata.
  /// `excluded_tables` lists tables that must not appear in any path (e.g.
  /// dimension tables the administrator rules out).
  static StatusOr<SchemaGraph> Build(const Database& db,
                                     std::vector<std::string> excluded_tables = {});

  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// Edges whose `from` attribute matches exactly.
  std::vector<JoinEdge> EdgesFrom(const AttrId& attr) const;

  /// Edges whose `from` attribute belongs to the given table.
  std::vector<JoinEdge> EdgesFromTable(const std::string& table) const;

  /// Edges whose `to` attribute matches exactly.
  std::vector<JoinEdge> EdgesTo(const AttrId& attr) const;

 private:
  std::vector<JoinEdge> edges_;
};

/// A (partial) mining path: join edges in traversal order from the start
/// attribute. Paths are grown forward (from Log.Patient) or backward
/// (toward Log.User); a backward path stores its edges in forward
/// orientation, i.e. edges_.back().to is the end attribute.
class MiningPath {
 public:
  MiningPath() = default;
  explicit MiningPath(std::vector<JoinEdge> edges)
      : edges_(std::move(edges)) {}

  const std::vector<JoinEdge>& edges() const { return edges_; }
  int length() const { return static_cast<int>(edges_.size()); }
  bool empty() const { return edges_.empty(); }

  /// The attribute at the open (right) end of the path.
  const AttrId& LastAttr() const { return edges_.back().to; }
  /// The attribute at the open (left) end (for backward paths).
  const AttrId& FirstAttr() const { return edges_.front().from; }

  /// Appends `edge` returning the new path (no validity checking).
  MiningPath Extend(const JoinEdge& edge) const;
  /// Prepends `edge` (backward growth).
  MiningPath ExtendFront(const JoinEdge& edge) const;

  /// Canonical key of the path's selection-condition set: identical for a
  /// path and its reverse, so support caching recognizes equivalent
  /// conditions evaluated in different traversal orders (§3.2.1).
  std::string CanonicalKey() const;

  bool operator==(const MiningPath& o) const { return edges_ == o.edges_; }

 private:
  std::vector<JoinEdge> edges_;
};

/// Context for path validity checks.
struct PathRules {
  AttrId start;         // Log.Patient
  AttrId end;           // Log.User
  int max_length = 5;   // M, counted in raw join edges
  int max_tables = 3;   // T, counted tables (mapping exempt)
};

/// Checks whether `path` (assumed grown from `rules.start` forward or toward
/// `rules.end` backward — pass which) is a restricted simple path per the
/// rules above. `db` supplies self-join allowances and mapping-table
/// exemptions.
bool IsRestrictedSimplePath(const Database& db, const PathRules& rules,
                            const MiningPath& path, bool anchored_forward);

/// True if the path is a complete explanation: starts at rules.start, ends
/// at rules.end, and is a valid restricted simple path.
bool IsExplanationPath(const Database& db, const PathRules& rules,
                       const MiningPath& path);

/// Converts a path into an executable PathQuery. Tuple variable 0 is the
/// log; each edge binds a fresh tuple variable except the final edge of an
/// explanation path, which ties back to variable 0. Aliases are "L" for the
/// log and "T1", "T2", ... for the rest ("L2" for a log self-join instance).
StatusOr<PathQuery> PathToQuery(const Database& db, const PathRules& rules,
                                const MiningPath& path);

}  // namespace eba

#endif  // EBA_GRAPH_SCHEMA_GRAPH_H_
