// Weighted-graph clustering by greedy Newman-modularity maximization
// (Louvain method: local moving + community aggregation, repeated until no
// improvement). Parameter-free — the number of clusters emerges from the
// modularity optimum, as required by §4.1 / reference [21].

#ifndef EBA_GRAPH_MODULARITY_H_
#define EBA_GRAPH_MODULARITY_H_

#include <cstdint>
#include <vector>

#include "graph/user_graph.h"

namespace eba {

/// A flat clustering of graph nodes.
struct Clustering {
  /// cluster id per node, in [0, num_clusters).
  std::vector<int> assignment;
  int num_clusters = 0;
  /// Newman modularity Q of the assignment.
  double modularity = 0.0;

  /// Nodes grouped by cluster id.
  std::vector<std::vector<uint32_t>> Clusters() const;
};

/// A generic weighted undirected graph (used for Louvain aggregation and to
/// cluster induced subgraphs when building the hierarchy).
struct WeightedGraph {
  /// adjacency[u] = (v, weight); symmetric, no self entries.
  std::vector<std::vector<std::pair<uint32_t, double>>> adjacency;
  /// Self-loop weight per node (arises from aggregation).
  std::vector<double> self_loops;

  size_t num_nodes() const { return adjacency.size(); }
  /// Weighted degree including self-loop contribution (counted twice, as is
  /// standard for modularity).
  double Degree(size_t u) const;
  /// Total edge weight m (undirected edges once, self-loops once).
  double TotalWeight() const;

  static WeightedGraph FromUserGraph(const UserGraph& g);
  /// Induced subgraph over `nodes`; mapping[i] = original id of new node i.
  WeightedGraph Induce(const std::vector<uint32_t>& nodes) const;
};

/// Newman modularity of `assignment` on `graph`.
double ComputeModularity(const WeightedGraph& graph,
                         const std::vector<int>& assignment);

struct LouvainOptions {
  /// Node-visit order is shuffled with this seed for tie-breaking
  /// robustness; results are deterministic for a fixed seed.
  uint64_t seed = 7;
  /// Stop when a full local-moving sweep improves Q by less than this.
  double min_gain = 1e-9;
  /// Safety bound on level count.
  int max_levels = 32;
};

/// Clusters `graph` by Louvain modularity maximization.
Clustering ClusterGraph(const WeightedGraph& graph,
                        const LouvainOptions& options = {});

/// Convenience overload for user graphs.
Clustering ClusterUserGraph(const UserGraph& graph,
                            const LouvainOptions& options = {});

}  // namespace eba

#endif  // EBA_GRAPH_MODULARITY_H_
