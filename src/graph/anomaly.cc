#include "graph/anomaly.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace eba {

StatusOr<std::vector<UserAnomalyScore>> ScoreUsersByDeviation(
    const UserGraph& graph, const AccessLog& log,
    const AnomalyOptions& options) {
  if (options.k_nearest <= 0) {
    return Status::InvalidArgument("k_nearest must be positive");
  }

  std::unordered_map<int64_t, size_t> access_counts;
  std::unordered_map<int64_t, std::unordered_set<int64_t>> patients_of;
  for (size_t r = 0; r < log.size(); ++r) {
    AccessLog::Entry e = log.Get(r);
    access_counts[e.user]++;
    patients_of[e.user].insert(e.patient);
  }

  std::vector<UserAnomalyScore> scores;
  scores.reserve(graph.num_users());
  for (size_t u = 0; u < graph.num_users(); ++u) {
    UserAnomalyScore entry;
    entry.user = graph.user_id(u);
    auto it = access_counts.find(entry.user);
    entry.num_accesses = it == access_counts.end() ? 0 : it->second;

    // Similarity mass to the k strongest neighbors...
    std::vector<double> weights;
    weights.reserve(graph.Neighbors(u).size());
    for (const auto& [v, w] : graph.Neighbors(u)) weights.push_back(w);
    std::sort(weights.begin(), weights.end(), std::greater<double>());
    size_t k = std::min<size_t>(static_cast<size_t>(options.k_nearest),
                                weights.size());
    double sum = 0;
    for (size_t i = 0; i < k; ++i) sum += weights[i];
    // ...normalized by the breadth of the user's access pattern: a user who
    // touches many records nobody on their team touches dilutes their own
    // profile (this is what makes a bulk snooper stand out, matching the
    // deviation-from-similar-users idea of Chen & Malin).
    auto pit = patients_of.find(entry.user);
    double breadth =
        pit == patients_of.end() ? 1.0 : static_cast<double>(pit->second.size());
    entry.neighborhood_similarity = sum / std::max(1.0, breadth);
    entry.score = 1.0 / (1.0 + entry.neighborhood_similarity);
    scores.push_back(entry);
  }

  std::sort(scores.begin(), scores.end(),
            [](const UserAnomalyScore& a, const UserAnomalyScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  return scores;
}

size_t RankOfUser(const std::vector<UserAnomalyScore>& scores, int64_t user) {
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i].user == user) return i + 1;
  }
  return 0;
}

}  // namespace eba
