#include "graph/hierarchy.h"

#include <unordered_map>

#include "common/logging.h"

namespace eba {

StatusOr<GroupHierarchy> GroupHierarchy::Build(
    const UserGraph& graph, const HierarchyOptions& options) {
  if (options.max_depth < 0) {
    return Status::InvalidArgument("max_depth must be >= 0");
  }
  GroupHierarchy h;
  int64_t next_group_id = 1;

  // Depth 0: one global group.
  GroupNode root;
  root.depth = 0;
  root.group_id = next_group_id++;
  root.users = graph.user_ids();
  h.nodes_.push_back(std::move(root));
  h.max_depth_ = 0;

  if (graph.num_users() == 0 || options.max_depth == 0) return h;

  WeightedGraph base = WeightedGraph::FromUserGraph(graph);

  // Work items: (node index in h.nodes_, member node-ids in `base`).
  struct WorkItem {
    int parent_node;
    std::vector<uint32_t> members;
  };
  std::vector<uint32_t> all(graph.num_users());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  std::vector<WorkItem> frontier = {WorkItem{0, std::move(all)}};

  LouvainOptions louvain = options.louvain;

  for (int depth = 1; depth <= options.max_depth && !frontier.empty();
       ++depth) {
    std::vector<WorkItem> next_frontier;
    for (auto& item : frontier) {
      // Cluster the induced subgraph of this parent group.
      WeightedGraph sub = base.Induce(item.members);
      // Vary the seed per item for independent tie-breaking.
      louvain.seed = options.louvain.seed + static_cast<uint64_t>(depth) * 131 +
                     static_cast<uint64_t>(item.parent_node) * 31;
      Clustering clustering = ClusterGraph(sub, louvain);

      std::vector<std::vector<uint32_t>> clusters =
          clustering.Clusters();
      for (auto& cluster : clusters) {
        if (cluster.empty()) continue;
        GroupNode node;
        node.depth = depth;
        node.group_id = next_group_id++;
        node.parent = item.parent_node;
        node.users.reserve(cluster.size());
        std::vector<uint32_t> member_ids;
        member_ids.reserve(cluster.size());
        for (uint32_t local : cluster) {
          uint32_t global = item.members[local];
          member_ids.push_back(global);
          node.users.push_back(graph.user_id(global));
        }
        int node_index = static_cast<int>(h.nodes_.size());
        bool splittable = member_ids.size() >= options.min_cluster_size &&
                          clusters.size() > 1;
        // A group identical to its parent (no split happened) still carries
        // down one level so every depth partitions all users, but it stops
        // spawning work once it can no longer split.
        h.nodes_.push_back(std::move(node));
        h.max_depth_ = depth;
        if (splittable && depth < options.max_depth) {
          next_frontier.push_back(WorkItem{node_index, std::move(member_ids)});
        }
      }
    }
    frontier = std::move(next_frontier);
  }

  // Ensure every depth up to max_depth_ partitions the full user set: a
  // group that stopped splitting is carried down unchanged, one clone per
  // predecessor-depth group (never merged — carrying through a shallower
  // ancestor would fuse unrelated users into one catch-all cluster).
  for (int depth = 1; depth <= h.max_depth_; ++depth) {
    std::unordered_map<int64_t, bool> covered;
    for (const auto& node : h.nodes_) {
      if (node.depth != depth) continue;
      for (int64_t u : node.users) covered[u] = true;
    }
    const size_t existing_nodes = h.nodes_.size();
    for (size_t i = 0; i < existing_nodes; ++i) {
      if (h.nodes_[i].depth != depth - 1) continue;
      GroupNode clone;
      clone.depth = depth;
      clone.parent = static_cast<int>(i);
      for (int64_t u : h.nodes_[i].users) {
        if (!covered.count(u)) {
          clone.users.push_back(u);
          covered[u] = true;
        }
      }
      if (!clone.users.empty()) {
        clone.group_id = next_group_id++;
        h.nodes_.push_back(std::move(clone));
      }
    }
  }

  return h;
}

std::vector<const GroupNode*> GroupHierarchy::GroupsAtDepth(int depth) const {
  std::vector<const GroupNode*> out;
  for (const auto& node : nodes_) {
    if (node.depth == depth) out.push_back(&node);
  }
  return out;
}

std::vector<GroupAssignment> GroupHierarchy::AssignNewUsers(
    const UserGraph& graph, const std::vector<int64_t>& new_users) {
  std::vector<GroupAssignment> out;
  if (nodes_.empty()) return out;

  std::unordered_map<int64_t, bool> present;
  for (int64_t u : nodes_[0].users) present[u] = true;

  // Child lists (a depth-d node's parent is always at depth d-1).
  std::vector<std::vector<int>> children(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent >= 0) {
      children[static_cast<size_t>(nodes_[i].parent)].push_back(
          static_cast<int>(i));
    }
  }

  for (int64_t user : new_users) {
    if (present.count(user)) continue;
    present[user] = true;
    nodes_[0].users.push_back(user);

    const int node_idx = graph.NodeIndex(user);
    if (node_idx < 0) continue;
    // The user's collaboration weight per already-grouped neighbor.
    std::unordered_map<int64_t, double> weight_to;
    for (const auto& [nbr, w] : graph.Neighbors(static_cast<size_t>(node_idx))) {
      weight_to[graph.user_id(nbr)] += w;
    }
    if (weight_to.empty()) continue;

    int cur = 0;
    while (!children[static_cast<size_t>(cur)].empty()) {
      int best = -1;
      double best_weight = 0.0;
      for (int c : children[static_cast<size_t>(cur)]) {
        double w = 0.0;
        for (int64_t member : nodes_[static_cast<size_t>(c)].users) {
          const auto it = weight_to.find(member);
          if (it != weight_to.end()) w += it->second;
        }
        if (w <= 0.0) continue;
        if (best < 0 || w > best_weight ||
            (w == best_weight && nodes_[static_cast<size_t>(c)].group_id <
                                     nodes_[static_cast<size_t>(best)].group_id)) {
          best = c;
          best_weight = w;
        }
      }
      // No child shares an edge with the user: stop here. Deeper depths
      // simply do not list this user until the next full rebuild.
      if (best < 0) break;
      GroupNode& chosen = nodes_[static_cast<size_t>(best)];
      chosen.users.push_back(user);
      out.push_back(GroupAssignment{chosen.depth, chosen.group_id, user});
      cur = best;
    }
  }
  return out;
}

const GroupNode* GroupHierarchy::GroupOf(int64_t user, int depth) const {
  for (const auto& node : nodes_) {
    if (node.depth != depth) continue;
    for (int64_t u : node.users) {
      if (u == user) return &node;
    }
  }
  return nullptr;
}

TableSchema GroupHierarchy::GroupsSchema(const std::string& table_name) {
  return TableSchema(
      table_name,
      {ColumnDef{"Group_Depth", DataType::kInt64, "", false},
       ColumnDef{"Group_id", DataType::kInt64, "group", false},
       ColumnDef{"User", DataType::kInt64, "user", false}});
}

StatusOr<Table> GroupHierarchy::ToGroupsTable(const std::string& table_name,
                                              bool include_depth_zero) const {
  Table table(GroupsSchema(table_name));
  size_t total = 0;
  for (const auto& node : nodes_) total += node.users.size();
  table.Reserve(total);
  for (const auto& node : nodes_) {
    if (node.depth == 0 && !include_depth_zero) continue;
    for (int64_t user : node.users) {
      EBA_RETURN_IF_ERROR(table.AppendRow({Value::Int64(node.depth),
                                           Value::Int64(node.group_id),
                                           Value::Int64(user)}));
    }
  }
  return table;
}

}  // namespace eba
