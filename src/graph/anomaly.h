// User-level anomaly detection baseline, in the spirit of Chen & Malin
// (CODASPY 2011), the related work the paper contrasts against (§6):
// "they detect anomalous users by measuring the deviation of each user's
// access pattern from other users that access similar medical records.
// This work considers the user to be the unit of suspiciousness."
//
// The baseline scores each user by how weakly they resemble their nearest
// neighbors in the W = AᵀA collaboration graph: a user embedded in a care
// team has strong similarity to teammates (low score); a user whose
// accesses are unlike anyone else's floats free (high score).
//
// The paper's argument — reproduced by bench_ext_baseline — is that this
// unit of suspiciousness misses *isolated* misuse: a well-behaved employee
// who snoops once keeps a normal profile, while explanation-based auditing
// flags the single unexplained access.

#ifndef EBA_GRAPH_ANOMALY_H_
#define EBA_GRAPH_ANOMALY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/user_graph.h"
#include "log/access_log.h"

namespace eba {

struct AnomalyOptions {
  /// Neighborhood size for the deviation measure.
  int k_nearest = 5;
};

/// One user's anomaly assessment, higher score = more anomalous.
struct UserAnomalyScore {
  int64_t user = 0;
  /// 1 / (1 + breadth-normalized similarity to the k nearest neighbors);
  /// in (0, 1].
  double score = 0.0;
  /// Top-k neighbor similarity mass divided by the number of distinct
  /// patients the user accessed (0 when isolated).
  double neighborhood_similarity = 0.0;
  size_t num_accesses = 0;
};

/// Scores every user in the graph; the result is sorted by descending
/// score (most anomalous first; ties broken by user id for determinism).
StatusOr<std::vector<UserAnomalyScore>> ScoreUsersByDeviation(
    const UserGraph& graph, const AccessLog& log,
    const AnomalyOptions& options = {});

/// Rank (1-based) of `user` in `scores`, or 0 if absent.
size_t RankOfUser(const std::vector<UserAnomalyScore>& scores, int64_t user);

}  // namespace eba

#endif  // EBA_GRAPH_ANOMALY_H_
