// UserGraph: the weighted collaboration graph of §4.1.
//
// For a log slice with m patients and n users, A[i,j] = 1/k_i if user j
// accessed patient i's record (k_i = number of distinct users who accessed
// patient i) and 0 otherwise. Edge weights come from W = Aᵀ A:
//   W[u,v] = Σ_i 1/k_i²  over patients i accessed by both u and v.
// Whether a user accessed a record is binary — access counts do not change
// the weight (paper §4.1). Diagonal entries are dropped; a node's weight is
// the sum of its incident edge weights.

#ifndef EBA_GRAPH_USER_GRAPH_H_
#define EBA_GRAPH_USER_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "log/access_log.h"

namespace eba {

class UserGraph {
 public:
  /// Builds the graph from all rows of `log`.
  static StatusOr<UserGraph> Build(const AccessLog& log);

  /// Builds the graph from a subset of log rows (e.g. training days 1-6).
  static StatusOr<UserGraph> BuildFromRows(const AccessLog& log,
                                           const std::vector<size_t>& rows);

  size_t num_users() const { return user_ids_.size(); }

  /// External user id of graph node `idx`.
  int64_t user_id(size_t idx) const { return user_ids_[idx]; }
  const std::vector<int64_t>& user_ids() const { return user_ids_; }

  /// Node index for a user id, or -1.
  int NodeIndex(int64_t user_id) const;

  /// Weighted adjacency list of node `idx` (no self-loops).
  const std::vector<std::pair<uint32_t, double>>& Neighbors(size_t idx) const {
    return adjacency_[idx];
  }

  /// Sum of incident edge weights.
  double NodeWeight(size_t idx) const { return node_weights_[idx]; }

  /// Total edge weight (each undirected edge counted once).
  double TotalWeight() const { return total_weight_; }

  /// Edge weight between two nodes (0 if absent).
  double EdgeWeight(size_t a, size_t b) const;

  size_t NumEdges() const;

 private:
  std::vector<int64_t> user_ids_;
  std::unordered_map<int64_t, uint32_t> user_index_;
  std::vector<std::vector<std::pair<uint32_t, double>>> adjacency_;
  std::vector<double> node_weights_;
  double total_weight_ = 0;
};

}  // namespace eba

#endif  // EBA_GRAPH_USER_GRAPH_H_
