#include "graph/modularity.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/random.h"

namespace eba {

std::vector<std::vector<uint32_t>> Clustering::Clusters() const {
  std::vector<std::vector<uint32_t>> out(static_cast<size_t>(num_clusters));
  for (size_t u = 0; u < assignment.size(); ++u) {
    out[static_cast<size_t>(assignment[u])].push_back(
        static_cast<uint32_t>(u));
  }
  return out;
}

double WeightedGraph::Degree(size_t u) const {
  double d = 2.0 * self_loops[u];
  for (const auto& [v, w] : adjacency[u]) d += w;
  return d;
}

double WeightedGraph::TotalWeight() const {
  double m = 0;
  for (size_t u = 0; u < adjacency.size(); ++u) {
    for (const auto& [v, w] : adjacency[u]) m += w;
    m += 2.0 * self_loops[u];
  }
  return m / 2.0;
}

WeightedGraph WeightedGraph::FromUserGraph(const UserGraph& g) {
  WeightedGraph out;
  out.adjacency.resize(g.num_users());
  out.self_loops.assign(g.num_users(), 0.0);
  for (size_t u = 0; u < g.num_users(); ++u) {
    out.adjacency[u] = g.Neighbors(u);
  }
  return out;
}

WeightedGraph WeightedGraph::Induce(const std::vector<uint32_t>& nodes) const {
  std::unordered_map<uint32_t, uint32_t> remap;
  remap.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    remap.emplace(nodes[i], static_cast<uint32_t>(i));
  }
  WeightedGraph out;
  out.adjacency.resize(nodes.size());
  out.self_loops.assign(nodes.size(), 0.0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    uint32_t orig = nodes[i];
    out.self_loops[i] = self_loops[orig];
    for (const auto& [v, w] : adjacency[orig]) {
      auto it = remap.find(v);
      if (it != remap.end()) {
        out.adjacency[i].emplace_back(it->second, w);
      }
    }
  }
  return out;
}

double ComputeModularity(const WeightedGraph& graph,
                         const std::vector<int>& assignment) {
  EBA_CHECK(assignment.size() == graph.num_nodes());
  const double m = graph.TotalWeight();
  if (m <= 0) return 0.0;
  // Q = sum_c [ in_c / 2m - (deg_c / 2m)^2 ]
  std::unordered_map<int, double> internal;  // 2 * internal weight
  std::unordered_map<int, double> degree;
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    int c = assignment[u];
    degree[c] += graph.Degree(u);
    internal[c] += 2.0 * graph.self_loops[u];
    for (const auto& [v, w] : graph.adjacency[u]) {
      if (assignment[v] == c) internal[c] += w;
    }
  }
  // Summing in hash order would make Q depend on the hash function's
  // bucket layout (float addition is not associative); sum in community-id
  // order instead.
  std::vector<int> communities;
  communities.reserve(degree.size());
  for (const auto& [c, deg] : degree) communities.push_back(c);
  std::sort(communities.begin(), communities.end());
  double q = 0;
  for (int c : communities) {
    const double deg = degree.at(c);
    const double in_c = internal.count(c) ? internal.at(c) : 0.0;
    q += in_c / (2.0 * m) - (deg / (2.0 * m)) * (deg / (2.0 * m));
  }
  return q;
}

namespace {

/// One Louvain level: local moving on `graph`. Returns the per-node
/// community assignment (renumbered to be dense) and whether anything moved.
struct LevelResult {
  std::vector<int> assignment;
  int num_communities = 0;
  bool changed = false;
};

LevelResult LocalMoving(const WeightedGraph& graph, Random* rng,
                        double min_gain) {
  const size_t n = graph.num_nodes();
  const double m = graph.TotalWeight();
  LevelResult result;
  result.assignment.resize(n);
  for (size_t u = 0; u < n; ++u) result.assignment[u] = static_cast<int>(u);
  if (m <= 0 || n == 0) {
    result.num_communities = static_cast<int>(n);
    return result;
  }

  std::vector<double> community_degree(n);
  for (size_t u = 0; u < n; ++u) community_degree[u] = graph.Degree(u);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);

  bool improved = true;
  int sweeps = 0;
  while (improved && sweeps < 64) {
    improved = false;
    ++sweeps;
    for (size_t u : order) {
      const int current = result.assignment[u];
      const double ku = graph.Degree(u);

      // Weight from u to each neighboring community.
      std::unordered_map<int, double> to_community;
      to_community[current];  // ensure presence
      for (const auto& [v, w] : graph.adjacency[u]) {
        to_community[result.assignment[v]] += w;
      }

      // Remove u from its community.
      community_degree[static_cast<size_t>(current)] -= ku;

      int best = current;
      double best_gain = 0.0;
      const double base = to_community[current] -
                          community_degree[static_cast<size_t>(current)] * ku /
                              (2.0 * m);
      // Evaluate candidate communities in id order: the strict `>` argmax
      // below tie-breaks on evaluation order, so hash-order iteration would
      // let the bucket layout steer the clustering.
      std::vector<int> candidates;
      candidates.reserve(to_community.size());
      for (const auto& [c, w] : to_community) candidates.push_back(c);
      std::sort(candidates.begin(), candidates.end());
      for (int c : candidates) {
        const double w_uc = to_community.at(c);
        double gain = w_uc -
                      community_degree[static_cast<size_t>(c)] * ku / (2.0 * m) -
                      base;
        if (gain > best_gain + min_gain) {
          best_gain = gain;
          best = c;
        }
      }

      community_degree[static_cast<size_t>(best)] += ku;
      if (best != current) {
        result.assignment[u] = best;
        improved = true;
        result.changed = true;
      }
    }
  }

  // Renumber densely.
  std::unordered_map<int, int> renumber;
  for (size_t u = 0; u < n; ++u) {
    auto it = renumber.emplace(result.assignment[u],
                               static_cast<int>(renumber.size()))
                  .first;
    result.assignment[u] = it->second;
  }
  result.num_communities = static_cast<int>(renumber.size());
  return result;
}

/// Aggregates communities into super-nodes.
WeightedGraph Aggregate(const WeightedGraph& graph,
                        const std::vector<int>& assignment,
                        int num_communities) {
  WeightedGraph out;
  out.adjacency.resize(static_cast<size_t>(num_communities));
  out.self_loops.assign(static_cast<size_t>(num_communities), 0.0);
  std::vector<std::unordered_map<uint32_t, double>> agg(
      static_cast<size_t>(num_communities));
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    int cu = assignment[u];
    out.self_loops[static_cast<size_t>(cu)] += graph.self_loops[u];
    for (const auto& [v, w] : graph.adjacency[u]) {
      int cv = assignment[v];
      if (cu == cv) {
        // Each undirected edge appears twice in adjacency; w/2 per visit.
        out.self_loops[static_cast<size_t>(cu)] += w / 2.0;
      } else {
        agg[static_cast<size_t>(cu)][static_cast<uint32_t>(cv)] += w;
      }
    }
  }
  for (size_t c = 0; c < agg.size(); ++c) {
    auto& adj = out.adjacency[c];
    adj.reserve(agg[c].size());
    for (const auto& [v, w] : agg[c]) adj.emplace_back(v, w);
    std::sort(adj.begin(), adj.end());
  }
  return out;
}

}  // namespace

Clustering ClusterGraph(const WeightedGraph& graph,
                        const LouvainOptions& options) {
  const size_t n = graph.num_nodes();
  Clustering result;
  result.assignment.resize(n);
  for (size_t u = 0; u < n; ++u) result.assignment[u] = static_cast<int>(u);

  if (n == 0) {
    result.num_clusters = 0;
    return result;
  }

  Random rng(options.seed);
  WeightedGraph current = graph;
  // node -> community at the finest level, refined across levels.
  std::vector<int> global = result.assignment;

  for (int level = 0; level < options.max_levels; ++level) {
    LevelResult moved = LocalMoving(current, &rng, options.min_gain);
    if (!moved.changed && level > 0) break;
    // Compose: global[u] = moved.assignment[global[u]].
    for (size_t u = 0; u < n; ++u) {
      global[u] = moved.assignment[static_cast<size_t>(global[u])];
    }
    if (!moved.changed) break;
    current = Aggregate(current, moved.assignment, moved.num_communities);
    if (current.num_nodes() == 1) break;
  }

  // Renumber densely (aggregation preserves density, but be safe).
  std::unordered_map<int, int> renumber;
  for (size_t u = 0; u < n; ++u) {
    auto it =
        renumber.emplace(global[u], static_cast<int>(renumber.size())).first;
    global[u] = it->second;
  }
  result.assignment = std::move(global);
  result.num_clusters = static_cast<int>(renumber.size());
  result.modularity = ComputeModularity(graph, result.assignment);
  return result;
}

Clustering ClusterUserGraph(const UserGraph& graph,
                            const LouvainOptions& options) {
  return ClusterGraph(WeightedGraph::FromUserGraph(graph), options);
}

}  // namespace eba
