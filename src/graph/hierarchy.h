// GroupHierarchy: recursive modularity clustering (§4.1).
//
// Depth 0 places every user in a single global group (the paper's naive
// baseline in Figure 12). Depth 1 is the top-level Louvain clustering;
// each deeper level re-clusters every group's induced subgraph. Group ids
// are globally unique across depths so a Groups self-join on Group_id never
// matches across depths.
//
// The result materializes as the Groups(Group_Depth, Group_id, User) table
// of §4.1, ready to be added to the database and used by the miner through
// an allowed self-join on Groups.Group_id.

#ifndef EBA_GRAPH_HIERARCHY_H_
#define EBA_GRAPH_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/modularity.h"
#include "graph/user_graph.h"
#include "storage/table.h"

namespace eba {

/// One group in the hierarchy.
struct GroupNode {
  int depth = 0;
  int64_t group_id = 0;
  int parent = -1;  // index into GroupHierarchy::nodes(), -1 for depth 0
  std::vector<int64_t> users;
};

struct HierarchyOptions {
  /// Maximum depth to build (the paper ended up with an 8-level hierarchy).
  int max_depth = 8;
  /// Groups smaller than this are not re-clustered further.
  size_t min_cluster_size = 4;
  LouvainOptions louvain;
};

/// One (Group_Depth, Group_id, User) row produced by AssignNewUsers.
struct GroupAssignment {
  int depth = 0;
  int64_t group_id = 0;
  int64_t user = 0;
};

class GroupHierarchy {
 public:
  /// Builds the hierarchy over the collaboration graph.
  static StatusOr<GroupHierarchy> Build(const UserGraph& graph,
                                        const HierarchyOptions& options = {});

  const std::vector<GroupNode>& nodes() const { return nodes_; }

  /// Deepest level that contains at least one group.
  int max_depth() const { return max_depth_; }

  /// Groups at a given depth.
  std::vector<const GroupNode*> GroupsAtDepth(int depth) const;

  /// Group of `user` at `depth` (nullptr if the user is absent). Every user
  /// present in the graph belongs to exactly one group per depth.
  const GroupNode* GroupOf(int64_t user, int depth) const;

  /// Folds users absent from the hierarchy into the existing groups
  /// without re-clustering — the incremental maintenance path for a log
  /// that keeps growing after Build. Each new user descends the hierarchy:
  /// at every depth it joins the child group (of the group joined one level
  /// up) whose members carry the largest summed collaboration weight to it
  /// in `graph`, stopping at the first depth where no child has any edge to
  /// it. Users with no edge to any grouped user join only the depth-0
  /// global group; they cluster properly on the next full rebuild.
  /// Deterministic: users are processed in the order given and weight ties
  /// break toward the smaller group id. Users already present are skipped.
  /// Returns the depth >= 1 rows to append to the Groups table (depth 0 is
  /// a conceptual baseline, excluded exactly as in ToGroupsTable).
  std::vector<GroupAssignment> AssignNewUsers(
      const UserGraph& graph, const std::vector<int64_t>& new_users);

  /// Materializes Groups(Group_Depth, Group_id, User). Group_id carries the
  /// "group" key domain; Group_Depth and User are plain int64/user-domain.
  /// Depth 0 (the single all-users group, the paper's Figure 12 baseline)
  /// is excluded by default: it is a conceptual baseline, not clustering
  /// output, and including it would let undecorated mined templates match
  /// every user pair. Pass `include_depth_zero` for baseline evaluations.
  StatusOr<Table> ToGroupsTable(const std::string& table_name,
                                bool include_depth_zero = false) const;

  /// Schema used by ToGroupsTable (for engines that pre-declare tables).
  static TableSchema GroupsSchema(const std::string& table_name);

 private:
  std::vector<GroupNode> nodes_;
  int max_depth_ = 0;
};

}  // namespace eba

#endif  // EBA_GRAPH_HIERARCHY_H_
