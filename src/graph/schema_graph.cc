#include "graph/schema_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace eba {

namespace {

std::string EdgeKey(const JoinEdge& e) {
  return e.from.ToString() + "|" + e.to.ToString();
}

}  // namespace

StatusOr<SchemaGraph> SchemaGraph::Build(
    const Database& db, std::vector<std::string> excluded_tables) {
  std::set<std::string> excluded(excluded_tables.begin(),
                                 excluded_tables.end());
  SchemaGraph graph;
  std::unordered_set<std::string> seen;

  auto add_edge = [&](const AttrId& a, const AttrId& b) {
    JoinEdge fwd{a, b};
    if (seen.insert(EdgeKey(fwd)).second) graph.edges_.push_back(fwd);
    JoinEdge rev{b, a};
    if (seen.insert(EdgeKey(rev)).second) graph.edges_.push_back(rev);
  };

  // Domain-derived edges: attributes in the same key domain, different
  // tables (key/FK relationships; §3.1 restriction 2).
  std::map<std::string, std::vector<AttrId>> by_domain;
  for (const std::string& name : db.TableNames()) {
    if (excluded.count(name)) continue;
    EBA_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    for (const auto& def : table->schema().columns()) {
      if (!def.domain.empty()) {
        by_domain[def.domain].push_back(AttrId{name, def.name});
      }
    }
  }
  for (const auto& [domain, attrs] : by_domain) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      for (size_t j = i + 1; j < attrs.size(); ++j) {
        if (attrs[i].table == attrs[j].table) continue;  // needs allowance
        add_edge(attrs[i], attrs[j]);
      }
    }
  }

  // Declared foreign keys.
  for (const auto& fk : db.foreign_keys()) {
    if (excluded.count(fk.from.table) || excluded.count(fk.to.table)) continue;
    if (fk.from.table == fk.to.table) continue;
    add_edge(fk.from, fk.to);
  }

  // Administrator-provided relationships.
  for (const auto& rel : db.admin_relationships()) {
    if (excluded.count(rel.a.table) || excluded.count(rel.b.table)) continue;
    add_edge(rel.a, rel.b);
  }

  // Allowed self-joins: an edge from the attribute to itself.
  for (const auto& attr : db.self_join_attrs()) {
    if (excluded.count(attr.table)) continue;
    JoinEdge self{attr, attr};
    if (seen.insert(EdgeKey(self)).second) graph.edges_.push_back(self);
  }

  return graph;
}

std::vector<JoinEdge> SchemaGraph::EdgesFrom(const AttrId& attr) const {
  std::vector<JoinEdge> out;
  for (const auto& e : edges_) {
    if (e.from == attr) out.push_back(e);
  }
  return out;
}

std::vector<JoinEdge> SchemaGraph::EdgesFromTable(
    const std::string& table) const {
  std::vector<JoinEdge> out;
  for (const auto& e : edges_) {
    if (e.from.table == table) out.push_back(e);
  }
  return out;
}

std::vector<JoinEdge> SchemaGraph::EdgesTo(const AttrId& attr) const {
  std::vector<JoinEdge> out;
  for (const auto& e : edges_) {
    if (e.to == attr) out.push_back(e);
  }
  return out;
}

MiningPath MiningPath::Extend(const JoinEdge& edge) const {
  std::vector<JoinEdge> edges = edges_;
  edges.push_back(edge);
  return MiningPath(std::move(edges));
}

MiningPath MiningPath::ExtendFront(const JoinEdge& edge) const {
  std::vector<JoinEdge> edges;
  edges.reserve(edges_.size() + 1);
  edges.push_back(edge);
  edges.insert(edges.end(), edges_.begin(), edges_.end());
  return MiningPath(std::move(edges));
}

std::string MiningPath::CanonicalKey() const {
  std::vector<std::string> fwd;
  fwd.reserve(edges_.size());
  for (const auto& e : edges_) fwd.push_back(EdgeKey(e));
  std::vector<std::string> rev;
  rev.reserve(edges_.size());
  for (auto it = edges_.rbegin(); it != edges_.rend(); ++it) {
    rev.push_back(EdgeKey(JoinEdge{it->to, it->from}));
  }
  std::string a = Join(fwd, "&");
  std::string b = Join(rev, "&");
  return a < b ? a : b;
}

namespace {

/// Shared path-walk state; see header comment for the rules.
struct PathWalk {
  bool valid = false;
  bool closed_left = false;
  bool closed_right = false;
  /// Tuple-variable table per chain position (positions = edges + 1).
  std::vector<std::string> position_tables;
};

PathWalk WalkPath(const Database& db, const PathRules& rules,
                  const MiningPath& path) {
  PathWalk walk;
  const auto& edges = path.edges();
  if (edges.empty()) return walk;
  const size_t n = edges.size();

  // Chain consistency: edge i leaves the table that edge i-1 entered.
  for (size_t i = 0; i + 1 < n; ++i) {
    if (edges[i].to.table != edges[i + 1].from.table) return walk;
  }

  walk.closed_left = edges[0].from == rules.start;
  walk.closed_right = edges[n - 1].to == rules.end;

  // Positions 0..n: the tuple-variable chain.
  walk.position_tables.reserve(n + 1);
  walk.position_tables.push_back(edges[0].from.table);
  for (size_t i = 0; i < n; ++i) {
    walk.position_tables.push_back(edges[i].to.table);
  }

  // Entry/exit attributes must differ at every pass-through position
  // (a single-node pass-through is never simple). Interior positions are
  // 1..n-1; when both ends close into variable 0, that shared variable
  // contributes start (exit) and end (entry), which differ by definition.
  for (size_t pos = 1; pos < n; ++pos) {
    const AttrId& entry = edges[pos - 1].to;
    const AttrId& exit = edges[pos].from;
    if (entry == exit) return walk;
  }

  // No join edge traversed twice (in either direction).
  {
    std::set<std::pair<std::string, std::string>> used;
    for (const auto& e : edges) {
      std::string a = e.from.ToString();
      std::string b = e.to.ToString();
      auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
      if (!used.insert(key).second) return walk;
    }
  }

  // Instance accounting. Positions 0 and n may denote variable 0 (the log)
  // when the corresponding end is closed; if both are closed they are the
  // SAME instance.
  const std::string& log_table = rules.start.table;
  std::map<std::string, int> instances;
  auto is_var0_position = [&](size_t pos) {
    return (pos == 0 && walk.closed_left) || (pos == n && walk.closed_right);
  };
  bool var0_counted = false;
  for (size_t pos = 0; pos <= n; ++pos) {
    const std::string& table = walk.position_tables[pos];
    if (is_var0_position(pos)) {
      if (table != log_table) return walk;  // anchors must be the log
      if (!var0_counted) {
        instances[table] += 1;
        var0_counted = true;
      }
      continue;
    }
    instances[table] += 1;
  }

  for (const auto& [table, count] : instances) {
    if (db.IsMappingTable(table)) continue;  // exempt (paper §5.3.3)
    if (count <= 1) continue;
    if (count > 2) return walk;
    // A second instance is only permitted when the two instances are joined
    // directly through an allowed self-join edge.
    bool has_self_edge = false;
    for (const auto& e : edges) {
      if (e.from.table == table && e.to.table == table &&
          db.IsSelfJoinAllowed(e.from) && e.from.column == e.to.column) {
        has_self_edge = true;
        break;
      }
    }
    if (!has_self_edge) return walk;
  }

  // An unanchored chain is not a mining path.
  if (!walk.closed_left && !walk.closed_right) return walk;

  // Budget checks: raw length and counted tables.
  if (static_cast<int>(n) > rules.max_length) return walk;
  std::set<std::string> counted;
  for (const auto& [table, count] : instances) {
    if (!db.IsMappingTable(table)) counted.insert(table);
  }
  if (static_cast<int>(counted.size()) > rules.max_tables) return walk;

  walk.valid = true;
  return walk;
}

}  // namespace

bool IsRestrictedSimplePath(const Database& db, const PathRules& rules,
                            const MiningPath& path, bool anchored_forward) {
  PathWalk walk = WalkPath(db, rules, path);
  if (!walk.valid) return false;
  return anchored_forward ? walk.closed_left : walk.closed_right;
}

bool IsExplanationPath(const Database& db, const PathRules& rules,
                       const MiningPath& path) {
  PathWalk walk = WalkPath(db, rules, path);
  return walk.valid && walk.closed_left && walk.closed_right;
}

StatusOr<PathQuery> PathToQuery(const Database& db, const PathRules& rules,
                                const MiningPath& path) {
  PathWalk walk = WalkPath(db, rules, path);
  if (!walk.valid) {
    return Status::InvalidArgument("path is not a restricted simple path: " +
                                   path.CanonicalKey());
  }
  const auto& edges = path.edges();
  const size_t n = edges.size();

  PathQuery q;
  q.vars.push_back(TupleVar{rules.start.table, "L"});

  // Assign a tuple-variable index to every chain position.
  std::vector<int> var_at_pos(n + 1, -1);
  int next_var = 1;
  int log_extra = 2;  // alias suffix for log self-join instances
  for (size_t pos = 0; pos <= n; ++pos) {
    bool is_var0 = (pos == 0 && walk.closed_left) ||
                   (pos == n && walk.closed_right);
    if (is_var0) {
      var_at_pos[pos] = 0;
      continue;
    }
    const std::string& table = walk.position_tables[pos];
    std::string alias;
    if (table == rules.start.table) {
      alias = "L" + std::to_string(log_extra++);
    } else {
      alias = "T" + std::to_string(next_var);
    }
    q.vars.push_back(TupleVar{table, alias});
    var_at_pos[pos] = next_var++;
  }

  auto make_attr = [&](size_t pos, const AttrId& attr) -> StatusOr<QAttr> {
    EBA_ASSIGN_OR_RETURN(int col, db.ResolveColumn(attr));
    return QAttr{var_at_pos[pos], col};
  };

  for (size_t i = 0; i < n; ++i) {
    EBA_ASSIGN_OR_RETURN(QAttr lhs, make_attr(i, edges[i].from));
    EBA_ASSIGN_OR_RETURN(QAttr rhs, make_attr(i + 1, edges[i].to));
    q.join_chain.push_back(VarCondition{lhs, CmpOp::kEq, rhs});
  }

  EBA_RETURN_IF_ERROR(q.Validate(db));
  return q;
}

}  // namespace eba
