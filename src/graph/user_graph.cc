#include "graph/user_graph.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace eba {

StatusOr<UserGraph> UserGraph::Build(const AccessLog& log) {
  std::vector<size_t> rows(log.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return BuildFromRows(log, rows);
}

StatusOr<UserGraph> UserGraph::BuildFromRows(const AccessLog& log,
                                             const std::vector<size_t>& rows) {
  // patient -> set of distinct users who accessed the patient.
  std::map<int64_t, std::set<int64_t>> accesses;
  for (size_t r : rows) {
    if (r >= log.size()) return Status::OutOfRange("row out of range");
    AccessLog::Entry e = log.Get(r);
    accesses[e.patient].insert(e.user);
  }

  UserGraph graph;
  for (const auto& [patient, users] : accesses) {
    for (int64_t u : users) {
      if (graph.user_index_.emplace(u, graph.user_ids_.size()).second) {
        graph.user_ids_.push_back(u);
      }
    }
  }
  const size_t n = graph.user_ids_.size();
  std::vector<std::unordered_map<uint32_t, double>> weights(n);

  // W = AᵀA off-diagonal: every patient with k users contributes 1/k² to
  // each unordered user pair.
  for (const auto& [patient, users] : accesses) {
    const double k = static_cast<double>(users.size());
    if (users.size() < 2) continue;
    const double w = 1.0 / (k * k);
    std::vector<uint32_t> idx;
    idx.reserve(users.size());
    for (int64_t u : users) idx.push_back(graph.user_index_.at(u));
    for (size_t i = 0; i < idx.size(); ++i) {
      for (size_t j = i + 1; j < idx.size(); ++j) {
        weights[idx[i]][idx[j]] += w;
        weights[idx[j]][idx[i]] += w;
      }
    }
  }

  graph.adjacency_.resize(n);
  graph.node_weights_.assign(n, 0.0);
  for (size_t u = 0; u < n; ++u) {
    auto& adj = graph.adjacency_[u];
    adj.reserve(weights[u].size());
    for (const auto& [v, w] : weights[u]) {
      adj.emplace_back(v, w);
      graph.node_weights_[u] += w;
    }
    // Deterministic order for reproducible clustering.
    std::sort(adj.begin(), adj.end());
    graph.total_weight_ += graph.node_weights_[u];
  }
  graph.total_weight_ /= 2.0;
  return graph;
}

int UserGraph::NodeIndex(int64_t user_id) const {
  auto it = user_index_.find(user_id);
  return it == user_index_.end() ? -1 : static_cast<int>(it->second);
}

double UserGraph::EdgeWeight(size_t a, size_t b) const {
  for (const auto& [v, w] : adjacency_[a]) {
    if (v == b) return w;
  }
  return 0.0;
}

size_t UserGraph::NumEdges() const {
  size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

}  // namespace eba
