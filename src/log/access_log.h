// AccessLog: a typed view over an access-log table with the analyses the
// paper's experiments need — first vs repeat accesses (§5.3.1), day slicing
// (train on days 1-6, test on day 7), and user-patient density (§5.2).
//
// The standard CareWeb-style log schema is
//   Log(Lid, Date, User, Patient, Action)
// with Lid int64 (primary key, domain "lid"), Date timestamp, User int64
// (domain "user"), Patient int64 (domain "patient"), Action string.

#ifndef EBA_LOG_ACCESS_LOG_H_
#define EBA_LOG_ACCESS_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace eba {

class AccessLog {
 public:
  /// The canonical log schema (see file comment). `domain_prefix` lets a
  /// fake log live in the same database without colliding lid domains.
  static TableSchema StandardSchema(const std::string& table_name = "Log");

  /// Wraps an existing table; the table must outlive this view and contain
  /// the standard columns (extra columns are allowed).
  static StatusOr<AccessLog> Wrap(const Table* table);

  const Table& table() const { return *table_; }
  size_t size() const { return table_->num_rows(); }

  int lid_col() const { return lid_col_; }
  int date_col() const { return date_col_; }
  int user_col() const { return user_col_; }
  int patient_col() const { return patient_col_; }

  /// One decoded log record.
  struct Entry {
    int64_t lid = 0;
    int64_t time = 0;  // epoch seconds
    int64_t user = 0;
    int64_t patient = 0;
  };
  Entry Get(size_t row) const;

  /// Row mask: mask[r] is true iff row r is the first access (in time order,
  /// ties broken by lid) of its (user, patient) pair within this log.
  std::vector<uint8_t> FirstAccessMask() const;

  /// Lids of first accesses / repeat accesses.
  std::vector<int64_t> FirstAccessLids() const;
  std::vector<int64_t> RepeatAccessLids() const;

  /// Distinct users / patients / (user, patient) pairs.
  size_t NumDistinctUsers() const;
  size_t NumDistinctPatients() const;
  size_t NumDistinctPairs() const;

  /// |pairs| / (|users| * |patients|)  (paper §5.2; ~0.0003 for CareWeb).
  double UserPatientDensity() const;

  /// Earliest / latest timestamps (0 when empty).
  int64_t MinTime() const;
  int64_t MaxTime() const;

  /// Day index (1-based) of each row relative to the log's first day.
  std::vector<int> DayIndexes() const;

  /// Row ids whose day index lies in [first_day, last_day] (1-based,
  /// inclusive).
  std::vector<size_t> RowsInDayRange(int first_day, int last_day) const;

  /// Builds a new table named `name` containing the given rows (in order),
  /// with this log's schema.
  StatusOr<Table> MakeSlice(const std::string& name,
                            const std::vector<size_t>& rows) const;

 private:
  explicit AccessLog(const Table* table);

  const Table* table_;
  int lid_col_ = -1;
  int date_col_ = -1;
  int user_col_ = -1;
  int patient_col_ = -1;
};

}  // namespace eba

#endif  // EBA_LOG_ACCESS_LOG_H_
