#include "log/fake_log.h"

#include <unordered_set>

#include "common/logging.h"

namespace eba {

StatusOr<Table> GenerateFakeLog(const std::string& table_name,
                                const std::vector<int64_t>& users,
                                const std::vector<int64_t>& patients,
                                const FakeLogOptions& options, Random* rng) {
  if (users.empty() || patients.empty()) {
    return Status::InvalidArgument("fake log needs users and patients");
  }
  if (options.max_time < options.min_time) {
    return Status::InvalidArgument("fake log time range is inverted");
  }
  EBA_CHECK(rng != nullptr);
  Table table(AccessLog::StandardSchema(table_name));
  table.Reserve(options.num_accesses);
  for (size_t i = 0; i < options.num_accesses; ++i) {
    int64_t user = users[rng->Uniform(users.size())];
    int64_t patient = patients[rng->Uniform(patients.size())];
    int64_t time = rng->UniformRange(options.min_time, options.max_time);
    Row row = {Value::Int64(options.first_lid + static_cast<int64_t>(i)),
               Value::Timestamp(time), Value::Int64(user),
               Value::Int64(patient), Value::String("viewed")};
    EBA_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

StatusOr<CombinedLog> CombineRealAndFake(const std::string& table_name,
                                         const Table& real,
                                         const Table& fake) {
  EBA_ASSIGN_OR_RETURN(AccessLog real_log, AccessLog::Wrap(&real));
  EBA_ASSIGN_OR_RETURN(AccessLog fake_log, AccessLog::Wrap(&fake));

  Table combined(AccessLog::StandardSchema(table_name));
  combined.Reserve(real.num_rows() + fake.num_rows());
  std::vector<int64_t> real_lids;
  real_lids.reserve(real.num_rows());
  std::vector<int64_t> fake_lids;
  fake_lids.reserve(fake.num_rows());

  for (size_t r = 0; r < real.num_rows(); ++r) {
    EBA_RETURN_IF_ERROR(combined.AppendRow(real.GetRow(r)));
    real_lids.push_back(real_log.Get(r).lid);
  }
  for (size_t r = 0; r < fake.num_rows(); ++r) {
    EBA_RETURN_IF_ERROR(combined.AppendRow(fake.GetRow(r)));
    fake_lids.push_back(fake_log.Get(r).lid);
  }

  // Lid collisions would make precision unmeasurable; reject them.
  {
    std::unordered_set<int64_t> seen(real_lids.begin(), real_lids.end());
    for (int64_t lid : fake_lids) {
      if (!seen.insert(lid).second) {
        return Status::InvalidArgument(
            "fake log lid collides with real log: " + std::to_string(lid));
      }
    }
  }

  return CombinedLog{std::move(combined), std::move(real_lids),
                     std::move(fake_lids)};
}

}  // namespace eba
