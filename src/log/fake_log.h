// FakeLogGenerator: builds the synthetic "fake log" of §5.3.2 used to
// measure explanation precision. Each fake access picks a user and a patient
// uniformly at random from the populations present in the database; because
// real user-patient density is very low, fake accesses almost never
// coincide with real clinical relationships, so any explanation found for a
// fake access is (almost surely) a false positive.

#ifndef EBA_LOG_FAKE_LOG_H_
#define EBA_LOG_FAKE_LOG_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "log/access_log.h"
#include "storage/table.h"

namespace eba {

struct FakeLogOptions {
  /// Number of fake accesses; by convention equal to the real log size.
  size_t num_accesses = 0;
  /// Lids are assigned sequentially starting here (must not collide with
  /// real lids).
  int64_t first_lid = 0;
  /// Timestamps are drawn uniformly from [min_time, max_time].
  int64_t min_time = 0;
  int64_t max_time = 0;
};

/// A combined evaluation log: real + fake accesses in one table, plus the
/// id sets needed to compute precision/recall.
struct CombinedLog {
  Table table;
  std::vector<int64_t> real_lids;
  std::vector<int64_t> fake_lids;
};

/// Generates `options.num_accesses` fake records over the given user and
/// patient populations.
StatusOr<Table> GenerateFakeLog(const std::string& table_name,
                                const std::vector<int64_t>& users,
                                const std::vector<int64_t>& patients,
                                const FakeLogOptions& options, Random* rng);

/// Concatenates a real log (or slice) and a fake log into one table named
/// `table_name`, tracking which lids are real vs fake.
StatusOr<CombinedLog> CombineRealAndFake(const std::string& table_name,
                                         const Table& real, const Table& fake);

}  // namespace eba

#endif  // EBA_LOG_FAKE_LOG_H_
