#include "log/access_log.h"

#include <algorithm>
#include <unordered_set>

#include "common/date.h"
#include "common/hash.h"
#include "common/logging.h"

namespace eba {

namespace {
/// Exact hash for (user, patient) pairs.
struct PairHash {
  size_t operator()(const std::pair<int64_t, int64_t>& p) const {
    return HashCombine(Mix64(static_cast<uint64_t>(p.first)),
                       Mix64(static_cast<uint64_t>(p.second)));
  }
};
}  // namespace

TableSchema AccessLog::StandardSchema(const std::string& table_name) {
  return TableSchema(
      table_name,
      {ColumnDef{"Lid", DataType::kInt64, "lid", /*is_primary_key=*/true},
       ColumnDef{"Date", DataType::kTimestamp, "", false},
       ColumnDef{"User", DataType::kInt64, "user", false},
       ColumnDef{"Patient", DataType::kInt64, "patient", false},
       ColumnDef{"Action", DataType::kString, "", false}});
}

AccessLog::AccessLog(const Table* table) : table_(table) {}

StatusOr<AccessLog> AccessLog::Wrap(const Table* table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  AccessLog log(table);
  log.lid_col_ = table->schema().ColumnIndex("Lid");
  log.date_col_ = table->schema().ColumnIndex("Date");
  log.user_col_ = table->schema().ColumnIndex("User");
  log.patient_col_ = table->schema().ColumnIndex("Patient");
  if (log.lid_col_ < 0 || log.date_col_ < 0 || log.user_col_ < 0 ||
      log.patient_col_ < 0) {
    return Status::InvalidArgument(
        "table '" + table->name() +
        "' is missing one of the Lid/Date/User/Patient columns");
  }
  auto check_type = [&](int col, DataType want) {
    return table->schema().column(static_cast<size_t>(col)).type == want;
  };
  if (!check_type(log.lid_col_, DataType::kInt64) ||
      !check_type(log.date_col_, DataType::kTimestamp) ||
      !check_type(log.user_col_, DataType::kInt64) ||
      !check_type(log.patient_col_, DataType::kInt64)) {
    return Status::InvalidArgument("log column types do not match schema");
  }
  return log;
}

AccessLog::Entry AccessLog::Get(size_t row) const {
  EBA_CHECK(row < table_->num_rows());
  Entry e;
  e.lid = table_->column(static_cast<size_t>(lid_col_)).Int64At(row);
  e.time = table_->column(static_cast<size_t>(date_col_)).Int64At(row);
  e.user = table_->column(static_cast<size_t>(user_col_)).Int64At(row);
  e.patient = table_->column(static_cast<size_t>(patient_col_)).Int64At(row);
  return e;
}

std::vector<uint8_t> AccessLog::FirstAccessMask() const {
  const size_t n = size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  const Column& dates = table_->column(static_cast<size_t>(date_col_));
  const Column& lids = table_->column(static_cast<size_t>(lid_col_));
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int64_t ta = dates.Int64At(a), tb = dates.Int64At(b);
    if (ta != tb) return ta < tb;
    return lids.Int64At(a) < lids.Int64At(b);
  });
  std::vector<uint8_t> mask(n, 0);
  std::unordered_set<std::pair<int64_t, int64_t>, PairHash> seen;
  seen.reserve(n);
  const Column& users = table_->column(static_cast<size_t>(user_col_));
  const Column& patients = table_->column(static_cast<size_t>(patient_col_));
  for (size_t r : order) {
    if (seen.emplace(users.Int64At(r), patients.Int64At(r)).second) {
      mask[r] = 1;
    }
  }
  return mask;
}

std::vector<int64_t> AccessLog::FirstAccessLids() const {
  auto mask = FirstAccessMask();
  std::vector<int64_t> out;
  const Column& lids = table_->column(static_cast<size_t>(lid_col_));
  for (size_t r = 0; r < mask.size(); ++r) {
    if (mask[r]) out.push_back(lids.Int64At(r));
  }
  return out;
}

std::vector<int64_t> AccessLog::RepeatAccessLids() const {
  auto mask = FirstAccessMask();
  std::vector<int64_t> out;
  const Column& lids = table_->column(static_cast<size_t>(lid_col_));
  for (size_t r = 0; r < mask.size(); ++r) {
    if (!mask[r]) out.push_back(lids.Int64At(r));
  }
  return out;
}

size_t AccessLog::NumDistinctUsers() const {
  return table_->GetOrComputeStats(static_cast<size_t>(user_col_)).num_distinct;
}

size_t AccessLog::NumDistinctPatients() const {
  return table_->GetOrComputeStats(static_cast<size_t>(patient_col_))
      .num_distinct;
}

size_t AccessLog::NumDistinctPairs() const {
  std::unordered_set<std::pair<int64_t, int64_t>, PairHash> pairs;
  pairs.reserve(size());
  const Column& users = table_->column(static_cast<size_t>(user_col_));
  const Column& patients = table_->column(static_cast<size_t>(patient_col_));
  for (size_t r = 0; r < size(); ++r) {
    pairs.emplace(users.Int64At(r), patients.Int64At(r));
  }
  return pairs.size();
}

double AccessLog::UserPatientDensity() const {
  size_t users = NumDistinctUsers();
  size_t patients = NumDistinctPatients();
  if (users == 0 || patients == 0) return 0.0;
  return static_cast<double>(NumDistinctPairs()) /
         (static_cast<double>(users) * static_cast<double>(patients));
}

int64_t AccessLog::MinTime() const {
  if (size() == 0) return 0;
  const ColumnStats& stats =
      table_->GetOrComputeStats(static_cast<size_t>(date_col_));
  return stats.min.AsTimestamp();
}

int64_t AccessLog::MaxTime() const {
  if (size() == 0) return 0;
  const ColumnStats& stats =
      table_->GetOrComputeStats(static_cast<size_t>(date_col_));
  return stats.max.AsTimestamp();
}

std::vector<int> AccessLog::DayIndexes() const {
  std::vector<int> days(size());
  if (size() == 0) return days;
  int64_t first_day = Date::FromSeconds(MinTime()).ToEpochDays();
  const Column& dates = table_->column(static_cast<size_t>(date_col_));
  for (size_t r = 0; r < size(); ++r) {
    int64_t day = Date::FromSeconds(dates.Int64At(r)).ToEpochDays();
    days[r] = static_cast<int>(day - first_day) + 1;
  }
  return days;
}

std::vector<size_t> AccessLog::RowsInDayRange(int first_day,
                                              int last_day) const {
  std::vector<size_t> rows;
  auto days = DayIndexes();
  for (size_t r = 0; r < days.size(); ++r) {
    if (days[r] >= first_day && days[r] <= last_day) rows.push_back(r);
  }
  return rows;
}

StatusOr<Table> AccessLog::MakeSlice(const std::string& name,
                                     const std::vector<size_t>& rows) const {
  TableSchema schema(name, table_->schema().columns());
  Table slice(std::move(schema));
  slice.Reserve(rows.size());
  for (size_t r : rows) {
    if (r >= table_->num_rows()) {
      return Status::OutOfRange("slice row out of range");
    }
    EBA_RETURN_IF_ERROR(slice.AppendRow(table_->GetRow(r)));
  }
  return slice;
}

}  // namespace eba
