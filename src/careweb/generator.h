// GenerateCareWeb: builds a complete synthetic hospital database + access
// log with known ground truth (see careweb/config.h for what it models and
// DESIGN.md for why this substitution preserves the paper's behaviour).
//
// Schema produced (key domains in brackets):
//   Users(uid*[user], Name, Department[dept], Role)
//   Patients(pid*[patient], Name)
//   Appointments(Patient[patient], Date, Doctor[user])            data set A
//   Visits(Patient, Date, Doctor[user], Attending[user])          data set A
//   Documents(Patient, Date, Author[user], Signer[user],
//             Enterer[user])                                      data set A
//   Labs(Patient, Date, Orderer[audit], Resulter[audit])          data set B
//   Medications(Patient, Date, Requester[audit], Signer[audit],
//               Administrator[audit])                             data set B
//   Radiology(Patient, Date, Orderer[audit], Radiologist[audit])  data set B
//   UserMap(caregiver_id[user], audit_id[audit])     mapping table (§5.3.3)
//   Log(Lid*, Date, User[user], Patient[patient], Action)
//
// Data set B identifies users by audit id (caregiver id + offset), so paths
// from data set B tables to the log must traverse UserMap — replicating the
// paper's two-identifier wrinkle. UserMap is registered as a mapping table
// (exempt from the table budget T and from reported template length).
// Self-joins are allowed on Users.Department, Log.Patient and Log.User
// (repeat access); the Groups table self-join is added later when groups
// are built.

#ifndef EBA_CAREWEB_GENERATOR_H_
#define EBA_CAREWEB_GENERATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "careweb/config.h"
#include "common/status.h"
#include "storage/database.h"

namespace eba {

/// Ground truth the generator knows about the data it produced; used by
/// tests and by EXPERIMENTS.md sanity checks (the real study could not have
/// this — we can, because we built the hospital).
struct CareWebGroundTruth {
  struct Team {
    int team_id = 0;
    std::string name;
    std::vector<int64_t> doctors;
    std::vector<int64_t> members;  // all users incl. doctors
    std::vector<std::string> dept_codes;
  };
  std::vector<Team> teams;
  /// Users of consult services (explained only via data set B).
  std::vector<int64_t> consult_users;
  /// patient id -> team index.
  std::unordered_map<int64_t, int> patient_team;
  /// lid -> reason tag: "appt_doctor", "team", "attending", "document",
  /// "consult_lab", "consult_med", "consult_rad", "repeat", "missing_event",
  /// "random".
  std::unordered_map<int64_t, std::string> access_reason;
  /// All user ids / patient ids (for fake-log sampling).
  std::vector<int64_t> all_users;
  std::vector<int64_t> all_patients;
};

struct CareWebData {
  Database db;
  CareWebGroundTruth truth;
  CareWebConfig config;
};

/// Builds the database and log. Deterministic for a fixed config.seed.
StatusOr<CareWebData> GenerateCareWeb(const CareWebConfig& config);

/// Names of the data-set-A / data-set-B event tables with their patient
/// columns (used by metrics and benches).
std::vector<std::pair<std::string, std::string>> DataSetAEventTables();
std::vector<std::pair<std::string, std::string>> DataSetBEventTables();
std::vector<std::pair<std::string, std::string>> AllEventTables();

}  // namespace eba

#endif  // EBA_CAREWEB_GENERATOR_H_
