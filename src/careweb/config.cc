#include "careweb/config.h"

namespace eba {

CareWebConfig CareWebConfig::Tiny() {
  CareWebConfig c;
  c.num_teams = 5;
  c.doctors_per_team_min = 1;
  c.doctors_per_team_max = 3;
  c.nurses_per_team_min = 2;
  c.nurses_per_team_max = 4;
  c.support_per_team_min = 1;
  c.support_per_team_max = 2;
  c.num_medical_students = 6;
  c.users_per_consult_service = 3;
  c.num_patients = 300;
  c.appointments_per_team_per_day = 4.0;
  return c;
}

CareWebConfig CareWebConfig::Small() {
  CareWebConfig c;
  c.num_teams = 12;
  c.num_medical_students = 15;
  c.users_per_consult_service = 5;
  c.num_patients = 2000;
  c.appointments_per_team_per_day = 6.0;
  return c;
}

CareWebConfig CareWebConfig::PaperShaped() { return CareWebConfig(); }

}  // namespace eba
