#include "careweb/config.h"

namespace eba {

CareWebConfig CareWebConfig::Tiny() {
  CareWebConfig c;
  c.num_teams = 5;
  c.doctors_per_team_min = 1;
  c.doctors_per_team_max = 3;
  c.nurses_per_team_min = 2;
  c.nurses_per_team_max = 4;
  c.support_per_team_min = 1;
  c.support_per_team_max = 2;
  c.num_medical_students = 6;
  c.users_per_consult_service = 3;
  c.num_patients = 300;
  c.appointments_per_team_per_day = 4.0;
  return c;
}

CareWebConfig CareWebConfig::Small() {
  CareWebConfig c;
  c.num_teams = 12;
  c.num_medical_students = 15;
  c.users_per_consult_service = 5;
  c.num_patients = 2000;
  c.appointments_per_team_per_day = 6.0;
  return c;
}

CareWebConfig CareWebConfig::PaperShaped() { return CareWebConfig(); }

CareWebConfig CareWebConfig::Scaled(int factor) {
  if (factor < 1) factor = 1;
  CareWebConfig c = Small();
  // 3x Small's event rate calibrates factor 1 to ~18k access rows, so the
  // factor ladder {1, 100, 1000} lands on 18k / 1.8M / 18M.
  c.appointments_per_team_per_day = Small().appointments_per_team_per_day * 3;
  c.num_teams = Small().num_teams * factor;
  c.num_patients = Small().num_patients * factor;
  c.num_medical_students = Small().num_medical_students * factor;
  c.users_per_consult_service = Small().users_per_consult_service * factor;
  c.track_access_reasons = factor <= 10;
  return c;
}

}  // namespace eba
