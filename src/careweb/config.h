// CareWebConfig: knobs for the synthetic hospital generator.
//
// The generator substitutes for the proprietary University of Michigan
// Health System data set (§5.2). Its defaults are chosen so the generated
// data reproduces the structural properties the paper's results rest on:
//   - very low user-patient density (~1e-3 .. 1e-4),
//   - events (appointments/visits/documents) reference only the primary
//     doctor, while whole care teams access the record,
//   - consult services (radiology/pathology/pharmacy/labs) access records
//     based on explicit orders recorded in data set B,
//   - repeat accesses dominate the log,
//   - a few percent of accesses have no recorded reason (missing data plus
//     genuine snooping).

#ifndef EBA_CAREWEB_CONFIG_H_
#define EBA_CAREWEB_CONFIG_H_

#include <cstdint>
#include <string>

namespace eba {

struct CareWebConfig {
  uint64_t seed = 20110930;

  /// Log span in days (the paper's log covers one week).
  int num_days = 7;
  /// First log day (Mon Jan 4, 2010).
  int start_year = 2010;
  int start_month = 1;
  int start_day = 4;

  // --- Population ---
  /// Collaborative care teams (the paper found 33 top-level groups).
  int num_teams = 33;
  /// Doctors / nurses / support staff per team.
  int doctors_per_team_min = 2, doctors_per_team_max = 6;
  int nurses_per_team_min = 3, nurses_per_team_max = 10;
  int support_per_team_min = 1, support_per_team_max = 4;
  /// Medical students total (rotate through teams; shared dept code).
  int num_medical_students = 40;
  /// Users per consult service (Radiology, Pathology, Pharmacy, Labs).
  int users_per_consult_service = 10;
  int num_patients = 8000;

  // --- Event processes (per team, per day) ---
  double appointments_per_team_per_day = 10.0;
  /// Probability an appointment also records a visit row.
  double visit_prob = 0.30;
  /// Expected documents produced per appointment.
  double documents_per_appointment = 1.2;
  /// Per-appointment probabilities of consult orders.
  double lab_order_prob = 0.35;
  double medication_order_prob = 0.45;
  double radiology_order_prob = 0.20;
  /// Probability an appointment's paperwork is missing from the extract
  /// (event outside the study window -> access with no recorded reason).
  double missing_event_prob = 0.02;

  // --- Access behaviour ---
  double doctor_access_prob = 0.95;
  /// Number of additional team members who access per appointment.
  int team_accessors_min = 2, team_accessors_max = 6;
  double team_member_access_prob = 0.85;
  double attending_access_prob = 0.50;
  double consult_access_prob = 0.90;
  /// Per existing (user, patient) pair, probability of a repeat access on
  /// each subsequent day.
  double repeat_access_prob = 0.35;
  /// Random (snooping-like) accesses per day as a fraction of that day's
  /// organic accesses.
  double random_access_rate = 0.01;

  /// Offset added to a caregiver id to form its audit id (data set B keys
  /// users by audit_id; the UserMap mapping table links the two; §5.3.3).
  int64_t audit_id_offset = 1000000;

  /// Track per-lid ground-truth reasons (truth.access_reason). Costs on the
  /// order of 100 bytes per access; scale runs with tens of millions of
  /// rows turn this off so the ground-truth map does not rival the log
  /// itself (the log and all event tables are unaffected).
  bool track_access_reasons = true;

  /// Tiny data set for unit tests (runs in milliseconds).
  static CareWebConfig Tiny();
  /// Small data set for examples (sub-second).
  static CareWebConfig Small();
  /// Paper-shaped data set for the benchmark harnesses (~50-150k accesses;
  /// the paper's absolute scale divided by ~30 so every figure regenerates
  /// in minutes on a laptop).
  static CareWebConfig PaperShaped();
  /// Scale-out preset: Small() at 3x the appointment rate with `factor`x
  /// the teams, patients, students and consult staff over the same one-week
  /// span — the log grows near-linearly in `factor` (factor 1 lands near
  /// 18k access rows, 100 near 1.8M, 1000 near 18M). Ground-truth reason
  /// tracking is disabled above factor 10; population grows with the log so
  /// user-patient density stays at the paper's ~1e-3..1e-4.
  static CareWebConfig Scaled(int factor);
};

}  // namespace eba

#endif  // EBA_CAREWEB_CONFIG_H_
